// Table I — benchmark statistics: clip counts and hotspot counts for the
// five synthetic ICCAD-2012-style suites (the analogue of the contest's
// benchmark-description table).

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  bench::bench_init(cli);

  Table table("Table I — benchmark suite statistics");
  table.set_header({"suite", "pattern family", "train clips", "train HS",
                    "test clips", "test HS", "test HS %"});
  Stopwatch total;
  for (const auto& spec : synth::benchmark_suites()) {
    const auto suite = bench::load_suite(spec.name, cli);
    const auto tr = suite.train.stats();
    const auto te = suite.test.stats();
    table.add_row({spec.name, spec.description,
                   Table::cell(static_cast<long long>(tr.total)),
                   Table::cell(static_cast<long long>(tr.hotspots)),
                   Table::cell(static_cast<long long>(te.total)),
                   Table::cell(static_cast<long long>(te.hotspots)),
                   Table::cell(100.0 * te.hotspot_ratio, 1)});
  }
  bench::print_table(table);
  std::cout << "generation+labeling wall time: " << Table::cell(total.seconds(), 1)
            << " s (cached for subsequent binaries)\n";
  return 0;
}
