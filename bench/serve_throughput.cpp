// Serve-layer throughput: requests/second through the lhd::serve daemon,
// isolating the serving overhead (wire coding, admission control, score
// caching, per-tenant accounting) from model cost — the detector is a
// deliberately trivial geometry hash, so every microsecond measured is
// the serve stack's.
//
// Three cells, each one RunReport phase in BENCH_serve_throughput.json:
//   handle_score  in-process Server::handle() on one thread (no wire) —
//                 the admission + cache + dispatch floor;
//   wire_score    --clients concurrent blocking clients over socketpair
//                 transports, distinct patterns per client (cache misses
//                 + hits mixed), Busy answers counted not retried;
//   wire_scan     the scan-region op over the wire, small dense regions.
//
// The server's full stats document (the stats op payload) is embedded in
// the report under "server_stats", so cache hit rates and per-tenant
// tallies land next to the timing numbers.
//
// Flags: --requests=4000 --clients=4 --workers=2 --queue=64
// --report=<path> (default BENCH_serve_throughput.json, empty disables)

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common.hpp"
#include "lhd/core/detector.hpp"
#include "lhd/serve/client.hpp"
#include "lhd/serve/server.hpp"
#include "lhd/serve/transport.hpp"

namespace {

using namespace lhd;

/// Thread-safe stand-in detector: score = total rect area (translation-
/// and order-invariant, satisfying the dedup/canonicalization contract)
/// at essentially zero cost, so the bench measures serving, not scoring.
class AreaDetector final : public core::Detector {
 public:
  std::string name() const override { return "area"; }
  void train(const data::Dataset&) override {}
  float score(const data::Clip& clip) const override {
    double sum = 0.0;
    for (const auto& r : clip.rects) sum += static_cast<double>(r.area());
    return static_cast<float>(sum / (1024.0 * 1024.0));
  }
  bool predict(const data::Clip& clip) const override {
    return score(clip) > threshold_;
  }
  void set_threshold(float threshold) override { threshold_ = threshold; }
  float threshold() const override { return threshold_; }

 private:
  float threshold_ = 0.0f;
};

/// A small per-request clip; `variant` cycles a few distinct canonical
/// patterns so the score cache sees a realistic hit/miss mix.
std::vector<geom::Rect> clip_for(int variant) {
  const geom::Coord w = 100 + 37 * (variant % 8);
  return {{0, 0, w, 200}, {500, 300, 500 + w, 700}};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  bench::bench_init(cli);
  const int requests = static_cast<int>(cli.get_int("requests", 4000));
  const int clients = static_cast<int>(cli.get_int("clients", 4));

  serve::ServerConfig config;
  config.score_workers = static_cast<std::size_t>(cli.get_int("workers", 2));
  config.max_queue = static_cast<std::size_t>(cli.get_int("queue", 64));
  serve::Server server(config);
  server.add_model("default", std::make_shared<AreaDetector>());

  obs::RunReport report("serve_throughput", "");
  report.set_config("requests", requests);
  report.set_config("clients", clients);
  report.set_config("score_workers",
                    static_cast<long long>(config.score_workers));
  report.set_config("max_queue", static_cast<long long>(config.max_queue));

  Table table("serve throughput");
  table.set_header({"cell", "requests", "ok", "busy", "seconds", "req_per_s"});
  const auto record = [&](const std::string& name, int total, long long ok,
                          long long busy, double seconds) {
    obs::Json extra = obs::Json::object();
    extra["requests"] = total;
    extra["ok"] = ok;
    extra["busy"] = busy;
    extra["req_per_s"] =
        seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
    report.add_phase(name, seconds, std::move(extra));
    table.add_row({name, Table::cell(static_cast<long long>(total)),
                   Table::cell(ok), Table::cell(busy),
                   Table::cell(seconds, 3),
                   Table::cell(seconds > 0
                                   ? static_cast<double>(total) / seconds
                                   : 0.0,
                               0)});
  };

  // --- in-process handle() floor -------------------------------------------
  {
    long long ok = 0;
    Stopwatch sw;
    for (int i = 0; i < requests; ++i) {
      serve::Request req;
      serve::ScoreClip body;
      body.rects = clip_for(i);
      req.body = std::move(body);
      if (serve::response_status(server.handle(req)) == serve::Status::Ok) {
        ++ok;
      }
    }
    record("handle_score", requests, ok, 0, sw.seconds());
  }

  // --- concurrent clients over socketpair wires ----------------------------
  const auto wire_cell = [&](const std::string& name, bool scan) {
    std::vector<std::shared_ptr<serve::Transport>> ends;
    for (int c = 0; c < clients; ++c) {
      auto [server_end, client_end] = serve::socketpair_transport();
      server.attach(std::move(server_end));
      ends.push_back(std::move(client_end));
    }
    const int per_client = requests / std::max(clients, 1);
    std::atomic<long long> ok{0};
    std::atomic<long long> busy{0};
    Stopwatch sw;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        serve::Client client(*ends[static_cast<std::size_t>(c)],
                             static_cast<std::uint32_t>(c));
        for (int i = 0; i < per_client; ++i) {
          const auto resp =
              scan ? client.scan_region("", 1024, 512,
                                        {{0, 0, 2048, 2048},
                                         {2048, 0, 4096, 1024}})
                   : client.score_clip("", 1024, clip_for(c * 131 + i));
          switch (serve::response_status(resp)) {
            case serve::Status::Ok:
              ok.fetch_add(1);
              break;
            case serve::Status::Busy:
              busy.fetch_add(1);
              break;
            case serve::Status::Error:
              break;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    record(name, per_client * clients, ok.load(), busy.load(), sw.seconds());
  };
  wire_cell("wire_score", /*scan=*/false);
  wire_cell("wire_scan", /*scan=*/true);

  report.root()["server_stats"] = obs::Json::parse(server.stats_json());
  server.stop();

  bench::print_table(table);
  bench::write_report(report, cli, "serve_throughput");
  return 0;
}
