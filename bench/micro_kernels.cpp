// Kernel-level micro benchmarks: rasterization, Gaussian imaging, resist
// thresholding, hotspot-oracle labeling, block DCT, CNN forward/backward —
// plus fast-vs-reference pairs for every lhd::nn kernel (raw GEMM, Conv2d
// forward, Linear forward, whole-CNN forward) so the blocked im2col+GEMM
// path's speedup over the naive loops is measured per kernel and per shape.
//
// Alongside the console output every run lands as one phase in
// BENCH_micro_kernels.json (obs::RunReport): name, real/CPU ns per
// iteration, iteration count. Pass --report=<path> to redirect, --report=
// to disable. The speedup story these numbers feed is told in
// docs/PERFORMANCE.md; EXPERIMENTS.md records measured values.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "benchmark_report.hpp"
#include "common.hpp"
#include "lhd/exec/backend.hpp"
#include "lhd/exec/registry.hpp"
#include "lhd/feature/dct.hpp"
#include "lhd/litho/oracle.hpp"
#include "lhd/nn/gemm.hpp"
#include "lhd/nn/layers.hpp"
#include "lhd/nn/loss.hpp"
#include "lhd/nn/network.hpp"
#include "lhd/synth/clip_gen.hpp"
#include "lhd/util/log.hpp"

namespace {

using namespace lhd;

const std::vector<geom::Rect>& sample_rects() {
  static const std::vector<geom::Rect> rects = [] {
    set_log_level(LogLevel::Warn);
    synth::StyleConfig style;
    Rng rng(5);
    return synth::generate_clip(style, rng);
  }();
  return rects;
}

const geom::FloatImage& sample_mask() {
  static const geom::FloatImage mask = geom::rasterize(sample_rects(), 1024, 8);
  return mask;
}

void BM_Rasterize128(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::rasterize(sample_rects(), 1024, 8));
  }
}
BENCHMARK(BM_Rasterize128);

void BM_GaussianBlurMain(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(litho::gaussian_blur(sample_mask(), 25.0 / 8));
  }
}
BENCHMARK(BM_GaussianBlurMain);

void BM_AerialImage(benchmark::State& state) {
  const litho::LithoSimulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.aerial(sample_mask(), 0.0));
  }
}
BENCHMARK(BM_AerialImage);

void BM_OracleLabelClip(benchmark::State& state) {
  const litho::HotspotOracle oracle{litho::OracleConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.evaluate(sample_mask()));
  }
}
BENCHMARK(BM_OracleLabelClip);

void BM_DctTensor(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        feature::dct_tensor_from_raster(sample_mask(), {}));
  }
}
BENCHMARK(BM_DctTensor);

void BM_ConnectedComponents(benchmark::State& state) {
  const auto target = geom::binarize(sample_mask(), 0.5f);
  for (auto _ : state) {
    int n = 0;
    benchmark::DoNotOptimize(geom::connected_components(target, &n));
  }
}
BENCHMARK(BM_ConnectedComponents);

// ----------------------------------------------- nn kernels, fast vs ref --
//
// Each nn benchmark exists as a Fast/Ref pair over the same shapes; the
// ratio of a pair's ns_per_iter is the kernel-path speedup quoted in
// docs/PERFORMANCE.md. Shapes are the hotspot CNN's own layers at the
// fig8/table3 configuration (16 input channels, 16×16 grid) plus tails.

void fill_tensor(Rng& rng, nn::Tensor& t) {
  for (auto& v : t.storage()) v = static_cast<float>(rng.next_double());
}

/// Raw GEMM C += A·B at (m, n, k) = (range 0, 1, 2). Fast is the blocked
/// packed kernel, Ref the naive triple loop.
void run_gemm(benchmark::State& state, bool blocked) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  const auto zm = static_cast<std::size_t>(m);
  const auto zn = static_cast<std::size_t>(n);
  const auto zk = static_cast<std::size_t>(k);
  Rng rng(3);
  std::vector<float> a(zm * zk), b(zk * zn), c(zm * zn);
  for (auto& v : a) v = static_cast<float>(rng.next_double());
  for (auto& v : b) v = static_cast<float>(rng.next_double());
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    if (blocked) {
      nn::gemm(m, n, k, a.data(), k, b.data(), n, false, c.data(), n);
    } else {
      nn::gemm_reference(m, n, k, a.data(), k, b.data(), n, false, c.data(),
                         n);
    }
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.counters["gflop_per_s"] = benchmark::Counter(
      2.0 * m * n * k, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

void BM_GemmFast(benchmark::State& state) { run_gemm(state, true); }
void BM_GemmRef(benchmark::State& state) { run_gemm(state, false); }
// conv1 lowering (m=out_c, k=in_c·3·3, n=batch·16·16), conv3 lowering
// after two pools, the FC1 shape, and a square reference point.
#define LHD_GEMM_SHAPES                                              \
  Args({24, 8192, 144})->Args({32, 2048, 216})->Args({32, 64, 512}) \
      ->Args({256, 256, 256})
BENCHMARK(BM_GemmFast)->LHD_GEMM_SHAPES;
BENCHMARK(BM_GemmRef)->LHD_GEMM_SHAPES;
#undef LHD_GEMM_SHAPES

/// Conv2d forward at {in_c, out_c, side, batch} = ranges 0..3.
void run_conv_forward(benchmark::State& state, nn::KernelPath path) {
  nn::set_kernel_path(path);
  const int in_c = static_cast<int>(state.range(0));
  const int out_c = static_cast<int>(state.range(1));
  const int side = static_cast<int>(state.range(2));
  const int batch = static_cast<int>(state.range(3));
  nn::Conv2d conv(in_c, out_c, 3, 1);
  Rng rng(7);
  conv.init(rng);
  nn::Tensor in({batch, in_c, side, side});
  fill_tensor(rng, in);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.infer(in));
  }
  nn::clear_kernel_path_override();
}

void BM_ConvForwardFast(benchmark::State& state) {
  run_conv_forward(state, nn::KernelPath::kFast);
}
void BM_ConvForwardRef(benchmark::State& state) {
  run_conv_forward(state, nn::KernelPath::kReference);
}
// The hotspot CNN's three conv layers at grid 16, batch 1 and batch 32.
#define LHD_CONV_SHAPES                                                 \
  Args({16, 24, 16, 1})->Args({16, 24, 16, 32})->Args({24, 24, 16, 32}) \
      ->Args({24, 32, 8, 32})
BENCHMARK(BM_ConvForwardFast)->LHD_CONV_SHAPES;
BENCHMARK(BM_ConvForwardRef)->LHD_CONV_SHAPES;
#undef LHD_CONV_SHAPES

/// Linear forward at {in_f, out_f, batch} = ranges 0..2.
void run_linear_forward(benchmark::State& state, nn::KernelPath path) {
  nn::set_kernel_path(path);
  const int in_f = static_cast<int>(state.range(0));
  const int out_f = static_cast<int>(state.range(1));
  const int batch = static_cast<int>(state.range(2));
  nn::Linear lin(in_f, out_f);
  Rng rng(9);
  lin.init(rng);
  nn::Tensor in({batch, in_f});
  fill_tensor(rng, in);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lin.infer(in));
  }
  nn::clear_kernel_path_override();
}

void BM_LinearForwardFast(benchmark::State& state) {
  run_linear_forward(state, nn::KernelPath::kFast);
}
void BM_LinearForwardRef(benchmark::State& state) {
  run_linear_forward(state, nn::KernelPath::kReference);
}
// FC1 and the classifier head, single sample and batch 32.
#define LHD_LINEAR_SHAPES \
  Args({512, 64, 1})->Args({512, 64, 32})->Args({64, 2, 32})
BENCHMARK(BM_LinearForwardFast)->LHD_LINEAR_SHAPES;
BENCHMARK(BM_LinearForwardRef)->LHD_LINEAR_SHAPES;
#undef LHD_LINEAR_SHAPES

/// Whole hotspot-CNN inference, batch = range 0 — the end-to-end number
/// the per-layer pairs above decompose.
void run_cnn_forward(benchmark::State& state, nn::KernelPath path) {
  nn::set_kernel_path(path);
  nn::Network net = nn::make_hotspot_cnn(16, 16);
  Rng rng(1);
  net.init(rng);
  const int batch = static_cast<int>(state.range(0));
  nn::Tensor in({batch, 16, 16, 16});
  fill_tensor(rng, in);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.infer(in));
  }
  nn::clear_kernel_path_override();
}

void BM_CnnForwardFast(benchmark::State& state) {
  run_cnn_forward(state, nn::KernelPath::kFast);
}
void BM_CnnForwardRef(benchmark::State& state) {
  run_cnn_forward(state, nn::KernelPath::kReference);
}
BENCHMARK(BM_CnnForwardFast)->Arg(1)->Arg(32);
BENCHMARK(BM_CnnForwardRef)->Arg(1)->Arg(32);

// ------------------------------------------------- exec backends, gemm/conv --
//
// The same GEMM and conv workloads dispatched through each registered
// lhd::exec backend, so BENCH_micro_kernels.json carries one timing row
// per backend per shape (BM_ExecGemm/<backend>, BM_ExecConv/<backend>) —
// the scheduling cost/benefit of each backend over the identical math.

void run_exec_gemm(benchmark::State& state, const exec::ExecBackend* backend) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  const auto zm = static_cast<std::size_t>(m);
  const auto zn = static_cast<std::size_t>(n);
  const auto zk = static_cast<std::size_t>(k);
  Rng rng(3);
  std::vector<float> a(zm * zk), b(zk * zn), c(zm * zn);
  for (auto& v : a) v = static_cast<float>(rng.next_double());
  for (auto& v : b) v = static_cast<float>(rng.next_double());
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    backend->gemm(m, n, k, a.data(), k, b.data(), n, false, c.data(), n);
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.counters["gflop_per_s"] = benchmark::Counter(
      2.0 * m * n * k, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

void run_exec_conv(benchmark::State& state, const exec::ExecBackend* backend) {
  const int in_c = static_cast<int>(state.range(0));
  const int out_c = static_cast<int>(state.range(1));
  const int side = static_cast<int>(state.range(2));
  const int batch = static_cast<int>(state.range(3));
  Rng rng(7);
  nn::Tensor in({batch, in_c, side, side});
  fill_tensor(rng, in);
  std::vector<float> weight(
      static_cast<std::size_t>(out_c * in_c * 9));
  std::vector<float> bias(static_cast<std::size_t>(out_c));
  for (auto& v : weight) v = static_cast<float>(rng.next_double());
  for (auto& v : bias) v = static_cast<float>(rng.next_double());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend->conv2d_forward(in, weight, bias, out_c, 3, 1));
  }
}

void register_exec_benchmarks() {
  for (const std::string& name : lhd::exec::list_backends()) {
    const exec::ExecBackend* backend = &exec::get_backend(name);
    benchmark::RegisterBenchmark(("BM_ExecGemm/" + name).c_str(),
                                 run_exec_gemm, backend)
        ->Args({24, 8192, 144})
        ->Args({256, 256, 256});
    benchmark::RegisterBenchmark(("BM_ExecConv/" + name).c_str(),
                                 run_exec_conv, backend)
        ->Args({16, 24, 16, 32})
        ->Args({24, 32, 8, 32});
  }
}

void BM_CnnTrainStepBatch32(benchmark::State& state) {
  nn::Network net = nn::make_hotspot_cnn(16, 16);
  Rng rng(1);
  net.init(rng);
  nn::Tensor in({32, 16, 16, 16});
  fill_tensor(rng, in);
  nn::Tensor targets({32, 2});
  for (int s = 0; s < 32; ++s) targets[static_cast<std::size_t>(s) * 2] = 1;
  for (auto _ : state) {
    const auto logits = net.forward(in, true);
    const auto loss = nn::softmax_cross_entropy(logits, targets);
    net.backward(loss.grad);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_CnnTrainStepBatch32);

}  // namespace

int main(int argc, char** argv) {
  // Cli ignores google-benchmark's --benchmark_* flags and vice versa, so
  // both flag styles coexist on one command line.
  const lhd::Cli cli(argc, argv);
  benchmark::Initialize(&argc, argv);
  register_exec_benchmarks();
  lhd::obs::RunReport report("micro_kernels", "");
  report.set_config("obs_enabled", lhd::obs::enabled());
  report.set_config("kernel_default",
                    lhd::nn::kernel_path_name(lhd::nn::active_kernel_path()));
  lhd::bench::CaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  lhd::bench::write_report(report, cli, "micro_kernels");
  return 0;
}
