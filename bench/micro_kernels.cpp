// Kernel-level micro benchmarks: rasterization, Gaussian imaging, resist
// thresholding, hotspot-oracle labeling, block DCT, CNN forward/backward.

#include <benchmark/benchmark.h>

#include "lhd/feature/dct.hpp"
#include "lhd/litho/oracle.hpp"
#include "lhd/nn/loss.hpp"
#include "lhd/nn/network.hpp"
#include "lhd/synth/clip_gen.hpp"
#include "lhd/util/log.hpp"

namespace {

using namespace lhd;

const std::vector<geom::Rect>& sample_rects() {
  static const std::vector<geom::Rect> rects = [] {
    set_log_level(LogLevel::Warn);
    synth::StyleConfig style;
    Rng rng(5);
    return synth::generate_clip(style, rng);
  }();
  return rects;
}

const geom::FloatImage& sample_mask() {
  static const geom::FloatImage mask = geom::rasterize(sample_rects(), 1024, 8);
  return mask;
}

void BM_Rasterize128(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::rasterize(sample_rects(), 1024, 8));
  }
}
BENCHMARK(BM_Rasterize128);

void BM_GaussianBlurMain(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(litho::gaussian_blur(sample_mask(), 25.0 / 8));
  }
}
BENCHMARK(BM_GaussianBlurMain);

void BM_AerialImage(benchmark::State& state) {
  const litho::LithoSimulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.aerial(sample_mask(), 0.0));
  }
}
BENCHMARK(BM_AerialImage);

void BM_OracleLabelClip(benchmark::State& state) {
  const litho::HotspotOracle oracle{litho::OracleConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.evaluate(sample_mask()));
  }
}
BENCHMARK(BM_OracleLabelClip);

void BM_DctTensor(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        feature::dct_tensor_from_raster(sample_mask(), {}));
  }
}
BENCHMARK(BM_DctTensor);

void BM_ConnectedComponents(benchmark::State& state) {
  const auto target = geom::binarize(sample_mask(), 0.5f);
  for (auto _ : state) {
    int n = 0;
    benchmark::DoNotOptimize(geom::connected_components(target, &n));
  }
}
BENCHMARK(BM_ConnectedComponents);

void BM_CnnForwardBatch32(benchmark::State& state) {
  nn::Network net = nn::make_hotspot_cnn(16, 16);
  Rng rng(1);
  net.init(rng);
  nn::Tensor in({32, 16, 16, 16});
  for (auto& v : in.storage()) v = static_cast<float>(rng.next_double());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(in, false));
  }
}
BENCHMARK(BM_CnnForwardBatch32);

void BM_CnnTrainStepBatch32(benchmark::State& state) {
  nn::Network net = nn::make_hotspot_cnn(16, 16);
  Rng rng(1);
  net.init(rng);
  nn::Tensor in({32, 16, 16, 16});
  for (auto& v : in.storage()) v = static_cast<float>(rng.next_double());
  nn::Tensor targets({32, 2});
  for (int s = 0; s < 32; ++s) targets[static_cast<std::size_t>(s) * 2] = 1;
  for (auto _ : state) {
    const auto logits = net.forward(in, true);
    const auto loss = nn::softmax_cross_entropy(logits, targets);
    net.backward(loss.grad);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_CnnTrainStepBatch32);

}  // namespace

BENCHMARK_MAIN();
