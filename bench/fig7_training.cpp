// Fig. 7 — CNN training convergence: per-epoch loss / training recall /
// training false-alarm rate for the plain phase followed by the biased-
// learning fine-tune (λ annotated per epoch). The series the survey plots
// to show BL pushing the boundary after convergence.
//
// Flags: --suite=B2 --epochs=15 --bias-epochs=6 --lambda=0.25

#include "common.hpp"
#include "lhd/core/cnn_detector.hpp"

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  bench::bench_init(cli);
  const std::string suite_name = cli.get_string("suite", "B2");
  const auto suite = bench::load_suite(suite_name, cli);

  core::CnnDetectorConfig cfg;
  cfg.mode = core::CnnTrainMode::Biased;
  cfg.train.epochs = static_cast<int>(cli.get_int("epochs", 15));
  cfg.bias_epochs = static_cast<int>(cli.get_int("bias-epochs", 6));
  cfg.bias_lambda = cli.get_double("lambda", 0.25);
  core::CnnDetector det("cnn-bl", cfg);
  Stopwatch sw;
  det.train(suite.train);
  const double train_s = sw.seconds();

  Table table("Fig. 7 — training convergence (suite " + suite_name + ", " +
              Table::cell(train_s, 1) + " s total)");
  table.set_header({"epoch", "phase", "lambda", "loss", "train recall %",
                    "train FA %"});
  for (const auto& e : det.history()) {
    table.add_row({Table::cell(static_cast<long long>(e.epoch)),
                   e.lambda > 0 ? "biased fine-tune" : "plain",
                   Table::cell(e.lambda, 2), Table::cell(e.loss, 4),
                   Table::cell(100.0 * e.recall, 1),
                   Table::cell(100.0 * e.false_alarm, 1)});
  }
  bench::print_table(table);

  const auto c = core::evaluate(det.predict_all(suite.test), suite.test);
  std::cout << "held-out: accuracy " << Table::cell(100.0 * c.accuracy(), 1)
            << "% false alarms " << c.fp << "\n";
  return 0;
}
