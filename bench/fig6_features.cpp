// Fig. 6 — layout feature comparison under fixed learners: density grid vs
// concentric-circle sampling (CCAS) vs the DCT feature tensor, each fed to
// a linear SVM and to AdaBoost, plus the CNN on its native DCT tensor.
// The survey's point: representation quality dominates learner choice.
//
// Flags: --suite=B2 --skip-cnn=false

#include <functional>

#include "common.hpp"
#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/shallow_detector.hpp"
#include "lhd/ml/adaboost.hpp"
#include "lhd/feature/squish.hpp"
#include "lhd/ml/linear_svm.hpp"

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  bench::bench_init(cli);
  const std::string suite_name = cli.get_string("suite", "B2");
  const auto suite = bench::load_suite(suite_name, cli);

  using ExtractorFactory =
      std::function<std::unique_ptr<feature::Extractor>()>;
  const std::pair<const char*, ExtractorFactory> features[] = {
      {"density-16x16", [] { return feature::make_density_extractor(); }},
      {"ccas-16r4s", [] { return feature::make_ccas_extractor(); }},
      {"squish-24", [] { return feature::make_squish_extractor(); }},
      {"dct-tensor", [] { return feature::make_dct_extractor(); }},
  };

  Table table("Fig. 6 — feature comparison (suite " + suite_name + ")");
  table.set_header({"feature", "learner", "accuracy %", "false alarms",
                    "F1", "train s"});

  for (const auto& [fname, make_extractor] : features) {
    struct Learner {
      const char* name;
      std::function<std::unique_ptr<ml::BinaryClassifier>()> make;
    };
    const Learner learners[] = {
        {"linear-svm",
         [] {
           ml::LinearSvmConfig cfg;
           cfg.positive_weight = 1.5;
           return std::make_unique<ml::LinearSvm>(cfg);
         }},
        {"adaboost",
         [] {
           ml::AdaBoostConfig cfg;
           cfg.positive_weight = 1.5;
           return std::make_unique<ml::AdaBoost>(cfg);
         }},
    };
    for (const auto& learner : learners) {
      core::ShallowDetector det(fname, make_extractor(), learner.make(), {});
      Stopwatch sw;
      det.train(suite.train);
      const double train_s = sw.seconds();
      const auto c = core::evaluate(det.predict_all(suite.test), suite.test);
      table.add_row({fname, learner.name,
                     Table::cell(100.0 * c.accuracy(), 1),
                     Table::cell(static_cast<long long>(c.fp)),
                     Table::cell(c.f1(), 2), Table::cell(train_s, 1)});
      LHD_LOG(Info) << fname << "+" << learner.name << ": acc "
                    << 100.0 * c.accuracy() << "% fa " << c.fp;
    }
  }

  if (!cli.get_bool("skip-cnn", false)) {
    core::CnnDetectorConfig cfg;
    core::CnnDetector det("cnn", cfg);
    Stopwatch sw;
    det.train(suite.train);
    const double train_s = sw.seconds();
    const auto c = core::evaluate(det.predict_all(suite.test), suite.test);
    table.add_row({"dct-tensor", "cnn", Table::cell(100.0 * c.accuracy(), 1),
                   Table::cell(static_cast<long long>(c.fp)),
                   Table::cell(c.f1(), 2), Table::cell(train_s, 1)});
  }
  bench::print_table(table);
  return 0;
}
