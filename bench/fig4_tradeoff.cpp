// Fig. 4 — accuracy / false-alarm trade-off:
//   (a) decision-threshold sweeps for a trained CNN, linear SVM and
//       AdaBoost on suite B2 (the ROC-like operating curves);
//   (b) biased-learning λ sweep: retrain the CNN fine-tune phase at
//       λ ∈ {0, 0.1, 0.2, 0.3, 0.4} and report the (accuracy, FA) endpoint
//       of each — the knob the survey's deep-learning endpoint exposes.
//
// Flags: --suite=B2  --lambda-epochs=6  --skip-lambda=false

#include "common.hpp"
#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/factory.hpp"

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  bench::bench_init(cli);
  const std::string suite_name = cli.get_string("suite", "B2");
  const auto suite = bench::load_suite(suite_name, cli);

  // ---- (a) threshold sweeps -----------------------------------------------
  Table sweep_table("Fig. 4a — threshold sweep (suite " + suite_name + ")");
  sweep_table.set_header({"detector", "threshold", "accuracy %",
                          "false alarms", "FA rate %"});
  for (const auto& kind : {"cnn", "svm", "adaboost"}) {
    auto det = core::make_detector(kind);
    det->train(suite.train);
    // Anchor thresholds to the observed score distribution.
    float lo = 1e30f, hi = -1e30f;
    for (std::size_t i = 0; i < suite.test.size(); ++i) {
      const float s = det->score(suite.test[i]);
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    std::vector<float> thresholds;
    for (int i = 0; i <= 10; ++i) {
      thresholds.push_back(lo + (hi - lo) * static_cast<float>(i) / 10.0f);
    }
    for (const auto& point :
         core::threshold_sweep(*det, suite.test, thresholds)) {
      sweep_table.add_row(
          {det->name(), Table::cell(point.threshold, 3),
           Table::cell(100.0 * point.confusion.accuracy(), 1),
           Table::cell(static_cast<long long>(point.confusion.fp)),
           Table::cell(100.0 * point.confusion.false_alarm_rate(), 1)});
    }
  }
  bench::print_table(sweep_table);

  // ---- (b) biased-learning lambda sweep -----------------------------------
  if (!cli.get_bool("skip-lambda", false)) {
    Table bl_table("Fig. 4b — biased-learning λ sweep (suite " + suite_name +
                   ")");
    bl_table.set_header({"lambda", "accuracy %", "false alarms",
                         "FA rate %", "train s"});
    for (const double lambda : {0.0, 0.1, 0.2, 0.3, 0.4}) {
      core::CnnDetectorConfig cfg;
      cfg.train.epochs = 12;
      cfg.augment_factor = 4;
      cfg.bias_epochs =
          static_cast<int>(cli.get_int("lambda-epochs", 6));
      cfg.bias_lambda = lambda;
      cfg.mode = lambda == 0.0 ? core::CnnTrainMode::Plain
                               : core::CnnTrainMode::Biased;
      core::CnnDetector det("cnn-bl", cfg);
      Stopwatch sw;
      det.train(suite.train);
      const double train_s = sw.seconds();
      const auto c = core::evaluate(det.predict_all(suite.test), suite.test);
      bl_table.add_row({Table::cell(lambda, 2),
                        Table::cell(100.0 * c.accuracy(), 1),
                        Table::cell(static_cast<long long>(c.fp)),
                        Table::cell(100.0 * c.false_alarm_rate(), 1),
                        Table::cell(train_s, 1)});
      LHD_LOG(Info) << "lambda " << lambda << ": acc "
                    << 100.0 * c.accuracy() << "% fa " << c.fp;
    }
    bench::print_table(bl_table);
  }
  return 0;
}
