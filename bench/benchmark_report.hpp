#pragma once
// google-benchmark → obs::RunReport bridge for the micro-measurement
// harnesses (table3_throughput, micro_kernels): a ConsoleReporter that also
// lands every finished run as one report phase, so BENCH_*.json carries the
// benchmark name, real/CPU ns per iteration and iteration count next to the
// captured obs registry totals.

#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "lhd/obs/obs.hpp"

namespace lhd::bench {

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(obs::RunReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      obs::Json extra = obs::Json::object();
      extra["iterations"] = static_cast<long long>(run.iterations);
      extra["ns_per_iter"] = 1e9 * run.real_accumulated_time / iters;
      extra["cpu_ns_per_iter"] = 1e9 * run.cpu_accumulated_time / iters;
      report_->add_phase(run.benchmark_name(), run.real_accumulated_time,
                        std::move(extra));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::RunReport* report_;
};

}  // namespace lhd::bench
