// Table III — feature-extraction and inference throughput (google-benchmark
// micro measurements): μs per clip for each feature, per-clip inference
// cost for a trained detector of each generation, plus the full-chip scan
// primitives (spatial-index window query, sharded scan at 1/2/4 threads).
//
// Alongside the console output, every benchmark lands as one phase in
// BENCH_table3_throughput.json (obs::RunReport): name, total/per-iteration
// real and CPU time, iteration count, plus the global obs registry totals
// accumulated by the instrumented library code under test. Pass
// --report=<path> to redirect, --report= to disable.

#include <benchmark/benchmark.h>

#include "benchmark_report.hpp"
#include "common.hpp"
#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/factory.hpp"
#include "lhd/core/scan.hpp"
#include "lhd/feature/extractor.hpp"
#include "lhd/synth/builder.hpp"
#include "lhd/synth/chip_gen.hpp"
#include "lhd/util/log.hpp"

namespace {

using namespace lhd;

const data::Dataset& sample_clips() {
  static const data::Dataset ds = [] {
    set_log_level(LogLevel::Warn);
    synth::SuiteSpec spec = synth::suite_by_name("B2");
    spec.n_train = 64;
    spec.n_test = 0;
    return synth::build_suite(spec, {}).train;
  }();
  return ds;
}

void BM_FeatureDensity(benchmark::State& state) {
  const auto extractor = feature::make_density_extractor();
  const auto& ds = sample_clips();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor->extract(ds[i++ % ds.size()]));
  }
}
BENCHMARK(BM_FeatureDensity);

void BM_FeatureCcas(benchmark::State& state) {
  const auto extractor = feature::make_ccas_extractor();
  const auto& ds = sample_clips();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor->extract(ds[i++ % ds.size()]));
  }
}
BENCHMARK(BM_FeatureCcas);

void BM_FeatureDctTensor(benchmark::State& state) {
  const auto extractor = feature::make_dct_extractor();
  const auto& ds = sample_clips();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor->extract(ds[i++ % ds.size()]));
  }
}
BENCHMARK(BM_FeatureDctTensor);

/// Inference cost per clip for a detector generation. Training happens once
/// in setup on a small set — this measures inference, not model quality.
void run_inference(benchmark::State& state, const std::string& kind) {
  set_log_level(LogLevel::Warn);
  auto det = core::make_detector(kind);
  synth::SuiteSpec spec = synth::suite_by_name("B2");
  spec.n_train = 80;
  spec.n_test = 0;
  const auto built = synth::build_suite(spec, {});
  det->train(built.train);
  const auto& ds = sample_clips();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det->predict(ds[i++ % ds.size()]));
  }
}

void BM_InferencePatternMatch(benchmark::State& state) {
  run_inference(state, "pm");
}
BENCHMARK(BM_InferencePatternMatch);

void BM_InferenceLinearSvm(benchmark::State& state) {
  run_inference(state, "svm");
}
BENCHMARK(BM_InferenceLinearSvm);

void BM_InferenceAdaBoost(benchmark::State& state) {
  run_inference(state, "adaboost");
}
BENCHMARK(BM_InferenceAdaBoost);

void BM_InferenceNaiveBayes(benchmark::State& state) {
  run_inference(state, "nb");
}
BENCHMARK(BM_InferenceNaiveBayes);

void BM_InferenceCnn(benchmark::State& state) {
  // Use a fast-training CNN config: inference cost is what's measured and
  // it does not depend on how long we trained.
  set_log_level(LogLevel::Warn);
  core::CnnDetectorConfig cfg;
  cfg.train.epochs = 2;
  cfg.augment_factor = 1;
  core::CnnDetector det("cnn", cfg);
  synth::SuiteSpec spec = synth::suite_by_name("B2");
  spec.n_train = 60;
  spec.n_test = 0;
  const auto built = synth::build_suite(spec, {});
  det.train(built.train);
  const auto& ds = sample_clips();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.predict(ds[i++ % ds.size()]));
  }
}
BENCHMARK(BM_InferenceCnn);

// ------------------------------------------------------- full-chip scan --

const core::ChipIndex& sample_chip() {
  static const core::ChipIndex index = [] {
    set_log_level(LogLevel::Warn);
    synth::StyleConfig style = synth::suite_by_name("B2").style;
    style.p_risky_site = 0.25;
    // 4 tile variants arrayed as a 2x2 macro: the dedup benchmark rows need
    // a chip with the cell reuse real layouts have.
    return core::ChipIndex::from_library(
        synth::build_chip(style, 4, 4, 77, /*tile_variants=*/4), "TOP",
        synth::kChipLayer);
  }();
  return index;
}

/// Window extraction cost with a reused per-thread scratch — the fixed
/// overhead every scan pays per window before any classification.
void BM_ChipIndexQuery(benchmark::State& state) {
  const auto& index = sample_chip();
  const geom::Rect extent = index.extent();
  core::ChipIndex::QueryScratch scratch;
  geom::Coord x = extent.xlo, y = extent.ylo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.query(geom::Rect(x, y, x + 1024, y + 1024), scratch));
    x += 512;
    if (x >= extent.xhi) {
      x = extent.xlo;
      y += 512;
      if (y >= extent.yhi) y = extent.ylo;
    }
  }
}
BENCHMARK(BM_ChipIndexQuery);

/// Whole-scan throughput vs ScanConfig::threads (pattern-match detector so
/// the scan scaffolding, not CNN inference, dominates), with and without
/// clip deduplication (args: threads, dedup). Shards run on the
/// process-wide pool; on a single-core host all thread counts coincide.
/// Cache hit/miss totals accumulate into the obs registry and land in the
/// report via capture_registry().
void BM_ScanChipPatternMatch(benchmark::State& state) {
  set_log_level(LogLevel::Warn);
  static const auto det = [] {
    auto d = core::make_detector("pm");
    synth::SuiteSpec spec = synth::suite_by_name("B2");
    spec.n_train = 64;
    spec.n_test = 0;
    d->train(synth::build_suite(spec, {}).train);
    return d;
  }();
  const auto& index = sample_chip();
  core::ScanConfig cfg;
  cfg.window_nm = synth::suite_by_name("B2").style.window_nm;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.dedup = state.range(1) != 0;
  std::size_t classified = 0;
  for (auto _ : state) {
    const auto result = core::scan_chip(index, *det, cfg);
    classified = result.windows_classified;
    benchmark::DoNotOptimize(result);
  }
  state.counters["classified"] =
      benchmark::Counter(static_cast<double>(classified));
}
BENCHMARK(BM_ScanChipPatternMatch)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Cli ignores google-benchmark's --benchmark_* flags and vice versa, so
  // both flag styles coexist on one command line.
  const lhd::Cli cli(argc, argv);
  benchmark::Initialize(&argc, argv);
  lhd::obs::RunReport report("table3_throughput", "B2");
  report.set_config("obs_enabled", lhd::obs::enabled());
  lhd::bench::CaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  lhd::bench::write_report(report, cli, "table3_throughput");
  return 0;
}
