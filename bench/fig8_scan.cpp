// Fig. 8 — full-chip scan runtime scaling: windows visited / classified,
// flagged count and wall time for growing chip areas, comparing the
// CNN-only sliding-window flow against the two-stage flow (pattern-match
// prefilter proposing candidates, CNN refining) the survey highlights.
// Each flow also runs serial vs parallel (ScanConfig::threads) to measure
// the scan's thread scaling; hit lists are bit-identical across counts.
//
// Flags: --suite=B2 --max-tiles=16 --stride=512 --threads=0 (0 = all cores)

#include <thread>

#include "common.hpp"
#include "lhd/core/factory.hpp"
#include "lhd/core/scan.hpp"
#include "lhd/synth/chip_gen.hpp"

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  bench::bench_init(cli);
  const std::string suite_name = cli.get_string("suite", "B2");
  const auto suite = bench::load_suite(suite_name, cli);

  LHD_LOG(Info) << "training detectors for the scan...";
  auto prefilter = core::make_detector("pm");
  prefilter->train(suite.train);
  auto cnn = core::make_detector("cnn");
  cnn->train(suite.train);

  const auto& spec = synth::suite_by_name(suite_name);
  core::ScanConfig scan_cfg;
  scan_cfg.window_nm = spec.style.window_nm;
  scan_cfg.stride_nm = static_cast<geom::Coord>(cli.get_int("stride", 512));

  // Non-positive --threads means "auto": one shard per hardware thread.
  const long long threads_arg = cli.get_int("threads", 0);
  const std::size_t parallel_threads =
      threads_arg > 0 ? static_cast<std::size_t>(threads_arg)
                      : std::max<std::size_t>(
                            1, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts = {1};
  if (parallel_threads > 1) thread_counts.push_back(parallel_threads);

  Table table("Fig. 8 — full-chip scan scaling (window " +
              Table::cell(static_cast<long long>(scan_cfg.window_nm)) +
              " nm, stride " +
              Table::cell(static_cast<long long>(scan_cfg.stride_nm)) +
              " nm)");
  table.set_header({"chip tiles", "area mm^2 (scaled)", "flow", "threads",
                    "windows", "classified", "flagged", "seconds",
                    "us / window"});

  const long long max_tiles = cli.get_int("max-tiles", 16);
  for (int tiles = 4; tiles <= max_tiles; tiles *= 2) {
    synth::StyleConfig chip_style = spec.style;
    chip_style.p_risky_site = 0.25;
    const auto lib = synth::build_chip(chip_style, tiles, tiles,
                                       1000 + static_cast<std::uint64_t>(tiles));
    const auto index =
        core::ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
    const double area_mm2 = static_cast<double>(tiles) * tiles *
                            chip_style.window_nm * chip_style.window_nm /
                            1e12;  // mm^2 of (scaled) layout

    double serial_cnn = 0.0, parallel_cnn = 0.0;
    for (const std::size_t threads : thread_counts) {
      scan_cfg.threads = threads;
      const auto single = core::scan_chip(index, *cnn, scan_cfg);
      const auto two =
          core::scan_chip_two_stage(index, *prefilter, *cnn, scan_cfg);
      if (threads == 1) serial_cnn = single.seconds;
      if (threads == thread_counts.back()) parallel_cnn = single.seconds;
      for (const auto& [flow, r] :
           {std::pair{"cnn-only", &single}, {"pm->cnn two-stage", &two}}) {
        table.add_row(
            {Table::cell(static_cast<long long>(tiles)) + "x" +
                 Table::cell(static_cast<long long>(tiles)),
             Table::cell(area_mm2, 3), flow,
             Table::cell(static_cast<long long>(threads)),
             Table::cell(static_cast<long long>(r->windows_total)),
             Table::cell(static_cast<long long>(r->windows_classified)),
             Table::cell(static_cast<long long>(r->flagged)),
             Table::cell(r->seconds, 2),
             Table::cell(1e6 * r->seconds /
                             static_cast<double>(r->windows_total),
                         1)});
      }
      LHD_LOG(Info) << tiles << "x" << tiles << " @" << threads
                    << " threads: cnn " << single.seconds
                    << "s vs two-stage " << two.seconds << "s";
    }
    if (thread_counts.size() > 1 && parallel_cnn > 0.0) {
      LHD_LOG(Info) << tiles << "x" << tiles << ": cnn-only scan speedup "
                    << serial_cnn / parallel_cnn << "x with "
                    << thread_counts.back() << " threads";
    }
  }
  bench::print_table(table);
  return 0;
}
