// Fig. 8 — full-chip scan runtime scaling: windows visited / classified,
// flagged count and wall time for growing chip areas, comparing the
// CNN-only sliding-window flow against the two-stage flow (pattern-match
// prefilter proposing candidates, CNN refining) the survey highlights.
// Each flow also runs serial vs parallel (ScanConfig::threads) to measure
// the scan's thread scaling; hit lists are bit-identical across counts.
//
// Each flow additionally runs with clip deduplication on and off
// (ScanConfig::dedup): dedup canonicalizes every window, memoizes scores
// in a scan-wide ScoreCache, and batches cache misses through
// Detector::score_batch() — "classified" then counts actual detector
// invocations, and the cache hit/miss/eviction tallies land in the report.
//
// Besides the text table, the run serializes to BENCH_fig8_scan.json via
// obs::RunReport: one phase per (tiles, flow, threads, dedup) cell with
// its window/flag tallies plus per-shard wall times, and the global
// registry totals. Structure and tallies are deterministic; only timing
// (and, under dedup, the schedule-dependent classified count) varies.
//
// The chip arrays --tile-variants distinct generated tiles as a repeating
// macro (cell reuse, the redundancy real layouts have and dedup exploits);
// 0 makes every tile unique, which starves the cache.
//
// A hierarchical cell-aware variant (ScanConfig::hierarchical via
// scan_library) runs beside each flattened cell: it scans the structure
// tree directly, replaying per-instance results instead of re-querying
// flattened geometry. Its instance-reuse stats — instances, distinct
// cells, replay hits, stitch windows — land in the report next to the
// flattened dedup numbers so the detector-invocation reduction is
// directly comparable.
//
// Flags: --suite=B2 --max-tiles=16 --stride=512 --threads=0 (0 = all
// cores) --tile-variants=4 --cache-capacity=65536 --batch=32
// --report=<path> (default BENCH_fig8_scan.json, empty disables)

#include <thread>

#include "common.hpp"
#include "lhd/core/factory.hpp"
#include "lhd/core/scan.hpp"
#include "lhd/synth/chip_gen.hpp"

namespace {

/// One scan cell -> one RunReport phase, shard stats included.
void report_scan(lhd::obs::RunReport& report, const std::string& name,
                 const lhd::core::ScanResult& r, int tiles,
                 std::size_t threads, bool dedup) {
  using lhd::obs::Json;
  Json extra = Json::object();
  extra["tiles"] = tiles;
  extra["threads"] = static_cast<long long>(threads);
  extra["dedup"] = dedup;
  extra["windows_total"] = static_cast<long long>(r.windows_total);
  extra["windows_classified"] = static_cast<long long>(r.windows_classified);
  extra["flagged"] = static_cast<long long>(r.flagged);
  if (dedup) {
    extra["cache_hits"] = static_cast<long long>(r.cache_hits);
    extra["cache_misses"] = static_cast<long long>(r.cache_misses);
    extra["cache_evictions"] = static_cast<long long>(r.cache_evictions);
    const auto probes = r.cache_hits + r.cache_misses;
    if (probes > 0) {
      extra["cache_hit_rate"] =
          static_cast<double>(r.cache_hits) / static_cast<double>(probes);
    }
  }
  if (r.windows_total > 0) {
    extra["us_per_window"] =
        1e6 * r.seconds / static_cast<double>(r.windows_total);
  }
  if (r.instances > 0) {
    extra["instances"] = static_cast<long long>(r.instances);
    extra["distinct_cells"] = static_cast<long long>(r.distinct_cells);
    extra["replay_hits"] = static_cast<long long>(r.replay_hits);
    extra["stitch_windows"] = static_cast<long long>(r.stitch_windows);
  }
  Json shards = Json::array();
  for (const auto& shard : r.shards) {
    Json s = Json::object();
    s["windows"] = static_cast<long long>(shard.windows);
    s["seconds"] = shard.seconds;
    s["query_seconds"] = shard.query_seconds;
    shards.push_back(std::move(s));
  }
  extra["shards"] = std::move(shards);
  report.add_phase(name, r.seconds, std::move(extra));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  bench::bench_init(cli);
  const std::string suite_name = cli.get_string("suite", "B2");
  const auto suite = bench::load_suite(suite_name, cli);

  LHD_LOG(Info) << "training detectors for the scan...";
  auto prefilter = core::make_detector("pm");
  prefilter->train(suite.train);
  auto cnn = core::make_detector("cnn");
  cnn->train(suite.train);

  const auto& spec = synth::suite_by_name(suite_name);
  core::ScanConfig scan_cfg;
  scan_cfg.window_nm = spec.style.window_nm;
  scan_cfg.stride_nm = static_cast<geom::Coord>(cli.get_int("stride", 512));

  // Non-positive --threads means "auto": one shard per hardware thread.
  const long long threads_arg = cli.get_int("threads", 0);
  const std::size_t parallel_threads =
      threads_arg > 0 ? static_cast<std::size_t>(threads_arg)
                      : std::max<std::size_t>(
                            1, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts = {1};
  if (parallel_threads > 1) thread_counts.push_back(parallel_threads);

  scan_cfg.cache_capacity = static_cast<std::size_t>(
      cli.get_int("cache-capacity",
                  static_cast<long long>(scan_cfg.cache_capacity)));
  scan_cfg.batch = static_cast<std::size_t>(
      cli.get_int("batch", static_cast<long long>(scan_cfg.batch)));
  const int tile_variants =
      static_cast<int>(cli.get_int("tile-variants", 4));

  obs::RunReport report("fig8_scan", suite_name);
  report.set_config("window_nm", static_cast<long long>(scan_cfg.window_nm));
  report.set_config("stride_nm", static_cast<long long>(scan_cfg.stride_nm));
  report.set_config("parallel_threads",
                    static_cast<long long>(parallel_threads));
  report.set_config("cache_capacity",
                    static_cast<long long>(scan_cfg.cache_capacity));
  report.set_config("batch", static_cast<long long>(scan_cfg.batch));
  report.set_config("tile_variants", static_cast<long long>(tile_variants));
  report.set_config("obs_enabled", obs::enabled());

  Table table("Fig. 8 — full-chip scan scaling (window " +
              Table::cell(static_cast<long long>(scan_cfg.window_nm)) +
              " nm, stride " +
              Table::cell(static_cast<long long>(scan_cfg.stride_nm)) +
              " nm)");
  table.set_header({"chip tiles", "area mm^2 (scaled)", "flow", "threads",
                    "dedup", "windows", "classified", "flagged", "hit rate",
                    "seconds", "us / window"});

  const long long max_tiles = cli.get_int("max-tiles", 16);
  report.set_config("max_tiles", max_tiles);
  for (int tiles = 4; tiles <= max_tiles; tiles *= 2) {
    synth::StyleConfig chip_style = spec.style;
    chip_style.p_risky_site = 0.25;
    const auto lib = synth::build_chip(chip_style, tiles, tiles,
                                       1000 + static_cast<std::uint64_t>(tiles),
                                       tile_variants);
    const auto index =
        core::ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
    const double area_mm2 = static_cast<double>(tiles) * tiles *
                            chip_style.window_nm * chip_style.window_nm /
                            1e12;  // mm^2 of (scaled) layout

    double serial_cnn = 0.0, parallel_cnn = 0.0;
    for (const std::size_t threads : thread_counts) {
      scan_cfg.threads = threads;
      const std::string cell = Table::cell(static_cast<long long>(tiles)) +
                               "x" +
                               Table::cell(static_cast<long long>(tiles));
      for (const bool dedup : {false, true}) {
        scan_cfg.dedup = dedup;
        const auto single = core::scan_chip(index, *cnn, scan_cfg);
        const auto two =
            core::scan_chip_two_stage(index, *prefilter, *cnn, scan_cfg);
        if (!dedup && threads == 1) serial_cnn = single.seconds;
        if (!dedup && threads == thread_counts.back()) {
          parallel_cnn = single.seconds;
        }
        const std::string suffix = dedup ? " dedup" : "";
        report_scan(report, "cnn-only " + cell + suffix, single, tiles,
                    threads, dedup);
        report_scan(report, "two-stage " + cell + suffix, two, tiles,
                    threads, dedup);
        for (const auto& [flow, r] :
             {std::pair{"cnn-only", &single}, {"pm->cnn two-stage", &two}}) {
          const auto probes = r->cache_hits + r->cache_misses;
          table.add_row(
              {cell, Table::cell(area_mm2, 3), flow,
               Table::cell(static_cast<long long>(threads)),
               dedup ? "on" : "off",
               Table::cell(static_cast<long long>(r->windows_total)),
               Table::cell(static_cast<long long>(r->windows_classified)),
               Table::cell(static_cast<long long>(r->flagged)),
               probes > 0 ? Table::cell(static_cast<double>(r->cache_hits) /
                                            static_cast<double>(probes),
                                        3)
                          : "-",
               Table::cell(r->seconds, 2),
               Table::cell(1e6 * r->seconds /
                               static_cast<double>(r->windows_total),
                           1)});
        }
        LHD_LOG(Info) << tiles << "x" << tiles << " @" << threads
                      << " threads" << (dedup ? " (dedup)" : "") << ": cnn "
                      << single.seconds << "s vs two-stage " << two.seconds
                      << "s"
                      << (dedup ? " — " +
                                      Table::cell(static_cast<long long>(
                                          single.windows_classified)) +
                                      " detector invocations"
                                : "");
      }
      // Hierarchical cell-aware scan: same window grid and hit list as the
      // flattened scans above (asserted by the parity properties), but the
      // detector only runs on fresh geometry — interiors of repeated cell
      // placements replay.
      for (const bool dedup : {false, true}) {
        scan_cfg.dedup = dedup;
        scan_cfg.hierarchical = true;
        const auto hier = core::scan_library(lib, "TOP", synth::kChipLayer,
                                             *cnn, scan_cfg);
        scan_cfg.hierarchical = false;
        const std::string suffix = dedup ? " dedup" : "";
        report_scan(report, "hier " + cell + suffix, hier, tiles, threads,
                    dedup);
        const auto probes = hier.cache_hits + hier.cache_misses;
        table.add_row(
            {cell, Table::cell(area_mm2, 3), "cnn hier",
             Table::cell(static_cast<long long>(threads)),
             dedup ? "on" : "off",
             Table::cell(static_cast<long long>(hier.windows_total)),
             Table::cell(static_cast<long long>(hier.windows_classified)),
             Table::cell(static_cast<long long>(hier.flagged)),
             probes > 0 ? Table::cell(static_cast<double>(hier.cache_hits) /
                                          static_cast<double>(probes),
                                      3)
                        : "-",
             Table::cell(hier.seconds, 2),
             Table::cell(1e6 * hier.seconds /
                             static_cast<double>(hier.windows_total),
                         1)});
        LHD_LOG(Info) << tiles << "x" << tiles << " @" << threads
                      << " threads hier" << (dedup ? " (dedup)" : "") << ": "
                      << hier.instances << " instances of "
                      << hier.distinct_cells << " cells, "
                      << hier.replay_hits << " replay hits, "
                      << hier.stitch_windows << " stitch windows, "
                      << hier.windows_classified << " detector invocations";
      }
    }
    if (thread_counts.size() > 1 && parallel_cnn > 0.0) {
      LHD_LOG(Info) << tiles << "x" << tiles << ": cnn-only scan speedup "
                    << serial_cnn / parallel_cnn << "x with "
                    << thread_counts.back() << " threads";
    }
  }
  bench::print_table(table);
  bench::write_report(report, cli, "fig8_scan");
  return 0;
}
