#pragma once
// Shared plumbing for the benchmark harnesses: suite caching (so the five
// benchmarks are generated and litho-labeled once per machine, not once per
// binary), uniform table printing, and machine-readable run reports
// (BENCH_<tool>.json via lhd::obs::RunReport; --report=<path> overrides,
// --report= disables).

#include <iostream>
#include <string>

#include "lhd/core/pipeline.hpp"
#include "lhd/litho/oracle.hpp"
#include "lhd/obs/obs.hpp"
#include "lhd/synth/builder.hpp"
#include "lhd/util/cli.hpp"
#include "lhd/util/log.hpp"
#include "lhd/util/stopwatch.hpp"
#include "lhd/util/table.hpp"

namespace lhd::bench {

/// Directory the benchmark binaries cache built suites in (relative to the
/// working directory; override with --cache=<dir>, disable with --cache=).
inline std::string cache_dir(const Cli& cli) {
  return cli.get_string("cache", "lhd_bench_cache");
}

inline synth::BuiltSuite load_suite(const std::string& name, const Cli& cli) {
  synth::BuildOptions opts;
  opts.cache_dir = cache_dir(cli);
  return synth::build_suite(synth::suite_by_name(name), opts);
}

/// Lithography verification cost used by the ODST metric, measured once.
inline double sim_seconds_per_clip() {
  return litho::HotspotOracle::seconds_per_clip(litho::OracleConfig{});
}

inline void print_table(const Table& table) {
  std::cout << "\n" << table.to_text() << std::endl;
  std::cout << "[csv]\n" << table.to_csv() << std::endl;
}

/// Standard preamble: quiet logs unless --verbose.
inline void bench_init(const Cli& cli) {
  set_log_level(cli.get_bool("verbose", false) ? LogLevel::Debug
                                               : LogLevel::Info);
}

/// Where a bench's JSON run report goes: BENCH_<tool>.json in the working
/// directory unless --report=<path> overrides (empty disables).
inline std::string report_path(const Cli& cli, const std::string& tool) {
  return cli.get_string("report", "BENCH_" + tool + ".json");
}

/// Snapshot the global registry into `report` and write it to the
/// conventional path (no-op with --report=).
inline void write_report(obs::RunReport& report, const Cli& cli,
                         const std::string& tool) {
  const std::string path = report_path(cli, tool);
  if (path.empty()) return;
  report.capture_registry();
  report.write(path);
}

}  // namespace lhd::bench
