#pragma once
// Shared plumbing for the benchmark harnesses: suite caching (so the five
// benchmarks are generated and litho-labeled once per machine, not once per
// binary) and uniform table printing.

#include <iostream>
#include <string>

#include "lhd/core/pipeline.hpp"
#include "lhd/litho/oracle.hpp"
#include "lhd/synth/builder.hpp"
#include "lhd/util/cli.hpp"
#include "lhd/util/log.hpp"
#include "lhd/util/stopwatch.hpp"
#include "lhd/util/table.hpp"

namespace lhd::bench {

/// Directory the benchmark binaries cache built suites in (relative to the
/// working directory; override with --cache=<dir>, disable with --cache=).
inline std::string cache_dir(const Cli& cli) {
  return cli.get_string("cache", "lhd_bench_cache");
}

inline synth::BuiltSuite load_suite(const std::string& name, const Cli& cli) {
  synth::BuildOptions opts;
  opts.cache_dir = cache_dir(cli);
  return synth::build_suite(synth::suite_by_name(name), opts);
}

/// Lithography verification cost used by the ODST metric, measured once.
inline double sim_seconds_per_clip() {
  return litho::HotspotOracle::seconds_per_clip(litho::OracleConfig{});
}

inline void print_table(const Table& table) {
  std::cout << "\n" << table.to_text() << std::endl;
  std::cout << "[csv]\n" << table.to_csv() << std::endl;
}

/// Standard preamble: quiet logs unless --verbose.
inline void bench_init(const Cli& cli) {
  set_log_level(cli.get_bool("verbose", false) ? LogLevel::Debug
                                               : LogLevel::Info);
}

}  // namespace lhd::bench
