// Table II — the headline comparison across detector generations:
// hotspot detection accuracy, false-alarm count, train/test runtime and
// ODST speedup for every (detector, suite) pair. This is the survey's
// pattern-matching -> shallow ML -> deep learning comparison.
//
// Flags:
//   --detectors=headline|all|<comma list>   (default headline)
//   --suites=B1,B2,...                      (default all five)

#include <sstream>

#include "common.hpp"
#include "lhd/core/factory.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  bench::bench_init(cli);

  std::vector<std::string> kinds;
  const std::string which = cli.get_string("detectors", "headline");
  if (which == "headline") {
    kinds = core::headline_detector_kinds();
  } else if (which == "all") {
    kinds = core::all_detector_kinds();
  } else {
    kinds = split_csv(which);
  }
  std::vector<std::string> suites = split_csv(
      cli.get_string("suites", "B1,B2,B3,B4,B5"));

  const double sim_cost = bench::sim_seconds_per_clip();
  std::cout << "verification cost: " << Table::cell(sim_cost * 1e3, 2)
            << " ms per simulated clip\n";

  Table table("Table II — detection performance across generations");
  table.set_header({"suite", "detector", "accuracy %", "false alarms",
                    "precision", "F1", "train s", "test s", "ODST s",
                    "speedup vs full sim"});
  for (const auto& suite_name : suites) {
    const auto suite = bench::load_suite(suite_name, cli);
    for (const auto& kind : kinds) {
      auto detector = core::make_detector(kind);
      const auto r =
          core::run_experiment(*detector, suite, suite_name, sim_cost);
      table.add_row(
          {suite_name, detector->name(),
           Table::cell(100.0 * r.confusion.accuracy(), 1),
           Table::cell(static_cast<long long>(r.confusion.fp)),
           Table::cell(r.confusion.precision(), 2),
           Table::cell(r.confusion.f1(), 2), Table::cell(r.train_seconds, 1),
           Table::cell(r.test_seconds, 2), Table::cell(r.odst, 2),
           Table::cell(r.speedup, 1)});
      LHD_LOG(Info) << suite_name << "/" << detector->name() << ": acc "
                    << 100.0 * r.confusion.accuracy() << "% fa "
                    << r.confusion.fp;
    }
  }
  bench::print_table(table);
  return 0;
}
