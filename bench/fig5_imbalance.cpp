// Fig. 5 — imbalance-aware training ablation on the heavily imbalanced
// suite B5: train the same CNN with
//   (a) no imbalance handling,
//   (b) minority upsampling (exact replicas),
//   (c) minority upsampling + random mirror flips + shift jitter
// and report accuracy / false alarms. The survey's SPIE'17 thread: without
// (b)/(c) the network collapses towards the majority class.
//
// Flags: --suite=B5 --epochs=15

#include "common.hpp"
#include "lhd/core/cnn_detector.hpp"

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  bench::bench_init(cli);
  const std::string suite_name = cli.get_string("suite", "B5");
  const auto suite = bench::load_suite(suite_name, cli);
  const auto stats = suite.train.stats();
  std::cout << "training imbalance: " << stats.hotspots << "/" << stats.total
            << " hotspots (" << Table::cell(100.0 * stats.hotspot_ratio, 1)
            << "%)\n";

  struct Variant {
    const char* name;
    double upsample;
    bool mirror;
  };
  const Variant variants[] = {
      {"no handling", 0.0, false},
      {"upsample only", 0.4, false},
      {"upsample + mirror/shift", 0.4, true},
  };

  Table table("Fig. 5 — imbalance handling ablation (suite " + suite_name +
              ")");
  table.set_header({"training recipe", "accuracy %", "false alarms",
                    "FA rate %", "F1", "train s"});
  for (const auto& v : variants) {
    core::CnnDetectorConfig cfg;
    cfg.train.epochs = static_cast<int>(cli.get_int("epochs", 15));
    cfg.augment_factor = 1;  // isolate the imbalance knobs
    cfg.upsample_ratio = v.upsample;
    cfg.mirror_augment = v.mirror;
    core::CnnDetector det(v.name, cfg);
    Stopwatch sw;
    det.train(suite.train);
    const double train_s = sw.seconds();
    const auto c = core::evaluate(det.predict_all(suite.test), suite.test);
    table.add_row({v.name, Table::cell(100.0 * c.accuracy(), 1),
                   Table::cell(static_cast<long long>(c.fp)),
                   Table::cell(100.0 * c.false_alarm_rate(), 1),
                   Table::cell(c.f1(), 2), Table::cell(train_s, 1)});
    LHD_LOG(Info) << v.name << ": acc " << 100.0 * c.accuracy() << "% fa "
                  << c.fp;
  }
  bench::print_table(table);
  return 0;
}
