// GDSII tooling demo: generate a chip, write it to a .gds file, read it
// back, and print a per-structure / per-layer inventory — the I/O substrate
// a real benchmark distribution would flow through.
//
// Run:  ./gds_inspect [--file=demo_chip.gds] [--tiles=4]
// With --file pointing at an existing GDSII file, inspects that instead of
// generating one.

#include <filesystem>
#include <iostream>

#include "lhd/gds/reader.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/synth/chip_gen.hpp"
#include "lhd/util/cli.hpp"
#include "lhd/util/log.hpp"

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Info);
  const std::string path = cli.get_string("file", "demo_chip.gds");

  if (!std::filesystem::exists(path)) {
    const int tiles = static_cast<int>(cli.get_int("tiles", 4));
    std::cout << "generating a " << tiles << "x" << tiles
              << " tile chip into " << path << "...\n";
    synth::StyleConfig style;
    const auto lib = synth::build_chip(style, tiles, tiles, 2024);
    gds::write_file(lib, path);
  }

  std::cout << "reading " << path << "...\n";
  const gds::Library lib = gds::read_file(path);
  std::cout << "library \"" << lib.name << "\" (1 dbu = "
            << lib.dbu_in_meters * 1e9 << " nm)\n"
            << "structures: " << lib.structures().size() << "\n";

  std::size_t boundaries = 0, paths = 0, srefs = 0, arefs = 0;
  for (const auto& s : lib.structures()) {
    for (const auto& el : s.elements) {
      if (std::holds_alternative<gds::Boundary>(el)) ++boundaries;
      if (std::holds_alternative<gds::Path>(el)) ++paths;
      if (std::holds_alternative<gds::SRef>(el)) ++srefs;
      if (std::holds_alternative<gds::ARef>(el)) ++arefs;
    }
  }
  std::cout << "elements: " << boundaries << " boundaries, " << paths
            << " paths, " << srefs << " srefs, " << arefs << " arefs\n";

  // Flatten the hierarchy under the first structure that has references
  // (or the first structure at all) and report layer-1 statistics.
  std::string top = lib.structures().front().name;
  for (const auto& s : lib.structures()) {
    for (const auto& el : s.elements) {
      if (std::holds_alternative<gds::SRef>(el) ||
          std::holds_alternative<gds::ARef>(el)) {
        top = s.name;
        break;
      }
    }
  }
  const auto rects = lib.flatten_layer(top, 1);
  const auto bbox = lib.layer_bbox(top, 1);
  std::cout << "flattened \"" << top << "\" layer 1: " << rects.size()
            << " rectangles, bbox " << bbox.width() / 1000.0 << " x "
            << bbox.height() / 1000.0 << " um, pattern area "
            << static_cast<double>(geom::union_area(rects)) / 1e6 << " um^2\n";
  return 0;
}
