// serve_roundtrip: drive the detection daemon in-process, end to end.
//
//   1. Train a cheap detector and register it with a serve::Server.
//   2. Wire a socketpair transport: the server end is attach()ed (served
//      on an internal session thread), the client end stays on main.
//   3. Score the same clip twice (the second answer comes from the
//      process-shared ScoreCache), scan a small region, fetch stats.
//
// Run:  ./serve_roundtrip [--suite=B2] [--train=120] [--detector=nb]

#include <iostream>
#include <variant>

#include "lhd/core/factory.hpp"
#include "lhd/serve/client.hpp"
#include "lhd/serve/server.hpp"
#include "lhd/synth/builder.hpp"
#include "lhd/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);

  synth::SuiteSpec spec = synth::suite_by_name(cli.get_string("suite", "B2"));
  spec.n_train = static_cast<int>(cli.get_int("train", 120));
  spec.n_test = 1;
  std::cout << "building suite " << spec.name << " and training...\n";
  const synth::BuiltSuite suite = synth::build_suite(spec, {});

  std::shared_ptr<core::Detector> detector =
      core::make_detector(cli.get_string("detector", "nb"));
  detector->train(suite.train);

  serve::Server server;
  server.add_model("default", std::move(detector));

  // One connected in-process pipe: server end served on a session worker,
  // client end driven right here on the main thread.
  auto [server_end, client_end] = serve::socketpair_transport();
  server.attach(std::move(server_end));
  serve::Client client(*client_end, /*tenant=*/7);

  const std::vector<geom::Rect> clip_rects = {
      {100, 100, 400, 900}, {500, 100, 800, 900}, {100, 950, 800, 1000}};

  for (int round = 0; round < 2; ++round) {
    const serve::Response resp = client.score_clip("default", 1024, clip_rects);
    const auto& score = std::get<serve::ScoreResult>(resp.body);
    std::cout << "score round " << round << ": " << score.score
              << (round == 1 ? "  (served from cache)" : "") << "\n";
  }

  std::vector<geom::Rect> region;
  for (int i = 0; i < 6; ++i) {
    region.push_back({i * 700, 0, i * 700 + 400, 800});
    region.push_back({i * 700, 900, i * 700 + 400, 2000});
  }
  const serve::Response scan =
      client.scan_region("default", 1024, 512, std::move(region));
  const auto& result = std::get<serve::ScanResultWire>(scan.body);
  std::cout << "scan: " << result.windows_total << " windows, "
            << result.hits.size() << " hotspot hits, cache "
            << result.cache_hits << " hits / " << result.cache_misses
            << " misses\n";

  const serve::Response stats = client.stats();
  std::cout << "stats: " << std::get<serve::StatsResult>(stats.body).json
            << "\n";

  server.stop();
  std::cout << "round trip complete\n";
  return 0;
}
