// Building a custom detector from library pieces: compose your own feature
// extractor with any shallow learner, compare against stock detectors, and
// persist a trained CNN to disk for later reuse.
//
// Run:  ./train_custom_detector [--train=250] [--test=150]

#include <iostream>

#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/factory.hpp"
#include "lhd/core/pipeline.hpp"
#include "lhd/core/shallow_detector.hpp"
#include "lhd/feature/extractor.hpp"
#include "lhd/ml/random_forest.hpp"
#include "lhd/synth/builder.hpp"
#include "lhd/util/cli.hpp"
#include "lhd/util/log.hpp"

namespace {

using namespace lhd;

/// A custom feature: CCAS rings concatenated with the per-clip pattern
/// density summary — five lines of code to define a new representation.
class CcasPlusDensity final : public feature::Extractor {
 public:
  std::string name() const override { return "ccas+density(custom)"; }

  std::vector<float> extract(const data::Clip& clip) const override {
    auto f = feature::ccas_features(clip, ccas_);
    const auto d = feature::density_features(clip, density_);
    f.insert(f.end(), d.begin(), d.end());
    return f;
  }

  std::array<int, 3> shape() const override {
    return {1, 1,
            ccas_.rings * ccas_.sectors + density_.grid * density_.grid};
  }

 private:
  feature::CcasConfig ccas_{8, 12, 8};
  feature::DensityConfig density_{8, 8};
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Info);

  synth::SuiteSpec spec = synth::suite_by_name("B1");
  spec.n_train = static_cast<int>(cli.get_int("train", 250));
  spec.n_test = static_cast<int>(cli.get_int("test", 150));
  const auto suite = synth::build_suite(spec, {});

  // 1. The custom detector: our extractor + a random forest.
  ml::RandomForestConfig forest_cfg;
  forest_cfg.trees = 60;
  core::ShallowDetector custom("custom-forest",
                               std::make_unique<CcasPlusDensity>(),
                               std::make_unique<ml::RandomForest>(forest_cfg),
                               {});

  // 2. A stock detector for comparison.
  auto stock = core::make_detector("adaboost");

  for (core::Detector* det : {static_cast<core::Detector*>(&custom),
                              stock.get()}) {
    const auto r = core::run_experiment(*det, suite, spec.name, 0.007);
    std::cout << det->name() << ": accuracy "
              << 100.0 * r.confusion.accuracy() << "%, " << r.confusion.fp
              << " false alarms, trained in " << r.train_seconds << " s\n";
  }

  // 3. Train a compact CNN and persist the weights.
  core::CnnDetectorConfig cnn_cfg;
  cnn_cfg.train.epochs = 8;
  cnn_cfg.augment_factor = 3;
  core::CnnDetector cnn("cnn", cnn_cfg);
  cnn.train(suite.train);
  const std::string path = cli.get_string("weights", "custom_cnn.weights");
  cnn.save(path);
  std::cout << "CNN weights saved to " << path << "\n";

  // 4. Reload into a fresh detector and verify predictions are identical.
  core::CnnDetector reloaded("cnn-reloaded", cnn_cfg);
  reloaded.load(path);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < suite.test.size(); ++i) {
    agree += cnn.predict(suite.test[i]) == reloaded.predict(suite.test[i]);
  }
  std::cout << "reloaded model agrees on " << agree << "/"
            << suite.test.size() << " test clips\n";
  return 0;
}
