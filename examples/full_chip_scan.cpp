// Full-chip hotspot scanning — the deployment scenario: train once, then
// sweep a trained detector across an entire (synthetic) chip using the
// two-stage flow (cheap pattern-match prefilter, CNN refinement) and
// compare it against the naive CNN-only sliding window, serial and
// parallel (the hit lists are bit-identical across thread counts).
//
// Run:  ./full_chip_scan [--tiles=8] [--variants=4] [--stride=512]
//                        [--train=300]
//                        [--threads=0]   (0 = one shard per hardware thread)
//                        [--report=BENCH_full_chip_scan.json]  (empty = off)
//
// Besides the console narrative, the run serializes its phases (train,
// each scan flow) and the global obs registry totals to a deterministic
// JSON run report — the same schema the bench harnesses emit.

#include <iostream>
#include <thread>

#include "lhd/core/factory.hpp"
#include "lhd/core/scan.hpp"
#include "lhd/obs/obs.hpp"
#include "lhd/synth/builder.hpp"
#include "lhd/synth/chip_gen.hpp"
#include "lhd/util/cli.hpp"
#include "lhd/util/log.hpp"
#include "lhd/util/stopwatch.hpp"

namespace {

/// One scan flow -> one report phase with its deterministic tallies.
void report_scan(lhd::obs::RunReport& report, const std::string& name,
                 const lhd::core::ScanResult& r, std::size_t threads,
                 bool dedup = false) {
  using lhd::obs::Json;
  Json extra = Json::object();
  extra["threads"] = static_cast<long long>(threads);
  extra["dedup"] = dedup;
  extra["windows_total"] = static_cast<long long>(r.windows_total);
  extra["windows_classified"] = static_cast<long long>(r.windows_classified);
  extra["flagged"] = static_cast<long long>(r.flagged);
  extra["shard_count"] = static_cast<long long>(r.shards.size());
  if (dedup) {
    extra["cache_hits"] = static_cast<long long>(r.cache_hits);
    extra["cache_misses"] = static_cast<long long>(r.cache_misses);
    extra["cache_evictions"] = static_cast<long long>(r.cache_evictions);
  }
  report.add_phase(name, r.seconds, std::move(extra));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Info);

  // Train the two stages on the B2 style.
  synth::SuiteSpec spec = synth::suite_by_name("B2");
  spec.n_train = static_cast<int>(cli.get_int("train", 300));
  spec.n_test = 0;
  std::cout << "building training data + training both stages...\n";
  obs::RunReport report("full_chip_scan", "B2");
  Stopwatch train_sw;
  const auto suite = synth::build_suite(spec, {});
  auto prefilter = core::make_detector("pm");
  prefilter->train(suite.train);
  auto refiner = core::make_detector("cnn");
  refiner->train(suite.train);
  report.add_phase("build+train", train_sw.seconds());

  // Build a chip and index it for window queries.
  const int tiles = static_cast<int>(cli.get_int("tiles", 8));
  // --variants distinct tiles arrayed as a repeating macro (cell reuse) —
  // the pattern redundancy the dedup scan below feeds on; 0 = all unique.
  const int variants = static_cast<int>(cli.get_int("variants", 4));
  synth::StyleConfig chip_style = spec.style;
  chip_style.p_risky_site = 0.2;
  std::cout << "generating a " << tiles << "x" << tiles << " tile chip...\n";
  const gds::Library chip =
      synth::build_chip(chip_style, tiles, tiles, 77, variants);
  const auto index =
      core::ChipIndex::from_library(chip, "TOP", synth::kChipLayer);
  std::cout << "  " << index.rect_count() << " rectangles, extent "
            << index.extent().width() / 1000.0 << " x "
            << index.extent().height() / 1000.0 << " um\n";

  core::ScanConfig scan_cfg;
  scan_cfg.window_nm = chip_style.window_nm;
  scan_cfg.stride_nm = static_cast<geom::Coord>(cli.get_int("stride", 512));
  // Non-positive --threads means "auto": one shard per hardware thread.
  const long long threads_arg = cli.get_int("threads", 0);
  std::size_t threads = threads_arg > 0
                            ? static_cast<std::size_t>(threads_arg)
                            : std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency());

  report.set_config("tiles", static_cast<long long>(tiles));
  report.set_config("tile_variants", static_cast<long long>(variants));
  report.set_config("stride_nm",
                    static_cast<long long>(scan_cfg.stride_nm));
  report.set_config("window_nm",
                    static_cast<long long>(scan_cfg.window_nm));
  report.set_config("threads", static_cast<long long>(threads));
  report.set_config("obs_enabled", obs::enabled());

  std::cout << "\nscanning (CNN only, serial)...\n";
  scan_cfg.threads = 1;
  const auto single = core::scan_chip(index, *refiner, scan_cfg);
  std::cout << "  " << single.windows_total << " windows, "
            << single.windows_classified << " classified, " << single.flagged
            << " flagged, " << single.seconds << " s\n";
  report_scan(report, "cnn-only serial", single, 1);

  scan_cfg.threads = threads;
  if (threads > 1) {
    std::cout << "scanning (CNN only, " << threads << " threads)...\n";
    const auto par = core::scan_chip(index, *refiner, scan_cfg);
    std::cout << "  " << par.windows_total << " windows, "
              << par.windows_classified << " classified, " << par.flagged
              << " flagged, " << par.seconds << " s ("
              << single.seconds / par.seconds << "x speedup, hits "
              << (par.hits == single.hits ? "identical" : "DIFFER!") << ")\n";
    report_scan(report, "cnn-only parallel", par, threads);
  }

  // Dedup scores each distinct pattern once, on its translation-normalized
  // form — for the CNN (whose features shift with the pattern) that is a
  // deliberate semantic change, so compare coverage and flag counts rather
  // than expecting bit-identical hits (that guarantee holds for
  // canonicalization-invariant detectors; see the dedup parity property
  // test).
  std::cout << "scanning (CNN only, dedup cache, " << threads
            << (threads == 1 ? " thread" : " threads") << ")...\n";
  scan_cfg.dedup = true;
  const auto dedup = core::scan_chip(index, *refiner, scan_cfg);
  const auto probes = dedup.cache_hits + dedup.cache_misses;
  std::cout << "  " << dedup.windows_total << " windows, "
            << dedup.windows_classified << " detector invocations (vs "
            << single.windows_classified << " naive), " << dedup.flagged
            << " flagged (vs " << single.flagged << "), " << dedup.seconds
            << " s, " << dedup.cache_hits << "/" << probes
            << " cache hits\n";
  report_scan(report, "cnn-only dedup", dedup, threads, true);
  scan_cfg.dedup = false;

  std::cout << "scanning (pattern-match prefilter -> CNN, " << threads
            << (threads == 1 ? " thread" : " threads") << ")...\n";
  const auto two =
      core::scan_chip_two_stage(index, *prefilter, *refiner, scan_cfg);
  std::cout << "  " << two.windows_total << " windows, "
            << two.windows_classified << " refined, " << two.flagged
            << " flagged, " << two.seconds << " s\n";
  report_scan(report, "pm->cnn two-stage", two, threads);

  std::cout << "\ntop flagged windows (score-sorted):\n";
  auto hits = two.hits;
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  for (std::size_t i = 0; i < hits.size() && i < 10; ++i) {
    std::cout << "  (" << hits[i].window.xlo << ", " << hits[i].window.ylo
              << ") score " << hits[i].score << "\n";
  }

  const std::string report_path =
      cli.get_string("report", "BENCH_full_chip_scan.json");
  if (!report_path.empty()) {
    report.capture_registry();
    report.write(report_path);
  }
  return 0;
}
