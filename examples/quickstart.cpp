// Quickstart: the shortest path through the library.
//
//   1. Build a labeled benchmark suite (synthetic layout -> GDSII
//      round-trip -> lithography-oracle labels).
//   2. Train the deep-learning detector (DCT feature tensor + CNN).
//   3. Evaluate with the contest metrics.
//
// Run:  ./quickstart [--suite=B2] [--train=200] [--test=150] [--epochs=10]

#include <iostream>

#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/pipeline.hpp"
#include "lhd/litho/oracle.hpp"
#include "lhd/synth/builder.hpp"
#include "lhd/util/cli.hpp"
#include "lhd/util/log.hpp"

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Info);

  // 1. Build (or shrink) a benchmark suite. Everything is deterministic in
  //    the suite seed, so results reproduce run to run.
  synth::SuiteSpec spec = synth::suite_by_name(cli.get_string("suite", "B2"));
  spec.n_train = static_cast<int>(cli.get_int("train", 200));
  spec.n_test = static_cast<int>(cli.get_int("test", 150));
  std::cout << "building suite " << spec.name << " (" << spec.description
            << ")...\n";
  const synth::BuiltSuite suite = synth::build_suite(spec, {});
  const auto stats = suite.train.stats();
  std::cout << "  train: " << stats.total << " clips, " << stats.hotspots
            << " hotspots\n";

  // 2. Train the CNN detector.
  core::CnnDetectorConfig cfg;
  cfg.train.epochs = static_cast<int>(cli.get_int("epochs", 10));
  cfg.augment_factor = 4;
  core::CnnDetector detector("cnn", cfg);
  std::cout << "training " << detector.name() << " for "
            << cfg.train.epochs << " epochs...\n";

  // 3. Evaluate with contest metrics; ODST prices every alarm with one
  //    lithography-simulation run.
  const double sim_cost =
      litho::HotspotOracle::seconds_per_clip(litho::OracleConfig{});
  const core::EvalResult r =
      core::run_experiment(detector, suite, spec.name, sim_cost);

  std::cout << "\nresults on " << spec.name << " (" << suite.test.size()
            << " held-out clips):\n"
            << "  hotspot detection accuracy : "
            << 100.0 * r.confusion.accuracy() << " %\n"
            << "  false alarms               : " << r.confusion.fp << "\n"
            << "  precision                  : " << r.confusion.precision()
            << "\n"
            << "  train / test time          : " << r.train_seconds << " s / "
            << r.test_seconds << " s\n"
            << "  ODST                       : " << r.odst << " s (vs "
            << r.full_sim << " s full simulation, " << r.speedup
            << "x speedup)\n";
  return 0;
}
