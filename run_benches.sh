#!/bin/bash
# Runs every benchmark binary in a sensible order (table1 populates the
# shared suite cache) and tees combined output to bench_output.txt.
cd /root/repo
{
  for b in table1_benchmarks table2_detectors fig4_tradeoff fig5_imbalance \
           fig6_features fig7_training fig8_scan table3_throughput \
           micro_kernels; do
    echo "===== bench/$b ====="
    ./build/bench/$b 2>&1
    echo
  done
} | tee /root/repo/bench_output.txt
