#include "lhd/synth/clip_gen.hpp"

#include <algorithm>

#include "lhd/geom/polygon.hpp"
#include "lhd/synth/motifs.hpp"
#include "lhd/util/check.hpp"

namespace lhd::synth {

using geom::Coord;
using geom::Rect;

namespace {

constexpr Coord kGuard = 128;  ///< oversize margin around the clip window

Coord snap(Coord v, Coord grid) { return v - (v % grid); }

Coord pick(Rng& rng, Coord lo, Coord hi, Coord grid) {
  return snap(static_cast<Coord>(rng.next_int(lo, hi)), grid);
}

/// Safe background dimensions only — all risk is concentrated in the
/// centre site (the contest convention: the candidate defect is centred).
struct Dims {
  const StyleConfig& cfg;
  Rng& rng;

  Coord width() const {
    return pick(rng, cfg.width_min, cfg.width_max, cfg.grid_nm);
  }
  Coord space() const {
    return pick(rng, cfg.space_min, cfg.space_max, cfg.grid_nm);
  }
  Coord gap() const { return pick(rng, cfg.gap_min, cfg.gap_max, cfg.grid_nm); }
  Coord via() const {
    return pick(rng, cfg.via_size_min, cfg.via_size_max, cfg.grid_nm);
  }
};

/// r minus box, emitted as up to 4 rects.
void subtract_box(const Rect& r, const Rect& box, std::vector<Rect>& out) {
  const Rect overlap = r.intersect(box);
  if (overlap.empty()) {
    out.push_back(r);
    return;
  }
  if (r.ylo < overlap.ylo) out.emplace_back(r.xlo, r.ylo, r.xhi, overlap.ylo);
  if (overlap.yhi < r.yhi) out.emplace_back(r.xlo, overlap.yhi, r.xhi, r.yhi);
  if (r.xlo < overlap.xlo) {
    out.emplace_back(r.xlo, overlap.ylo, overlap.xlo, overlap.yhi);
  }
  if (overlap.xhi < r.xhi) {
    out.emplace_back(overlap.xhi, overlap.ylo, r.xhi, overlap.yhi);
  }
}

void gen_tracks(const StyleConfig& cfg, Rng& rng, std::vector<Rect>& out) {
  const Dims dims{cfg, rng};
  const Coord lo = -kGuard;
  const Coord hi = cfg.window_nm + kGuard;
  Coord y = lo + static_cast<Coord>(rng.next_int(0, cfg.space_max));
  Coord prev_y_bot = lo;
  std::vector<std::pair<Coord, Coord>> prev_spans;

  while (y < hi) {
    const Coord w = dims.width();
    Coord x = lo;
    std::vector<std::pair<Coord, Coord>> spans;
    if (rng.next_bool(cfg.p_break)) {
      const int breaks = static_cast<int>(rng.next_int(1, 2));
      for (int b = 0; b < breaks && x < hi; ++b) {
        const Coord seg =
            pick(rng, cfg.window_nm / 4, cfg.window_nm, cfg.grid_nm);
        const Coord x1 = std::min(hi, x + seg);
        if (x1 > x) spans.emplace_back(x, x1);
        x = x1 + dims.gap();
      }
      if (x < hi) spans.emplace_back(x, hi);
    } else {
      spans.emplace_back(lo, hi);
    }
    for (const auto& [x0, x1] : spans) out.emplace_back(x0, y, x1, y + w);

    // Jog: vertical connector to the previous track. The jog's x extent
    // must land well inside a span of BOTH tracks, otherwise its free end
    // would sit at an uncontrolled distance from a segment tip.
    if (!prev_spans.empty() && rng.next_bool(cfg.p_jog) && !spans.empty()) {
      const auto& [sx0, sx1] = spans[rng.next_below(spans.size())];
      if (sx1 - sx0 > 4 * cfg.width_max) {
        const Coord jw = dims.width();
        const Coord jx = pick(rng, sx0 + cfg.width_max,
                              sx1 - cfg.width_max - jw, cfg.grid_nm);
        const bool inside_prev = std::any_of(
            prev_spans.begin(), prev_spans.end(), [&](const auto& span) {
              return jx - cfg.space_min >= span.first &&
                     jx + jw + cfg.space_min <= span.second;
            });
        if (inside_prev) {
          out.emplace_back(jx, prev_y_bot, jx + jw, y + w);
        }
      }
    }

    prev_y_bot = y;
    prev_spans = std::move(spans);
    y = y + w + dims.space();
  }
}

void gen_serpentine(const StyleConfig& cfg, Rng& rng, std::vector<Rect>& out) {
  const Dims dims{cfg, rng};
  const int arms = static_cast<int>(
      rng.next_int(cfg.serp_arms_min, cfg.serp_arms_max));
  const Coord w = dims.width();
  const Coord margin = static_cast<Coord>(rng.next_int(16, 96));
  const Coord xl = margin;
  const Coord xr = cfg.window_nm - margin;
  Coord y = -kGuard + static_cast<Coord>(rng.next_int(0, cfg.space_max));
  bool left_turn = rng.next_bool();

  for (int a = 0; a < arms && y < cfg.window_nm + kGuard; ++a) {
    out.emplace_back(xl - w, y, xr + w, y + w);
    const Coord s = dims.space();
    const Coord y_next = y + w + s;
    if (a + 1 < arms) {
      const Coord cx = left_turn ? xl - w : xr;
      out.emplace_back(cx, y, cx + w, y_next + w);
      left_turn = !left_turn;
    }
    y = y_next;
  }
}

void gen_vias(const StyleConfig& cfg, Rng& rng, std::vector<Rect>& out) {
  const Dims dims{cfg, rng};
  const Coord pitch = cfg.via_size_max +
                      pick(rng, cfg.space_min, cfg.space_max, cfg.grid_nm);
  for (Coord gy = -kGuard; gy < cfg.window_nm + kGuard; gy += pitch) {
    for (Coord gx = -kGuard; gx < cfg.window_nm + kGuard; gx += pitch) {
      if (!rng.next_bool(cfg.via_fill)) continue;
      const Coord v = dims.via();
      // Jitter inside the cell, keeping >= space_min/2 clearance to the
      // cell boundary so neighbouring vias never come closer than
      // space_min regardless of their own jitter.
      const Coord hi_j = pitch - v - cfg.space_min / 2;
      const Coord lo_j = cfg.space_min / 2;
      const Coord jx = lo_j >= hi_j
                           ? lo_j
                           : static_cast<Coord>(rng.next_int(lo_j, hi_j));
      const Coord jy = lo_j >= hi_j
                           ? lo_j
                           : static_cast<Coord>(rng.next_int(lo_j, hi_j));
      out.emplace_back(gx + jx, gy + jy, gx + jx + v, gy + jy + v);
    }
  }
}

}  // namespace

std::vector<Rect> generate_clip(const StyleConfig& cfg, Rng& rng) {
  LHD_CHECK(cfg.window_nm > 0 && cfg.grid_nm > 0, "bad style dims");
  LHD_CHECK(cfg.window_nm % cfg.grid_nm == 0, "grid must divide window");
  LHD_CHECK(cfg.site_frame_nm > 0 &&
                cfg.site_frame_nm + 2 * cfg.site_jitter_nm < cfg.window_nm,
            "site frame too large for window");

  // 1. Safe background.
  std::vector<Rect> background;
  switch (cfg.family) {
    case PatternFamily::Tracks: gen_tracks(cfg, rng, background); break;
    case PatternFamily::Serpentine: gen_serpentine(cfg, rng, background); break;
    case PatternFamily::Vias: gen_vias(cfg, rng, background); break;
  }

  std::vector<Rect> shapes;
  if (rng.next_bool(cfg.p_center_site)) {
    // 2. Centre site: a motif instance, risky or near-critical-safe.
    const auto& motifs = motifs_for(cfg.family);
    const MotifKind kind = motifs[rng.next_below(motifs.size())];
    const bool risky = rng.next_bool(cfg.p_risky_site);
    const auto site = render_motif(kind, cfg, risky, cfg.site_frame_nm, rng);

    const Coord jitter_x = static_cast<Coord>(
        rng.next_int(-cfg.site_jitter_nm, cfg.site_jitter_nm));
    const Coord jitter_y = static_cast<Coord>(
        rng.next_int(-cfg.site_jitter_nm, cfg.site_jitter_nm));
    const Coord origin_x = (cfg.window_nm - cfg.site_frame_nm) / 2 + jitter_x;
    const Coord origin_y = (cfg.window_nm - cfg.site_frame_nm) / 2 + jitter_y;

    // Carve the site box (plus moat) out of the background so background
    // shapes never interact with the motif dimensions.
    const Rect moat(origin_x - cfg.site_moat_nm, origin_y - cfg.site_moat_nm,
                    origin_x + cfg.site_frame_nm + cfg.site_moat_nm,
                    origin_y + cfg.site_frame_nm + cfg.site_moat_nm);
    std::vector<Rect> carved;
    for (const auto& r : background) subtract_box(r, moat, carved);
    // Drop fragments that became so small they would not print reliably
    // (e.g. a via half-cut by the moat) — they would inject label noise.
    for (const auto& r : carved) {
      const Coord short_side = std::min(r.width(), r.height());
      const Coord long_side = std::max(r.width(), r.height());
      // Keep only fragments that still print robustly on their own: at
      // least a safe wire width across and several widths long (a compact
      // near-square remnant behaves like an undersized via and would
      // vanish at the defocus corner, injecting label noise).
      if (short_side >= cfg.width_min && long_side >= 3 * cfg.width_min) {
        shapes.push_back(r);
      }
    }
    for (const auto& r : site) {
      shapes.push_back(r.shifted(origin_x, origin_y));
    }
  } else {
    shapes = std::move(background);
  }

  // Random whole-clip diagonal reflection so both orientations appear.
  if (rng.next_bool(cfg.p_vertical)) {
    for (auto& r : shapes) r = Rect(r.ylo, r.xlo, r.yhi, r.xhi);
  }
  return geom::clip_rects(shapes, Rect(0, 0, cfg.window_nm, cfg.window_nm));
}

}  // namespace lhd::synth
