#pragma once
// The five benchmark suites B1–B5, mirroring the structure of the ICCAD
// 2012 contest set: different pattern families, densities, and imbalance
// levels, each with fixed train/test sizes and a fixed seed.

#include <string>
#include <vector>

#include "lhd/synth/style.hpp"

namespace lhd::synth {

struct SuiteSpec {
  std::string name;
  std::string description;
  StyleConfig style;
  int n_train = 0;
  int n_test = 0;
  std::uint64_t seed = 0;
};

/// All five suites in order (B1..B5).
const std::vector<SuiteSpec>& benchmark_suites();

/// Look up a suite by name ("B1".."B5"); throws lhd::Error if unknown.
const SuiteSpec& suite_by_name(const std::string& name);

}  // namespace lhd::synth
