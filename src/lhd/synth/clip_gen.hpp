#pragma once
// Random Manhattan layout generation for a single clip window.

#include <vector>

#include "lhd/geom/rect.hpp"
#include "lhd/synth/style.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::synth {

/// Generate one clip's geometry. Shapes are drawn over an oversized frame
/// (guard band on every side) and then clipped to [0, window_nm)^2, so the
/// clip boundary cuts through shapes the way a real layout window does.
/// The result is deterministic in (config, rng state).
std::vector<geom::Rect> generate_clip(const StyleConfig& config, Rng& rng);

}  // namespace lhd::synth
