#include "lhd/synth/builder.hpp"

#include <filesystem>

#include "lhd/data/io.hpp"
#include "lhd/gds/reader.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/synth/clip_gen.hpp"
#include "lhd/util/log.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::synth {

namespace {

constexpr std::int16_t kLayer = 1;

std::string clip_name(int i) { return "CLIP_" + std::to_string(i); }

/// Push every clip through GDSII stream bytes and back — the same I/O path
/// a real benchmark distribution would take — and return the re-parsed
/// geometry.
std::vector<std::vector<geom::Rect>> gds_roundtrip(
    const std::vector<std::vector<geom::Rect>>& all, geom::Coord window_nm) {
  gds::Library lib;
  lib.name = "LHD_BENCH";
  for (std::size_t i = 0; i < all.size(); ++i) {
    gds::Structure& s = lib.add_structure(clip_name(static_cast<int>(i)));
    for (const auto& r : all[i]) {
      gds::Boundary b;
      b.layer = kLayer;
      b.polygon = geom::Polygon::from_rect(r);
      s.add(std::move(b));
    }
  }
  (void)window_nm;
  const auto bytes = gds::write_bytes(lib);
  const gds::Library parsed = gds::read_bytes(bytes);
  std::vector<std::vector<geom::Rect>> out(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    out[i] = parsed.flatten_layer(clip_name(static_cast<int>(i)), kLayer);
  }
  return out;
}

}  // namespace

data::Dataset build_clips(const StyleConfig& style, int count,
                          std::uint64_t seed, const std::string& name,
                          const BuildOptions& options) {
  LHD_CHECK(count >= 0, "negative clip count");
  Rng master(seed);
  std::vector<Rng> clip_rngs;
  clip_rngs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) clip_rngs.push_back(master.fork());

  // 1. Generate geometry (deterministic per clip).
  std::vector<std::vector<geom::Rect>> geometry(
      static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    geometry[static_cast<std::size_t>(i)] =
        generate_clip(style, clip_rngs[static_cast<std::size_t>(i)]);
  }

  // 2. GDSII round-trip.
  if (options.gds_roundtrip) {
    geometry = gds_roundtrip(geometry, style.window_nm);
  }

  // 3. Label with the lithography oracle (parallel over clips).
  const litho::HotspotOracle oracle(options.oracle);
  const auto pixel_nm = static_cast<geom::Coord>(options.oracle.optics.pixel_nm);
  std::vector<data::Label> labels(static_cast<std::size_t>(count),
                                  data::Label::NonHotspot);
  ThreadPool::global().parallel_for(0, static_cast<std::size_t>(count),
                                    [&](std::size_t i) {
    const auto mask =
        geom::rasterize(geometry[i], style.window_nm, pixel_nm);
    if (oracle.evaluate(mask).hotspot) labels[i] = data::Label::Hotspot;
  });

  // 4. Assemble.
  data::Dataset ds(name);
  ds.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    data::Clip c;
    c.rects = std::move(geometry[static_cast<std::size_t>(i)]);
    c.window_nm = style.window_nm;
    c.label = labels[static_cast<std::size_t>(i)];
    ds.add(std::move(c));
  }
  return ds;
}

BuiltSuite build_suite(const SuiteSpec& spec, const BuildOptions& options) {
  namespace fs = std::filesystem;
  std::string train_path, test_path;
  if (!options.cache_dir.empty()) {
    fs::create_directories(options.cache_dir);
    train_path = options.cache_dir + "/" + spec.name + "_train.lhdd";
    test_path = options.cache_dir + "/" + spec.name + "_test.lhdd";
    if (fs::exists(train_path) && fs::exists(test_path)) {
      // A cache written by an older serialization format (or truncated by a
      // killed run) must not take the whole harness down — rebuild instead
      // and overwrite the bad files below.
      try {
        BuiltSuite cached{data::load_dataset_file(train_path),
                          data::load_dataset_file(test_path)};
        LHD_LOG(Debug) << "suite " << spec.name << " loaded from cache";
        return cached;
      } catch (const std::exception& e) {
        LHD_LOG(Warn) << "suite cache for " << spec.name
                      << " is unreadable (" << e.what() << "); rebuilding";
      }
    }
  }

  BuiltSuite built;
  built.train = build_clips(spec.style, spec.n_train, spec.seed * 2 + 1,
                            spec.name + "_train", options);
  built.test = build_clips(spec.style, spec.n_test, spec.seed * 2 + 2,
                           spec.name + "_test", options);
  const auto ts = built.train.stats();
  const auto vs = built.test.stats();
  LHD_LOG(Info) << "built suite " << spec.name << ": train " << ts.total
                << " clips (" << ts.hotspots << " hs), test " << vs.total
                << " clips (" << vs.hotspots << " hs)";
  if (!train_path.empty()) {
    data::save_dataset_file(built.train, train_path);
    data::save_dataset_file(built.test, test_path);
  }
  return built;
}

}  // namespace lhd::synth
