#include "lhd/synth/suites.hpp"

#include "lhd/util/check.hpp"

namespace lhd::synth {

namespace {

std::vector<SuiteSpec> make_suites() {
  std::vector<SuiteSpec> suites;

  {
    SuiteSpec s;
    s.name = "B1";
    s.description = "dense parallel metal tracks, moderate risk";
    s.style.family = PatternFamily::Tracks;
    s.style.p_risky_site = 0.20;
    s.style.p_break = 0.30;
    s.style.p_jog = 0.20;
    s.n_train = 500;
    s.n_test = 500;
    s.seed = 0xB1;
    suites.push_back(s);
  }
  {
    SuiteSpec s;
    s.name = "B2";
    s.description = "jogged mixed-orientation routing, high risk";
    s.style.family = PatternFamily::Tracks;
    s.style.p_risky_site = 0.32;
    s.style.p_break = 0.5;
    s.style.p_jog = 0.4;
    s.style.space_min = 48;
    s.style.space_max = 76;
    s.n_train = 500;
    s.n_test = 500;
    s.seed = 0xB2;
    suites.push_back(s);
  }
  {
    SuiteSpec s;
    s.name = "B3";
    s.description = "serpentine / comb test structures";
    s.style.family = PatternFamily::Serpentine;
    s.style.p_risky_site = 0.28;
    s.n_train = 400;
    s.n_test = 400;
    s.seed = 0xB3;
    suites.push_back(s);
  }
  {
    SuiteSpec s;
    s.name = "B4";
    s.description = "via arrays with landing stubs";
    s.style.family = PatternFamily::Vias;
    s.style.p_risky_site = 0.30;
    s.n_train = 500;
    s.n_test = 500;
    s.seed = 0xB4;
    suites.push_back(s);
  }
  {
    SuiteSpec s;
    s.name = "B5";
    s.description = "conservative tracks, rare hotspots (heavy imbalance)";
    s.style.family = PatternFamily::Tracks;
    s.style.p_risky_site = 0.03;
    s.style.p_break = 0.35;
    s.style.p_jog = 0.25;
    s.n_train = 600;
    s.n_test = 1000;
    s.seed = 0xB5;
    suites.push_back(s);
  }
  return suites;
}

}  // namespace

const std::vector<SuiteSpec>& benchmark_suites() {
  static const std::vector<SuiteSpec> suites = make_suites();
  return suites;
}

const SuiteSpec& suite_by_name(const std::string& name) {
  for (const auto& s : benchmark_suites()) {
    if (s.name == name) return s;
  }
  throw Error("unknown benchmark suite: " + name);
}

}  // namespace lhd::synth
