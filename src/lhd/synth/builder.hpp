#pragma once
// Benchmark construction: generate clips, round-trip them through real
// GDSII bytes, label them with the lithography oracle, and assemble
// train/test datasets. Optionally caches built suites on disk.

#include <string>

#include "lhd/data/dataset.hpp"
#include "lhd/litho/oracle.hpp"
#include "lhd/synth/suites.hpp"

namespace lhd::synth {

struct BuildOptions {
  litho::OracleConfig oracle;     ///< labeling model
  bool gds_roundtrip = true;      ///< serialize+parse clips through GDSII
  std::string cache_dir;          ///< if non-empty, cache datasets here
};

struct BuiltSuite {
  data::Dataset train;
  data::Dataset test;
};

/// Generate and label `count` clips with the given style. Deterministic in
/// (style, seed, options.oracle).
data::Dataset build_clips(const StyleConfig& style, int count,
                          std::uint64_t seed, const std::string& name,
                          const BuildOptions& options = {});

/// Build a full suite (train + test). With cache_dir set, loads/saves
/// "<cache_dir>/<suite>_{train,test}.lhdd".
BuiltSuite build_suite(const SuiteSpec& spec, const BuildOptions& options = {});

}  // namespace lhd::synth
