#include "lhd/synth/motifs.hpp"

#include <algorithm>

#include "lhd/util/check.hpp"

namespace lhd::synth {

using geom::Coord;
using geom::Rect;

namespace {

Coord snap(Coord v, Coord grid) { return v - (v % grid); }

Coord pick(Rng& rng, Coord lo, Coord hi, Coord grid) {
  return snap(static_cast<Coord>(rng.next_int(lo, hi)), grid);
}

/// Dimension pickers. "Safe" variants use the tight end of the safe range
/// so safe sites still *look* similar to risky ones — the classifier has to
/// resolve the actual dimensions, not just detect that a motif is present.
struct MotifDims {
  const StyleConfig& s;
  Rng& rng;

  Coord width() const { return pick(rng, s.width_min, s.width_min + 20, s.grid_nm); }
  Coord space(bool risky) const {
    return risky ? pick(rng, s.risky_space_min, s.risky_space_max, s.grid_nm)
                 : pick(rng, s.space_min, s.space_min + 24, s.grid_nm);
  }
  Coord neck(bool risky) const {
    return risky ? pick(rng, s.risky_width_min, s.risky_width_max, s.grid_nm)
                 : pick(rng, s.width_min, s.width_min + 16, s.grid_nm);
  }
  Coord via(bool risky) const {
    return risky ? pick(rng, s.risky_via_min, s.risky_via_max, s.grid_nm)
                 : pick(rng, s.via_size_min, s.via_size_min + 20, s.grid_nm);
  }
};

void parallel_run(const StyleConfig& s, bool risky, Coord f, Rng& rng,
                  std::vector<Rect>& out) {
  const MotifDims d{s, rng};
  const Coord w1 = d.width();
  const Coord w2 = d.width();
  const Coord sp = d.space(risky);
  const Coord len = pick(rng, 3 * f / 4, f, s.grid_nm);
  const Coord x0 = (f - len) / 2;
  const Coord cy = f / 2;
  out.emplace_back(x0, cy - sp / 2 - w1, x0 + len, cy - sp / 2);
  out.emplace_back(x0, cy + sp - sp / 2, x0 + len, cy + sp - sp / 2 + w2);
}

void tip_to_tip(const StyleConfig& s, bool risky, Coord f, Rng& rng,
                std::vector<Rect>& out) {
  const MotifDims d{s, rng};
  const Coord w = d.width();
  // Tip-to-tip needs a much tighter gap than parallel-run to actually
  // bridge (only two short edges face each other). The risky range is
  // calibrated against the default optics: gaps <= ~18 nm bridge at the
  // dose+ corner, >= ~28 nm never do.
  const Coord g = risky ? pick(rng, 12, 18, s.grid_nm)
                        : pick(rng, s.space_min, s.space_min + 24, s.grid_nm);
  const Coord cy = f / 2;
  out.emplace_back(0, cy - w / 2, f / 2 - g / 2, cy + w - w / 2);
  out.emplace_back(f / 2 + g - g / 2, cy - w / 2, f, cy + w - w / 2);
}

void tip_to_line(const StyleConfig& s, bool risky, Coord f, Rng& rng,
                 std::vector<Rect>& out) {
  const MotifDims d{s, rng};
  const Coord w = d.width();
  const Coord wv = d.width();
  // Line-end to line-side bridges up to wider gaps than tip-to-tip (the
  // facing line contributes a full edge): <= ~26 nm fails reliably.
  const Coord g = risky ? pick(rng, 18, 26, s.grid_nm) : d.space(false);
  const Coord cy = f / 2;
  // Horizontal bar ends at the gap; vertical line crosses the full frame.
  out.emplace_back(0, cy - w / 2, f / 2 - g / 2, cy + w - w / 2);
  const Coord vx = f / 2 - g / 2 + g;
  out.emplace_back(vx, 0, vx + wv, f);
}

void narrow_neck(const StyleConfig& s, bool risky, Coord f, Rng& rng,
                 std::vector<Rect>& out) {
  const MotifDims d{s, rng};
  const Coord w = pick(rng, s.width_min + 8, s.width_max, s.grid_nm);
  const Coord wn = d.neck(risky);
  const Coord neck_len = pick(rng, 120, 220, s.grid_nm);
  const Coord cy = f / 2;
  const Coord nx0 = (f - neck_len) / 2;
  // Wide-neck-wide wire across the frame, all sharing a centreline.
  out.emplace_back(0, cy - w / 2, nx0, cy + w - w / 2);
  out.emplace_back(nx0, cy - wn / 2, nx0 + neck_len, cy + wn - wn / 2);
  out.emplace_back(nx0 + neck_len, cy - w / 2, f, cy + w - w / 2);
}

void corner_pair(const StyleConfig& s, bool risky, Coord f, Rng& rng,
                 std::vector<Rect>& out) {
  // Corner-to-corner spacing alone never bridges under the default optics
  // (convex corners pull back); the realistic corner hotspot is a *pinch*
  // of narrow L-legs, so the risky variant narrows the legs instead.
  const MotifDims d{s, rng};
  // Narrow L-legs pinch reliably below ~32 nm (the corner junction adds
  // intensity, so the plain neck range is not narrow enough).
  const Coord w = risky ? pick(rng, 24, 32, s.grid_nm) : d.width();
  const Coord sp = d.space(false);
  const Coord c = f / 2;
  // L from the lower-left, its inner corner at (c - sp/2, c - sp/2).
  const Coord ax = c - sp / 2;
  const Coord ay = c - sp / 2;
  out.emplace_back(0, ay - w, ax, ay);             // horizontal leg
  out.emplace_back(ax - w, 0, ax, ay);             // vertical leg
  // Mirrored L from the upper-right, inner corner at (c + sp - sp/2, ...).
  const Coord bx = ax + sp;
  const Coord by = ay + sp;
  out.emplace_back(bx, by, f, by + w);             // horizontal leg
  out.emplace_back(bx, by, bx + w, f);             // vertical leg
}

void via_pair(const StyleConfig& s, bool risky, Coord f, Rng& rng,
              std::vector<Rect>& out) {
  const MotifDims d{s, rng};
  const Coord v1 = d.via(false);
  const Coord v2 = d.via(false);
  // Via-to-via bridging: <= ~32 nm fails reliably, >= ~36 nm never does.
  const Coord sp = risky ? pick(rng, 22, 32, s.grid_nm) : d.space(false);
  const Coord cy = f / 2;
  const Coord total = v1 + sp + v2;
  const Coord x0 = (f - total) / 2;
  out.emplace_back(x0, cy - v1 / 2, x0 + v1, cy + v1 - v1 / 2);
  out.emplace_back(x0 + v1 + sp, cy - v2 / 2, x0 + v1 + sp + v2,
                   cy + v2 - v2 / 2);
}

void small_via(const StyleConfig& s, bool risky, Coord f, Rng& rng,
               std::vector<Rect>& out) {
  const MotifDims d{s, rng};
  const Coord v = d.via(risky);
  const Coord c = f / 2;
  out.emplace_back(c - v / 2, c - v / 2, c + v - v / 2, c + v - v / 2);
  // Landing stub so the via is not floating in empty field. The risky
  // variant is always isolated: an undersized via with an attached wire
  // keeps printed connectivity through the wire, which the open-circuit
  // oracle rightly does not flag.
  if (!risky && rng.next_bool(0.5)) {
    const Coord w = d.width();
    out.emplace_back(c + v - v / 2, c - w / 2, f, c + w - w / 2);
  }
}

void comb_fingers(const StyleConfig& s, bool risky, Coord f, Rng& rng,
                  std::vector<Rect>& out) {
  const MotifDims d{s, rng};
  const Coord w = d.width();
  const Coord sp = d.space(risky);
  const Coord pitch = w + sp;
  const Coord total = 3 * w + 2 * sp;
  const Coord x0 = (f - total) / 2;
  // Three vertical fingers; middle finger attaches to the opposite rail.
  for (int i = 0; i < 3; ++i) {
    const Coord fx = x0 + i * pitch;
    if (i == 1) {
      out.emplace_back(fx, f / 8, fx + w, f);  // from the top rail
    } else {
      out.emplace_back(fx, 0, fx + w, f - f / 8);  // from the bottom rail
    }
  }
}

}  // namespace

const std::vector<MotifKind>& motifs_for(PatternFamily family) {
  static const std::vector<MotifKind> tracks = {
      MotifKind::ParallelRun, MotifKind::TipToTip, MotifKind::TipToLine,
      MotifKind::NarrowNeck, MotifKind::CornerPair};
  static const std::vector<MotifKind> serp = {
      MotifKind::CombFingers, MotifKind::ParallelRun, MotifKind::NarrowNeck};
  static const std::vector<MotifKind> vias = {
      MotifKind::ViaPair, MotifKind::SmallVia, MotifKind::TipToTip};
  switch (family) {
    case PatternFamily::Tracks: return tracks;
    case PatternFamily::Serpentine: return serp;
    case PatternFamily::Vias: return vias;
  }
  return tracks;
}

const char* motif_name(MotifKind kind) {
  switch (kind) {
    case MotifKind::ParallelRun: return "parallel-run";
    case MotifKind::TipToTip: return "tip-to-tip";
    case MotifKind::TipToLine: return "tip-to-line";
    case MotifKind::NarrowNeck: return "narrow-neck";
    case MotifKind::CornerPair: return "corner-pair";
    case MotifKind::ViaPair: return "via-pair";
    case MotifKind::SmallVia: return "small-via";
    case MotifKind::CombFingers: return "comb-fingers";
  }
  return "unknown";
}

std::vector<Rect> render_motif(MotifKind kind, const StyleConfig& style,
                               bool risky, Coord frame_nm, Rng& rng) {
  LHD_CHECK(frame_nm > 0, "frame must be positive");
  std::vector<Rect> out;
  switch (kind) {
    case MotifKind::ParallelRun: parallel_run(style, risky, frame_nm, rng, out); break;
    case MotifKind::TipToTip: tip_to_tip(style, risky, frame_nm, rng, out); break;
    case MotifKind::TipToLine: tip_to_line(style, risky, frame_nm, rng, out); break;
    case MotifKind::NarrowNeck: narrow_neck(style, risky, frame_nm, rng, out); break;
    case MotifKind::CornerPair: corner_pair(style, risky, frame_nm, rng, out); break;
    case MotifKind::ViaPair: via_pair(style, risky, frame_nm, rng, out); break;
    case MotifKind::SmallVia: small_via(style, risky, frame_nm, rng, out); break;
    case MotifKind::CombFingers: comb_fingers(style, risky, frame_nm, rng, out); break;
  }
  // Random symmetry within the frame so each motif appears in all
  // orientations.
  const bool fx = rng.next_bool();
  const bool fy = rng.next_bool();
  const bool rot = rng.next_bool();
  for (auto& r : out) {
    if (fx) r = Rect(frame_nm - r.xhi, r.ylo, frame_nm - r.xlo, r.yhi);
    if (fy) r = Rect(r.xlo, frame_nm - r.yhi, r.xhi, frame_nm - r.ylo);
    if (rot) r = Rect(r.ylo, r.xlo, r.yhi, r.xhi);
  }
  return out;
}

}  // namespace lhd::synth
