#pragma once
// Full-chip synthesis: tile a large area with generated patterns and expose
// it as a GDSII library (TOP structure with one SREF per tile). Feeds the
// full-chip scanning experiments.

#include "lhd/gds/model.hpp"
#include "lhd/synth/style.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::synth {

/// Layer all chip shapes are placed on.
inline constexpr std::int16_t kChipLayer = 1;

/// Build a (tiles_x × tiles_y)-tile chip; each tile is one window_nm square
/// of generated pattern, placed via SREF into the TOP structure.
gds::Library build_chip(const StyleConfig& style, int tiles_x, int tiles_y,
                        std::uint64_t seed);

}  // namespace lhd::synth
