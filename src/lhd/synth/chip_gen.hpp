#pragma once
// Full-chip synthesis: tile a large area with generated patterns and expose
// it as a GDSII library (TOP structure with one SREF per tile). Feeds the
// full-chip scanning experiments.

#include "lhd/gds/model.hpp"
#include "lhd/synth/style.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::synth {

/// Layer all chip shapes are placed on.
inline constexpr std::int16_t kChipLayer = 1;

/// Build a (tiles_x × tiles_y)-tile chip; each tile is one window_nm square
/// of generated pattern, placed via SREF into the TOP structure.
///
/// `tile_variants` controls cell reuse, the defining redundancy of real
/// layouts (standard cells and macros are instantiated thousands of times):
/// with V > 0 only V distinct tile structures are generated and arrayed as
/// a repeating ~sqrt(V) × ~sqrt(V) macro across the die, so the flattened
/// geometry is periodic and a sliding-window scan sees each local pattern
/// many times (what `ScanConfig::dedup` exploits). 0 forks a fresh RNG per
/// tile — every tile unique, the historical behavior.
gds::Library build_chip(const StyleConfig& style, int tiles_x, int tiles_y,
                        std::uint64_t seed, int tile_variants = 0);

}  // namespace lhd::synth
