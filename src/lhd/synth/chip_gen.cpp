#include "lhd/synth/chip_gen.hpp"

#include <cmath>
#include <vector>

#include "lhd/geom/polygon.hpp"
#include "lhd/synth/clip_gen.hpp"
#include "lhd/util/check.hpp"

namespace lhd::synth {

gds::Library build_chip(const StyleConfig& style, int tiles_x, int tiles_y,
                        std::uint64_t seed, int tile_variants) {
  LHD_CHECK(tiles_x > 0 && tiles_y > 0, "tile counts must be positive");
  LHD_CHECK(tile_variants >= 0, "tile_variants must be non-negative");
  gds::Library lib;
  lib.name = "LHD_CHIP";
  Rng master(seed);

  // Add TOP first so readers find it immediately; tiles follow. The
  // reference stays valid: Library stores structures in a deque.
  gds::Structure* top = &lib.add_structure("TOP");

  const auto fill_tile = [&](gds::Structure& s, Rng& rng) {
    for (const auto& r : generate_clip(style, rng)) {
      gds::Boundary b;
      b.layer = kChipLayer;
      b.polygon = geom::Polygon::from_rect(r);
      s.add(std::move(b));
    }
  };
  const auto place = [&](const std::string& name, int tx, int ty) {
    gds::SRef ref;
    ref.structure = name;
    ref.transform.origin = {tx * style.window_nm, ty * style.window_nm};
    top->add(std::move(ref));
  };

  if (tile_variants > 0) {
    // Cell reuse: generate V distinct tiles once, then array them as a
    // repeating px × py macro so the flattened chip is periodic with a
    // period of (px, py) tiles in both axes.
    const int v = std::min(tile_variants, tiles_x * tiles_y);
    const int px = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(v))));
    const int py = (v + px - 1) / px;
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(v));
    for (int i = 0; i < v; ++i) {
      Rng tile_rng = master.fork();
      const std::string name = "TILE_V" + std::to_string(i);
      fill_tile(lib.add_structure(name), tile_rng);
      names.push_back(name);
    }
    for (int ty = 0; ty < tiles_y; ++ty) {
      for (int tx = 0; tx < tiles_x; ++tx) {
        const int slot = (tx % px) + px * (ty % py);
        place(names[static_cast<std::size_t>(slot % v)], tx, ty);
      }
    }
    return lib;
  }

  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      Rng tile_rng = master.fork();
      const std::string name =
          "TILE_" + std::to_string(tx) + "_" + std::to_string(ty);
      fill_tile(lib.add_structure(name), tile_rng);
      place(name, tx, ty);
    }
  }
  return lib;
}

}  // namespace lhd::synth
