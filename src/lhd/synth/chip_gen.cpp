#include "lhd/synth/chip_gen.hpp"

#include "lhd/geom/polygon.hpp"
#include "lhd/synth/clip_gen.hpp"
#include "lhd/util/check.hpp"

namespace lhd::synth {

gds::Library build_chip(const StyleConfig& style, int tiles_x, int tiles_y,
                        std::uint64_t seed) {
  LHD_CHECK(tiles_x > 0 && tiles_y > 0, "tile counts must be positive");
  gds::Library lib;
  lib.name = "LHD_CHIP";
  Rng master(seed);

  // Add TOP first so readers find it immediately; tiles follow. The
  // reference stays valid: Library stores structures in a deque.
  gds::Structure* top = &lib.add_structure("TOP");
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      Rng tile_rng = master.fork();
      const std::string name =
          "TILE_" + std::to_string(tx) + "_" + std::to_string(ty);
      gds::Structure& s = lib.add_structure(name);
      for (const auto& r : generate_clip(style, tile_rng)) {
        gds::Boundary b;
        b.layer = kChipLayer;
        b.polygon = geom::Polygon::from_rect(r);
        s.add(std::move(b));
      }
      gds::SRef ref;
      ref.structure = name;
      ref.transform.origin = {tx * style.window_nm, ty * style.window_nm};
      top->add(std::move(ref));
    }
  }
  return lib;
}

}  // namespace lhd::synth
