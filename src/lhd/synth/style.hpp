#pragma once
// Knobs controlling the synthetic layout generator. Each benchmark suite
// (B1–B5) is one StyleConfig instance; the generator itself is shared.
//
// Dimensions are calibrated against the optical model in lhd::litho with
// its defaults (sigma_main = 28 nm, threshold 0.5):
//   * isolated line widths below ~48 nm risk pinching at the dose-/defocus
//     corners;
//   * parallel-run spaces below ~46 nm risk bridging at the dose+ corner.
// "Safe" dimension ranges sit above those critical values; the generator
// dips into the "risky" ranges with probability p_risky_* per decision, so
// hotspot density is a smooth function of the knobs.

#include <cstdint>

#include "lhd/geom/point.hpp"

namespace lhd::synth {

enum class PatternFamily {
  Tracks,      ///< parallel routed tracks with breaks and jogs (metal layer)
  Serpentine,  ///< comb / serpentine test structures
  Vias,        ///< via arrays with landing pads and connecting stubs
};

struct StyleConfig {
  PatternFamily family = PatternFamily::Tracks;

  geom::Coord window_nm = 1024;  ///< clip side
  geom::Coord grid_nm = 2;       ///< all dimensions snap to this grid

  /// Clips are built the way the contest built them: a safe routed
  /// background plus a central *site* rendered from a motif library (see
  /// lhd/synth/motifs.hpp). The site either uses risky dimensions (which
  /// usually — but not always — fail lithography, so the oracle decides
  /// the label) or near-critical safe dimensions (hard negatives).
  double p_center_site = 0.95;   ///< chance the clip has a centre site at all
  double p_risky_site = 0.30;    ///< chance the site uses risky dimensions
  geom::Coord site_frame_nm = 384;   ///< motif frame side
  geom::Coord site_jitter_nm = 16;   ///< random offset of the site centre
  geom::Coord site_moat_nm = 56;     ///< clearance between site and background

  // Safe dimension ranges.
  geom::Coord width_min = 52, width_max = 76;   ///< wire widths
  geom::Coord space_min = 52, space_max = 92;   ///< track-to-track spaces

  // Risky (hotspot-prone) dimension ranges used by the motif library.
  geom::Coord risky_width_min = 28, risky_width_max = 40;
  geom::Coord risky_space_min = 24, risky_space_max = 36;

  // Track segmentation / topology (Tracks family).
  double p_break = 0.35;             ///< chance a track is split into segments
  geom::Coord gap_min = 60, gap_max = 200;  ///< end-to-end gap range
  double p_jog = 0.25;               ///< vertical connector between tracks
  double p_vertical = 0.5;           ///< chance the whole clip is rotated 90°

  // Serpentine family.
  int serp_arms_min = 4, serp_arms_max = 8;

  // Vias family. Isolated squares need ~88 nm to print robustly under the
  // default optics (2-D corner rounding is stronger than 1-D line loss).
  geom::Coord via_size_min = 84, via_size_max = 120;
  geom::Coord risky_via_min = 48, risky_via_max = 64;
  double via_fill = 0.35;            ///< fraction of via grid sites populated
};

}  // namespace lhd::synth
