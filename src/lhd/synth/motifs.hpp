#pragma once
// Parameterized layout motifs — the recurring local configurations that
// real hotspot benchmarks are built from. Contest clips were produced by
// centring a window on a pattern-match candidate site and labeling it by
// lithography simulation; hotspots therefore cluster into a small number
// of recurring motif families with dimensional jitter. This module
// reproduces that structure: each motif renders a site pattern in a local
// frame with dimensions drawn from either a "risky" range (straddling the
// optical model's failure boundary) or a "safe" range (comfortably
// printable), so the oracle decides the final label.

#include <string>
#include <vector>

#include "lhd/geom/rect.hpp"
#include "lhd/synth/style.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::synth {

enum class MotifKind {
  ParallelRun,   ///< two long parallel wires at close spacing (bridge site)
  TipToTip,      ///< two collinear line ends facing across a gap
  TipToLine,     ///< a line end facing the side of a perpendicular line
  NarrowNeck,    ///< a wire necked down in the middle (pinch site)
  CornerPair,    ///< two L-corners back to back (corner rounding bridge)
  ViaPair,       ///< two vias at close spacing
  SmallVia,      ///< an undersized isolated via (open/pinch site)
  CombFingers,   ///< three interdigitated fingers (serpentine bridge)
};

/// Motifs applicable to a pattern family.
const std::vector<MotifKind>& motifs_for(PatternFamily family);

const char* motif_name(MotifKind kind);

/// Render one motif instance centred in a `frame_nm` × `frame_nm` local
/// frame. `risky` selects the dimension regime (risky straddles the
/// process-window failure boundary; safe stays clear of it). Dimension
/// ranges come from `style`. The caller translates/orients the result.
std::vector<geom::Rect> render_motif(MotifKind kind, const StyleConfig& style,
                                     bool risky, geom::Coord frame_nm,
                                     Rng& rng);

}  // namespace lhd::synth
