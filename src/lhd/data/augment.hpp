#pragma once
// Imbalance-aware training-set preparation: minority upsampling and
// mirror/rotate augmentation.
//
// Hotspots are a small minority of real layout clips; trained naively, a
// classifier collapses to the majority class. The survey's deep-learning
// recipe (Yang et al., SPIE'17) upsamples the minority class and applies
// random mirror flips — both label-preserving here because the optical
// model is isotropic, so a mirrored layout has an identical process window.

#include "lhd/data/dataset.hpp"

namespace lhd::data {

/// Mirror a clip about the vertical axis (x -> window - x).
Clip flip_clip_x(const Clip& clip);
/// Mirror a clip about the horizontal axis (y -> window - y).
Clip flip_clip_y(const Clip& clip);
/// Rotate a clip 90 degrees counter-clockwise within its window.
Clip rotate_clip_90(const Clip& clip);

/// Replicate minority-class (hotspot) clips until they make up at least
/// `target_ratio` of the dataset (or the majority count is reached).
/// Replicas are exact copies. Order is re-shuffled.
Dataset upsample_minority(const Dataset& ds, double target_ratio, Rng& rng);

/// Same as upsample_minority, but each replica is passed through a random
/// symmetry (flip-x / flip-y / rotate / combinations) and, when max_shift
/// is non-zero, a random translation — so replicas are not
/// pixel-identical. This is the survey's "random mirror flipping"
/// augmentation (plus shift jitter for block-feature tolerance).
Dataset upsample_minority_mirror(const Dataset& ds, double target_ratio,
                                 Rng& rng, geom::Coord max_shift = 0);

/// Apply a random symmetry (possibly identity) to a clip.
Clip random_symmetry(const Clip& clip, Rng& rng);

/// Translate a clip's geometry by (dx, dy) nm, re-clipping to the window.
/// Small shifts teach the detector translation tolerance — block-based
/// features (density grids, DCT tensors) are not shift-invariant.
Clip translate_clip(const Clip& clip, geom::Coord dx, geom::Coord dy);

/// random_symmetry plus a uniform random shift in [-max_shift, max_shift]².
Clip random_symmetry_shift(const Clip& clip, geom::Coord max_shift, Rng& rng);

/// Grow the dataset to `factor` times its size by appending random
/// symmetry+shift replicas of every clip (both classes). Teaches
/// block-feature detectors translation/orientation tolerance.
Dataset augment_dataset(const Dataset& ds, int factor, geom::Coord max_shift,
                        Rng& rng);

}  // namespace lhd::data
