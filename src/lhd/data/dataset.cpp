#include "lhd/data/dataset.hpp"

#include "lhd/util/check.hpp"

namespace lhd::data {

void Dataset::add(Clip clip) {
  clip.id = static_cast<std::uint32_t>(clips_.size());
  clips_.push_back(std::move(clip));
}

DatasetStats Dataset::stats() const {
  DatasetStats s;
  s.total = clips_.size();
  for (const auto& c : clips_) {
    if (c.is_hotspot()) {
      ++s.hotspots;
    } else {
      ++s.non_hotspots;
    }
  }
  s.hotspot_ratio = s.total == 0
                        ? 0.0
                        : static_cast<double>(s.hotspots) /
                              static_cast<double>(s.total);
  return s;
}

void Dataset::shuffle(Rng& rng) { rng.shuffle(clips_); }

std::pair<Dataset, Dataset> Dataset::split_at(std::size_t n) const {
  LHD_CHECK(n <= clips_.size(), "split point beyond dataset size");
  Dataset a(name_ + "/a");
  Dataset b(name_ + "/b");
  a.reserve(n);
  b.reserve(clips_.size() - n);
  for (std::size_t i = 0; i < clips_.size(); ++i) {
    (i < n ? a : b).add(clips_[i]);
  }
  return {std::move(a), std::move(b)};
}

Dataset Dataset::filter(Label label) const {
  Dataset out(name_);
  for (const auto& c : clips_) {
    if (c.label == label) out.add(c);
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  reserve(size() + other.size());
  for (const auto& c : other.clips()) add(c);
}

}  // namespace lhd::data
