#include "lhd/data/clip_hash.hpp"

#include <algorithm>
#include <limits>

namespace lhd::data {

namespace {

/// splitmix64 finalizer — full-avalanche mixing so structured coordinate
/// streams (small ints, aligned to grids) spread over the whole 64 bits.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ mix64(v));
}

bool rect_less(const geom::Rect& a, const geom::Rect& b) {
  if (a.xlo != b.xlo) return a.xlo < b.xlo;
  if (a.ylo != b.ylo) return a.ylo < b.ylo;
  if (a.xhi != b.xhi) return a.xhi < b.xhi;
  return a.yhi < b.yhi;
}

}  // namespace

CanonicalClip canonical_clip(std::vector<geom::Rect> rects,
                             geom::Coord window_nm) {
  CanonicalClip canon;
  canon.window_nm = window_nm;
  canon.rects = std::move(rects);
  if (!canon.rects.empty()) {
    geom::Coord min_x = std::numeric_limits<geom::Coord>::max();
    geom::Coord min_y = std::numeric_limits<geom::Coord>::max();
    for (const auto& r : canon.rects) {
      min_x = std::min(min_x, r.xlo);
      min_y = std::min(min_y, r.ylo);
    }
    for (auto& r : canon.rects) r = r.shifted(-min_x, -min_y);
    std::sort(canon.rects.begin(), canon.rects.end(), rect_less);
  }
  return canon;
}

CanonicalClip canonical_clip(const Clip& clip) {
  return canonical_clip(clip.rects, clip.window_nm);
}

std::uint64_t canonical_hash(const CanonicalClip& canon) {
  std::uint64_t h = 0x6c68645f636c6970ULL;  // "lhd_clip"
  h = combine(h, static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(canon.window_nm)));
  h = combine(h, canon.rects.size());
  for (const auto& r : canon.rects) {
    // Pack two 32-bit coords per mix step: fewer rounds, same avalanche.
    h = combine(h, (static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(r.xlo))
                    << 32) |
                       static_cast<std::uint32_t>(r.ylo));
    h = combine(h, (static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(r.xhi))
                    << 32) |
                       static_cast<std::uint32_t>(r.yhi));
  }
  return h;
}

std::uint64_t clip_hash(const Clip& clip) {
  return canonical_hash(canonical_clip(clip));
}

}  // namespace lhd::data
