#include "lhd/data/io.hpp"

#include <cstring>
#include <fstream>

#include "lhd/util/bounded.hpp"
#include "lhd/util/check.hpp"

namespace lhd::data {

namespace {

constexpr char kMagic[4] = {'L', 'H', 'D', 'D'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  LHD_CHECK(in.good(), "truncated dataset stream");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto n = read_pod<std::uint32_t>(in);
  LHD_CHECK(n < (1u << 20), "unreasonable string length in dataset stream");
  std::string s(n, '\0');
  in.read(s.data(), n);
  LHD_CHECK(in.good(), "truncated dataset stream");
  return s;
}

}  // namespace

void save_dataset(const Dataset& ds, std::ostream& out) {
  out.write(kMagic, 4);
  write_pod(out, kVersion);
  write_string(out, ds.name());
  write_pod<std::uint64_t>(out, ds.size());
  for (const Clip& c : ds.clips()) {
    write_pod<std::int32_t>(out, c.window_nm);
    write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(c.label));
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(c.rects.size()));
    for (const auto& r : c.rects) {
      write_pod(out, r.xlo);
      write_pod(out, r.ylo);
      write_pod(out, r.xhi);
      write_pod(out, r.yhi);
    }
  }
  LHD_CHECK(out.good(), "dataset write failed");
}

Dataset load_dataset(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  LHD_CHECK(in.good() && std::memcmp(magic, kMagic, 4) == 0,
            "not a lhd dataset stream");
  const auto version = read_pod<std::uint32_t>(in);
  LHD_CHECK_MSG(version == kVersion, "unsupported dataset version " << version);
  Dataset ds(read_string(in));
  const auto count = read_pod<std::uint64_t>(in);
  // Count fields drive allocations, so never trust them further than the
  // bytes that actually arrive: reserve a bounded amount up front and let
  // push_back grow the rest as the stream proves it holds the data.
  lhd::bounded_reserve(ds, count, 1u << 16);
  for (std::uint64_t i = 0; i < count; ++i) {
    Clip c;
    c.window_nm = read_pod<std::int32_t>(in);
    LHD_CHECK(c.window_nm > 0, "non-positive clip window in dataset stream");
    const auto raw_label = read_pod<std::uint8_t>(in);
    LHD_CHECK(raw_label <= 1, "invalid clip label in dataset stream");
    c.label = static_cast<Label>(raw_label);
    const auto n_rects = read_pod<std::uint32_t>(in);
    LHD_CHECK(n_rects < (1u << 24), "unreasonable rect count");
    lhd::bounded_reserve(c.rects, n_rects, 4096);
    for (std::uint32_t r = 0; r < n_rects; ++r) {
      geom::Rect rect;
      rect.xlo = read_pod<geom::Coord>(in);
      rect.ylo = read_pod<geom::Coord>(in);
      rect.xhi = read_pod<geom::Coord>(in);
      rect.yhi = read_pod<geom::Coord>(in);
      c.rects.push_back(rect);
    }
    ds.add(std::move(c));
  }
  return ds;
}

void save_dataset_file(const Dataset& ds, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LHD_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  save_dataset(ds, out);
}

Dataset load_dataset_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LHD_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  return load_dataset(in);
}

}  // namespace lhd::data
