#pragma once
// Compact binary (de)serialization of datasets, so expensive generation +
// labeling runs can be cached on disk between experiments.

#include <iosfwd>
#include <string>

#include "lhd/data/dataset.hpp"

namespace lhd::data {

void save_dataset(const Dataset& ds, std::ostream& out);
Dataset load_dataset(std::istream& in);

void save_dataset_file(const Dataset& ds, const std::string& path);
Dataset load_dataset_file(const std::string& path);

}  // namespace lhd::data
