#pragma once
// Canonical form + 64-bit content hash for clip geometry — the key the
// deduplicated full-chip scan caches detector scores under.
//
// Real layouts are massively repetitive: the same local pattern recurs
// across a chip thousands to millions of times (the observation behind the
// pattern-matching generation, EPIC, and clip-library compression). Two
// scan windows whose geometry matches up to a rigid translation (and rect
// enumeration order) are the *same pattern*, so one detector invocation can
// serve all of them. The canonical form makes that equivalence explicit:
//
//   * translation-normalized — every rect is shifted so the pattern's
//     bounding box sits at the origin;
//   * sorted — rects are ordered lexicographically by (xlo, ylo, xhi, yhi),
//     erasing enumeration order;
//   * window-tagged — window_nm is part of the form, since the same rects
//     in a different window are a different classification problem.
//
// Mirrored or rotated variants of a pattern normalize to *different*
// canonical forms (the coordinates change), which is deliberate: detectors
// are not symmetry-invariant, so symmetric variants must not share a
// cached score. All of this is asserted by the ClipHash tests.

#include <cstdint>
#include <vector>

#include "lhd/data/clip.hpp"
#include "lhd/geom/rect.hpp"

namespace lhd::data {

/// A clip's geometry in canonical (translation-normalized, sorted) form.
/// Equality on this struct is the "same pattern" relation the score cache
/// deduplicates by; keep the full form next to the hash so a 64-bit
/// collision can never alias two distinct patterns.
struct CanonicalClip {
  std::vector<geom::Rect> rects;  ///< bbox at origin, lexicographically sorted
  geom::Coord window_nm = 0;

  friend bool operator==(const CanonicalClip&, const CanonicalClip&) = default;
};

/// Canonicalize a window-local rect soup (the scan's per-window extraction).
CanonicalClip canonical_clip(std::vector<geom::Rect> rects,
                             geom::Coord window_nm);

/// Canonicalize a clip's geometry (label and id are not part of the form).
CanonicalClip canonical_clip(const Clip& clip);

/// 64-bit content hash of a canonical form (stable within a process run
/// and across runs — pure arithmetic, no pointer or seed dependence).
std::uint64_t canonical_hash(const CanonicalClip& canon);

/// Hash of `clip`'s canonical form: invariant under whole-pattern
/// translation and rect order, sensitive to mirroring/rotation and to
/// window_nm. Convenience for `canonical_hash(canonical_clip(clip))`.
std::uint64_t clip_hash(const Clip& clip);

}  // namespace lhd::data
