#include "lhd/data/augment.hpp"

#include "lhd/geom/polygon.hpp"

#include <algorithm>

#include "lhd/util/check.hpp"

namespace lhd::data {

Clip flip_clip_x(const Clip& clip) {
  Clip out = clip;
  for (auto& r : out.rects) {
    const geom::Coord xlo = clip.window_nm - r.xhi;
    const geom::Coord xhi = clip.window_nm - r.xlo;
    r.xlo = xlo;
    r.xhi = xhi;
  }
  return out;
}

Clip flip_clip_y(const Clip& clip) {
  Clip out = clip;
  for (auto& r : out.rects) {
    const geom::Coord ylo = clip.window_nm - r.yhi;
    const geom::Coord yhi = clip.window_nm - r.ylo;
    r.ylo = ylo;
    r.yhi = yhi;
  }
  return out;
}

Clip rotate_clip_90(const Clip& clip) {
  Clip out = clip;
  for (auto& r : out.rects) {
    // CCW within the window: (x, y) -> (window - y, x).
    const geom::Rect rot(clip.window_nm - r.yhi, r.xlo,
                         clip.window_nm - r.ylo, r.xhi);
    r = rot;
  }
  return out;
}

Clip random_symmetry(const Clip& clip, Rng& rng) {
  Clip out = clip;
  if (rng.next_bool()) out = flip_clip_x(out);
  if (rng.next_bool()) out = flip_clip_y(out);
  if (rng.next_bool()) out = rotate_clip_90(out);
  return out;
}

Clip translate_clip(const Clip& clip, geom::Coord dx, geom::Coord dy) {
  Clip out = clip;
  for (auto& r : out.rects) r = r.shifted(dx, dy);
  out.rects = geom::clip_rects(out.rects,
                               geom::Rect(0, 0, clip.window_nm, clip.window_nm));
  return out;
}

Clip random_symmetry_shift(const Clip& clip, geom::Coord max_shift,
                           Rng& rng) {
  Clip out = random_symmetry(clip, rng);
  if (max_shift > 0) {
    const auto dx = static_cast<geom::Coord>(
        rng.next_int(-max_shift, max_shift));
    const auto dy = static_cast<geom::Coord>(
        rng.next_int(-max_shift, max_shift));
    out = translate_clip(out, dx, dy);
  }
  return out;
}

Dataset augment_dataset(const Dataset& ds, int factor, geom::Coord max_shift,
                        Rng& rng) {
  LHD_CHECK(factor >= 1, "factor must be >= 1");
  Dataset out(ds.name());
  out.reserve(ds.size() * static_cast<std::size_t>(factor));
  out.append(ds);
  for (int k = 1; k < factor; ++k) {
    for (std::size_t i = 0; i < ds.size(); ++i) {
      out.add(random_symmetry_shift(ds[i], max_shift, rng));
    }
  }
  out.shuffle(rng);
  return out;
}

namespace {

Dataset upsample_impl(const Dataset& ds, double target_ratio, Rng& rng,
                      bool mirror, geom::Coord max_shift) {
  LHD_CHECK(target_ratio > 0 && target_ratio < 1,
            "target_ratio must be in (0,1)");
  const DatasetStats s = ds.stats();
  Dataset out(ds.name());
  out.append(ds);
  if (s.hotspots == 0 || s.hotspots == s.total) return out;

  // Solve for the number of replicas k so that
  // (hotspots + k) / (total + k) >= target_ratio, capped at class balance.
  const double h = static_cast<double>(s.hotspots);
  const double t = static_cast<double>(s.total);
  long long k = 0;
  if (h / t < target_ratio) {
    k = static_cast<long long>((target_ratio * t - h) / (1.0 - target_ratio)) +
        1;
  }
  const long long cap = static_cast<long long>(s.non_hotspots - s.hotspots);
  k = std::min(k, std::max(cap, 0LL));

  const Dataset minority = ds.filter(Label::Hotspot);
  for (long long i = 0; i < k; ++i) {
    const Clip& src =
        minority[static_cast<std::size_t>(rng.next_below(minority.size()))];
    out.add(mirror ? random_symmetry_shift(src, max_shift, rng) : src);
  }
  out.shuffle(rng);
  return out;
}

}  // namespace

Dataset upsample_minority(const Dataset& ds, double target_ratio, Rng& rng) {
  return upsample_impl(ds, target_ratio, rng, /*mirror=*/false, 0);
}

Dataset upsample_minority_mirror(const Dataset& ds, double target_ratio,
                                 Rng& rng, geom::Coord max_shift) {
  return upsample_impl(ds, target_ratio, rng, /*mirror=*/true, max_shift);
}

}  // namespace lhd::data
