#pragma once
// Dataset container + split/shuffle/statistics helpers.

#include <cstddef>
#include <string>
#include <vector>

#include "lhd/data/clip.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::data {

struct DatasetStats {
  std::size_t total = 0;
  std::size_t hotspots = 0;
  std::size_t non_hotspots = 0;
  double hotspot_ratio = 0.0;  ///< hotspots / total (0 when empty)
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t size() const { return clips_.size(); }
  bool empty() const { return clips_.empty(); }
  const Clip& operator[](std::size_t i) const { return clips_[i]; }
  Clip& operator[](std::size_t i) { return clips_[i]; }

  void add(Clip clip);
  void reserve(std::size_t n) { clips_.reserve(n); }

  const std::vector<Clip>& clips() const { return clips_; }

  DatasetStats stats() const;

  /// In-place Fisher–Yates shuffle.
  void shuffle(Rng& rng);

  /// Split off the first `n` clips into one dataset and the rest into
  /// another (shuffle first for a random split).
  std::pair<Dataset, Dataset> split_at(std::size_t n) const;

  /// Subset containing only the given label.
  Dataset filter(Label label) const;

  /// Concatenate (ids are renumbered to stay unique).
  void append(const Dataset& other);

 private:
  std::string name_ = "dataset";
  std::vector<Clip> clips_;
};

}  // namespace lhd::data
