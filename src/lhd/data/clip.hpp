#pragma once
// A labeled layout clip — the unit every detector trains on and classifies.
//
// Clips store geometry (rectangles in clip-local nm) rather than rasters;
// the raster is recomputed on demand. This keeps multi-thousand-clip
// datasets small and lets feature extractors pick their own resolution.

#include <cstdint>
#include <vector>

#include "lhd/geom/raster.hpp"
#include "lhd/geom/rect.hpp"

namespace lhd::data {

enum class Label : std::uint8_t { NonHotspot = 0, Hotspot = 1 };

struct Clip {
  std::vector<geom::Rect> rects;   ///< clip-local geometry, [0, window_nm)^2
  geom::Coord window_nm = 1024;    ///< square clip side length
  Label label = Label::NonHotspot;
  std::uint32_t id = 0;            ///< stable id within its dataset

  bool is_hotspot() const { return label == Label::Hotspot; }

  /// Rasterize at the given resolution (window_nm must be divisible).
  geom::FloatImage raster(geom::Coord pixel_nm) const {
    return geom::rasterize(rects, window_nm, pixel_nm);
  }
};

}  // namespace lhd::data
