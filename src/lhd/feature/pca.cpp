#include "lhd/feature/pca.hpp"

#include <cmath>

#include "lhd/util/check.hpp"

namespace lhd::feature {

namespace {

double dot(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * b[i];
  }
  return s;
}

void normalize(std::vector<float>& v) {
  const double n = std::sqrt(dot(v, v));
  if (n < 1e-12) return;
  for (auto& x : v) x = static_cast<float>(x / n);
}

}  // namespace

void Pca::fit(const std::vector<std::vector<float>>& rows, int components,
              Rng& rng, int iterations) {
  LHD_CHECK(!rows.empty(), "cannot fit PCA on empty data");
  const std::size_t dim = rows[0].size();
  LHD_CHECK(components > 0 && static_cast<std::size_t>(components) <= dim,
            "bad component count");

  // Centre the data.
  mean_.assign(dim, 0.0f);
  for (const auto& r : rows) {
    LHD_CHECK(r.size() == dim, "inconsistent dimensions");
    for (std::size_t d = 0; d < dim; ++d) mean_[d] += r[d];
  }
  for (auto& m : mean_) m /= static_cast<float>(rows.size());

  std::vector<std::vector<float>> centred(rows.size(),
                                          std::vector<float>(dim));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      centred[i][d] = rows[i][d] - mean_[d];
    }
  }

  components_.clear();
  variance_.clear();
  for (int c = 0; c < components; ++c) {
    std::vector<float> v(dim);
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
    normalize(v);
    double eigenvalue = 0.0;
    for (int it = 0; it < iterations; ++it) {
      // w = Cov * v computed as X^T (X v) / n without forming Cov.
      std::vector<float> w(dim, 0.0f);
      for (const auto& x : centred) {
        const auto proj = static_cast<float>(dot(x, v));
        for (std::size_t d = 0; d < dim; ++d) w[d] += proj * x[d];
      }
      for (auto& x : w) x /= static_cast<float>(centred.size());
      eigenvalue = std::sqrt(dot(w, w));
      normalize(w);
      v = std::move(w);
    }
    // Deflate: remove this component from the data.
    for (auto& x : centred) {
      const auto proj = static_cast<float>(dot(x, v));
      for (std::size_t d = 0; d < dim; ++d) x[d] -= proj * v[d];
    }
    components_.push_back(std::move(v));
    variance_.push_back(static_cast<float>(eigenvalue));
  }
}

std::vector<float> Pca::transform(const std::vector<float>& row) const {
  LHD_CHECK(fitted(), "PCA not fitted");
  LHD_CHECK(row.size() == mean_.size(), "dimension mismatch");
  std::vector<float> centred(row.size());
  for (std::size_t d = 0; d < row.size(); ++d) centred[d] = row[d] - mean_[d];
  std::vector<float> out(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    out[c] = static_cast<float>(dot(centred, components_[c]));
  }
  return out;
}

std::vector<std::vector<float>> Pca::transform_all(
    const std::vector<std::vector<float>>& rows) const {
  std::vector<std::vector<float>> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(transform(r));
  return out;
}

}  // namespace lhd::feature
