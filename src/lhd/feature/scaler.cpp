#include "lhd/feature/scaler.hpp"

#include <cmath>

#include "lhd/util/check.hpp"

namespace lhd::feature {

void Scaler::fit(const std::vector<std::vector<float>>& rows) {
  LHD_CHECK(!rows.empty(), "cannot fit scaler on empty data");
  const std::size_t dim = rows[0].size();
  std::vector<double> sum(dim, 0.0);
  std::vector<double> sum2(dim, 0.0);
  for (const auto& row : rows) {
    LHD_CHECK(row.size() == dim, "inconsistent feature dimensions");
    for (std::size_t d = 0; d < dim; ++d) {
      sum[d] += row[d];
      sum2[d] += static_cast<double>(row[d]) * row[d];
    }
  }
  const double n = static_cast<double>(rows.size());
  mean_.resize(dim);
  std_.resize(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    const double mu = sum[d] / n;
    const double var = std::max(0.0, sum2[d] / n - mu * mu);
    mean_[d] = static_cast<float>(mu);
    std_[d] = var < 1e-12 ? 1.0f : static_cast<float>(std::sqrt(var));
  }
}

void Scaler::transform(std::vector<float>& row) const {
  LHD_CHECK(fitted(), "scaler not fitted");
  LHD_CHECK(row.size() == mean_.size(), "dimension mismatch");
  for (std::size_t d = 0; d < row.size(); ++d) {
    row[d] = (row[d] - mean_[d]) / std_[d];
  }
}

void Scaler::transform_all(std::vector<std::vector<float>>& rows) const {
  for (auto& row : rows) transform(row);
}

}  // namespace lhd::feature
