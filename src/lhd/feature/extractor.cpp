#include "lhd/feature/extractor.hpp"

#include "lhd/obs/registry.hpp"
#include "lhd/obs/timer.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::feature {

namespace {

class DensityExtractor final : public Extractor {
 public:
  explicit DensityExtractor(DensityConfig config) : config_(config) {}
  std::string name() const override { return "density"; }
  std::vector<float> extract(const data::Clip& clip) const override {
    return density_features(clip, config_);
  }
  std::array<int, 3> shape() const override {
    return {1, 1, config_.grid * config_.grid};
  }

 private:
  DensityConfig config_;
};

class CcasExtractor final : public Extractor {
 public:
  explicit CcasExtractor(CcasConfig config) : config_(config) {}
  std::string name() const override { return "ccas"; }
  std::vector<float> extract(const data::Clip& clip) const override {
    return ccas_features(clip, config_);
  }
  std::array<int, 3> shape() const override {
    return {1, 1, config_.rings * config_.sectors};
  }

 private:
  CcasConfig config_;
};

class DctExtractor final : public Extractor {
 public:
  explicit DctExtractor(DctConfig config) : config_(config) {}
  std::string name() const override { return "dct-tensor"; }
  std::vector<float> extract(const data::Clip& clip) const override {
    return dct_tensor(clip, config_).values;
  }
  std::array<int, 3> shape() const override {
    // All benchmark clips share window_nm = 1024; derive grid from config.
    const int px = static_cast<int>(1024 / config_.pixel_nm);
    const int g = px / config_.block;
    return {config_.coefficients, g, g};
  }

 private:
  DctConfig config_;
};

}  // namespace

std::unique_ptr<Extractor> make_density_extractor(DensityConfig config) {
  return std::make_unique<DensityExtractor>(config);
}

std::unique_ptr<Extractor> make_ccas_extractor(CcasConfig config) {
  return std::make_unique<CcasExtractor>(config);
}

std::unique_ptr<Extractor> make_dct_extractor(DctConfig config) {
  return std::make_unique<DctExtractor>(config);
}

std::vector<std::vector<float>> extract_all(const Extractor& extractor,
                                            const data::Dataset& ds) {
  // Per-feature-kind cost profile: one wall-clock observation per batch
  // keyed by the extractor's name, plus a clip tally. Kept outside the
  // per-clip loop so the parallel hot path stays untouched.
  double batch_seconds = 0.0;
  std::vector<std::vector<float>> rows(ds.size());
  {
    obs::ScopedTimer timer(batch_seconds);
    ThreadPool::global().parallel_for(0, ds.size(), [&](std::size_t i) {
      rows[i] = extractor.extract(ds[i]);
    });
  }
  if (obs::enabled() && !ds.empty()) {
    auto& reg = obs::Registry::global();
    const std::string kind = "feature." + extractor.name();
    reg.add(kind + ".clips", ds.size());
    reg.observe(kind + ".seconds", batch_seconds);
    reg.observe(kind + ".us_per_clip",
                1e6 * batch_seconds / static_cast<double>(ds.size()));
  }
  return rows;
}

std::vector<float> signed_labels(const data::Dataset& ds) {
  std::vector<float> y(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    y[i] = ds[i].is_hotspot() ? 1.0f : -1.0f;
  }
  return y;
}

}  // namespace lhd::feature
