#pragma once
// Adaptive squish pattern representation (Yang et al., ASP-DAC'19): a
// lossless topological encoding of a Manhattan clip. All distinct x and y
// edge coordinates define a non-uniform grid; the clip is then a small
// binary *topology matrix* (which grid cells are covered) plus two *delta
// vectors* (the geometric spacing between consecutive cut lines).
//
// As a fixed-length feature, the topology matrix and delta vectors are
// embedded into a max_cuts×max_cuts frame (clips with more distinct
// coordinates than max_cuts are squished adaptively by merging the
// nearest cut lines first — the "adaptive" part of the representation).

#include <memory>
#include <vector>

#include "lhd/data/clip.hpp"

namespace lhd::feature {

struct SquishConfig {
  int max_cuts = 24;  ///< topology frame side (cells = max_cuts-1 per axis)
};

/// The exact (pre-embedding) squish encoding of a rect set.
struct SquishPattern {
  std::vector<geom::Coord> x_cuts;  ///< ascending distinct x coordinates
  std::vector<geom::Coord> y_cuts;  ///< ascending distinct y coordinates
  /// topology[j * (x_cuts-1) + i] = 1 iff cell (i, j) is covered.
  std::vector<std::uint8_t> topology;

  int nx() const { return static_cast<int>(x_cuts.size()) - 1; }
  int ny() const { return static_cast<int>(y_cuts.size()) - 1; }
};

/// Exact squish encoding (lossless: rect set can be reconstructed from it).
SquishPattern squish_encode(const std::vector<geom::Rect>& rects,
                            geom::Coord window_nm);

/// Reconstruct the covered-area rect set from a squish pattern (one rect
/// per covered cell; adjacent cells are not merged).
std::vector<geom::Rect> squish_decode(const SquishPattern& pattern);

/// Fixed-length feature: the topology matrix embedded into a
/// (max_cuts-1)² frame, followed by the two normalized delta vectors
/// (max_cuts-1 entries each). When the clip has more cuts than max_cuts,
/// the closest-together cut lines are merged first (adaptive squish).
std::vector<float> squish_features(const data::Clip& clip,
                                   const SquishConfig& config = {});

class Extractor;  // forward declaration (extractor.hpp)
std::unique_ptr<Extractor> make_squish_extractor(SquishConfig config = {});

}  // namespace lhd::feature
