#include "lhd/feature/dct.hpp"

#include <cmath>
#include <map>

#include "lhd/util/check.hpp"
#include "lhd/util/thread_annotations.hpp"

namespace lhd::feature {

namespace {

/// Lazily-built per-size lookup table shared by every extraction thread.
/// The builder runs under the cache mutex, so each size is computed once;
/// returned references stay valid for the process lifetime (std::map
/// nodes are stable), so callers hold them lock-free.
template <typename V>
class SizeCache {
 public:
  template <typename Build>
  const V& get(int n, Build build) LHD_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    auto it = entries_.find(n);
    if (it != entries_.end()) return it->second;
    return entries_.emplace(n, build(n)).first->second;
  }

 private:
  Mutex mu_;
  std::map<int, V> entries_ LHD_GUARDED_BY(mu_);
};

/// Orthonormal DCT-II basis matrix C (n×n): C[k][i] = s(k) cos(pi(2i+1)k/2n).
const std::vector<float>& dct_matrix(int n) {
  static SizeCache<std::vector<float>> cache;
  return cache.get(n, [](int size) {
    std::vector<float> c(static_cast<std::size_t>(size) * size);
    const double pi = 3.14159265358979323846;
    for (int k = 0; k < size; ++k) {
      const double s = (k == 0) ? std::sqrt(1.0 / size) : std::sqrt(2.0 / size);
      for (int i = 0; i < size; ++i) {
        c[static_cast<std::size_t>(k) * size + i] = static_cast<float>(
            s * std::cos(pi * (2 * i + 1) * k / (2.0 * size)));
      }
    }
    return c;
  });
}

// out = A * B (n×n, row-major).
void matmul(const float* a, const float* b, float* out, int n) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < n; ++k) {
        acc += a[i * n + k] * b[k * n + j];
      }
      out[i * n + j] = acc;
    }
  }
}

// out = A * B^T.
void matmul_bt(const float* a, const float* b, float* out, int n) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < n; ++k) {
        acc += a[i * n + k] * b[j * n + k];
      }
      out[i * n + j] = acc;
    }
  }
}

// out = A^T * B.
void matmul_at(const float* a, const float* b, float* out, int n) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < n; ++k) {
        acc += a[k * n + i] * b[k * n + j];
      }
      out[i * n + j] = acc;
    }
  }
}

}  // namespace

void dct2d(const float* in, float* out, int n) {
  const auto& c = dct_matrix(n);
  std::vector<float> tmp(static_cast<std::size_t>(n) * n);
  matmul(c.data(), in, tmp.data(), n);        // C * X
  matmul_bt(tmp.data(), c.data(), out, n);    // (C X) C^T
}

void idct2d(const float* in, float* out, int n) {
  const auto& c = dct_matrix(n);
  std::vector<float> tmp(static_cast<std::size_t>(n) * n);
  matmul_at(c.data(), in, tmp.data(), n);     // C^T * Y
  matmul(tmp.data(), c.data(), out, n);       // (C^T Y) C
}

const std::vector<int>& zigzag_order(int n) {
  static SizeCache<std::vector<int>> cache;
  return cache.get(n, [](int size) {
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(size) * size);
    // Walk anti-diagonals d = row+col, alternating direction.
    for (int d = 0; d < 2 * size - 1; ++d) {
      if (d % 2 == 0) {
        // up-right: start at (min(d, size-1), d - min(d, size-1))
        int r = std::min(d, size - 1);
        int c = d - r;
        while (r >= 0 && c < size) order.push_back(r-- * size + c++);
      } else {
        int c = std::min(d, size - 1);
        int r = d - c;
        while (c >= 0 && r < size) order.push_back(r++ * size + c--);
      }
    }
    return order;
  });
}

DctTensor dct_tensor_from_raster(const geom::FloatImage& raster,
                                 const DctConfig& config) {
  const int b = config.block;
  LHD_CHECK(b > 0 && config.coefficients > 0, "bad DCT config");
  LHD_CHECK(config.coefficients <= b * b, "more coefficients than block");
  LHD_CHECK_MSG(raster.width() % b == 0 && raster.height() % b == 0,
                "raster not divisible by block " << b);
  const int gw = raster.width() / b;
  const int gh = raster.height() / b;
  const auto& zz = zigzag_order(b);

  DctTensor t;
  t.channels = config.coefficients;
  t.height = gh;
  t.width = gw;
  t.values.assign(
      static_cast<std::size_t>(t.channels) * gh * gw, 0.0f);

  std::vector<float> block(static_cast<std::size_t>(b) * b);
  std::vector<float> coef(static_cast<std::size_t>(b) * b);
  for (int gy = 0; gy < gh; ++gy) {
    for (int gx = 0; gx < gw; ++gx) {
      for (int y = 0; y < b; ++y) {
        const float* row = raster.row(gy * b + y) + gx * b;
        for (int x = 0; x < b; ++x) {
          block[static_cast<std::size_t>(y) * b + x] = row[x];
        }
      }
      dct2d(block.data(), coef.data(), b);
      for (int c = 0; c < t.channels; ++c) {
        t.values[(static_cast<std::size_t>(c) * gh + gy) * gw + gx] =
            coef[static_cast<std::size_t>(zz[static_cast<std::size_t>(c)])];
      }
    }
  }
  return t;
}

DctTensor dct_tensor(const data::Clip& clip, const DctConfig& config) {
  return dct_tensor_from_raster(clip.raster(config.pixel_nm), config);
}

}  // namespace lhd::feature
