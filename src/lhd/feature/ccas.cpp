#include "lhd/feature/ccas.hpp"

#include <cmath>

#include "lhd/util/check.hpp"

namespace lhd::feature {

std::vector<float> ccas_from_raster(const geom::FloatImage& raster,
                                    const CcasConfig& config) {
  LHD_CHECK(config.rings > 0 && config.sectors > 0, "bad CCAS config");
  const int w = raster.width();
  const int h = raster.height();
  const double cx = (w - 1) / 2.0;
  const double cy = (h - 1) / 2.0;
  // Outermost ring reaches the clip corner so every pixel lands in a ring.
  const double max_r = std::hypot(cx + 1.0, cy + 1.0);
  const double ring_width = max_r / config.rings;

  const std::size_t n =
      static_cast<std::size_t>(config.rings) * config.sectors;
  std::vector<double> sum(n, 0.0);
  std::vector<double> count(n, 0.0);
  for (int y = 0; y < h; ++y) {
    const float* row = raster.row(y);
    for (int x = 0; x < w; ++x) {
      const double dx = x - cx;
      const double dy = y - cy;
      int ring = static_cast<int>(std::hypot(dx, dy) / ring_width);
      if (ring >= config.rings) ring = config.rings - 1;
      // atan2 in [0, 2pi) -> sector index.
      double angle = std::atan2(dy, dx);
      if (angle < 0) angle += 6.283185307179586;
      int sector = static_cast<int>(angle / 6.283185307179586 *
                                    config.sectors);
      if (sector >= config.sectors) sector = config.sectors - 1;
      const std::size_t idx =
          static_cast<std::size_t>(ring) * config.sectors + sector;
      sum[idx] += row[x];
      count[idx] += 1.0;
    }
  }
  std::vector<float> out(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = count[i] > 0 ? static_cast<float>(sum[i] / count[i]) : 0.0f;
  }
  return out;
}

std::vector<float> ccas_features(const data::Clip& clip,
                                 const CcasConfig& config) {
  return ccas_from_raster(clip.raster(config.pixel_nm), config);
}

}  // namespace lhd::feature
