#pragma once
// Concentric-circle area sampling (CCAS) — the rotation-tolerant feature
// used by several shallow hotspot detectors: average pattern coverage over
// concentric rings around the clip centre, optionally split into angular
// sectors for orientation sensitivity.

#include <vector>

#include "lhd/data/clip.hpp"

namespace lhd::feature {

struct CcasConfig {
  geom::Coord pixel_nm = 8;
  int rings = 16;    ///< number of concentric rings covering the clip
  int sectors = 4;   ///< angular sectors per ring (1 = fully rotation-invariant)
};

/// Feature vector of length rings*sectors, ring-major.
std::vector<float> ccas_features(const data::Clip& clip,
                                 const CcasConfig& config = {});

std::vector<float> ccas_from_raster(const geom::FloatImage& raster,
                                    const CcasConfig& config);

}  // namespace lhd::feature
