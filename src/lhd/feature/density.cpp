#include "lhd/feature/density.hpp"

#include "lhd/util/check.hpp"

namespace lhd::feature {

std::vector<float> density_from_raster(const geom::FloatImage& raster,
                                       int grid) {
  LHD_CHECK(grid > 0, "grid must be positive");
  LHD_CHECK_MSG(raster.width() % grid == 0 && raster.height() % grid == 0,
                "raster " << raster.width() << "x" << raster.height()
                          << " not divisible by grid " << grid);
  const int bx = raster.width() / grid;
  const int by = raster.height() / grid;
  std::vector<float> out(static_cast<std::size_t>(grid) * grid, 0.0f);
  for (int y = 0; y < raster.height(); ++y) {
    const float* row = raster.row(y);
    const int gy = y / by;
    for (int x = 0; x < raster.width(); ++x) {
      out[static_cast<std::size_t>(gy) * grid + x / bx] += row[x];
    }
  }
  const float norm = 1.0f / (static_cast<float>(bx) * static_cast<float>(by));
  for (auto& v : out) v *= norm;
  return out;
}

std::vector<float> density_features(const data::Clip& clip,
                                    const DensityConfig& config) {
  return density_from_raster(clip.raster(config.pixel_nm), config.grid);
}

}  // namespace lhd::feature
