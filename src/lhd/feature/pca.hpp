#pragma once
// Principal component analysis via power iteration with deflation — used to
// compress density/CCAS features for the shallow learners (the classic
// flow: handcrafted features -> PCA -> SVM/boosting).

#include <vector>

#include "lhd/util/rng.hpp"

namespace lhd::feature {

class Pca {
 public:
  /// Fit `components` principal directions of the (centred) data. Power
  /// iteration with deflation; deterministic given the rng seed.
  void fit(const std::vector<std::vector<float>>& rows, int components,
           Rng& rng, int iterations = 100);

  /// Project one row onto the fitted components.
  std::vector<float> transform(const std::vector<float>& row) const;
  std::vector<std::vector<float>> transform_all(
      const std::vector<std::vector<float>>& rows) const;

  bool fitted() const { return !components_.empty(); }
  int n_components() const { return static_cast<int>(components_.size()); }
  /// Eigenvalue (variance) of each component, descending.
  const std::vector<float>& explained_variance() const { return variance_; }
  const std::vector<std::vector<float>>& components() const {
    return components_;
  }

 private:
  std::vector<float> mean_;
  std::vector<std::vector<float>> components_;  // each of length dim
  std::vector<float> variance_;
};

}  // namespace lhd::feature
