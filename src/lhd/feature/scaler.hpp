#pragma once
// Per-dimension standardization (zero mean, unit variance), fit on the
// training set and applied to both splits — shallow learners (SVM, logistic
// regression) need it for sane convergence.

#include <vector>

namespace lhd::feature {

class Scaler {
 public:
  /// Fit mean/stddev per dimension. Dimensions with ~zero variance are
  /// passed through unscaled (std treated as 1).
  void fit(const std::vector<std::vector<float>>& rows);

  /// In-place transform of one row.
  void transform(std::vector<float>& row) const;
  void transform_all(std::vector<std::vector<float>>& rows) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return std_; }

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

}  // namespace lhd::feature
