#pragma once
// Density grid features — the classic "shallow ML era" layout encoding:
// divide the clip into g×g blocks and record the pattern area fraction of
// each block.

#include <vector>

#include "lhd/data/clip.hpp"

namespace lhd::feature {

struct DensityConfig {
  geom::Coord pixel_nm = 8;  ///< raster resolution before block averaging
  int grid = 16;             ///< g×g output blocks
};

/// Extract the g*g density vector (row-major) for one clip.
std::vector<float> density_features(const data::Clip& clip,
                                    const DensityConfig& config = {});

/// Block-average an already-rasterized image.
std::vector<float> density_from_raster(const geom::FloatImage& raster,
                                       int grid);

}  // namespace lhd::feature
