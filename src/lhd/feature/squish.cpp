#include "lhd/feature/squish.hpp"

#include <algorithm>

#include "lhd/feature/extractor.hpp"
#include "lhd/util/check.hpp"

namespace lhd::feature {

using geom::Coord;
using geom::Rect;

SquishPattern squish_encode(const std::vector<Rect>& rects,
                            Coord window_nm) {
  LHD_CHECK(window_nm > 0, "window must be positive");
  SquishPattern p;
  p.x_cuts = {0, window_nm};
  p.y_cuts = {0, window_nm};
  for (const auto& r : rects) {
    p.x_cuts.push_back(std::clamp(r.xlo, Coord{0}, window_nm));
    p.x_cuts.push_back(std::clamp(r.xhi, Coord{0}, window_nm));
    p.y_cuts.push_back(std::clamp(r.ylo, Coord{0}, window_nm));
    p.y_cuts.push_back(std::clamp(r.yhi, Coord{0}, window_nm));
  }
  auto dedupe = [](std::vector<Coord>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedupe(p.x_cuts);
  dedupe(p.y_cuts);

  const int nx = p.nx();
  const int ny = p.ny();
  p.topology.assign(static_cast<std::size_t>(nx) * ny, 0);
  for (const auto& r : rects) {
    const auto ix0 = std::lower_bound(p.x_cuts.begin(), p.x_cuts.end(), r.xlo) -
                     p.x_cuts.begin();
    const auto ix1 = std::lower_bound(p.x_cuts.begin(), p.x_cuts.end(), r.xhi) -
                     p.x_cuts.begin();
    const auto iy0 = std::lower_bound(p.y_cuts.begin(), p.y_cuts.end(), r.ylo) -
                     p.y_cuts.begin();
    const auto iy1 = std::lower_bound(p.y_cuts.begin(), p.y_cuts.end(), r.yhi) -
                     p.y_cuts.begin();
    for (auto j = iy0; j < iy1; ++j) {
      for (auto i = ix0; i < ix1; ++i) {
        p.topology[static_cast<std::size_t>(j) * nx + static_cast<std::size_t>(i)] = 1;
      }
    }
  }
  return p;
}

std::vector<Rect> squish_decode(const SquishPattern& p) {
  std::vector<Rect> out;
  const int nx = p.nx();
  const int ny = p.ny();
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (p.topology[static_cast<std::size_t>(j) * nx + i]) {
        out.emplace_back(p.x_cuts[static_cast<std::size_t>(i)],
                         p.y_cuts[static_cast<std::size_t>(j)],
                         p.x_cuts[static_cast<std::size_t>(i) + 1],
                         p.y_cuts[static_cast<std::size_t>(j) + 1]);
      }
    }
  }
  return out;
}

namespace {

/// Adaptive reduction: merge the two closest cut lines until at most
/// max_cuts remain. Merging cut k into k-1 ORs the corresponding
/// topology rows/columns (the squished cells inherit any coverage).
void reduce_axis(std::vector<Coord>& cuts, std::vector<std::uint8_t>& topo,
                 int& nx, int& ny, bool is_x, int max_cuts) {
  while (static_cast<int>(cuts.size()) > max_cuts) {
    // Find the narrowest interval, then delete one of its (interior)
    // endpoints — the window borders at the ends are never removed.
    std::size_t narrow = 0;
    Coord best_gap = cuts[1] - cuts[0];
    for (std::size_t k = 1; k + 1 < cuts.size(); ++k) {
      const Coord gap = cuts[k + 1] - cuts[k];
      if (gap < best_gap) {
        best_gap = gap;
        narrow = k;
      }
    }
    // Interval `narrow` spans cuts [narrow, narrow+1]. Prefer removing its
    // right endpoint; fall back to the left one when the right endpoint is
    // the window border. (cuts.size() >= 4 here since max_cuts >= 3.)
    std::size_t best = narrow + 1;
    if (best == cuts.size() - 1) best = narrow;
    LHD_CHECK(best > 0 && best < cuts.size() - 1, "squish merge invariant");
    // Removing cut `best` merges cells best-1 and best along this axis.
    const int merge_cell = static_cast<int>(best) - 1;
    std::vector<std::uint8_t> next;
    if (is_x) {
      next.assign(static_cast<std::size_t>(nx - 1) * ny, 0);
      for (int j = 0; j < ny; ++j) {
        for (int i = 0, o = 0; i < nx; ++i) {
          const std::uint8_t v = topo[static_cast<std::size_t>(j) * nx + i];
          if (i == merge_cell) {
            next[static_cast<std::size_t>(j) * (nx - 1) + o] |= v;
          } else if (i == merge_cell + 1) {
            next[static_cast<std::size_t>(j) * (nx - 1) + o] |= v;
            ++o;
          } else {
            next[static_cast<std::size_t>(j) * (nx - 1) + o] |= v;
            ++o;
          }
        }
      }
      --nx;
    } else {
      next.assign(static_cast<std::size_t>(nx) * (ny - 1), 0);
      for (int j = 0, o = 0; j < ny; ++j) {
        const bool merge_row = (j == merge_cell);
        for (int i = 0; i < nx; ++i) {
          next[static_cast<std::size_t>(o) * nx + i] |=
              topo[static_cast<std::size_t>(j) * nx + i];
        }
        if (!merge_row) ++o;
      }
      --ny;
    }
    topo = std::move(next);
    cuts.erase(cuts.begin() + static_cast<std::ptrdiff_t>(best));
  }
}

}  // namespace

std::vector<float> squish_features(const data::Clip& clip,
                                   const SquishConfig& config) {
  LHD_CHECK(config.max_cuts >= 3, "max_cuts must be >= 3");
  SquishPattern p = squish_encode(clip.rects, clip.window_nm);
  int nx = p.nx();
  int ny = p.ny();
  reduce_axis(p.x_cuts, p.topology, nx, ny, /*is_x=*/true, config.max_cuts);
  reduce_axis(p.y_cuts, p.topology, nx, ny, /*is_x=*/false, config.max_cuts);

  const int cells = config.max_cuts - 1;
  std::vector<float> out(
      static_cast<std::size_t>(cells) * cells + 2 * static_cast<std::size_t>(cells),
      0.0f);
  // Topology matrix, centred in the frame.
  const int off_x = (cells - nx) / 2;
  const int off_y = (cells - ny) / 2;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      out[static_cast<std::size_t>(j + off_y) * cells + (i + off_x)] =
          static_cast<float>(p.topology[static_cast<std::size_t>(j) * nx + i]);
    }
  }
  // Delta vectors, normalized by the window size.
  const auto base = static_cast<std::size_t>(cells) * cells;
  const float inv = 1.0f / static_cast<float>(clip.window_nm);
  for (int i = 0; i < nx; ++i) {
    out[base + static_cast<std::size_t>(i + off_x)] =
        static_cast<float>(p.x_cuts[static_cast<std::size_t>(i) + 1] -
                           p.x_cuts[static_cast<std::size_t>(i)]) *
        inv;
  }
  for (int j = 0; j < ny; ++j) {
    out[base + static_cast<std::size_t>(cells) +
        static_cast<std::size_t>(j + off_y)] =
        static_cast<float>(p.y_cuts[static_cast<std::size_t>(j) + 1] -
                           p.y_cuts[static_cast<std::size_t>(j)]) *
        inv;
  }
  return out;
}

namespace {

class SquishExtractor final : public Extractor {
 public:
  explicit SquishExtractor(SquishConfig config) : config_(config) {}
  std::string name() const override { return "squish"; }
  std::vector<float> extract(const data::Clip& clip) const override {
    return squish_features(clip, config_);
  }
  std::array<int, 3> shape() const override {
    const int cells = config_.max_cuts - 1;
    return {1, 1, cells * cells + 2 * cells};
  }

 private:
  SquishConfig config_;
};

}  // namespace

std::unique_ptr<Extractor> make_squish_extractor(SquishConfig config) {
  return std::make_unique<SquishExtractor>(config);
}

}  // namespace lhd::feature
