#pragma once
// Block-DCT feature tensor (Yang et al., "feature tensor generation"):
// split the clip raster into B×B blocks, apply a 2-D DCT-II to each block,
// and keep the first K coefficients in zig-zag order. The result is a
// K-channel tensor whose spatial layout preserves the clip's geometry —
// the native input of the deep-learning detector — with ~(K/B²)× the
// storage of the raw raster and minimal information loss (low-frequency
// coefficients dominate Manhattan layouts).

#include <vector>

#include "lhd/data/clip.hpp"

namespace lhd::feature {

struct DctConfig {
  geom::Coord pixel_nm = 8;
  int block = 8;        ///< DCT block size in pixels
  int coefficients = 16;///< zig-zag-truncated coefficients kept per block (of block²)
};

/// Feature tensor in CHW order: shape [coefficients][H/block][W/block].
struct DctTensor {
  int channels = 0, height = 0, width = 0;
  std::vector<float> values;  ///< channels*height*width, CHW row-major

  float at(int c, int y, int x) const {
    return values[(static_cast<std::size_t>(c) * height + y) * width + x];
  }
};

DctTensor dct_tensor(const data::Clip& clip, const DctConfig& config = {});
DctTensor dct_tensor_from_raster(const geom::FloatImage& raster,
                                 const DctConfig& config);

/// 2-D DCT-II of one square block (exposed for testing). `n` is the block
/// side; input/output are n*n row-major. Orthonormal scaling.
void dct2d(const float* in, float* out, int n);
/// Inverse (DCT-III with orthonormal scaling) — used by round-trip tests.
void idct2d(const float* in, float* out, int n);

/// Zig-zag scan order for an n×n block (exposed for testing): returns
/// indices into the row-major block, lowest frequency first.
const std::vector<int>& zigzag_order(int n);

}  // namespace lhd::feature
