#pragma once
// Unified feature-extraction interface: every detector consumes features
// through this, so feature choice and learner choice compose freely (the
// Fig. 6 experiment swaps extractors under fixed learners).

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "lhd/data/dataset.hpp"
#include "lhd/feature/ccas.hpp"
#include "lhd/feature/dct.hpp"
#include "lhd/feature/density.hpp"

namespace lhd::feature {

class Extractor {
 public:
  virtual ~Extractor() = default;

  virtual std::string name() const = 0;

  /// Flat feature vector for one clip (CHW-flattened for tensor features).
  virtual std::vector<float> extract(const data::Clip& clip) const = 0;

  /// Tensor shape {channels, height, width}; flat features report
  /// {1, 1, dim}.
  virtual std::array<int, 3> shape() const = 0;

  int dim() const {
    const auto s = shape();
    return s[0] * s[1] * s[2];
  }
};

std::unique_ptr<Extractor> make_density_extractor(DensityConfig config = {});
std::unique_ptr<Extractor> make_ccas_extractor(CcasConfig config = {});
std::unique_ptr<Extractor> make_dct_extractor(DctConfig config = {});

/// Extract features for a whole dataset (parallel over clips). Row i is
/// clip i's feature vector.
std::vector<std::vector<float>> extract_all(const Extractor& extractor,
                                            const data::Dataset& ds);

/// Labels as +1 (hotspot) / -1 (non-hotspot) floats, aligned with
/// extract_all rows.
std::vector<float> signed_labels(const data::Dataset& ds);

}  // namespace lhd::feature
