#pragma once
/// @file metrics.hpp
/// @brief ICCAD-2012-contest-style evaluation metrics.
///
///   accuracy     = hotspot detection rate (recall on the hotspot class)
///   false alarms = count of non-hotspots flagged
///   ODST         = "overall detection simulation time": detector runtime
///                  plus the lithography-simulation time needed to verify
///                  every alarm it raises (tp + fp clips).
///
/// Thread-safety: everything here is a pure function over its arguments
/// (Confusion is a plain value type); all of it is safe to call
/// concurrently with no shared state.

#include <cstddef>
#include <vector>

#include "lhd/data/dataset.hpp"

namespace lhd::core {

struct Confusion {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
  std::size_t hotspots() const { return tp + fn; }
  std::size_t alarms() const { return tp + fp; }

  /// Hotspot detection rate — the contest's "accuracy".
  double accuracy() const {
    return hotspots() ? static_cast<double>(tp) / static_cast<double>(hotspots())
                      : 1.0;
  }
  double false_alarm_rate() const {
    const auto n = fp + tn;
    return n ? static_cast<double>(fp) / static_cast<double>(n) : 0.0;
  }
  double precision() const {
    return alarms() ? static_cast<double>(tp) / static_cast<double>(alarms())
                    : 1.0;
  }
  double f1() const {
    const double p = precision();
    const double r = accuracy();
    return (p + r) > 0 ? 2 * p * r / (p + r) : 0.0;
  }
  /// Plain classification accuracy over both classes.
  double overall_accuracy() const {
    return total() ? static_cast<double>(tp + tn) / static_cast<double>(total())
                   : 0.0;
  }
};

/// Compare predictions against dataset labels.
Confusion evaluate(const std::vector<bool>& predictions,
                   const data::Dataset& ds);

/// ODST in seconds: detector test time + sim_seconds_per_clip * alarms.
double odst_seconds(const Confusion& c, double test_seconds,
                    double sim_seconds_per_clip);

/// Wall time of simulating every clip instead (the no-detector baseline).
double full_simulation_seconds(std::size_t clips,
                               double sim_seconds_per_clip);

/// Threshold-free ranking quality: area under the ROC curve of detector
/// scores against the dataset labels (Mann–Whitney U statistic, ties count
/// half). Returns 0.5 when either class is absent.
double roc_auc(const std::vector<float>& scores, const data::Dataset& ds);

}  // namespace lhd::core
