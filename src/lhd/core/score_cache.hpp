#pragma once
/// @file score_cache.hpp
/// @brief Sharded, thread-safe memo of detector scores keyed by canonical
/// clip content (`data::CanonicalClip` + its 64-bit hash) — the cache the
/// deduplicated full-chip scan consults so each distinct layout pattern is
/// classified once, not once per occurrence.
///
/// Thread-safety: every method is safe to call concurrently. Entries are
/// spread over N shards by key hash; each shard is an `lhd::Mutex`-guarded
/// hash map with FIFO eviction (annotated with LHD_GUARDED_BY and
/// machine-checked under Clang, see docs/STATIC_ANALYSIS.md). Hit/miss/
/// eviction tallies are relaxed atomics. Lookups compare the full
/// canonical form, never just the 64-bit hash, so a hash collision can
/// degrade the hit rate but never alias two distinct patterns — cached
/// scores are exact by construction.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "lhd/data/clip_hash.hpp"
#include "lhd/util/thread_annotations.hpp"

namespace lhd::core {

class ScoreCache {
 public:
  /// Monotonic totals since construction (or the last reset_stats()).
  /// Totals are *cumulative*: a cache serving several scans keeps counting
  /// across them. Consumers that need per-scan numbers (the scan's
  /// ScanResult does) must snapshot before and report the difference —
  /// that is what operator- / delta_since() are for.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Full-key hash collisions observed by insert(): a resident entry
    /// with the same 64-bit hash but a *different* canonical key was
    /// replaced. Always exact (never a correctness event — lookups compare
    /// the full key), but a high rate means patterns are thrashing one
    /// hash slot.
    std::uint64_t collisions = 0;

    friend bool operator==(const Stats&, const Stats&) = default;
    /// Component-wise difference: `stats() - snapshot` is the activity
    /// since `snapshot` was taken (valid when no reset_stats() intervened
    /// and, for an exact attribution, no concurrent user ran in between).
    friend Stats operator-(const Stats& a, const Stats& b) {
      return {a.hits - b.hits, a.misses - b.misses,
              a.evictions - b.evictions, a.collisions - b.collisions};
    }
  };

  /// `capacity` bounds the total entry count across all shards *exactly*:
  /// each shard holds capacity/shards entries and the remainder is spread
  /// one-per-shard across the first capacity%shards shards, so
  /// ScoreCache(20, 16) really holds 20 entries, not 16. 0 disables
  /// storage entirely — every lookup misses and inserts are dropped, which
  /// keeps the dedup-scan control flow valid with caching effectively off.
  explicit ScoreCache(std::size_t capacity, std::size_t shard_count = 16);

  /// The memoized score for `key`, or nullopt. `hash` must be
  /// `data::canonical_hash(key)` (callers already have it — recomputing
  /// per probe would double the canonicalization cost).
  std::optional<float> lookup(const data::CanonicalClip& key,
                              std::uint64_t hash) const;

  /// Memoize `score` for `key`. First writer wins on a duplicate: a
  /// concurrent insert of the *same* key (two shards scoring the same
  /// pattern at once) is a no-op, and since scores are a deterministic
  /// function of the canonical form the surviving entry is identical
  /// either way. A resident entry whose key *differs* under the same
  /// 64-bit hash (a full-key collision) is replaced — both scores are
  /// exact, and keeping the incumbent forever would make the newer
  /// pattern permanently uncacheable (counted in Stats::collisions).
  /// Evicts the shard's oldest entry when the shard is full.
  void insert(const data::CanonicalClip& key, std::uint64_t hash,
              float score);

  std::size_t capacity() const { return capacity_; }
  /// Current entry count across shards (takes every shard lock; O(shards)).
  std::size_t size() const;

  Stats stats() const;
  void reset_stats();

 private:
  struct Entry {
    data::CanonicalClip key;
    float score = 0.0f;
  };

  /// One lock's worth of the key space. The FIFO queue mirrors the map's
  /// insertion order and drives eviction.
  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<std::uint64_t, Entry> map LHD_GUARDED_BY(mutex);
    std::deque<std::uint64_t> fifo LHD_GUARDED_BY(mutex);
  };

  std::size_t shard_index(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash % shard_count_);
  }
  Shard& shard_for(std::uint64_t hash) const {
    return shards_[shard_index(hash)];
  }
  /// Entry bound for shard `index`: the uniform share plus one of the
  /// capacity % shard_count remainder slots, so the per-shard bounds sum
  /// to exactly capacity_.
  std::size_t shard_capacity(std::size_t index) const {
    return per_shard_base_ + (index < per_shard_remainder_ ? 1 : 0);
  }

  std::size_t capacity_ = 0;
  std::size_t shard_count_ = 1;
  std::size_t per_shard_base_ = 0;
  std::size_t per_shard_remainder_ = 0;
  std::unique_ptr<Shard[]> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> collisions_{0};
};

}  // namespace lhd::core
