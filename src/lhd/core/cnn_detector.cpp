#include "lhd/core/cnn_detector.hpp"

#include "lhd/data/augment.hpp"
#include "lhd/exec/backend.hpp"
#include "lhd/exec/registry.hpp"
#include "lhd/util/log.hpp"
#include "lhd/util/stopwatch.hpp"

namespace lhd::core {

CnnDetector::CnnDetector(std::string name, CnnDetectorConfig config)
    : name_(std::move(name)), config_(config) {
  extractor_ = feature::make_dct_extractor(config_.dct);
  const auto shape = extractor_->shape();
  net_ = nn::make_hotspot_cnn(shape[0], shape[1]);
  trainer_ = std::make_unique<nn::Trainer>(
      &net_, std::array<int, 3>{shape[0], shape[1], shape[2]});
}

void CnnDetector::train(const data::Dataset& train_set) {
  LHD_CHECK(!train_set.empty(), "empty training set");
  Stopwatch sw;

  Rng rng(config_.seed);
  data::Dataset working;
  const data::Dataset* source = &train_set;
  if (config_.augment_factor > 1 && config_.mirror_augment) {
    working = data::augment_dataset(train_set, config_.augment_factor,
                                    config_.augment_shift_nm, rng);
    source = &working;
  }
  if (config_.upsample_ratio > 0) {
    working = config_.mirror_augment
                  ? data::upsample_minority_mirror(
                        *source, config_.upsample_ratio, rng,
                        config_.augment_shift_nm)
                  : data::upsample_minority(*source,
                                            config_.upsample_ratio, rng);
    source = &working;
  }

  const auto x = feature::extract_all(*extractor_, *source);
  const auto y = feature::signed_labels(*source);

  nn::TrainConfig base = config_.train;
  base.seed = config_.seed;
  switch (config_.mode) {
    case CnnTrainMode::Plain:
      history_ = trainer_->train(x, y, base);
      break;
    case CnnTrainMode::Biased: {
      nn::BiasedTrainConfig bl;
      bl.pretrain = base;
      bl.lambda = config_.bias_lambda;
      bl.bias_epochs = config_.bias_epochs;
      history_ = nn::train_biased(*trainer_, x, y, bl);
      break;
    }
    case CnnTrainMode::BatchBiased: {
      nn::BatchBiasedConfig bbl;
      bbl.pretrain = base;
      bbl.lambda_schedule = config_.lambda_schedule;
      bbl.epochs_per_stage = config_.epochs_per_stage;
      history_ = nn::train_batch_biased(*trainer_, x, y, bbl);
      break;
    }
  }
  LHD_LOG(Debug) << name_ << " trained on " << source->size() << " clips in "
                 << sw.seconds() << "s (" << history_.size() << " epochs)";
}

float CnnDetector::probability(const data::Clip& clip) const {
  return trainer_->predict_proba(extractor_->extract(clip));
}

float CnnDetector::score(const data::Clip& clip) const {
  return probability(clip) - 0.5f;
}

std::vector<float> CnnDetector::score_batch(std::span<const data::Clip> clips) const {
  if (clips.empty()) return {};
  std::vector<float> out(clips.size());
  const exec::ExecBackend& backend = exec::resolve();
  backend.submit_batches(
      clips.size(), exec::SubmitConfig{},
      [&](std::size_t lo, std::size_t hi) {
        nn::Rows rows(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          rows[i - lo] = extractor_->extract(clips[i]);
        }
        const auto probs = trainer_->predict_proba_batch(rows);
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = probs[i - lo] - 0.5f;
        }
      });
  return out;
}

bool CnnDetector::predict(const data::Clip& clip) const {
  return score(clip) > threshold_;
}

std::vector<bool> CnnDetector::predict_all(const data::Dataset& ds) const {
  nn::Rows rows(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    rows[i] = extractor_->extract(ds[i]);
  }
  const auto probs = trainer_->predict_proba_batch(rows);
  std::vector<bool> out(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    out[i] = probs[i] - 0.5f > threshold_;
  }
  return out;
}

}  // namespace lhd::core
