#pragma once
/// @file pipeline.hpp
/// @brief End-to-end experiment pipeline: train a detector on a suite,
/// evaluate it on the held-out split, time both phases, and compute
/// contest metrics — one call per (detector, suite) cell of the
/// comparison tables.
///
/// Thread-safety: run_experiment and threshold_sweep mutate the detector
/// they are given (training, threshold restore), so a detector instance
/// must not be shared across concurrent calls; internally both fan
/// side-effect-free scoring out across the global ThreadPool. Phase wall
/// times land in obs::Registry::global() ("pipeline.*") when obs is on.

#include <string>
#include <vector>

#include "lhd/core/detector.hpp"
#include "lhd/core/metrics.hpp"
#include "lhd/synth/builder.hpp"

namespace lhd::core {

struct EvalResult {
  std::string detector;
  std::string suite;
  Confusion confusion;
  double train_seconds = 0.0;
  double test_seconds = 0.0;
  double odst = 0.0;          ///< test + verification of alarms
  double full_sim = 0.0;      ///< simulate-everything baseline
  double speedup = 0.0;       ///< full_sim / odst
};

/// Train `detector` on `suite.train`, evaluate on `suite.test`.
/// `sim_seconds_per_clip` prices alarm verification (measure it with
/// litho::HotspotOracle::seconds_per_clip).
EvalResult run_experiment(Detector& detector, const synth::BuiltSuite& suite,
                          const std::string& suite_name,
                          double sim_seconds_per_clip);

struct SweepPoint {
  float threshold = 0.0f;
  Confusion confusion;
};

/// Accuracy/false-alarm trade-off: evaluate an already-trained detector at
/// each threshold (restores the original threshold afterwards).
std::vector<SweepPoint> threshold_sweep(Detector& detector,
                                        const data::Dataset& test,
                                        const std::vector<float>& thresholds);

}  // namespace lhd::core
