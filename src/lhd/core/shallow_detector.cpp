#include "lhd/core/shallow_detector.hpp"

#include "lhd/data/augment.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/log.hpp"
#include "lhd/util/stopwatch.hpp"

namespace lhd::core {

std::vector<float> Detector::score_batch(std::span<const data::Clip> clips) const {
  std::vector<float> out;
  out.reserve(clips.size());
  for (const auto& clip : clips) out.push_back(score(clip));
  return out;
}

std::vector<bool> Detector::predict_all(const data::Dataset& ds) const {
  std::vector<bool> out;
  out.reserve(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) out.push_back(predict(ds[i]));
  return out;
}

ShallowDetector::ShallowDetector(
    std::string name, std::unique_ptr<feature::Extractor> extractor,
    std::unique_ptr<ml::BinaryClassifier> classifier,
    ShallowDetectorConfig config)
    : name_(std::move(name)),
      extractor_(std::move(extractor)),
      classifier_(std::move(classifier)),
      config_(config) {
  LHD_CHECK(extractor_ != nullptr && classifier_ != nullptr,
            "null extractor/classifier");
}

void ShallowDetector::train(const data::Dataset& train_set) {
  LHD_CHECK(!train_set.empty(), "empty training set");
  Stopwatch sw;

  Rng rng(config_.seed);
  data::Dataset working;
  const data::Dataset* source = &train_set;
  if (config_.augment_factor > 1 && config_.mirror_augment) {
    working = data::augment_dataset(train_set, config_.augment_factor,
                                    config_.augment_shift_nm, rng);
    source = &working;
  }
  if (config_.upsample_ratio > 0) {
    working = config_.mirror_augment
                  ? data::upsample_minority_mirror(
                        *source, config_.upsample_ratio, rng,
                        config_.augment_shift_nm)
                  : data::upsample_minority(*source,
                                            config_.upsample_ratio, rng);
    source = &working;
  }

  auto x = feature::extract_all(*extractor_, *source);
  const auto y = feature::signed_labels(*source);

  if (config_.standardize) {
    scaler_.fit(x);
    scaler_.transform_all(x);
  }
  if (config_.pca_components > 0) {
    Rng pca_rng(config_.seed + 1);
    pca_.fit(x, config_.pca_components, pca_rng);
    x = pca_.transform_all(x);
  }
  classifier_->fit(x, y);
  LHD_LOG(Debug) << name_ << " trained on " << source->size() << " clips in "
                 << sw.seconds() << "s";
}

std::vector<float> ShallowDetector::features_for(
    const data::Clip& clip) const {
  auto f = extractor_->extract(clip);
  if (config_.standardize && scaler_.fitted()) scaler_.transform(f);
  if (config_.pca_components > 0 && pca_.fitted()) f = pca_.transform(f);
  return f;
}

float ShallowDetector::score(const data::Clip& clip) const {
  return classifier_->score(features_for(clip));
}

bool ShallowDetector::predict(const data::Clip& clip) const {
  return classifier_->predict(features_for(clip));
}

void ShallowDetector::set_threshold(float threshold) {
  classifier_->set_threshold(threshold);
}

float ShallowDetector::threshold() const { return classifier_->threshold(); }

}  // namespace lhd::core
