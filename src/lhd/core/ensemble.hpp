#pragma once
/// @file ensemble.hpp
/// @brief Detector ensembling — the survey's closing direction (and the
/// TCAD'21 BNN-ensemble follow-up): combine several trained detectors by
/// majority vote. Members may be heterogeneous (e.g. three CNN seeds, or
/// CNN + SVM + AdaBoost); scores are vote fractions, so thresholds stay
/// meaningful.
///
/// Thread-safety: follows the Detector contract — train() (which trains
/// every member) is exclusive; concurrent score()/predict() are safe
/// because they only fan out to the members' own thread-safe inference.

#include <memory>
#include <vector>

#include "lhd/core/detector.hpp"

namespace lhd::core {

class EnsembleDetector final : public Detector {
 public:
  /// Takes ownership of the member detectors. Must be non-empty.
  EnsembleDetector(std::string name,
                   std::vector<std::unique_ptr<Detector>> members);

  std::string name() const override { return name_; }

  /// Trains every member (members with distinct seeds diversify even on
  /// identical data).
  void train(const data::Dataset& train_set) override;

  /// Vote fraction minus 1/2: 0 means an exact tie, +1/2 unanimous hotspot.
  float score(const data::Clip& clip) const override;

  bool predict(const data::Clip& clip) const override {
    return score(clip) > threshold_;
  }

  void set_threshold(float threshold) override { threshold_ = threshold; }
  float threshold() const override { return threshold_; }

  std::size_t size() const { return members_.size(); }
  Detector& member(std::size_t i) { return *members_[i]; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Detector>> members_;
  float threshold_ = 0.0f;
};

/// Convenience: an ensemble of `n` same-kind detectors with distinct seeds
/// (kind as accepted by make_detector).
std::unique_ptr<EnsembleDetector> make_seed_ensemble(const std::string& kind,
                                                     int n,
                                                     std::uint64_t base_seed = 11);

}  // namespace lhd::core
