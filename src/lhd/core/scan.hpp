#pragma once
/// @file scan.hpp
/// @brief Full-chip hotspot scanning: slide a clip window over a flattened
/// layout and classify each window. Includes the two-stage flow the survey
/// highlights (cheap pattern-match prefilter proposing candidates, CNN
/// refining them) and a spatial index so window extraction is O(local).
///
/// The scan shards the window grid row-wise across a ThreadPool; shard
/// results are merged in row-major window order, so the hit list is
/// bit-identical for every thread count (ScanConfig::threads).
///
/// Thread-safety: ChipIndex is immutable after construction and all its
/// methods are const; concurrent query() calls are race-free as long as
/// each thread passes its own QueryScratch. scan_chip* may run on a shared
/// pool; the detector's score()/predict() must be thread-safe (true for
/// every in-tree detector). Scans record per-shard timings and window
/// tallies into obs::Registry::global() when observability is enabled —
/// instrumentation never changes scan results (asserted by
/// Scan.InstrumentedScanMatchesUninstrumented).

#include <cstdint>
#include <vector>

#include "lhd/core/detector.hpp"
#include "lhd/gds/model.hpp"

namespace lhd {
class ThreadPool;
}

namespace lhd::core {

/// Bucketed spatial index over a flattened rectangle soup. Degenerate
/// (empty) input rects are dropped on construction — they cannot be
/// bucketed and contribute nothing to any window. All methods are const
/// and safe to call concurrently; per-query dedupe state lives in an
/// explicit QueryScratch owned by the caller (one per thread).
class ChipIndex {
 public:
  /// Per-caller dedupe state for query(): a stamp per rect plus the current
  /// stamp value. Reusable across queries (that is the point — it avoids a
  /// per-query O(#rects) clear); create one per thread.
  class QueryScratch {
   public:
    QueryScratch() = default;

    /// Fast-forward the stamp counter, so wrap-around behaviour is testable
    /// without issuing 2^32 queries.
    void fast_forward(std::uint32_t value) { stamp_value_ = value; }

   private:
    friend class ChipIndex;
    std::vector<std::uint32_t> stamp_;  ///< dedupe marker per rect
    std::uint32_t stamp_value_ = 0;
  };

  ChipIndex(std::vector<geom::Rect> rects, geom::Coord bucket_nm = 2048);

  const geom::Rect& extent() const { return extent_; }
  std::size_t rect_count() const { return rects_.size(); }

  /// All rects overlapping `window`, clipped and translated to window-local
  /// coordinates. Race-free: concurrent queries are fine as long as each
  /// thread passes its own scratch.
  std::vector<geom::Rect> query(const geom::Rect& window,
                                QueryScratch& scratch) const;

  /// Convenience overload that allocates a scratch per call.
  std::vector<geom::Rect> query(const geom::Rect& window) const;

  /// Build directly from a GDS library's flattened layer.
  static ChipIndex from_library(const gds::Library& lib,
                                const std::string& top, std::int16_t layer);

 private:
  std::vector<geom::Rect> rects_;
  geom::Rect extent_;
  geom::Coord bucket_nm_;
  int bx_ = 0, by_ = 0;
  std::vector<std::vector<std::uint32_t>> buckets_;
};

struct ScanConfig {
  geom::Coord window_nm = 1024;
  geom::Coord stride_nm = 512;
  bool skip_empty = true;  ///< windows with no geometry are never hotspots
  /// Scan parallelism: 1 = serial (the degenerate case), 0 = one shard per
  /// hardware thread, N = shard the window grid N ways. Results are
  /// bit-identical across thread counts.
  std::size_t threads = 1;
};

struct ScanHit {
  geom::Rect window;
  float score = 0.0f;

  friend bool operator==(const ScanHit&, const ScanHit&) = default;
};

/// Per-shard accounting the scan reports alongside its results: how much
/// of the grid each shard covered and how long it spent. Shard wall times
/// are the load-balance view the aggregate `seconds` hides.
struct ShardStat {
  std::size_t windows = 0;   ///< windows this shard visited
  double seconds = 0.0;      ///< shard wall time (query + classify)
  double query_seconds = 0.0;  ///< portion spent in ChipIndex::query

  friend bool operator==(const ShardStat&, const ShardStat&) = default;
};

struct ScanResult {
  std::size_t windows_total = 0;    ///< windows visited
  std::size_t windows_classified = 0;  ///< windows the (final) detector saw
  std::size_t flagged = 0;
  double seconds = 0.0;
  std::vector<ScanHit> hits;
  /// One entry per shard, in shard (row-major) order; size() is the shard
  /// count actually used. Timing fields vary run to run; window counts are
  /// deterministic.
  std::vector<ShardStat> shards;
};

/// Single-stage scan: classify every (non-empty) window. Runs on
/// ThreadPool::global() when config.threads != 1; the detector's score()
/// must be thread-safe (true for every in-tree detector).
ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config);

/// As above but on a caller-supplied pool (e.g. a dedicated scan pool).
ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config, ThreadPool& pool);

/// Two-stage scan: `prefilter` proposes candidate windows (its alarms),
/// `refiner` classifies only those.
ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config);

ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config, ThreadPool& pool);

}  // namespace lhd::core
