#pragma once
/// @file scan.hpp
/// @brief Full-chip hotspot scanning: slide a clip window over a flattened
/// layout and classify each window. Includes the two-stage flow the survey
/// highlights (cheap pattern-match prefilter proposing candidates, CNN
/// refining them) and a spatial index so window extraction is O(local).
///
/// The scan shards the window grid row-wise across a ThreadPool; shard
/// results are merged in row-major window order, so the hit list is
/// bit-identical for every thread count (ScanConfig::threads).
///
/// Real layouts repeat the same local pattern across the chip, so the scan
/// can optionally deduplicate (ScanConfig::dedup): each window's geometry
/// is canonicalized (data/clip_hash.hpp), looked up in a scan-wide
/// ScoreCache shared by all shards, and only cache misses reach the
/// detector — batched through Detector::score_batch(). The dedup path
/// scores the *canonical* clip, so a pattern's score does not depend on
/// which occurrence or shard computed it: results are deterministic across
/// thread counts, cache capacities, and batch sizes, and identical to the
/// naive path whenever the detector's score is invariant under rect order
/// and whole-pattern translation (asserted by the dedup parity property
/// test). windows_classified becomes the number of *detector invocations*,
/// which a shared cache makes schedule-dependent — it is the one ScanResult
/// count that may differ run to run when dedup is on.
///
/// Real layouts are also *hierarchical* (SREF/AREF forests), so flattening
/// pays O(flattened area) before the dedup cache can rediscover the
/// repetition window-by-window. scan_library() with
/// ScanConfig::hierarchical exploits the hierarchy directly: it enumerates
/// instance placements from the structure tree (gds::Library::
/// layer_instances, memoized per-structure bboxes — the layer is never
/// flattened), indexes each distinct cell's geometry once, and keys every
/// window by its *replay key* — the sorted (cell, mirror, angle,
/// window-minus-origin offset) tuple per overlapping instance. Window
/// content is a pure function of that key, so interior windows of repeated
/// cells replay a memoized score instead of re-extracting geometry;
/// detector work shrinks to O(distinct geometry + stitch bands where
/// instances abut or overlap). The hit list stays bit-identical to the
/// flattened scan (asserted by the hierarchical parity property) under the
/// same precondition as dedup: the detector's score must be invariant
/// under rect order and whole-pattern translation.
///
/// Thread-safety: ChipIndex is immutable after construction and all its
/// methods are const; concurrent query() calls are race-free as long as
/// each thread passes its own QueryScratch. scan_chip* may run on a shared
/// pool; the detector's score()/predict() must be thread-safe (true for
/// every in-tree detector). The hierarchical instance-replay path shards
/// the same row-major window grid: per-shard state (replay key scratch,
/// per-cell QueryScratch, the DedupScorer) is thread-local, while the two
/// scan-wide memos — the ScoreCache and the replay cache (committed
/// key→score entries) — are internally synchronized (lhd::Mutex +
/// LHD_GUARDED_BY, machine-checked under Clang), so shards only exchange
/// *committed* scores and the merged hit list is bit-identical for every
/// thread count. A caller-supplied ScanConfig::cache may be shared across
/// *sequential* scans (each scan reports per-scan deltas via the
/// snapshot/delta Stats API); sharing one cache between *concurrent* scans
/// is safe for results but makes the per-scan hit/miss attribution
/// approximate. Scans record per-shard timings and window
/// tallies into obs::Registry::global() when observability is enabled —
/// instrumentation never changes scan results (asserted by
/// Scan.InstrumentedScanMatchesUninstrumented).

#include <cstdint>
#include <string>
#include <vector>

#include "lhd/core/detector.hpp"
#include "lhd/gds/model.hpp"

namespace lhd {
class ThreadPool;
}

namespace lhd::core {

class ScoreCache;

/// Bucketed spatial index over a flattened rectangle soup. Degenerate
/// (empty) input rects are dropped on construction — they cannot be
/// bucketed and contribute nothing to any window. All methods are const
/// and safe to call concurrently; per-query dedupe state lives in an
/// explicit QueryScratch owned by the caller (one per thread).
class ChipIndex {
 public:
  /// Per-caller dedupe state for query(): a stamp per rect plus the current
  /// stamp value. Reusable across queries (that is the point — it avoids a
  /// per-query O(#rects) clear); create one per thread.
  class QueryScratch {
   public:
    QueryScratch() = default;

    /// Fast-forward the stamp counter, so wrap-around behaviour is testable
    /// without issuing 2^32 queries.
    void fast_forward(std::uint32_t value) { stamp_value_ = value; }

   private:
    friend class ChipIndex;
    std::vector<std::uint32_t> stamp_;  ///< dedupe marker per rect
    std::uint32_t stamp_value_ = 0;
  };

  ChipIndex(std::vector<geom::Rect> rects, geom::Coord bucket_nm = 2048);

  const geom::Rect& extent() const { return extent_; }
  std::size_t rect_count() const { return rects_.size(); }

  /// All rects overlapping `window`, clipped and translated to window-local
  /// coordinates. Race-free: concurrent queries are fine as long as each
  /// thread passes its own scratch.
  std::vector<geom::Rect> query(const geom::Rect& window,
                                QueryScratch& scratch) const;

  /// Test-only convenience overload that allocates a fresh scratch per
  /// call. The per-query O(#rects) stamp allocation this hides is exactly
  /// what QueryScratch exists to amortize — production call sites (the
  /// scanner, the benches) must pass a reused scratch; keep this one to
  /// tests and one-off assertions.
  std::vector<geom::Rect> query(const geom::Rect& window) const;

  /// Build directly from a GDS library's flattened layer.
  static ChipIndex from_library(const gds::Library& lib,
                                const std::string& top, std::int16_t layer);

 private:
  std::vector<geom::Rect> rects_;
  geom::Rect extent_;
  geom::Coord bucket_nm_;
  int bx_ = 0, by_ = 0;
  std::vector<std::vector<std::uint32_t>> buckets_;
};

struct ScanConfig {
  geom::Coord window_nm = 1024;
  geom::Coord stride_nm = 512;
  bool skip_empty = true;  ///< windows with no geometry are never hotspots
  /// Scan parallelism: 1 = serial (the degenerate case), 0 = one shard per
  /// hardware thread, N = shard the window grid N ways. Results are
  /// bit-identical across thread counts.
  std::size_t threads = 1;
  /// Deduplicate windows by canonical geometry: classify each distinct
  /// pattern once (per cache lifetime) instead of once per occurrence. Off
  /// by default — the naive path stays the reference the dedup path is
  /// checked against.
  bool dedup = false;
  /// Total ScoreCache entry bound when dedup is on. 0 keeps dedup's
  /// batching/canonicalization flow but disables memoization entirely
  /// (every window misses) — useful for isolating cache effects.
  std::size_t cache_capacity = 1 << 16;
  /// Cache misses per shard accumulated before one batched
  /// Detector::score_batch() call (dedup path only; clamped to >= 1).
  std::size_t batch = 32;
  /// Scan the GDS hierarchy instead of a flattened layer: index each
  /// distinct cell once and replay memoized window scores per instance
  /// (scan_library() only — scan_chip* has no hierarchy to exploit and
  /// rejects the flag). Hit lists are bit-identical to the flattened scan
  /// whenever the detector's score is invariant under rect order and
  /// whole-pattern translation (the dedup precondition; asserted by the
  /// hierarchical parity property).
  bool hierarchical = false;
  /// Optional caller-owned ScoreCache shared across scans (dedup path;
  /// ignored when dedup is off). nullptr — the default — gives each scan a
  /// private cache of cache_capacity entries. A shared cache keeps its
  /// memos across scans; each scan's ScanResult still reports *per-scan*
  /// hit/miss/eviction deltas (Stats snapshot taken at scan start). Share
  /// between sequential scans; concurrent scans stay correct but blur the
  /// per-scan attribution.
  ScoreCache* cache = nullptr;
  /// Execution backend batched scoring dispatches through ("serial",
  /// "threadpool", "simd"). Empty — the default — defers to
  /// exec::resolve(): the process-wide override, then LHD_EXEC_BACKEND,
  /// then the compiled default. Hit lists are bit-identical across
  /// backends (the conformance suite's scan-parity group asserts it);
  /// only scheduling and cost change. An unknown name warns and falls
  /// back rather than aborting.
  std::string backend;
};

struct ScanHit {
  geom::Rect window;
  float score = 0.0f;

  friend bool operator==(const ScanHit&, const ScanHit&) = default;
};

/// Per-shard accounting the scan reports alongside its results: how much
/// of the grid each shard covered and how long it spent. Shard wall times
/// are the load-balance view the aggregate `seconds` hides.
struct ShardStat {
  std::size_t windows = 0;   ///< windows this shard visited
  double seconds = 0.0;      ///< shard wall time (query + classify)
  double query_seconds = 0.0;  ///< portion spent in ChipIndex::query

  friend bool operator==(const ShardStat&, const ShardStat&) = default;
};

struct ScanResult {
  std::size_t windows_total = 0;    ///< windows visited
  /// Windows the (final) detector actually scored. With dedup on this is
  /// the number of detector invocations (unique cache misses) — the
  /// quantity dedup exists to shrink — and is schedule-dependent: two
  /// shards can race to classify the same pattern. Every other count and
  /// the hit list stay deterministic.
  std::size_t windows_classified = 0;
  std::size_t flagged = 0;
  double seconds = 0.0;
  /// Dedup only: windows served without a detector invocation — from a
  /// committed ScoreCache memo or from a pattern pending in the same
  /// batch. hits + misses == one probe per deduped window (under
  /// `hierarchical`, replayed windows skip the probe, so only gathered
  /// windows count).
  std::uint64_t cache_hits = 0;
  /// Dedup only: windows that forced a detector invocation (first
  /// occurrence of a pattern, capacity-0 re-scores, hash-collision
  /// overflow).
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;  ///< dedup only: ScoreCache evictions
  /// Hierarchical only: windows served by replay — an identical replay key
  /// was already memoized (shard-local or scan-wide) or still pending in
  /// the current batch — so no geometry extraction, canonicalization, or
  /// detector work happened for them.
  std::uint64_t replay_hits = 0;
  /// Hierarchical only: windows overlapping two or more instance bboxes —
  /// the halo/stitch bands where instances abut or overlap loose geometry.
  /// These windows' keys repeat only if the *combination* repeats, so they
  /// bound the fresh-geometry work the hierarchy cannot elide.
  std::uint64_t stitch_windows = 0;
  std::size_t instances = 0;       ///< hierarchical only: placements scanned
  std::size_t distinct_cells = 0;  ///< hierarchical only: distinct structures
  std::vector<ScanHit> hits;
  /// One entry per shard, in shard (row-major) order; size() is the shard
  /// count actually used. Timing fields vary run to run; window counts are
  /// deterministic.
  std::vector<ShardStat> shards;
};

/// Single-stage scan: classify every (non-empty) window. Runs on
/// ThreadPool::global() when config.threads != 1; the detector's score()
/// must be thread-safe (true for every in-tree detector). Rejects
/// config.hierarchical (a flattened ChipIndex has no hierarchy left) —
/// use scan_library() for the hierarchical path.
ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config);

/// As above but on a caller-supplied pool (e.g. a dedicated scan pool).
ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config, ThreadPool& pool);

/// Two-stage scan: `prefilter` proposes candidate windows (its alarms),
/// `refiner` classifies only those.
ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config);

ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config, ThreadPool& pool);

/// Scan `top`'s `layer` straight from the GDS library. With
/// config.hierarchical the layer is never flattened: instances are
/// enumerated from the structure tree, each distinct cell is indexed once,
/// and per-window scores replay across repeated placements (see the @file
/// notes); windows_classified shrinks to O(distinct geometry + stitch
/// bands) detector invocations. Without the flag this is a convenience
/// wrapper over ChipIndex::from_library + scan_chip — the reference the
/// parity property compares against. The grid, window order, and merged
/// hit list match the flattened scan exactly.
ScanResult scan_library(const gds::Library& lib, const std::string& top,
                        std::int16_t layer, const Detector& detector,
                        const ScanConfig& config);

ScanResult scan_library(const gds::Library& lib, const std::string& top,
                        std::int16_t layer, const Detector& detector,
                        const ScanConfig& config, ThreadPool& pool);

}  // namespace lhd::core
