#pragma once
// Full-chip hotspot scanning: slide a clip window over a flattened layout
// and classify each window. Includes the two-stage flow the survey
// highlights (cheap pattern-match prefilter proposing candidates, CNN
// refining them) and a spatial index so window extraction is O(local).

#include <vector>

#include "lhd/core/detector.hpp"
#include "lhd/gds/model.hpp"

namespace lhd::core {

/// Bucketed spatial index over a flattened rectangle soup.
class ChipIndex {
 public:
  ChipIndex(std::vector<geom::Rect> rects, geom::Coord bucket_nm = 2048);

  const geom::Rect& extent() const { return extent_; }
  std::size_t rect_count() const { return rects_.size(); }

  /// All rects overlapping `window`, clipped and translated to window-local
  /// coordinates.
  std::vector<geom::Rect> query(const geom::Rect& window) const;

  /// Build directly from a GDS library's flattened layer.
  static ChipIndex from_library(const gds::Library& lib,
                                const std::string& top, std::int16_t layer);

 private:
  std::vector<geom::Rect> rects_;
  geom::Rect extent_;
  geom::Coord bucket_nm_;
  int bx_ = 0, by_ = 0;
  std::vector<std::vector<std::uint32_t>> buckets_;
  mutable std::vector<std::uint32_t> stamp_;   ///< dedupe marker per rect
  mutable std::uint32_t stamp_value_ = 0;
};

struct ScanConfig {
  geom::Coord window_nm = 1024;
  geom::Coord stride_nm = 512;
  bool skip_empty = true;  ///< windows with no geometry are never hotspots
};

struct ScanHit {
  geom::Rect window;
  float score = 0.0f;
};

struct ScanResult {
  std::size_t windows_total = 0;    ///< windows visited
  std::size_t windows_classified = 0;  ///< windows the (final) detector saw
  std::size_t flagged = 0;
  double seconds = 0.0;
  std::vector<ScanHit> hits;
};

/// Single-stage scan: classify every (non-empty) window.
ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config);

/// Two-stage scan: `prefilter` proposes candidate windows (its alarms),
/// `refiner` classifies only those.
ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config);

}  // namespace lhd::core
