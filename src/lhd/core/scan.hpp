#pragma once
/// @file scan.hpp
/// @brief Full-chip hotspot scanning: slide a clip window over a flattened
/// layout and classify each window. Includes the two-stage flow the survey
/// highlights (cheap pattern-match prefilter proposing candidates, CNN
/// refining them) and a spatial index so window extraction is O(local).
///
/// The scan shards the window grid row-wise across a ThreadPool; shard
/// results are merged in row-major window order, so the hit list is
/// bit-identical for every thread count (ScanConfig::threads).
///
/// Real layouts repeat the same local pattern across the chip, so the scan
/// can optionally deduplicate (ScanConfig::dedup): each window's geometry
/// is canonicalized (data/clip_hash.hpp), looked up in a scan-wide
/// ScoreCache shared by all shards, and only cache misses reach the
/// detector — batched through Detector::score_batch(). The dedup path
/// scores the *canonical* clip, so a pattern's score does not depend on
/// which occurrence or shard computed it: results are deterministic across
/// thread counts, cache capacities, and batch sizes, and identical to the
/// naive path whenever the detector's score is invariant under rect order
/// and whole-pattern translation (asserted by the dedup parity property
/// test). windows_classified becomes the number of *detector invocations*,
/// which a shared cache makes schedule-dependent — it is the one ScanResult
/// count that may differ run to run when dedup is on.
///
/// Thread-safety: ChipIndex is immutable after construction and all its
/// methods are const; concurrent query() calls are race-free as long as
/// each thread passes its own QueryScratch. scan_chip* may run on a shared
/// pool; the detector's score()/predict() must be thread-safe (true for
/// every in-tree detector). Scans record per-shard timings and window
/// tallies into obs::Registry::global() when observability is enabled —
/// instrumentation never changes scan results (asserted by
/// Scan.InstrumentedScanMatchesUninstrumented).

#include <cstdint>
#include <vector>

#include "lhd/core/detector.hpp"
#include "lhd/gds/model.hpp"

namespace lhd {
class ThreadPool;
}

namespace lhd::core {

/// Bucketed spatial index over a flattened rectangle soup. Degenerate
/// (empty) input rects are dropped on construction — they cannot be
/// bucketed and contribute nothing to any window. All methods are const
/// and safe to call concurrently; per-query dedupe state lives in an
/// explicit QueryScratch owned by the caller (one per thread).
class ChipIndex {
 public:
  /// Per-caller dedupe state for query(): a stamp per rect plus the current
  /// stamp value. Reusable across queries (that is the point — it avoids a
  /// per-query O(#rects) clear); create one per thread.
  class QueryScratch {
   public:
    QueryScratch() = default;

    /// Fast-forward the stamp counter, so wrap-around behaviour is testable
    /// without issuing 2^32 queries.
    void fast_forward(std::uint32_t value) { stamp_value_ = value; }

   private:
    friend class ChipIndex;
    std::vector<std::uint32_t> stamp_;  ///< dedupe marker per rect
    std::uint32_t stamp_value_ = 0;
  };

  ChipIndex(std::vector<geom::Rect> rects, geom::Coord bucket_nm = 2048);

  const geom::Rect& extent() const { return extent_; }
  std::size_t rect_count() const { return rects_.size(); }

  /// All rects overlapping `window`, clipped and translated to window-local
  /// coordinates. Race-free: concurrent queries are fine as long as each
  /// thread passes its own scratch.
  std::vector<geom::Rect> query(const geom::Rect& window,
                                QueryScratch& scratch) const;

  /// Test-only convenience overload that allocates a fresh scratch per
  /// call. The per-query O(#rects) stamp allocation this hides is exactly
  /// what QueryScratch exists to amortize — production call sites (the
  /// scanner, the benches) must pass a reused scratch; keep this one to
  /// tests and one-off assertions.
  std::vector<geom::Rect> query(const geom::Rect& window) const;

  /// Build directly from a GDS library's flattened layer.
  static ChipIndex from_library(const gds::Library& lib,
                                const std::string& top, std::int16_t layer);

 private:
  std::vector<geom::Rect> rects_;
  geom::Rect extent_;
  geom::Coord bucket_nm_;
  int bx_ = 0, by_ = 0;
  std::vector<std::vector<std::uint32_t>> buckets_;
};

struct ScanConfig {
  geom::Coord window_nm = 1024;
  geom::Coord stride_nm = 512;
  bool skip_empty = true;  ///< windows with no geometry are never hotspots
  /// Scan parallelism: 1 = serial (the degenerate case), 0 = one shard per
  /// hardware thread, N = shard the window grid N ways. Results are
  /// bit-identical across thread counts.
  std::size_t threads = 1;
  /// Deduplicate windows by canonical geometry: classify each distinct
  /// pattern once (per cache lifetime) instead of once per occurrence. Off
  /// by default — the naive path stays the reference the dedup path is
  /// checked against.
  bool dedup = false;
  /// Total ScoreCache entry bound when dedup is on. 0 keeps dedup's
  /// batching/canonicalization flow but disables memoization entirely
  /// (every window misses) — useful for isolating cache effects.
  std::size_t cache_capacity = 1 << 16;
  /// Cache misses per shard accumulated before one batched
  /// Detector::score_batch() call (dedup path only; clamped to >= 1).
  std::size_t batch = 32;
};

struct ScanHit {
  geom::Rect window;
  float score = 0.0f;

  friend bool operator==(const ScanHit&, const ScanHit&) = default;
};

/// Per-shard accounting the scan reports alongside its results: how much
/// of the grid each shard covered and how long it spent. Shard wall times
/// are the load-balance view the aggregate `seconds` hides.
struct ShardStat {
  std::size_t windows = 0;   ///< windows this shard visited
  double seconds = 0.0;      ///< shard wall time (query + classify)
  double query_seconds = 0.0;  ///< portion spent in ChipIndex::query

  friend bool operator==(const ShardStat&, const ShardStat&) = default;
};

struct ScanResult {
  std::size_t windows_total = 0;    ///< windows visited
  /// Windows the (final) detector actually scored. With dedup on this is
  /// the number of detector invocations (unique cache misses) — the
  /// quantity dedup exists to shrink — and is schedule-dependent: two
  /// shards can race to classify the same pattern. Every other count and
  /// the hit list stay deterministic.
  std::size_t windows_classified = 0;
  std::size_t flagged = 0;
  double seconds = 0.0;
  /// Dedup only: windows served without a detector invocation — from a
  /// committed ScoreCache memo or from a pattern pending in the same
  /// batch. hits + misses == one probe per deduped window.
  std::uint64_t cache_hits = 0;
  /// Dedup only: windows that forced a detector invocation (first
  /// occurrence of a pattern, capacity-0 re-scores, hash-collision
  /// overflow).
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;  ///< dedup only: ScoreCache evictions
  std::vector<ScanHit> hits;
  /// One entry per shard, in shard (row-major) order; size() is the shard
  /// count actually used. Timing fields vary run to run; window counts are
  /// deterministic.
  std::vector<ShardStat> shards;
};

/// Single-stage scan: classify every (non-empty) window. Runs on
/// ThreadPool::global() when config.threads != 1; the detector's score()
/// must be thread-safe (true for every in-tree detector).
ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config);

/// As above but on a caller-supplied pool (e.g. a dedicated scan pool).
ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config, ThreadPool& pool);

/// Two-stage scan: `prefilter` proposes candidate windows (its alarms),
/// `refiner` classifies only those.
ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config);

ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config, ThreadPool& pool);

}  // namespace lhd::core
