#pragma once
/// @file shallow_detector.hpp
/// @brief Adapter wiring {feature extractor -> scaler -> optional PCA ->
/// shallow classifier} into the Detector interface, with optional
/// imbalance-aware upsampling of the training set.
///
/// Thread-safety: follows the Detector contract — train() fits the whole
/// chain exclusively; score()/predict() only read the fitted extractor,
/// scaler, PCA and classifier, so concurrent inference is safe.

#include <memory>

#include "lhd/core/detector.hpp"
#include "lhd/feature/extractor.hpp"
#include "lhd/feature/pca.hpp"
#include "lhd/feature/scaler.hpp"
#include "lhd/ml/classifier.hpp"

namespace lhd::core {

struct ShallowDetectorConfig {
  /// Target minority ratio for upsampling; 0 disables.
  double upsample_ratio = 0.35;
  bool mirror_augment = true;
  geom::Coord augment_shift_nm = 16;  ///< replica translation jitter
  int augment_factor = 2;  ///< whole-set symmetry/shift replication
  bool standardize = true;
  int pca_components = 0;  ///< 0 disables PCA
  std::uint64_t seed = 11;
};

class ShallowDetector final : public Detector {
 public:
  ShallowDetector(std::string name,
                  std::unique_ptr<feature::Extractor> extractor,
                  std::unique_ptr<ml::BinaryClassifier> classifier,
                  ShallowDetectorConfig config = {});

  std::string name() const override { return name_; }
  void train(const data::Dataset& train_set) override;
  float score(const data::Clip& clip) const override;
  bool predict(const data::Clip& clip) const override;
  void set_threshold(float threshold) override;
  float threshold() const override;

  const feature::Extractor& extractor() const { return *extractor_; }
  const ml::BinaryClassifier& classifier() const { return *classifier_; }

 private:
  std::vector<float> features_for(const data::Clip& clip) const;

  std::string name_;
  std::unique_ptr<feature::Extractor> extractor_;
  std::unique_ptr<ml::BinaryClassifier> classifier_;
  ShallowDetectorConfig config_;
  feature::Scaler scaler_;
  feature::Pca pca_;
};

}  // namespace lhd::core
