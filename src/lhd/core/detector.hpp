#pragma once
/// @file detector.hpp
/// @brief The public face of the library: a hotspot Detector is trained on
/// a labeled clip dataset and classifies clips. Every generation the
/// survey covers — pattern matching, shallow ML, deep learning — implements
/// this interface, so the benchmark harnesses and the full-chip scanner
/// treat them uniformly.
///
/// Thread-safety contract for implementations: train() and set_threshold()
/// are exclusive (one thread, no concurrent readers); score(), predict()
/// and predict_all() on a trained detector must be safe to call from many
/// threads at once — the sharded scanner and the parallel threshold sweep
/// rely on it, and every in-tree detector honors it.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lhd/data/dataset.hpp"

namespace lhd::core {

class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string name() const = 0;

  /// Train (or re-train) on a labeled dataset.
  virtual void train(const data::Dataset& train_set) = 0;

  /// Real-valued decision score for one clip; > decision threshold means
  /// hotspot. Scale is detector-specific; thresholds are swept relative to
  /// each detector's own score distribution.
  virtual float score(const data::Clip& clip) const = 0;

  /// Binary prediction for one clip.
  virtual bool predict(const data::Clip& clip) const = 0;

  /// Batch scoring (default: loop over score). Implementations with a real
  /// batched forward path (the CNN) override this to amortize per-call
  /// overhead; the deduplicated scanner feeds each shard's cache misses
  /// through it, sliced into sub-spans by the active exec backend.
  /// Contract: element i is bit-identical to score(clips[i]) — batching
  /// (any batch size, including the edge cases: an empty span returns an
  /// empty vector, a one-clip span equals {score(clips[0])}) may change
  /// the cost, never the numbers. This partition-invariance is what lets
  /// exec backends split a batch arbitrarily.
  virtual std::vector<float> score_batch(std::span<const data::Clip> clips) const;

  /// Batch prediction (default: loop over predict).
  virtual std::vector<bool> predict_all(const data::Dataset& ds) const;

  /// Shift the decision threshold (for accuracy/false-alarm trade-off
  /// sweeps). Interpretation is detector-specific but monotone: larger
  /// threshold = fewer alarms.
  virtual void set_threshold(float threshold) = 0;
  virtual float threshold() const = 0;
};

}  // namespace lhd::core
