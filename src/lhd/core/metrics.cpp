#include "lhd/core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "lhd/util/check.hpp"

namespace lhd::core {

Confusion evaluate(const std::vector<bool>& predictions,
                   const data::Dataset& ds) {
  LHD_CHECK(predictions.size() == ds.size(), "prediction count mismatch");
  Confusion c;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const bool hot = ds[i].is_hotspot();
    const bool pred = predictions[i];
    if (hot && pred) ++c.tp;
    if (hot && !pred) ++c.fn;
    if (!hot && pred) ++c.fp;
    if (!hot && !pred) ++c.tn;
  }
  return c;
}

double odst_seconds(const Confusion& c, double test_seconds,
                    double sim_seconds_per_clip) {
  return test_seconds +
         sim_seconds_per_clip * static_cast<double>(c.alarms());
}

double full_simulation_seconds(std::size_t clips,
                               double sim_seconds_per_clip) {
  return sim_seconds_per_clip * static_cast<double>(clips);
}

double roc_auc(const std::vector<float>& scores, const data::Dataset& ds) {
  LHD_CHECK(scores.size() == ds.size(), "score count mismatch");
  // A single NaN poisons the U statistic silently: NaN compares false
  // against everything, so sort/lower_bound produce an arbitrary-but-
  // plausible AUC instead of an error. Reject non-finite scores up front.
  for (const float s : scores) {
    LHD_CHECK(std::isfinite(s), "roc_auc: non-finite score");
  }
  std::vector<float> pos, neg;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    (ds[i].is_hotspot() ? pos : neg).push_back(scores[i]);
  }
  if (pos.empty() || neg.empty()) return 0.5;
  // U statistic via sorting the negatives and binary-searching each
  // positive: O((P+N) log N).
  std::sort(neg.begin(), neg.end());
  double u = 0.0;
  for (const float p : pos) {
    const auto lower = std::lower_bound(neg.begin(), neg.end(), p);
    const auto upper = std::upper_bound(neg.begin(), neg.end(), p);
    u += static_cast<double>(lower - neg.begin());        // strictly below
    u += 0.5 * static_cast<double>(upper - lower);        // ties count half
  }
  return u / (static_cast<double>(pos.size()) * static_cast<double>(neg.size()));
}

}  // namespace lhd::core
