#pragma once
/// @file factory.hpp
/// @brief Named detector construction — the configurations the benchmark
/// tables compare. Kinds, in the survey's generational order:
///
///   "pm"        pattern matching on quantized density signatures
///   "nb"        Gaussian naive Bayes on density features
///   "logreg"    logistic regression on density features
///   "svm"       linear SVM (Pegasos) on density+CCAS features
///   "svm-rbf"   RBF-kernel SVM (SMO) on CCAS features
///   "adaboost"  boosted stumps on density+CCAS features
///   "dtree"     CART decision tree on density features
///   "forest"    random forest on density+CCAS features
///   "cnn"       DCT feature tensor + CNN (plain training)
///   "cnn-bl"    ... + biased learning
///   "cnn-bbl"   ... + batch biased learning
///
/// Thread-safety: make_detector and the kind-list accessors are safe to
/// call concurrently (the lists are immutable statics); each returned
/// detector instance follows the Detector contract (exclusive train,
/// concurrent inference).

#include <memory>
#include <string>
#include <vector>

#include "lhd/core/detector.hpp"

namespace lhd::core {

std::unique_ptr<Detector> make_detector(const std::string& kind,
                                        std::uint64_t seed = 11);

/// All kinds in generational order (for the main comparison table).
const std::vector<std::string>& all_detector_kinds();

/// The subset used by the headline table (one per generation plus BL).
const std::vector<std::string>& headline_detector_kinds();

}  // namespace lhd::core
