#include "lhd/core/factory.hpp"

#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/shallow_detector.hpp"
#include "lhd/ml/adaboost.hpp"
#include "lhd/ml/decision_tree.hpp"
#include "lhd/ml/kernel_svm.hpp"
#include "lhd/ml/linear_svm.hpp"
#include "lhd/ml/logistic_regression.hpp"
#include "lhd/ml/naive_bayes.hpp"
#include "lhd/ml/pattern_match.hpp"
#include "lhd/ml/random_forest.hpp"
#include "lhd/util/check.hpp"

namespace lhd::core {

namespace {

/// Concatenation of two extractors (e.g. density ++ CCAS).
class ConcatExtractor final : public feature::Extractor {
 public:
  ConcatExtractor(std::unique_ptr<feature::Extractor> a,
                  std::unique_ptr<feature::Extractor> b)
      : a_(std::move(a)), b_(std::move(b)) {}

  std::string name() const override {
    return a_->name() + "+" + b_->name();
  }
  std::vector<float> extract(const data::Clip& clip) const override {
    auto fa = a_->extract(clip);
    const auto fb = b_->extract(clip);
    fa.insert(fa.end(), fb.begin(), fb.end());
    return fa;
  }
  std::array<int, 3> shape() const override {
    return {1, 1, a_->dim() + b_->dim()};
  }

 private:
  std::unique_ptr<feature::Extractor> a_, b_;
};

std::unique_ptr<feature::Extractor> density_ccas() {
  return std::make_unique<ConcatExtractor>(feature::make_density_extractor(),
                                           feature::make_ccas_extractor());
}

}  // namespace

std::unique_ptr<Detector> make_detector(const std::string& kind,
                                        std::uint64_t seed) {
  ShallowDetectorConfig shallow;
  shallow.seed = seed;

  if (kind == "pm") {
    // Pattern matching: no upsampling (it memorizes hotspots directly),
    // no standardization (signatures quantize raw densities).
    ShallowDetectorConfig cfg;
    cfg.upsample_ratio = 0.0;
    cfg.standardize = false;
    cfg.augment_factor = 1;
    cfg.seed = seed;
    ml::PatternMatchConfig pm;
    pm.quant_levels = 6;
    pm.auto_radius = true;
    pm.radius_scale = 1.1;
    feature::DensityConfig dc;
    dc.grid = 8;  // coarse signatures so near-duplicates of known hotspots match
    return std::make_unique<ShallowDetector>(
        "pattern-match", feature::make_density_extractor(dc),
        std::make_unique<ml::PatternMatcher>(pm), cfg);
  }
  if (kind == "nb") {
    return std::make_unique<ShallowDetector>(
        "naive-bayes", feature::make_density_extractor(),
        std::make_unique<ml::GaussianNaiveBayes>(), shallow);
  }
  if (kind == "logreg") {
    ml::LogisticRegressionConfig cfg;
    cfg.positive_weight = 1.5;
    cfg.seed = seed;
    return std::make_unique<ShallowDetector>(
        "logistic-regression", feature::make_density_extractor(),
        std::make_unique<ml::LogisticRegression>(cfg), shallow);
  }
  if (kind == "svm") {
    ml::LinearSvmConfig cfg;
    cfg.positive_weight = 1.5;
    cfg.seed = seed;
    return std::make_unique<ShallowDetector>(
        "linear-svm", density_ccas(),
        std::make_unique<ml::LinearSvm>(cfg), shallow);
  }
  if (kind == "svm-rbf") {
    ml::KernelSvmConfig cfg;
    cfg.positive_weight = 1.5;
    cfg.seed = seed;
    return std::make_unique<ShallowDetector>(
        "rbf-svm", feature::make_ccas_extractor(),
        std::make_unique<ml::KernelSvm>(cfg), shallow);
  }
  if (kind == "adaboost") {
    ml::AdaBoostConfig cfg;
    cfg.positive_weight = 1.5;
    return std::make_unique<ShallowDetector>(
        "adaboost", density_ccas(), std::make_unique<ml::AdaBoost>(cfg),
        shallow);
  }
  if (kind == "dtree") {
    ml::DecisionTreeConfig cfg;
    cfg.seed = seed;
    return std::make_unique<ShallowDetector>(
        "decision-tree", feature::make_density_extractor(),
        std::make_unique<ml::DecisionTree>(cfg), shallow);
  }
  if (kind == "forest") {
    ml::RandomForestConfig cfg;
    cfg.seed = seed;
    return std::make_unique<ShallowDetector>(
        "random-forest", density_ccas(),
        std::make_unique<ml::RandomForest>(cfg), shallow);
  }
  if (kind == "cnn" || kind == "cnn-bl" || kind == "cnn-bbl") {
    CnnDetectorConfig cfg;
    cfg.seed = seed;
    cfg.train.epochs = 15;
    cfg.augment_factor = 6;
    cfg.bias_epochs = 6;
    if (kind == "cnn-bl") {
      cfg.mode = CnnTrainMode::Biased;
    } else if (kind == "cnn-bbl") {
      cfg.mode = CnnTrainMode::BatchBiased;
      cfg.epochs_per_stage = 3;
    }
    return std::make_unique<CnnDetector>(kind, cfg);
  }
  throw Error("unknown detector kind: " + kind);
}

const std::vector<std::string>& all_detector_kinds() {
  static const std::vector<std::string> kinds = {
      "pm", "nb", "logreg", "svm", "svm-rbf", "adaboost",
      "dtree", "forest", "cnn", "cnn-bl", "cnn-bbl"};
  return kinds;
}

const std::vector<std::string>& headline_detector_kinds() {
  static const std::vector<std::string> kinds = {
      "pm", "svm", "adaboost", "cnn", "cnn-bl"};
  return kinds;
}

}  // namespace lhd::core
