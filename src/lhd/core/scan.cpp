#include "lhd/core/scan.hpp"

#include <algorithm>
#include <compare>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>

#include "lhd/core/score_cache.hpp"
#include "lhd/data/clip_hash.hpp"
#include "lhd/exec/backend.hpp"
#include "lhd/exec/registry.hpp"
#include "lhd/obs/registry.hpp"
#include "lhd/obs/timer.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/stopwatch.hpp"
#include "lhd/util/thread_annotations.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::core {

namespace {

/// Bucket-coordinate division that rounds toward negative infinity. Plain
/// integer division truncates toward zero, which for a window starting
/// left of / below the extent rounds the (negative) offset *up* to bucket
/// 0 — the query would then walk bucket row/column 0 even though the
/// window never touches it. Floor division keeps the mapping exact for
/// any window position.
geom::Coord floor_div(geom::Coord a, geom::Coord b) {
  geom::Coord q = a / b;
  if (a % b != 0 && (a < 0) != (b < 0)) --q;
  return q;
}

}  // namespace

ChipIndex::ChipIndex(std::vector<geom::Rect> rects, geom::Coord bucket_nm)
    : rects_(std::move(rects)), bucket_nm_(bucket_nm) {
  LHD_CHECK(bucket_nm_ > 0, "bucket size must be positive");
  // Degenerate rects would mis-index: (xhi - 1) lands left of xlo, so they
  // never reach a bucket yet would still count in rect_count() and size the
  // stamp array. They cannot affect any query — drop them up front.
  std::erase_if(rects_, [](const geom::Rect& r) { return r.empty(); });
  extent_ = geom::Rect{};
  for (const auto& r : rects_) extent_ = extent_.unite(r);
  if (rects_.empty()) {
    bx_ = by_ = 1;
    buckets_.resize(1);
    return;
  }
  bx_ = static_cast<int>((extent_.width() + bucket_nm_ - 1) / bucket_nm_);
  by_ = static_cast<int>((extent_.height() + bucket_nm_ - 1) / bucket_nm_);
  bx_ = std::max(bx_, 1);
  by_ = std::max(by_, 1);
  buckets_.assign(static_cast<std::size_t>(bx_) * by_, {});
  for (std::uint32_t i = 0; i < rects_.size(); ++i) {
    const auto& r = rects_[i];
    const int x0 = static_cast<int>((r.xlo - extent_.xlo) / bucket_nm_);
    const int y0 = static_cast<int>((r.ylo - extent_.ylo) / bucket_nm_);
    const int x1 = static_cast<int>((r.xhi - 1 - extent_.xlo) / bucket_nm_);
    const int y1 = static_cast<int>((r.yhi - 1 - extent_.ylo) / bucket_nm_);
    for (int by = std::max(0, y0); by <= std::min(by_ - 1, y1); ++by) {
      for (int bx = std::max(0, x0); bx <= std::min(bx_ - 1, x1); ++bx) {
        buckets_[static_cast<std::size_t>(by) * bx_ + bx].push_back(i);
      }
    }
  }
}

std::vector<geom::Rect> ChipIndex::query(const geom::Rect& window,
                                         QueryScratch& scratch) const {
  std::vector<geom::Rect> out;
  if (rects_.empty()) return out;
  if (!window.overlaps(extent_)) return out;
  if (scratch.stamp_.size() != rects_.size()) {
    scratch.stamp_.assign(rects_.size(), 0);
    scratch.stamp_value_ = 0;
  }
  if (++scratch.stamp_value_ == 0) {
    // Wrapped after 2^32 queries: stamps from the previous epoch would
    // collide with reused values and silently drop rects. Reset.
    std::fill(scratch.stamp_.begin(), scratch.stamp_.end(), 0);
    scratch.stamp_value_ = 1;
  }
  const int x0 = std::max(
      0, static_cast<int>(floor_div(window.xlo - extent_.xlo, bucket_nm_)));
  const int y0 = std::max(
      0, static_cast<int>(floor_div(window.ylo - extent_.ylo, bucket_nm_)));
  const int x1 = std::min(
      bx_ - 1,
      static_cast<int>(floor_div(window.xhi - 1 - extent_.xlo, bucket_nm_)));
  const int y1 = std::min(
      by_ - 1,
      static_cast<int>(floor_div(window.yhi - 1 - extent_.ylo, bucket_nm_)));
  for (int by = y0; by <= y1; ++by) {
    for (int bx = x0; bx <= x1; ++bx) {
      for (const std::uint32_t i :
           buckets_[static_cast<std::size_t>(by) * bx_ + bx]) {
        if (scratch.stamp_[i] == scratch.stamp_value_) continue;
        scratch.stamp_[i] = scratch.stamp_value_;
        const geom::Rect c = rects_[i].intersect(window);
        if (!c.empty()) out.push_back(c.shifted(-window.xlo, -window.ylo));
      }
    }
  }
  return out;
}

std::vector<geom::Rect> ChipIndex::query(const geom::Rect& window) const {
  QueryScratch scratch;
  return query(window, scratch);
}

ChipIndex ChipIndex::from_library(const gds::Library& lib,
                                  const std::string& top,
                                  std::int16_t layer) {
  return ChipIndex(lib.flatten_layer(top, layer));
}

namespace {

/// Counters and hits gathered by one shard of the window grid. Timing
/// accumulates into plain doubles (obs::ScopedTimer accumulator mode), so
/// instrumenting the hot loop adds no cross-shard contention; totals are
/// flushed to the global registry once, after the shards join.
struct ShardAccum {
  std::size_t windows_total = 0;
  std::size_t windows_classified = 0;
  std::size_t flagged = 0;
  /// Dedup only: windows served by a pattern still pending in the same
  /// batch. Their ScoreCache probe counted as a miss (the memo was in
  /// flight, not committed), but no detector invocation happened —
  /// attach_cache_stats reclassifies them as hits.
  std::size_t batch_alias_hits = 0;
  /// Hierarchical only: windows replayed from a memoized key (no geometry
  /// extraction) and windows straddling >= 2 instance bboxes.
  std::uint64_t replay_hits = 0;
  std::uint64_t stitch_windows = 0;
  std::vector<ScanHit> hits;
  double seconds = 0.0;        ///< shard wall time
  double query_seconds = 0.0;  ///< time inside ChipIndex::query
};

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return hardware_threads();
}

data::Clip make_clip(std::vector<geom::Rect> rects, geom::Coord window_nm) {
  data::Clip clip;
  clip.rects = std::move(rects);
  clip.window_nm = window_nm;
  return clip;
}

/// Orders, deduplicates, and batches the expensive detector stage for one
/// shard. Windows are enqueued in scan order; a pattern already memoized
/// in the scan-wide ScoreCache (by any shard) resolves immediately, and
/// cache misses accumulate until `batch` of them are scored together via
/// Detector::score_batch(). The *canonical* clip is what gets scored, so a
/// pattern's score never depends on which occurrence (or shard) computed
/// it — that is what makes dedup results deterministic. finish() emits
/// hits strictly in enqueue (row-major) order.
///
/// The hierarchical scan layers its replay memo on top: a window enqueued
/// with a `tag` fires `hook(tag, score)` the moment its score is known
/// (immediately on a cache hit, otherwise when its batch is scored);
/// windows whose score was replayed bypass enqueue entirely via
/// push_resolved(), and windows whose pattern is still *pending* alias it
/// via repeat() — both still append a slot, so finish() keeps the strict
/// scan-order emission.
class DedupScorer {
 public:
  using ResolveHook = std::function<void(std::size_t tag, float score)>;
  /// Tag meaning "no commit callback wanted" — the flattened sinks' case.
  static constexpr std::size_t kNoTag = static_cast<std::size_t>(-1);

  /// Names a pattern still pending in the current batch. enqueue() hands
  /// one out; repeat() aliases another window to it without recomputing
  /// the content. Scoring the batch invalidates every outstanding ref
  /// (the generation bumps), after which repeat() declines.
  struct PendingRef {
    std::uint64_t generation = 0;
    std::size_t index = 0;
  };

  DedupScorer(const Detector& det, const exec::ExecBackend& backend,
              ScoreCache& cache, ShardAccum& acc, geom::Coord window_nm,
              std::size_t batch, ResolveHook hook = {})
      : det_(det),
        backend_(backend),
        cache_(cache),
        acc_(acc),
        window_nm_(window_nm),
        batch_(std::max<std::size_t>(1, batch)),
        hook_(std::move(hook)) {}

  /// Returns a ref naming the pattern if it is (still) pending after this
  /// call, std::nullopt if the window resolved immediately (cache hit) or
  /// the enqueue filled the batch and scored it.
  std::optional<PendingRef> enqueue(const geom::Rect& window,
                                    std::vector<geom::Rect> rects,
                                    std::size_t tag = kNoTag) {
    data::CanonicalClip canon =
        data::canonical_clip(std::move(rects), window_nm_);
    const std::uint64_t hash = data::canonical_hash(canon);
    if (const auto cached = cache_.lookup(canon, hash)) {
      slots_.push_back({window, *cached, kResolved, kNoTag});
      if (hook_ && tag != kNoTag) hook_(tag, *cached);
      return std::nullopt;
    }
    // Intra-batch dedup: a pattern already pending in this batch is scored
    // once and later occurrences alias its slot. On a 64-bit collision
    // with a *different* pending pattern, score separately (correct,
    // merely redundant); the map keeps pointing at the first owner.
    std::size_t index = pending_.size();
    const auto it = pending_by_hash_.find(hash);
    if (it != pending_by_hash_.end() &&
        pending_[it->second].canon == canon) {
      index = it->second;
      ++acc_.batch_alias_hits;
    } else {
      if (it == pending_by_hash_.end()) pending_by_hash_.emplace(hash, index);
      pending_.push_back({std::move(canon), hash});
    }
    slots_.push_back({window, 0.0f, static_cast<std::ptrdiff_t>(index), tag});
    if (pending_.size() >= batch_) {
      score_pending();
      return std::nullopt;
    }
    return PendingRef{generation_, index};
  }

  /// Alias `window` to a pattern a previous enqueue() left pending, without
  /// recomputing or even possessing its content. Declines (returns false)
  /// when the ref's batch has already been scored — the caller falls back
  /// to the content path (and will then hit the committed memo).
  bool repeat(const geom::Rect& window, const PendingRef& ref) {
    if (ref.generation != generation_) return false;
    slots_.push_back(
        {window, 0.0f, static_cast<std::ptrdiff_t>(ref.index), kNoTag});
    return true;
  }

  /// Append a window whose score is already known (a replayed memo). No
  /// cache probe, no detector work — just a slot, so the hit list stays in
  /// scan order.
  void push_resolved(const geom::Rect& window, float score) {
    slots_.push_back({window, score, kResolved, kNoTag});
  }

  /// Score whatever is still pending, then emit every slot in scan order.
  void finish(float threshold) {
    score_pending();
    for (const Slot& slot : slots_) {
      if (slot.score > threshold) {
        ++acc_.flagged;
        acc_.hits.push_back({slot.window, slot.score});
      }
    }
    slots_.clear();
    resolved_upto_ = 0;
  }

 private:
  static constexpr std::ptrdiff_t kResolved = -1;

  struct Slot {
    geom::Rect window;
    float score = 0.0f;
    std::ptrdiff_t pending = kResolved;  ///< index into the current batch
    std::size_t tag = kNoTag;            ///< hook payload, kNoTag = none
  };
  struct Pending {
    data::CanonicalClip canon;
    std::uint64_t hash = 0;
  };

  void score_pending() {
    if (pending_.empty()) return;
    std::vector<data::Clip> clips;
    clips.reserve(pending_.size());
    for (const Pending& p : pending_) {
      clips.push_back(make_clip(p.canon.rects, window_nm_));
    }
    // Dispatch through the exec backend: it partitions the batch into
    // sub-spans (the simd backend keeps it whole — the pre-exec
    // behaviour; serial goes item-at-a-time; threadpool fans out with
    // bounded in-flight batches). Each sub-span's scores are
    // bit-identical to per-sample score() by the Detector contract, so
    // the partition never changes the numbers.
    std::vector<float> scores(clips.size());
    backend_.submit_batches(
        clips.size(), exec::SubmitConfig{},
        [&](std::size_t lo, std::size_t hi) {
          const std::vector<float> scored = det_.score_batch(
              std::span<const data::Clip>(clips).subspan(lo, hi - lo));
          LHD_CHECK(scored.size() == hi - lo, "score_batch size mismatch");
          std::copy(scored.begin(), scored.end(),
                    scores.begin() + static_cast<std::ptrdiff_t>(lo));
        });
    acc_.windows_classified += pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      cache_.insert(pending_[i].canon, pending_[i].hash, scores[i]);
    }
    // Every unresolved slot references the batch just scored — slots from
    // earlier batches were resolved by the previous score_pending().
    for (std::size_t s = resolved_upto_; s < slots_.size(); ++s) {
      if (slots_[s].pending != kResolved) {
        slots_[s].score = scores[static_cast<std::size_t>(slots_[s].pending)];
        slots_[s].pending = kResolved;
        if (hook_ && slots_[s].tag != kNoTag) {
          hook_(slots_[s].tag, slots_[s].score);
          slots_[s].tag = kNoTag;
        }
      }
    }
    resolved_upto_ = slots_.size();
    pending_.clear();
    pending_by_hash_.clear();
    ++generation_;  // outstanding PendingRefs are now stale
  }

  const Detector& det_;
  const exec::ExecBackend& backend_;
  ScoreCache& cache_;
  ShardAccum& acc_;
  geom::Coord window_nm_;
  std::size_t batch_;
  ResolveHook hook_;
  std::vector<Slot> slots_;
  std::size_t resolved_upto_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<Pending> pending_;
  std::unordered_map<std::uint64_t, std::size_t> pending_by_hash_;
};

/// Single-stage sink: score every window the moment it arrives.
struct DirectSink {
  const Detector& det;
  geom::Coord window_nm;
  ShardAccum& acc;

  void window(const geom::Rect& w, std::vector<geom::Rect> rects) {
    ++acc.windows_classified;
    const data::Clip clip = make_clip(std::move(rects), window_nm);
    const float s = det.score(clip);
    if (s > det.threshold()) {
      ++acc.flagged;
      acc.hits.push_back({w, s});
    }
  }
  void flush() {}
};

/// Single-stage sink with dedup: every window goes through the scorer.
struct DedupSink {
  const Detector& det;
  DedupScorer scorer;

  DedupSink(const Detector& d, const exec::ExecBackend& backend,
            ScoreCache& cache, ShardAccum& acc, const ScanConfig& config)
      : det(d), scorer(d, backend, cache, acc, config.window_nm, config.batch) {}

  void window(const geom::Rect& w, std::vector<geom::Rect> rects) {
    scorer.enqueue(w, std::move(rects));
  }
  void flush() { scorer.finish(det.threshold()); }
};

/// Two-stage sink: cheap prefilter proposes, refiner decides.
struct TwoStageSink {
  const Detector& prefilter;
  const Detector& refiner;
  geom::Coord window_nm;
  ShardAccum& acc;

  void window(const geom::Rect& w, std::vector<geom::Rect> rects) {
    const data::Clip clip = make_clip(std::move(rects), window_nm);
    if (!prefilter.predict(clip)) return;  // stage 1 rejects
    ++acc.windows_classified;              // stage 2 work
    const float s = refiner.score(clip);
    if (s > refiner.threshold()) {
      ++acc.flagged;
      acc.hits.push_back({w, s});
    }
  }
  void flush() {}
};

/// Two-stage sink with dedup: the prefilter stays an uncached per-window
/// predict() (it is the cheap stage — caching it would cost more than it
/// saves), only the expensive refiner is deduplicated and batched.
struct TwoStageDedupSink {
  const Detector& prefilter;
  const Detector& refiner;
  geom::Coord window_nm;
  DedupScorer scorer;

  TwoStageDedupSink(const Detector& pre, const Detector& ref,
                    const exec::ExecBackend& backend, ScoreCache& cache,
                    ShardAccum& acc, const ScanConfig& config)
      : prefilter(pre),
        refiner(ref),
        window_nm(config.window_nm),
        scorer(ref, backend, cache, acc, config.window_nm, config.batch) {}

  void window(const geom::Rect& w, std::vector<geom::Rect> rects) {
    data::Clip clip = make_clip(std::move(rects), window_nm);
    if (!prefilter.predict(clip)) return;  // stage 1 rejects
    scorer.enqueue(w, std::move(clip.rects));
  }
  void flush() { scorer.finish(refiner.threshold()); }
};

/// Copy *this scan's* cache activity into the result and the registry.
/// `before` is the Stats snapshot taken when the scan started: a cache
/// shared across scans (ScanConfig::cache) keeps cumulative totals, so the
/// per-scan numbers are the delta — reporting cache.stats() directly would
/// double-count every preceding scan (the two-scans-one-cache regression).
/// `alias_hits` (summed over shards) reclassifies intra-batch duplicate
/// windows from misses to hits: they probed the cache before their
/// pattern's memo was committed, but were served without a detector
/// invocation — which is what the hit/miss split reports. The hit+miss
/// total (one probe per deduped window) is conserved.
void attach_cache_stats(ScanResult& result, const ScoreCache& cache,
                        const ScoreCache::Stats& before,
                        std::uint64_t alias_hits) {
  const ScoreCache::Stats stats = cache.stats() - before;
  result.cache_hits = stats.hits + alias_hits;
  result.cache_misses = stats.misses - alias_hits;
  result.cache_evictions = stats.evictions;
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.add("scan.cache.hits", result.cache_hits);
    reg.add("scan.cache.misses", result.cache_misses);
    reg.add("scan.cache.evictions", result.cache_evictions);
  }
}

/// Shared scan skeleton: enumerate the window grid over `extent`, shard it
/// row-wise, hand every window to a per-shard worker built by
/// `make_worker(accum)` (flushed at shard end), and merge shards in
/// row-major order so results match the serial scan bit for bit. Rows are
/// split *evenly*: with R rows over S shards the first R%S shards take
/// one extra row, so every shard covers a non-empty contiguous ascending
/// range and shards.size() is the shard count actually used (ceil-division
/// used to hand trailing shards zero rows yet still report them).
template <typename MakeWorker>
ScanResult grid_scan(const geom::Rect& extent, const ScanConfig& config,
                     ThreadPool& pool, const MakeWorker& make_worker,
                     std::uint64_t* batch_alias_hits = nullptr) {
  LHD_CHECK(config.window_nm > 0 && config.stride_nm > 0, "bad scan config");
  ScanResult result;
  Stopwatch sw;
  std::vector<geom::Coord> row_ys;
  for (geom::Coord y = extent.ylo; y < extent.yhi; y += config.stride_nm) {
    row_ys.push_back(y);
  }

  const auto scan_rows = [&](std::size_t lo, std::size_t hi,
                             ShardAccum& acc) {
    obs::ScopedTimer shard_timer(acc.seconds);
    auto worker = make_worker(acc);
    for (std::size_t r = lo; r < hi; ++r) {
      const geom::Coord y = row_ys[r];
      for (geom::Coord x = extent.xlo; x < extent.xhi;
           x += config.stride_nm) {
        worker.window(geom::Rect(x, y, x + config.window_nm,
                                 y + config.window_nm));
      }
    }
    worker.flush();
  };

  const std::size_t shards =
      std::min(resolve_threads(config.threads),
               std::max<std::size_t>(row_ys.size(), 1));
  std::vector<ShardAccum> accums(shards);
  if (shards <= 1) {
    scan_rows(0, row_ys.size(), accums[0]);
  } else {
    const std::size_t base = row_ys.size() / shards;
    const std::size_t rem = row_ys.size() % shards;
    pool.parallel_for(0, shards, [&](std::size_t s) {
      const std::size_t lo = s * base + std::min(s, rem);
      const std::size_t hi = lo + base + (s < rem ? 1 : 0);
      scan_rows(lo, hi, accums[s]);
    });
  }
  for (const auto& acc : accums) {
    result.windows_total += acc.windows_total;
    result.windows_classified += acc.windows_classified;
    result.flagged += acc.flagged;
    result.replay_hits += acc.replay_hits;
    result.stitch_windows += acc.stitch_windows;
    if (batch_alias_hits != nullptr) {
      *batch_alias_hits += acc.batch_alias_hits;
    }
    result.hits.insert(result.hits.end(), acc.hits.begin(), acc.hits.end());
    result.shards.push_back(
        {acc.windows_total, acc.seconds, acc.query_seconds});
  }
  result.seconds = sw.seconds();
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.add("scan.runs");
    reg.add("scan.windows_total", result.windows_total);
    reg.add("scan.windows_classified", result.windows_classified);
    reg.add("scan.flagged", result.flagged);
    reg.observe("scan.seconds", result.seconds);
    if (result.seconds > 0.0) {
      reg.observe("scan.windows_per_sec",
                  static_cast<double>(result.windows_total) / result.seconds);
    }
    for (const auto& shard : result.shards) {
      reg.observe("scan.shard_seconds", shard.seconds);
      reg.observe("scan.shard_query_seconds", shard.query_seconds);
    }
  }
  return result;
}

/// grid_scan worker for the flattened path: query the ChipIndex per
/// window, apply skip_empty, and forward non-empty windows to one of the
/// (window, rects) sinks above. This is the pre-hierarchical scan loop
/// verbatim, just factored so both paths share the grid/shard/merge
/// skeleton.
template <typename Sink>
struct FlatWorker {
  const ChipIndex& chip;
  const ScanConfig& config;
  ShardAccum& acc;
  Sink sink;
  ChipIndex::QueryScratch scratch;

  void window(const geom::Rect& w) {
    ++acc.windows_total;
    std::vector<geom::Rect> rects;
    {
      obs::ScopedTimer query_timer(acc.query_seconds);
      rects = chip.query(w, scratch);
    }
    if (config.skip_empty && rects.empty()) return;
    sink.window(w, std::move(rects));
  }
  void flush() { sink.flush(); }
};

template <typename MakeSink>
ScanResult scan_flat(const ChipIndex& chip, const ScanConfig& config,
                     ThreadPool& pool, const MakeSink& make_sink,
                     std::uint64_t* batch_alias_hits = nullptr) {
  return grid_scan(
      chip.extent(), config, pool,
      [&](ShardAccum& acc) {
        return FlatWorker<decltype(make_sink(acc))>{
            chip, config, acc, make_sink(acc), ChipIndex::QueryScratch{}};
      },
      batch_alias_hits);
}

// ---------------------------------------------------------------------------
// Hierarchical scan: index each distinct cell once, replay per instance.
// ---------------------------------------------------------------------------

/// One overlapping instance's contribution to a window's identity: which
/// cell, its orientation, and the window's offset from the instance origin
/// (dx = window.xlo - origin.x, in int64 — origins can sit anywhere in the
/// coordinate range). Window content is a pure function of the *sorted*
/// set of these parts: the geometry a visit contributes to the window is
/// R(cell rects) ∩ ([dx, dx+w) × [dy, dy+w)) translated to window-local
/// coordinates, which mentions nothing but the part's fields.
struct VisitKeyPart {
  std::uint32_t cell = 0;
  std::uint8_t mirror = 0;
  std::uint16_t angle = 0;
  std::int64_t dx = 0;
  std::int64_t dy = 0;

  friend bool operator==(const VisitKeyPart&, const VisitKeyPart&) = default;
  friend auto operator<=>(const VisitKeyPart&,
                          const VisitKeyPart&) = default;
};

/// Sorted parts, one per instance whose geometry bbox overlaps the window.
/// Duplicate parts are kept: two coincident placements of the same cell
/// double the geometry, exactly as flattening would.
using ReplayKey = std::vector<VisitKeyPart>;

struct ReplayKeyHash {
  std::size_t operator()(const ReplayKey& key) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;  // splitmix64-style combine
    const auto mix = [&h](std::uint64_t v) {
      v += 0x9e3779b97f4a7c15ULL + h;
      v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
      v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
      h = v ^ (v >> 31);
    };
    for (const VisitKeyPart& p : key) {
      mix(std::uint64_t{p.cell} | (std::uint64_t{p.mirror} << 32) |
          (std::uint64_t{p.angle} << 40));
      mix(static_cast<std::uint64_t>(p.dx));
      mix(static_cast<std::uint64_t>(p.dy));
    }
    return static_cast<std::size_t>(h);
  }
};

/// A committed window outcome: either "no geometry in the window" (the
/// skip_empty skip, memoized so repeated offsets skip the cell queries
/// too) or a final score.
struct ReplayEntry {
  bool empty_content = false;
  float score = 0.0f;
};

/// Scan-wide memo of *committed* window outcomes by replay key, shared by
/// every shard. Only resolved scores are published (pending batch entries
/// stay shard-local), so readers never see a placeholder; since a key's
/// score is a pure function of the key, racing writers are idempotent.
/// Entry count is bounded as a backstop: a chip whose every window has a
/// unique key (no repetition to exploit) stops being memoized past the
/// cap instead of growing O(windows) state — lookups stay correct.
class ReplayCache {
 public:
  std::optional<ReplayEntry> lookup(const ReplayKey& key) const {
    const MutexLock lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  void insert(const ReplayKey& key, const ReplayEntry& entry) {
    const MutexLock lock(mutex_);
    if (map_.size() >= kMaxEntries) return;
    map_.emplace(key, entry);
  }

 private:
  static constexpr std::size_t kMaxEntries = std::size_t{1} << 20;

  mutable Mutex mutex_;
  std::unordered_map<ReplayKey, ReplayEntry, ReplayKeyHash> map_
      LHD_GUARDED_BY(mutex_);
};

/// One placement of a distinct cell, with both directions of the
/// transform precomputed and the top-frame bbox of the cell's own
/// geometry (degenerate rects already dropped by the cell's ChipIndex).
struct Visit {
  std::uint32_t cell = 0;
  gds::Transform to_top;
  gds::Transform to_local;  ///< to_top.inverse(), computed once
  geom::Rect bbox;
};

/// Uniform bucket grid over visit bboxes: which instances can contribute
/// geometry to a window. Same shape as ChipIndex's grid but yields visit
/// ids (exact bbox-overlap filtered) instead of clipped rects. Immutable
/// after construction; concurrent query() needs a Scratch per thread.
class InstanceGrid {
 public:
  struct Scratch {
    std::vector<std::uint32_t> stamp;
    std::uint32_t value = 0;
  };

  InstanceGrid(const std::vector<Visit>& visits, const geom::Rect& extent,
               geom::Coord bucket_nm)
      : extent_(extent), bucket_nm_(bucket_nm), count_(visits.size()) {
    LHD_CHECK(bucket_nm_ > 0, "bucket size must be positive");
    bboxes_.reserve(visits.size());
    for (const Visit& v : visits) bboxes_.push_back(v.bbox);
    if (visits.empty() || extent_.empty()) {
      bx_ = by_ = 1;
      buckets_.resize(1);
      return;
    }
    const auto spans = [this](geom::Coord lo, geom::Coord hi) {
      return static_cast<int>(
          (static_cast<std::int64_t>(hi) - lo + bucket_nm_ - 1) / bucket_nm_);
    };
    bx_ = std::max(spans(extent_.xlo, extent_.xhi), 1);
    by_ = std::max(spans(extent_.ylo, extent_.yhi), 1);
    buckets_.assign(static_cast<std::size_t>(bx_) * static_cast<std::size_t>(by_), {});
    for (std::uint32_t i = 0; i < visits.size(); ++i) {
      const geom::Rect& b = bboxes_[i];
      if (b.empty()) continue;
      // Visit bboxes are inside `extent` (it is their union), so the
      // bucket range needs no clamping beyond the grid edge.
      const int x0 = std::max(0, bucket_of(b.xlo, extent_.xlo));
      const int y0 = std::max(0, bucket_of(b.ylo, extent_.ylo));
      const int x1 = std::min(bx_ - 1, bucket_of(b.xhi - 1, extent_.xlo));
      const int y1 = std::min(by_ - 1, bucket_of(b.yhi - 1, extent_.ylo));
      for (int by = y0; by <= y1; ++by) {
        for (int bx = x0; bx <= x1; ++bx) {
          buckets_[static_cast<std::size_t>(by) * static_cast<std::size_t>(bx_) +
                   static_cast<std::size_t>(bx)]
              .push_back(i);
        }
      }
    }
  }

  /// Ids of visits whose bbox overlaps `window`, ascending, appended to
  /// `out` (cleared first). Race-free with one Scratch per thread.
  void query(const geom::Rect& window, Scratch& scratch,
             std::vector<std::uint32_t>& out) const {
    out.clear();
    if (count_ == 0 || !window.overlaps(extent_)) return;
    if (scratch.stamp.size() != count_) {
      scratch.stamp.assign(count_, 0);
      scratch.value = 0;
    }
    if (++scratch.value == 0) {
      std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0);
      scratch.value = 1;
    }
    const int x0 = std::max(0, bucket_of(window.xlo, extent_.xlo));
    const int y0 = std::max(0, bucket_of(window.ylo, extent_.ylo));
    const int x1 = std::min(bx_ - 1, bucket_of(window.xhi - 1, extent_.xlo));
    const int y1 = std::min(by_ - 1, bucket_of(window.yhi - 1, extent_.ylo));
    for (int by = y0; by <= y1; ++by) {
      for (int bx = x0; bx <= x1; ++bx) {
        for (const std::uint32_t i :
             buckets_[static_cast<std::size_t>(by) *
                          static_cast<std::size_t>(bx_) +
                      static_cast<std::size_t>(bx)]) {
          if (scratch.stamp[i] == scratch.value) continue;
          scratch.stamp[i] = scratch.value;
          if (bboxes_[i].overlaps(window)) out.push_back(i);
        }
      }
    }
    std::sort(out.begin(), out.end());
  }

 private:
  /// floor_div in int64: the window minus the extent origin can exceed the
  /// Coord range when a window near one edge probes buckets near the other.
  int bucket_of(geom::Coord v, geom::Coord origin) const {
    const std::int64_t d = static_cast<std::int64_t>(v) - origin;
    std::int64_t q = d / bucket_nm_;
    if (d % bucket_nm_ != 0 && d < 0) --q;  // bucket_nm_ > 0
    return static_cast<int>(q);
  }

  geom::Rect extent_;
  geom::Coord bucket_nm_ = 0;
  std::size_t count_ = 0;
  int bx_ = 1, by_ = 1;
  std::vector<geom::Rect> bboxes_;
  std::vector<std::vector<std::uint32_t>> buckets_;
};

/// grid_scan worker for the hierarchical path. Per window: gather the
/// overlapping visits, build the replay key, and serve the window from
/// (in order) the shard-local memo, the shared ReplayCache, or the content
/// path — inverse-transform the window into each visit's cell frame, query
/// that cell's ChipIndex, map the clipped rects back, and hand the content
/// to the DedupScorer (ScoreCache dedup + batched detector). Resolved
/// scores are committed back to both memos via the scorer's hook, so every
/// later window with the same key — any shard — replays without touching
/// geometry. Not movable: the hook lambda captures `this`.
class HierWorker {
 public:
  HierWorker(const std::vector<ChipIndex>& cells,
             const std::vector<Visit>& visits, const InstanceGrid& grid,
             ReplayCache& replay, const Detector& det,
             const exec::ExecBackend& backend, ScoreCache& cache,
             ShardAccum& acc, const ScanConfig& config)
      : cells_(cells),
        visits_(visits),
        grid_(grid),
        replay_(replay),
        acc_(acc),
        skip_empty_(config.skip_empty),
        threshold_(det.threshold()),
        scorer_(det, backend, cache, acc, config.window_nm, config.batch,
                [this](std::size_t tag, float score) {
                  commit_entry(pending_keys_[tag], {false, score});
                  pending_refs_.erase(pending_keys_[tag]);
                }),
        cell_scratch_(cells.size()) {}

  HierWorker(const HierWorker&) = delete;
  HierWorker& operator=(const HierWorker&) = delete;

  void window(const geom::Rect& w) {
    ++acc_.windows_total;
    {
      obs::ScopedTimer query_timer(acc_.query_seconds);
      grid_.query(w, grid_scratch_, ids_);
    }
    key_.clear();
    for (const std::uint32_t id : ids_) {
      const Visit& v = visits_[id];
      VisitKeyPart part;
      part.cell = v.cell;
      part.mirror = static_cast<std::uint8_t>(v.to_top.mirror_x ? 1 : 0);
      part.angle = static_cast<std::uint16_t>(v.to_top.angle_deg);
      part.dx = static_cast<std::int64_t>(w.xlo) - v.to_top.origin.x;
      part.dy = static_cast<std::int64_t>(w.ylo) - v.to_top.origin.y;
      key_.push_back(part);
    }
    std::sort(key_.begin(), key_.end());
    if (key_.size() >= 2) ++acc_.stitch_windows;
    // No instance near the window: the flattened query would be empty.
    if (key_.empty() && skip_empty_) return;
    if (const auto it = local_.find(key_); it != local_.end()) {
      ++acc_.replay_hits;
      emit(w, it->second);
      return;
    }
    if (const auto shared = replay_.lookup(key_)) {
      ++acc_.replay_hits;
      local_.emplace(key_, *shared);
      emit(w, *shared);
      return;
    }
    // The key's first occurrence may still be pending in the current
    // batch: alias this window to its slot instead of re-gathering the
    // geometry. A stale ref (batch already scored) falls through — the
    // score was committed by the hook, so local_ serves the next repeat.
    if (const auto it = pending_refs_.find(key_); it != pending_refs_.end()) {
      if (scorer_.repeat(w, it->second)) {
        ++acc_.replay_hits;
        return;
      }
      pending_refs_.erase(it);
    }
    std::vector<geom::Rect> rects = gather(w);
    if (skip_empty_ && rects.empty()) {
      // Bboxes overlapped but no actual geometry landed in the window —
      // the flattened scan skips it; memoize the skip for this key.
      commit_entry(key_, {true, 0.0f});
      return;
    }
    pending_keys_.push_back(key_);
    if (const auto ref =
            scorer_.enqueue(w, std::move(rects), pending_keys_.size() - 1)) {
      pending_refs_.emplace(key_, *ref);
    }
  }

  void flush() {
    scorer_.finish(threshold_);
    pending_keys_.clear();
    pending_refs_.clear();  // hooks already emptied it; keep the invariant
  }

 private:
  void emit(const geom::Rect& w, const ReplayEntry& entry) {
    if (entry.empty_content) return;  // a replayed skip
    scorer_.push_resolved(w, entry.score);
  }

  void commit_entry(const ReplayKey& key, const ReplayEntry& entry) {
    local_.insert_or_assign(key, entry);
    replay_.insert(key, entry);
  }

  /// The window's content, bit-identical to ChipIndex::query on the
  /// flattened layer: apply() maps half-open cell sets exactly and
  /// commutes with intersect, so clipping in the cell frame then mapping
  /// back equals mapping then clipping.
  std::vector<geom::Rect> gather(const geom::Rect& w) {
    obs::ScopedTimer query_timer(acc_.query_seconds);
    std::vector<geom::Rect> out;
    for (const std::uint32_t id : ids_) {
      const Visit& v = visits_[id];
      const geom::Rect local_window = v.to_local.apply(w);
      for (const geom::Rect& r :
           cells_[v.cell].query(local_window, cell_scratch_[v.cell])) {
        const geom::Rect top =
            v.to_top.apply(r.shifted(local_window.xlo, local_window.ylo));
        out.push_back(top.shifted(-w.xlo, -w.ylo));
      }
    }
    return out;
  }

  const std::vector<ChipIndex>& cells_;
  const std::vector<Visit>& visits_;
  const InstanceGrid& grid_;
  ReplayCache& replay_;
  ShardAccum& acc_;
  bool skip_empty_ = true;
  float threshold_ = 0.0f;
  DedupScorer scorer_;
  std::vector<ChipIndex::QueryScratch> cell_scratch_;  ///< one per cell
  InstanceGrid::Scratch grid_scratch_;
  std::vector<std::uint32_t> ids_;  ///< visits overlapping current window
  ReplayKey key_;                   ///< current window's key (reused)
  std::unordered_map<ReplayKey, ReplayEntry, ReplayKeyHash> local_;
  std::vector<ReplayKey> pending_keys_;  ///< hook tag -> key, cleared at flush
  /// Keys whose first window is still pending in the scorer's current
  /// batch; repeats alias its slot. The hook erases entries as their batch
  /// resolves, so the map only ever holds live refs.
  std::unordered_map<ReplayKey, DedupScorer::PendingRef, ReplayKeyHash>
      pending_refs_;
};

}  // namespace

namespace {

/// The scan's ScoreCache: the caller-shared one when provided (dedup
/// path), otherwise a scan-private cache materialized into `owned`.
ScoreCache& select_cache(const ScanConfig& config, std::size_t capacity,
                         std::optional<ScoreCache>& owned) {
  if (config.cache != nullptr) return *config.cache;
  owned.emplace(capacity);
  return *owned;
}

}  // namespace

ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config) {
  return scan_chip(chip, detector, config, ThreadPool::global());
}

ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config, ThreadPool& pool) {
  LHD_CHECK(!config.hierarchical,
            "scan_chip scans a flattened index; the hierarchical path needs "
            "the GDS structure tree - call scan_library()");
  if (!config.dedup) {
    return scan_flat(chip, config, pool, [&](ShardAccum& acc) {
      return DirectSink{detector, config.window_nm, acc};
    });
  }
  std::optional<ScoreCache> owned;
  ScoreCache& cache = select_cache(config, config.cache_capacity, owned);
  const ScoreCache::Stats before = cache.stats();
  const exec::ExecBackend& backend = exec::resolve(config.backend);
  std::uint64_t alias_hits = 0;
  ScanResult result = scan_flat(
      chip, config, pool,
      [&](ShardAccum& acc) {
        return DedupSink(detector, backend, cache, acc, config);
      },
      &alias_hits);
  attach_cache_stats(result, cache, before, alias_hits);
  return result;
}

ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config) {
  return scan_chip_two_stage(chip, prefilter, refiner, config,
                             ThreadPool::global());
}

ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config, ThreadPool& pool) {
  LHD_CHECK(!config.hierarchical,
            "scan_chip_two_stage scans a flattened index; the hierarchical "
            "path needs the GDS structure tree - call scan_library()");
  if (!config.dedup) {
    return scan_flat(chip, config, pool, [&](ShardAccum& acc) {
      return TwoStageSink{prefilter, refiner, config.window_nm, acc};
    });
  }
  std::optional<ScoreCache> owned;
  ScoreCache& cache = select_cache(config, config.cache_capacity, owned);
  const ScoreCache::Stats before = cache.stats();
  const exec::ExecBackend& backend = exec::resolve(config.backend);
  std::uint64_t alias_hits = 0;
  ScanResult result = scan_flat(
      chip, config, pool,
      [&](ShardAccum& acc) {
        return TwoStageDedupSink(prefilter, refiner, backend, cache, acc,
                                 config);
      },
      &alias_hits);
  attach_cache_stats(result, cache, before, alias_hits);
  return result;
}

ScanResult scan_library(const gds::Library& lib, const std::string& top,
                        std::int16_t layer, const Detector& detector,
                        const ScanConfig& config) {
  return scan_library(lib, top, layer, detector, config,
                      ThreadPool::global());
}

ScanResult scan_library(const gds::Library& lib, const std::string& top,
                        std::int16_t layer, const Detector& detector,
                        const ScanConfig& config, ThreadPool& pool) {
  if (!config.hierarchical) {
    return scan_chip(ChipIndex::from_library(lib, top, layer), detector,
                     config, pool);
  }
  LHD_CHECK(config.window_nm > 0 && config.stride_nm > 0, "bad scan config");
  Stopwatch sw;

  // Enumerate instance placements from the structure tree and index each
  // distinct cell's own geometry exactly once. The scan extent is the
  // union of the visit bboxes, which equals the flattened index's extent:
  // every non-degenerate flattened rect is some visit's transformed own
  // rect (D4 transforms preserve non-degeneracy and commute with unite),
  // so the window grids match and so does the hit list.
  const std::vector<gds::LayerInstance> placements =
      lib.layer_instances(top, layer);
  std::vector<ChipIndex> cells;
  std::unordered_map<std::size_t, std::uint32_t> cell_of;
  std::vector<Visit> visits;
  geom::Rect extent;
  for (const gds::LayerInstance& placement : placements) {
    const auto [it, fresh] = cell_of.try_emplace(
        placement.structure, static_cast<std::uint32_t>(cells.size()));
    if (fresh) {
      cells.emplace_back(gds::structure_layer_rects(
          lib.structures()[placement.structure], layer));
    }
    const ChipIndex& cell = cells[it->second];
    // Only degenerate shapes: the flattened index drops them too.
    if (cell.rect_count() == 0) continue;
    Visit v;
    v.cell = it->second;
    v.to_top = placement.transform;
    v.to_local = placement.transform.inverse();
    v.bbox = placement.transform.apply(cell.extent());
    extent = extent.unite(v.bbox);
    visits.push_back(v);
  }
  std::vector<char> cell_used(cells.size(), 0);
  for (const Visit& v : visits) cell_used[v.cell] = 1;

  const InstanceGrid grid(
      visits, extent,
      std::max<geom::Coord>(config.window_nm, geom::Coord{2048}));
  ReplayCache replay;
  std::optional<ScoreCache> owned;
  // With dedup off, a private capacity-0 cache keeps the scorer flow valid
  // while memoizing nothing: replay still collapses repeated keys, but
  // distinct keys with identical content are scored independently,
  // mirroring the flattened non-dedup contract.
  ScoreCache& cache = config.dedup
                          ? select_cache(config, config.cache_capacity, owned)
                          : (owned.emplace(0), *owned);
  const ScoreCache::Stats before = cache.stats();
  const exec::ExecBackend& backend = exec::resolve(config.backend);
  std::uint64_t alias_hits = 0;
  ScanResult result = grid_scan(
      extent, config, pool,
      [&](ShardAccum& acc) {
        return HierWorker(cells, visits, grid, replay, detector, backend,
                          cache, acc, config);
      },
      &alias_hits);
  if (config.dedup) attach_cache_stats(result, cache, before, alias_hits);
  result.instances = visits.size();
  result.distinct_cells = static_cast<std::size_t>(
      std::count(cell_used.begin(), cell_used.end(), char{1}));
  result.seconds = sw.seconds();  // include enumeration + cell indexing
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.add("scan.hier.runs");
    reg.add("scan.hier.replay_hits", result.replay_hits);
    reg.add("scan.hier.stitch_windows", result.stitch_windows);
    reg.add("scan.hier.instances", result.instances);
    reg.add("scan.hier.cells", result.distinct_cells);
  }
  return result;
}

}  // namespace lhd::core
