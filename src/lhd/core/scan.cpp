#include "lhd/core/scan.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "lhd/core/score_cache.hpp"
#include "lhd/data/clip_hash.hpp"
#include "lhd/obs/registry.hpp"
#include "lhd/obs/timer.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/stopwatch.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::core {

namespace {

/// Bucket-coordinate division that rounds toward negative infinity. Plain
/// integer division truncates toward zero, which for a window starting
/// left of / below the extent rounds the (negative) offset *up* to bucket
/// 0 — the query would then walk bucket row/column 0 even though the
/// window never touches it. Floor division keeps the mapping exact for
/// any window position.
geom::Coord floor_div(geom::Coord a, geom::Coord b) {
  geom::Coord q = a / b;
  if (a % b != 0 && (a < 0) != (b < 0)) --q;
  return q;
}

}  // namespace

ChipIndex::ChipIndex(std::vector<geom::Rect> rects, geom::Coord bucket_nm)
    : rects_(std::move(rects)), bucket_nm_(bucket_nm) {
  LHD_CHECK(bucket_nm_ > 0, "bucket size must be positive");
  // Degenerate rects would mis-index: (xhi - 1) lands left of xlo, so they
  // never reach a bucket yet would still count in rect_count() and size the
  // stamp array. They cannot affect any query — drop them up front.
  std::erase_if(rects_, [](const geom::Rect& r) { return r.empty(); });
  extent_ = geom::Rect{};
  for (const auto& r : rects_) extent_ = extent_.unite(r);
  if (rects_.empty()) {
    bx_ = by_ = 1;
    buckets_.resize(1);
    return;
  }
  bx_ = static_cast<int>((extent_.width() + bucket_nm_ - 1) / bucket_nm_);
  by_ = static_cast<int>((extent_.height() + bucket_nm_ - 1) / bucket_nm_);
  bx_ = std::max(bx_, 1);
  by_ = std::max(by_, 1);
  buckets_.assign(static_cast<std::size_t>(bx_) * by_, {});
  for (std::uint32_t i = 0; i < rects_.size(); ++i) {
    const auto& r = rects_[i];
    const int x0 = static_cast<int>((r.xlo - extent_.xlo) / bucket_nm_);
    const int y0 = static_cast<int>((r.ylo - extent_.ylo) / bucket_nm_);
    const int x1 = static_cast<int>((r.xhi - 1 - extent_.xlo) / bucket_nm_);
    const int y1 = static_cast<int>((r.yhi - 1 - extent_.ylo) / bucket_nm_);
    for (int by = std::max(0, y0); by <= std::min(by_ - 1, y1); ++by) {
      for (int bx = std::max(0, x0); bx <= std::min(bx_ - 1, x1); ++bx) {
        buckets_[static_cast<std::size_t>(by) * bx_ + bx].push_back(i);
      }
    }
  }
}

std::vector<geom::Rect> ChipIndex::query(const geom::Rect& window,
                                         QueryScratch& scratch) const {
  std::vector<geom::Rect> out;
  if (rects_.empty()) return out;
  if (!window.overlaps(extent_)) return out;
  if (scratch.stamp_.size() != rects_.size()) {
    scratch.stamp_.assign(rects_.size(), 0);
    scratch.stamp_value_ = 0;
  }
  if (++scratch.stamp_value_ == 0) {
    // Wrapped after 2^32 queries: stamps from the previous epoch would
    // collide with reused values and silently drop rects. Reset.
    std::fill(scratch.stamp_.begin(), scratch.stamp_.end(), 0);
    scratch.stamp_value_ = 1;
  }
  const int x0 = std::max(
      0, static_cast<int>(floor_div(window.xlo - extent_.xlo, bucket_nm_)));
  const int y0 = std::max(
      0, static_cast<int>(floor_div(window.ylo - extent_.ylo, bucket_nm_)));
  const int x1 = std::min(
      bx_ - 1,
      static_cast<int>(floor_div(window.xhi - 1 - extent_.xlo, bucket_nm_)));
  const int y1 = std::min(
      by_ - 1,
      static_cast<int>(floor_div(window.yhi - 1 - extent_.ylo, bucket_nm_)));
  for (int by = y0; by <= y1; ++by) {
    for (int bx = x0; bx <= x1; ++bx) {
      for (const std::uint32_t i :
           buckets_[static_cast<std::size_t>(by) * bx_ + bx]) {
        if (scratch.stamp_[i] == scratch.stamp_value_) continue;
        scratch.stamp_[i] = scratch.stamp_value_;
        const geom::Rect c = rects_[i].intersect(window);
        if (!c.empty()) out.push_back(c.shifted(-window.xlo, -window.ylo));
      }
    }
  }
  return out;
}

std::vector<geom::Rect> ChipIndex::query(const geom::Rect& window) const {
  QueryScratch scratch;
  return query(window, scratch);
}

ChipIndex ChipIndex::from_library(const gds::Library& lib,
                                  const std::string& top,
                                  std::int16_t layer) {
  return ChipIndex(lib.flatten_layer(top, layer));
}

namespace {

/// Counters and hits gathered by one shard of the window grid. Timing
/// accumulates into plain doubles (obs::ScopedTimer accumulator mode), so
/// instrumenting the hot loop adds no cross-shard contention; totals are
/// flushed to the global registry once, after the shards join.
struct ShardAccum {
  std::size_t windows_total = 0;
  std::size_t windows_classified = 0;
  std::size_t flagged = 0;
  /// Dedup only: windows served by a pattern still pending in the same
  /// batch. Their ScoreCache probe counted as a miss (the memo was in
  /// flight, not committed), but no detector invocation happened —
  /// attach_cache_stats reclassifies them as hits.
  std::size_t batch_alias_hits = 0;
  std::vector<ScanHit> hits;
  double seconds = 0.0;        ///< shard wall time
  double query_seconds = 0.0;  ///< time inside ChipIndex::query
};

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

data::Clip make_clip(std::vector<geom::Rect> rects, geom::Coord window_nm) {
  data::Clip clip;
  clip.rects = std::move(rects);
  clip.window_nm = window_nm;
  return clip;
}

/// Orders, deduplicates, and batches the expensive detector stage for one
/// shard. Windows are enqueued in scan order; a pattern already memoized
/// in the scan-wide ScoreCache (by any shard) resolves immediately, and
/// cache misses accumulate until `batch` of them are scored together via
/// Detector::score_batch(). The *canonical* clip is what gets scored, so a
/// pattern's score never depends on which occurrence (or shard) computed
/// it — that is what makes dedup results deterministic. finish() emits
/// hits strictly in enqueue (row-major) order.
class DedupScorer {
 public:
  DedupScorer(const Detector& det, ScoreCache& cache, ShardAccum& acc,
              geom::Coord window_nm, std::size_t batch)
      : det_(det),
        cache_(cache),
        acc_(acc),
        window_nm_(window_nm),
        batch_(std::max<std::size_t>(1, batch)) {}

  void enqueue(const geom::Rect& window, std::vector<geom::Rect> rects) {
    data::CanonicalClip canon =
        data::canonical_clip(std::move(rects), window_nm_);
    const std::uint64_t hash = data::canonical_hash(canon);
    if (const auto cached = cache_.lookup(canon, hash)) {
      slots_.push_back({window, *cached, kResolved});
      return;
    }
    // Intra-batch dedup: a pattern already pending in this batch is scored
    // once and later occurrences alias its slot. On a 64-bit collision
    // with a *different* pending pattern, score separately (correct,
    // merely redundant); the map keeps pointing at the first owner.
    std::size_t index = pending_.size();
    const auto it = pending_by_hash_.find(hash);
    if (it != pending_by_hash_.end() &&
        pending_[it->second].canon == canon) {
      index = it->second;
      ++acc_.batch_alias_hits;
    } else {
      if (it == pending_by_hash_.end()) pending_by_hash_.emplace(hash, index);
      pending_.push_back({std::move(canon), hash});
    }
    slots_.push_back({window, 0.0f, static_cast<std::ptrdiff_t>(index)});
    if (pending_.size() >= batch_) score_pending();
  }

  /// Score whatever is still pending, then emit every slot in scan order.
  void finish(float threshold) {
    score_pending();
    for (const Slot& slot : slots_) {
      if (slot.score > threshold) {
        ++acc_.flagged;
        acc_.hits.push_back({slot.window, slot.score});
      }
    }
    slots_.clear();
    resolved_upto_ = 0;
  }

 private:
  static constexpr std::ptrdiff_t kResolved = -1;

  struct Slot {
    geom::Rect window;
    float score = 0.0f;
    std::ptrdiff_t pending = kResolved;  ///< index into the current batch
  };
  struct Pending {
    data::CanonicalClip canon;
    std::uint64_t hash = 0;
  };

  void score_pending() {
    if (pending_.empty()) return;
    std::vector<data::Clip> clips;
    clips.reserve(pending_.size());
    for (const Pending& p : pending_) {
      clips.push_back(make_clip(p.canon.rects, window_nm_));
    }
    const std::vector<float> scores = det_.score_batch(clips);
    acc_.windows_classified += pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      cache_.insert(pending_[i].canon, pending_[i].hash, scores[i]);
    }
    // Every unresolved slot references the batch just scored — slots from
    // earlier batches were resolved by the previous score_pending().
    for (std::size_t s = resolved_upto_; s < slots_.size(); ++s) {
      if (slots_[s].pending != kResolved) {
        slots_[s].score = scores[static_cast<std::size_t>(slots_[s].pending)];
        slots_[s].pending = kResolved;
      }
    }
    resolved_upto_ = slots_.size();
    pending_.clear();
    pending_by_hash_.clear();
  }

  const Detector& det_;
  ScoreCache& cache_;
  ShardAccum& acc_;
  geom::Coord window_nm_;
  std::size_t batch_;
  std::vector<Slot> slots_;
  std::size_t resolved_upto_ = 0;
  std::vector<Pending> pending_;
  std::unordered_map<std::uint64_t, std::size_t> pending_by_hash_;
};

/// Single-stage sink: score every window the moment it arrives.
struct DirectSink {
  const Detector& det;
  geom::Coord window_nm;
  ShardAccum& acc;

  void window(const geom::Rect& w, std::vector<geom::Rect> rects) {
    ++acc.windows_classified;
    const data::Clip clip = make_clip(std::move(rects), window_nm);
    const float s = det.score(clip);
    if (s > det.threshold()) {
      ++acc.flagged;
      acc.hits.push_back({w, s});
    }
  }
  void flush() {}
};

/// Single-stage sink with dedup: every window goes through the scorer.
struct DedupSink {
  const Detector& det;
  DedupScorer scorer;

  DedupSink(const Detector& d, ScoreCache& cache, ShardAccum& acc,
            const ScanConfig& config)
      : det(d), scorer(d, cache, acc, config.window_nm, config.batch) {}

  void window(const geom::Rect& w, std::vector<geom::Rect> rects) {
    scorer.enqueue(w, std::move(rects));
  }
  void flush() { scorer.finish(det.threshold()); }
};

/// Two-stage sink: cheap prefilter proposes, refiner decides.
struct TwoStageSink {
  const Detector& prefilter;
  const Detector& refiner;
  geom::Coord window_nm;
  ShardAccum& acc;

  void window(const geom::Rect& w, std::vector<geom::Rect> rects) {
    const data::Clip clip = make_clip(std::move(rects), window_nm);
    if (!prefilter.predict(clip)) return;  // stage 1 rejects
    ++acc.windows_classified;              // stage 2 work
    const float s = refiner.score(clip);
    if (s > refiner.threshold()) {
      ++acc.flagged;
      acc.hits.push_back({w, s});
    }
  }
  void flush() {}
};

/// Two-stage sink with dedup: the prefilter stays an uncached per-window
/// predict() (it is the cheap stage — caching it would cost more than it
/// saves), only the expensive refiner is deduplicated and batched.
struct TwoStageDedupSink {
  const Detector& prefilter;
  const Detector& refiner;
  geom::Coord window_nm;
  DedupScorer scorer;

  TwoStageDedupSink(const Detector& pre, const Detector& ref,
                    ScoreCache& cache, ShardAccum& acc,
                    const ScanConfig& config)
      : prefilter(pre),
        refiner(ref),
        window_nm(config.window_nm),
        scorer(ref, cache, acc, config.window_nm, config.batch) {}

  void window(const geom::Rect& w, std::vector<geom::Rect> rects) {
    data::Clip clip = make_clip(std::move(rects), window_nm);
    if (!prefilter.predict(clip)) return;  // stage 1 rejects
    scorer.enqueue(w, std::move(clip.rects));
  }
  void flush() { scorer.finish(refiner.threshold()); }
};

/// Copy the scan-local cache's tallies into the result and the registry.
/// `alias_hits` (summed over shards) reclassifies intra-batch duplicate
/// windows from misses to hits: they probed the cache before their
/// pattern's memo was committed, but were served without a detector
/// invocation — which is what the hit/miss split reports. The hit+miss
/// total (one probe per deduped window) is conserved.
void attach_cache_stats(ScanResult& result, const ScoreCache& cache,
                        std::uint64_t alias_hits) {
  const ScoreCache::Stats stats = cache.stats();
  result.cache_hits = stats.hits + alias_hits;
  result.cache_misses = stats.misses - alias_hits;
  result.cache_evictions = stats.evictions;
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.add("scan.cache.hits", result.cache_hits);
    reg.add("scan.cache.misses", result.cache_misses);
    reg.add("scan.cache.evictions", result.cache_evictions);
  }
}

/// Shared scan skeleton: enumerate the window grid, shard it row-wise,
/// feed each non-skipped window to a per-shard sink built by
/// `make_sink(accum)` (flushed at shard end), and merge shards in
/// row-major order so results match the serial scan bit for bit.
template <typename MakeSink>
ScanResult scan_impl(const ChipIndex& chip, const ScanConfig& config,
                     ThreadPool& pool, const MakeSink& make_sink,
                     std::uint64_t* batch_alias_hits = nullptr) {
  LHD_CHECK(config.window_nm > 0 && config.stride_nm > 0, "bad scan config");
  ScanResult result;
  Stopwatch sw;
  const geom::Rect extent = chip.extent();
  std::vector<geom::Coord> row_ys;
  for (geom::Coord y = extent.ylo; y < extent.yhi; y += config.stride_nm) {
    row_ys.push_back(y);
  }

  const auto scan_rows = [&](std::size_t lo, std::size_t hi,
                             ShardAccum& acc) {
    obs::ScopedTimer shard_timer(acc.seconds);
    ChipIndex::QueryScratch scratch;
    auto sink = make_sink(acc);
    for (std::size_t r = lo; r < hi; ++r) {
      const geom::Coord y = row_ys[r];
      for (geom::Coord x = extent.xlo; x < extent.xhi;
           x += config.stride_nm) {
        const geom::Rect window(x, y, x + config.window_nm,
                                y + config.window_nm);
        ++acc.windows_total;
        std::vector<geom::Rect> rects;
        {
          obs::ScopedTimer query_timer(acc.query_seconds);
          rects = chip.query(window, scratch);
        }
        if (config.skip_empty && rects.empty()) continue;
        sink.window(window, std::move(rects));
      }
    }
    sink.flush();
  };

  const std::size_t shards =
      std::min(resolve_threads(config.threads),
               std::max<std::size_t>(row_ys.size(), 1));
  std::vector<ShardAccum> accums(shards);
  if (shards <= 1) {
    scan_rows(0, row_ys.size(), accums[0]);
  } else {
    const std::size_t rows_per = (row_ys.size() + shards - 1) / shards;
    pool.parallel_for(0, shards, [&](std::size_t s) {
      const std::size_t lo = s * rows_per;
      const std::size_t hi = std::min(row_ys.size(), lo + rows_per);
      if (lo < hi) scan_rows(lo, hi, accums[s]);
    });
  }
  for (const auto& acc : accums) {
    result.windows_total += acc.windows_total;
    result.windows_classified += acc.windows_classified;
    result.flagged += acc.flagged;
    if (batch_alias_hits != nullptr) {
      *batch_alias_hits += acc.batch_alias_hits;
    }
    result.hits.insert(result.hits.end(), acc.hits.begin(), acc.hits.end());
    result.shards.push_back(
        {acc.windows_total, acc.seconds, acc.query_seconds});
  }
  result.seconds = sw.seconds();
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.add("scan.runs");
    reg.add("scan.windows_total", result.windows_total);
    reg.add("scan.windows_classified", result.windows_classified);
    reg.add("scan.flagged", result.flagged);
    reg.observe("scan.seconds", result.seconds);
    if (result.seconds > 0.0) {
      reg.observe("scan.windows_per_sec",
                  static_cast<double>(result.windows_total) / result.seconds);
    }
    for (const auto& shard : result.shards) {
      reg.observe("scan.shard_seconds", shard.seconds);
      reg.observe("scan.shard_query_seconds", shard.query_seconds);
    }
  }
  return result;
}

}  // namespace

ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config) {
  return scan_chip(chip, detector, config, ThreadPool::global());
}

ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config, ThreadPool& pool) {
  if (!config.dedup) {
    return scan_impl(chip, config, pool, [&](ShardAccum& acc) {
      return DirectSink{detector, config.window_nm, acc};
    });
  }
  ScoreCache cache(config.cache_capacity);
  std::uint64_t alias_hits = 0;
  ScanResult result = scan_impl(
      chip, config, pool,
      [&](ShardAccum& acc) { return DedupSink(detector, cache, acc, config); },
      &alias_hits);
  attach_cache_stats(result, cache, alias_hits);
  return result;
}

ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config) {
  return scan_chip_two_stage(chip, prefilter, refiner, config,
                             ThreadPool::global());
}

ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config, ThreadPool& pool) {
  if (!config.dedup) {
    return scan_impl(chip, config, pool, [&](ShardAccum& acc) {
      return TwoStageSink{prefilter, refiner, config.window_nm, acc};
    });
  }
  ScoreCache cache(config.cache_capacity);
  std::uint64_t alias_hits = 0;
  ScanResult result = scan_impl(
      chip, config, pool,
      [&](ShardAccum& acc) {
        return TwoStageDedupSink(prefilter, refiner, cache, acc, config);
      },
      &alias_hits);
  attach_cache_stats(result, cache, alias_hits);
  return result;
}

}  // namespace lhd::core
