#include "lhd/core/scan.hpp"

#include <algorithm>
#include <thread>

#include "lhd/obs/registry.hpp"
#include "lhd/obs/timer.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/stopwatch.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::core {

ChipIndex::ChipIndex(std::vector<geom::Rect> rects, geom::Coord bucket_nm)
    : rects_(std::move(rects)), bucket_nm_(bucket_nm) {
  LHD_CHECK(bucket_nm_ > 0, "bucket size must be positive");
  // Degenerate rects would mis-index: (xhi - 1) lands left of xlo, so they
  // never reach a bucket yet would still count in rect_count() and size the
  // stamp array. They cannot affect any query — drop them up front.
  std::erase_if(rects_, [](const geom::Rect& r) { return r.empty(); });
  extent_ = geom::Rect{};
  for (const auto& r : rects_) extent_ = extent_.unite(r);
  if (rects_.empty()) {
    bx_ = by_ = 1;
    buckets_.resize(1);
    return;
  }
  bx_ = static_cast<int>((extent_.width() + bucket_nm_ - 1) / bucket_nm_);
  by_ = static_cast<int>((extent_.height() + bucket_nm_ - 1) / bucket_nm_);
  bx_ = std::max(bx_, 1);
  by_ = std::max(by_, 1);
  buckets_.assign(static_cast<std::size_t>(bx_) * by_, {});
  for (std::uint32_t i = 0; i < rects_.size(); ++i) {
    const auto& r = rects_[i];
    const int x0 = static_cast<int>((r.xlo - extent_.xlo) / bucket_nm_);
    const int y0 = static_cast<int>((r.ylo - extent_.ylo) / bucket_nm_);
    const int x1 = static_cast<int>((r.xhi - 1 - extent_.xlo) / bucket_nm_);
    const int y1 = static_cast<int>((r.yhi - 1 - extent_.ylo) / bucket_nm_);
    for (int by = std::max(0, y0); by <= std::min(by_ - 1, y1); ++by) {
      for (int bx = std::max(0, x0); bx <= std::min(bx_ - 1, x1); ++bx) {
        buckets_[static_cast<std::size_t>(by) * bx_ + bx].push_back(i);
      }
    }
  }
}

std::vector<geom::Rect> ChipIndex::query(const geom::Rect& window,
                                         QueryScratch& scratch) const {
  std::vector<geom::Rect> out;
  if (rects_.empty()) return out;
  if (scratch.stamp_.size() != rects_.size()) {
    scratch.stamp_.assign(rects_.size(), 0);
    scratch.stamp_value_ = 0;
  }
  if (++scratch.stamp_value_ == 0) {
    // Wrapped after 2^32 queries: stamps from the previous epoch would
    // collide with reused values and silently drop rects. Reset.
    std::fill(scratch.stamp_.begin(), scratch.stamp_.end(), 0);
    scratch.stamp_value_ = 1;
  }
  const int x0 = std::max(
      0, static_cast<int>((window.xlo - extent_.xlo) / bucket_nm_));
  const int y0 = std::max(
      0, static_cast<int>((window.ylo - extent_.ylo) / bucket_nm_));
  const int x1 = std::min(
      bx_ - 1, static_cast<int>((window.xhi - 1 - extent_.xlo) / bucket_nm_));
  const int y1 = std::min(
      by_ - 1, static_cast<int>((window.yhi - 1 - extent_.ylo) / bucket_nm_));
  for (int by = y0; by <= y1; ++by) {
    for (int bx = x0; bx <= x1; ++bx) {
      for (const std::uint32_t i :
           buckets_[static_cast<std::size_t>(by) * bx_ + bx]) {
        if (scratch.stamp_[i] == scratch.stamp_value_) continue;
        scratch.stamp_[i] = scratch.stamp_value_;
        const geom::Rect c = rects_[i].intersect(window);
        if (!c.empty()) out.push_back(c.shifted(-window.xlo, -window.ylo));
      }
    }
  }
  return out;
}

std::vector<geom::Rect> ChipIndex::query(const geom::Rect& window) const {
  QueryScratch scratch;
  return query(window, scratch);
}

ChipIndex ChipIndex::from_library(const gds::Library& lib,
                                  const std::string& top,
                                  std::int16_t layer) {
  return ChipIndex(lib.flatten_layer(top, layer));
}

namespace {

/// Counters and hits gathered by one shard of the window grid. Timing
/// accumulates into plain doubles (obs::ScopedTimer accumulator mode), so
/// instrumenting the hot loop adds no cross-shard contention; totals are
/// flushed to the global registry once, after the shards join.
struct ShardAccum {
  std::size_t windows_total = 0;
  std::size_t windows_classified = 0;
  std::size_t flagged = 0;
  std::vector<ScanHit> hits;
  double seconds = 0.0;        ///< shard wall time
  double query_seconds = 0.0;  ///< time inside ChipIndex::query
};

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

data::Clip make_clip(std::vector<geom::Rect> rects, geom::Coord window_nm) {
  data::Clip clip;
  clip.rects = std::move(rects);
  clip.window_nm = window_nm;
  return clip;
}

/// Shared scan skeleton: enumerate the window grid, shard it row-wise,
/// run `classify(window, rects, accum)` per non-skipped window, and merge
/// shards in row-major order so results match the serial scan bit for bit.
template <typename Classify>
ScanResult scan_impl(const ChipIndex& chip, const ScanConfig& config,
                     ThreadPool& pool, const Classify& classify) {
  LHD_CHECK(config.window_nm > 0 && config.stride_nm > 0, "bad scan config");
  ScanResult result;
  Stopwatch sw;
  const geom::Rect extent = chip.extent();
  std::vector<geom::Coord> row_ys;
  for (geom::Coord y = extent.ylo; y < extent.yhi; y += config.stride_nm) {
    row_ys.push_back(y);
  }

  const auto scan_rows = [&](std::size_t lo, std::size_t hi,
                             ShardAccum& acc) {
    obs::ScopedTimer shard_timer(acc.seconds);
    ChipIndex::QueryScratch scratch;
    for (std::size_t r = lo; r < hi; ++r) {
      const geom::Coord y = row_ys[r];
      for (geom::Coord x = extent.xlo; x < extent.xhi;
           x += config.stride_nm) {
        const geom::Rect window(x, y, x + config.window_nm,
                                y + config.window_nm);
        ++acc.windows_total;
        std::vector<geom::Rect> rects;
        {
          obs::ScopedTimer query_timer(acc.query_seconds);
          rects = chip.query(window, scratch);
        }
        if (config.skip_empty && rects.empty()) continue;
        classify(window, std::move(rects), acc);
      }
    }
  };

  const std::size_t shards =
      std::min(resolve_threads(config.threads),
               std::max<std::size_t>(row_ys.size(), 1));
  std::vector<ShardAccum> accums(shards);
  if (shards <= 1) {
    scan_rows(0, row_ys.size(), accums[0]);
  } else {
    const std::size_t rows_per = (row_ys.size() + shards - 1) / shards;
    pool.parallel_for(0, shards, [&](std::size_t s) {
      const std::size_t lo = s * rows_per;
      const std::size_t hi = std::min(row_ys.size(), lo + rows_per);
      if (lo < hi) scan_rows(lo, hi, accums[s]);
    });
  }
  for (const auto& acc : accums) {
    result.windows_total += acc.windows_total;
    result.windows_classified += acc.windows_classified;
    result.flagged += acc.flagged;
    result.hits.insert(result.hits.end(), acc.hits.begin(), acc.hits.end());
    result.shards.push_back(
        {acc.windows_total, acc.seconds, acc.query_seconds});
  }
  result.seconds = sw.seconds();
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.add("scan.runs");
    reg.add("scan.windows_total", result.windows_total);
    reg.add("scan.windows_classified", result.windows_classified);
    reg.add("scan.flagged", result.flagged);
    reg.observe("scan.seconds", result.seconds);
    if (result.seconds > 0.0) {
      reg.observe("scan.windows_per_sec",
                  static_cast<double>(result.windows_total) / result.seconds);
    }
    for (const auto& shard : result.shards) {
      reg.observe("scan.shard_seconds", shard.seconds);
      reg.observe("scan.shard_query_seconds", shard.query_seconds);
    }
  }
  return result;
}

}  // namespace

ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config) {
  return scan_chip(chip, detector, config, ThreadPool::global());
}

ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config, ThreadPool& pool) {
  return scan_impl(
      chip, config, pool,
      [&](const geom::Rect& window, std::vector<geom::Rect> rects,
          ShardAccum& acc) {
        ++acc.windows_classified;
        const data::Clip clip = make_clip(std::move(rects), config.window_nm);
        const float s = detector.score(clip);
        if (s > detector.threshold()) {
          ++acc.flagged;
          acc.hits.push_back({window, s});
        }
      });
}

ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config) {
  return scan_chip_two_stage(chip, prefilter, refiner, config,
                             ThreadPool::global());
}

ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config, ThreadPool& pool) {
  return scan_impl(
      chip, config, pool,
      [&](const geom::Rect& window, std::vector<geom::Rect> rects,
          ShardAccum& acc) {
        const data::Clip clip = make_clip(std::move(rects), config.window_nm);
        if (!prefilter.predict(clip)) return;  // stage 1 rejects
        ++acc.windows_classified;              // stage 2 work
        const float s = refiner.score(clip);
        if (s > refiner.threshold()) {
          ++acc.flagged;
          acc.hits.push_back({window, s});
        }
      });
}

}  // namespace lhd::core
