#include "lhd/core/scan.hpp"

#include <algorithm>

#include "lhd/util/check.hpp"
#include "lhd/util/stopwatch.hpp"

namespace lhd::core {

ChipIndex::ChipIndex(std::vector<geom::Rect> rects, geom::Coord bucket_nm)
    : rects_(std::move(rects)), bucket_nm_(bucket_nm) {
  LHD_CHECK(bucket_nm_ > 0, "bucket size must be positive");
  extent_ = geom::Rect{};
  for (const auto& r : rects_) extent_ = extent_.unite(r);
  if (rects_.empty()) {
    bx_ = by_ = 1;
    buckets_.resize(1);
    return;
  }
  bx_ = static_cast<int>((extent_.width() + bucket_nm_ - 1) / bucket_nm_);
  by_ = static_cast<int>((extent_.height() + bucket_nm_ - 1) / bucket_nm_);
  bx_ = std::max(bx_, 1);
  by_ = std::max(by_, 1);
  buckets_.assign(static_cast<std::size_t>(bx_) * by_, {});
  for (std::uint32_t i = 0; i < rects_.size(); ++i) {
    const auto& r = rects_[i];
    const int x0 = static_cast<int>((r.xlo - extent_.xlo) / bucket_nm_);
    const int y0 = static_cast<int>((r.ylo - extent_.ylo) / bucket_nm_);
    const int x1 = static_cast<int>((r.xhi - 1 - extent_.xlo) / bucket_nm_);
    const int y1 = static_cast<int>((r.yhi - 1 - extent_.ylo) / bucket_nm_);
    for (int by = std::max(0, y0); by <= std::min(by_ - 1, y1); ++by) {
      for (int bx = std::max(0, x0); bx <= std::min(bx_ - 1, x1); ++bx) {
        buckets_[static_cast<std::size_t>(by) * bx_ + bx].push_back(i);
      }
    }
  }
  stamp_.assign(rects_.size(), 0);
}

std::vector<geom::Rect> ChipIndex::query(const geom::Rect& window) const {
  std::vector<geom::Rect> out;
  if (rects_.empty()) return out;
  ++stamp_value_;
  const int x0 = std::max(
      0, static_cast<int>((window.xlo - extent_.xlo) / bucket_nm_));
  const int y0 = std::max(
      0, static_cast<int>((window.ylo - extent_.ylo) / bucket_nm_));
  const int x1 = std::min(
      bx_ - 1, static_cast<int>((window.xhi - 1 - extent_.xlo) / bucket_nm_));
  const int y1 = std::min(
      by_ - 1, static_cast<int>((window.yhi - 1 - extent_.ylo) / bucket_nm_));
  for (int by = y0; by <= y1; ++by) {
    for (int bx = x0; bx <= x1; ++bx) {
      for (const std::uint32_t i :
           buckets_[static_cast<std::size_t>(by) * bx_ + bx]) {
        if (stamp_[i] == stamp_value_) continue;
        stamp_[i] = stamp_value_;
        const geom::Rect c = rects_[i].intersect(window);
        if (!c.empty()) out.push_back(c.shifted(-window.xlo, -window.ylo));
      }
    }
  }
  return out;
}

ChipIndex ChipIndex::from_library(const gds::Library& lib,
                                  const std::string& top,
                                  std::int16_t layer) {
  return ChipIndex(lib.flatten_layer(top, layer));
}

namespace {

/// Iterate scan windows over the chip extent, invoking fn(window, rects).
template <typename Fn>
std::size_t for_each_window(const ChipIndex& chip, const ScanConfig& config,
                            Fn&& fn) {
  LHD_CHECK(config.window_nm > 0 && config.stride_nm > 0, "bad scan config");
  const geom::Rect extent = chip.extent();
  std::size_t visited = 0;
  for (geom::Coord y = extent.ylo; y < extent.yhi; y += config.stride_nm) {
    for (geom::Coord x = extent.xlo; x < extent.xhi;
         x += config.stride_nm) {
      const geom::Rect window(x, y, x + config.window_nm,
                              y + config.window_nm);
      ++visited;
      auto rects = chip.query(window);
      if (config.skip_empty && rects.empty()) continue;
      fn(window, std::move(rects));
    }
  }
  return visited;
}

data::Clip make_clip(std::vector<geom::Rect> rects, geom::Coord window_nm) {
  data::Clip clip;
  clip.rects = std::move(rects);
  clip.window_nm = window_nm;
  return clip;
}

}  // namespace

ScanResult scan_chip(const ChipIndex& chip, const Detector& detector,
                     const ScanConfig& config) {
  ScanResult result;
  Stopwatch sw;
  result.windows_total =
      for_each_window(chip, config, [&](const geom::Rect& window,
                                        std::vector<geom::Rect> rects) {
        ++result.windows_classified;
        const data::Clip clip = make_clip(std::move(rects), config.window_nm);
        const float s = detector.score(clip);
        if (s > detector.threshold()) {
          ++result.flagged;
          result.hits.push_back({window, s});
        }
      });
  result.seconds = sw.seconds();
  return result;
}

ScanResult scan_chip_two_stage(const ChipIndex& chip,
                               const Detector& prefilter,
                               const Detector& refiner,
                               const ScanConfig& config) {
  ScanResult result;
  Stopwatch sw;
  result.windows_total =
      for_each_window(chip, config, [&](const geom::Rect& window,
                                        std::vector<geom::Rect> rects) {
        const data::Clip clip = make_clip(std::move(rects), config.window_nm);
        if (!prefilter.predict(clip)) return;  // stage 1 rejects
        ++result.windows_classified;           // stage 2 work
        const float s = refiner.score(clip);
        if (s > refiner.threshold()) {
          ++result.flagged;
          result.hits.push_back({window, s});
        }
      });
  result.seconds = sw.seconds();
  return result;
}

}  // namespace lhd::core
