#include "lhd/core/score_cache.hpp"

#include <algorithm>

#include "lhd/util/check.hpp"

namespace lhd::core {

ScoreCache::ScoreCache(std::size_t capacity, std::size_t shard_count)
    : capacity_(capacity) {
  LHD_CHECK(shard_count > 0, "score cache needs at least one shard");
  // Never allocate more shards than entries: with capacity 1 a 16-way
  // split would either break the bound or leave 15 dead shards.
  shard_count_ = std::max<std::size_t>(
      1, std::min(shard_count, std::max<std::size_t>(capacity_, 1)));
  // Split the bound exactly: a plain capacity/shards would silently drop
  // the remainder (ScoreCache(20, 16) used to hold only 16 entries), so
  // the first capacity % shards shards get one extra slot each.
  per_shard_base_ = capacity_ / shard_count_;
  per_shard_remainder_ = capacity_ % shard_count_;
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

std::optional<float> ScoreCache::lookup(const data::CanonicalClip& key,
                                        std::uint64_t hash) const {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const Shard& shard = shard_for(hash);
  {
    const MutexLock lock(shard.mutex);
    const auto it = shard.map.find(hash);
    if (it != shard.map.end() && it->second.key == key) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.score;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ScoreCache::insert(const data::CanonicalClip& key, std::uint64_t hash,
                        float score) {
  if (capacity_ == 0) return;
  const std::size_t index = shard_index(hash);
  Shard& shard = shards_[index];
  const std::size_t bound = shard_capacity(index);
  std::uint64_t evicted = 0;
  bool collided = false;
  {
    const MutexLock lock(shard.mutex);
    const auto it = shard.map.find(hash);
    if (it != shard.map.end()) {
      if (it->second.key == key) return;  // duplicate: first writer wins
      // Full-key collision: a different pattern owns this hash slot. An
      // early return here would make `key` permanently uncacheable (the
      // incumbent never ages out of the map entry it shadows), so replace
      // it — both scores are exact, this only chooses which pattern gets
      // the memo. The FIFO position is inherited: the slot's age is the
      // incumbent's age.
      it->second = Entry{key, score};
      collided = true;
    } else {
      while (shard.map.size() >= bound && !shard.fifo.empty()) {
        shard.map.erase(shard.fifo.front());
        shard.fifo.pop_front();
        ++evicted;
      }
      if (bound == 0) return;  // a zero-capacity shard stores nothing
      shard.map.emplace(hash, Entry{key, score});
      shard.fifo.push_back(hash);
    }
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  if (collided) collisions_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ScoreCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const MutexLock lock(shards_[s].mutex);
    total += shards_[s].map.size();
  }
  return total;
}

ScoreCache::Stats ScoreCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.collisions = collisions_.load(std::memory_order_relaxed);
  return out;
}

void ScoreCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  collisions_.store(0, std::memory_order_relaxed);
}

}  // namespace lhd::core
