#include "lhd/core/score_cache.hpp"

#include <algorithm>

#include "lhd/util/check.hpp"

namespace lhd::core {

ScoreCache::ScoreCache(std::size_t capacity, std::size_t shard_count)
    : capacity_(capacity) {
  LHD_CHECK(shard_count > 0, "score cache needs at least one shard");
  // Never allocate more shards than entries: with capacity 1 a 16-way
  // split would either break the bound or leave 15 dead shards.
  shard_count_ = std::max<std::size_t>(
      1, std::min(shard_count, std::max<std::size_t>(capacity_, 1)));
  per_shard_capacity_ = capacity_ / shard_count_;
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

std::optional<float> ScoreCache::lookup(const data::CanonicalClip& key,
                                        std::uint64_t hash) const {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const Shard& shard = shard_for(hash);
  {
    const MutexLock lock(shard.mutex);
    const auto it = shard.map.find(hash);
    if (it != shard.map.end() && it->second.key == key) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.score;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ScoreCache::insert(const data::CanonicalClip& key, std::uint64_t hash,
                        float score) {
  if (capacity_ == 0 || per_shard_capacity_ == 0) return;
  Shard& shard = shard_for(hash);
  std::uint64_t evicted = 0;
  {
    const MutexLock lock(shard.mutex);
    if (shard.map.find(hash) != shard.map.end()) return;  // first writer wins
    while (shard.map.size() >= per_shard_capacity_ && !shard.fifo.empty()) {
      shard.map.erase(shard.fifo.front());
      shard.fifo.pop_front();
      ++evicted;
    }
    shard.map.emplace(hash, Entry{key, score});
    shard.fifo.push_back(hash);
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

std::size_t ScoreCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const MutexLock lock(shards_[s].mutex);
    total += shards_[s].map.size();
  }
  return total;
}

ScoreCache::Stats ScoreCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  return out;
}

void ScoreCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace lhd::core
