#include "lhd/core/ensemble.hpp"

#include "lhd/core/factory.hpp"
#include "lhd/util/check.hpp"

namespace lhd::core {

EnsembleDetector::EnsembleDetector(
    std::string name, std::vector<std::unique_ptr<Detector>> members)
    : name_(std::move(name)), members_(std::move(members)) {
  LHD_CHECK(!members_.empty(), "ensemble needs at least one member");
  for (const auto& m : members_) {
    LHD_CHECK(m != nullptr, "null ensemble member");
  }
}

void EnsembleDetector::train(const data::Dataset& train_set) {
  for (auto& m : members_) m->train(train_set);
}

float EnsembleDetector::score(const data::Clip& clip) const {
  int votes = 0;
  for (const auto& m : members_) votes += m->predict(clip);
  return static_cast<float>(votes) / static_cast<float>(members_.size()) -
         0.5f;
}

std::unique_ptr<EnsembleDetector> make_seed_ensemble(const std::string& kind,
                                                     int n,
                                                     std::uint64_t base_seed) {
  LHD_CHECK(n > 0, "ensemble size must be positive");
  std::vector<std::unique_ptr<Detector>> members;
  members.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    members.push_back(
        make_detector(kind, base_seed + static_cast<std::uint64_t>(i) * 101));
  }
  return std::make_unique<EnsembleDetector>(
      kind + "-ens" + std::to_string(n), std::move(members));
}

}  // namespace lhd::core
