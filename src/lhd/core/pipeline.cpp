#include "lhd/core/pipeline.hpp"

#include <algorithm>
#include <span>

#include "lhd/exec/backend.hpp"
#include "lhd/exec/registry.hpp"
#include "lhd/obs/registry.hpp"
#include "lhd/obs/timer.hpp"
#include "lhd/util/stopwatch.hpp"

namespace lhd::core {

EvalResult run_experiment(Detector& detector, const synth::BuiltSuite& suite,
                          const std::string& suite_name,
                          double sim_seconds_per_clip) {
  EvalResult r;
  r.detector = detector.name();
  r.suite = suite_name;

  Stopwatch train_sw;
  detector.train(suite.train);
  r.train_seconds = train_sw.seconds();

  Stopwatch test_sw;
  const auto predictions = detector.predict_all(suite.test);
  r.test_seconds = test_sw.seconds();

  auto& reg = obs::Registry::global();
  reg.add("pipeline.experiments");
  reg.observe("pipeline.train_seconds", r.train_seconds);
  reg.observe("pipeline.test_seconds", r.test_seconds);

  r.confusion = evaluate(predictions, suite.test);
  reg.add("pipeline.hits", r.confusion.tp);
  reg.add("pipeline.false_alarms", r.confusion.fp);
  reg.add("pipeline.clips_evaluated", r.confusion.total());
  r.odst = odst_seconds(r.confusion, r.test_seconds, sim_seconds_per_clip);
  r.full_sim =
      full_simulation_seconds(suite.test.size(), sim_seconds_per_clip);
  r.speedup = r.odst > 0 ? r.full_sim / r.odst : 0.0;
  return r;
}

std::vector<SweepPoint> threshold_sweep(
    Detector& detector, const data::Dataset& test,
    const std::vector<float>& thresholds) {
  const float original = detector.threshold();
  obs::ScopedTimer sweep_timer("pipeline.sweep_seconds");
  obs::Registry::global().add("pipeline.sweep_points", thresholds.size());
  std::vector<SweepPoint> points;
  points.reserve(thresholds.size());
  // Score once; thresholds are applied to the cached scores so the sweep
  // costs one inference pass regardless of its resolution. Scoring is
  // side-effect-free for every in-tree detector and score_batch is
  // bit-identical to per-sample score() for any sub-span, so the active
  // exec backend (LHD_EXEC_BACKEND) is free to batch or fan the clips
  // out; each slot is written exactly once, keeping the sweep
  // deterministic.
  std::vector<float> scores(test.size());
  const exec::ExecBackend& backend = exec::resolve();
  backend.submit_batches(
      test.size(), exec::SubmitConfig{}, [&](std::size_t lo, std::size_t hi) {
        const std::vector<float> scored = detector.score_batch(
            std::span<const data::Clip>(test.clips()).subspan(lo, hi - lo));
        std::copy(scored.begin(), scored.end(),
                  scores.begin() + static_cast<std::ptrdiff_t>(lo));
      });
  for (const float t : thresholds) {
    std::vector<bool> preds(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) preds[i] = scores[i] > t;
    points.push_back({t, evaluate(preds, test)});
  }
  detector.set_threshold(original);
  return points;
}

}  // namespace lhd::core
