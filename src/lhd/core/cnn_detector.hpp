#pragma once
/// @file cnn_detector.hpp
/// @brief The deep-learning detector: DCT feature tensor -> hotspot CNN,
/// with the survey's imbalance-aware preparation (minority upsampling +
/// mirror augmentation) and three training modes (plain / biased learning
/// / batch biased learning).
///
/// Thread-safety: follows the Detector contract — train() is exclusive;
/// score()/predict() route through Network::infer(), the side-effect-free
/// forward path, so concurrent inference on a trained instance never
/// touches training caches.

#include <memory>

#include "lhd/core/detector.hpp"
#include "lhd/feature/extractor.hpp"
#include "lhd/nn/serialize.hpp"
#include "lhd/nn/trainer.hpp"

namespace lhd::core {

enum class CnnTrainMode { Plain, Biased, BatchBiased };

struct CnnDetectorConfig {
  feature::DctConfig dct;          ///< feature tensor parameters
  CnnTrainMode mode = CnnTrainMode::Plain;
  nn::TrainConfig train;           ///< base training parameters
  double bias_lambda = 0.25;       ///< Biased mode λ
  int bias_epochs = 8;             ///< Biased mode fine-tune epochs
  std::vector<double> lambda_schedule = {0.1, 0.2, 0.3};  ///< BatchBiased
  int epochs_per_stage = 4;        ///< BatchBiased
  double upsample_ratio = 0.35;    ///< 0 disables imbalance handling
  bool mirror_augment = true;
  geom::Coord augment_shift_nm = 16;  ///< replica translation jitter
  int augment_factor = 3;  ///< whole-set symmetry/shift replication
  std::uint64_t seed = 11;
};

class CnnDetector final : public Detector {
 public:
  explicit CnnDetector(std::string name, CnnDetectorConfig config = {});

  std::string name() const override { return name_; }
  void train(const data::Dataset& train_set) override;
  /// Score = P(hotspot) - 0.5 - threshold, so 0 keeps the natural 0.5 cut.
  float score(const data::Clip& clip) const override;
  /// Real batched forward pass: the span is sliced into batches by the
  /// active exec backend (exec::resolve — LHD_EXEC_BACKEND selects
  /// scheduling), and each batch runs one feature-extraction +
  /// Network::forward_batch() sweep instead of per clip, so the fast
  /// kernel path runs one batched im2col+GEMM per layer. Batching only
  /// changes the GEMM's n/m extent, never the per-element accumulation
  /// order, so each element matches score() bit-for-bit under either
  /// kernel path and any backend (see docs/PERFORMANCE.md and
  /// docs/BACKENDS.md). An empty span returns an empty vector.
  std::vector<float> score_batch(std::span<const data::Clip> clips) const override;
  bool predict(const data::Clip& clip) const override;
  std::vector<bool> predict_all(const data::Dataset& ds) const override;
  void set_threshold(float threshold) override { threshold_ = threshold; }
  float threshold() const override { return threshold_; }

  /// P(hotspot) for one clip.
  float probability(const data::Clip& clip) const;

  /// Per-epoch training history of the last train() call.
  const std::vector<nn::EpochStats>& history() const { return history_; }

  nn::Network& network() { return net_; }
  const feature::Extractor& extractor() const { return *extractor_; }

  /// Weight persistence (architecture is implied by the config).
  void save(const std::string& path) { nn::save_weights_file(net_, path); }
  void load(const std::string& path) { nn::load_weights_file(net_, path); }

 private:
  std::string name_;
  CnnDetectorConfig config_;
  std::unique_ptr<feature::Extractor> extractor_;
  nn::Network net_;
  std::unique_ptr<nn::Trainer> trainer_;
  std::vector<nn::EpochStats> history_;
  float threshold_ = 0.0f;
};

}  // namespace lhd::core
