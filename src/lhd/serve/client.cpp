#include "lhd/serve/client.hpp"

#include <istream>
#include <ostream>
#include <utility>

#include "lhd/util/check.hpp"

namespace lhd::serve {

Client::Client(Transport& transport, std::uint32_t tenant)
    : transport_(transport), tenant_(tenant) {}

Response Client::call(const Request& request) {
  std::ostream& out = transport_.out();
  encode_request(request, out);
  out.flush();
  LHD_CHECK(out.good(), "serve client: transport write failed");
  return decode_response(transport_.in());
}

Response Client::score_clip(const std::string& model, std::int32_t window_nm,
                            std::vector<geom::Rect> rects) {
  Request req;
  req.tenant = tenant_;
  req.body = ScoreClip{model, window_nm, std::move(rects)};
  return call(req);
}

Response Client::scan_region(const std::string& model, std::int32_t window_nm,
                             std::int32_t stride_nm,
                             std::vector<geom::Rect> rects) {
  Request req;
  req.tenant = tenant_;
  req.body = ScanRegion{model, window_nm, stride_nm, std::move(rects)};
  return call(req);
}

Response Client::reload_weights(const std::string& model,
                                std::vector<std::uint8_t> weights) {
  Request req;
  req.tenant = tenant_;
  req.body = ReloadWeights{model, std::move(weights)};
  return call(req);
}

Response Client::stats() {
  Request req;
  req.tenant = tenant_;
  req.body = Stats{};
  return call(req);
}

}  // namespace lhd::serve
