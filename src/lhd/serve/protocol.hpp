#pragma once
/// @file protocol.hpp
/// @brief The `lhd::serve` wire format: length-prefixed binary request /
/// response frames the detection daemon speaks. The format is
/// attacker-facing (anything can connect a pipe), so it follows the
/// hardened-decoder discipline from the GDS and weight loaders: a
/// versioned magic, every variable-length field behind an explicit cap
/// (util/bounded.hpp), offset-carrying errors, and a libFuzzer harness
/// (fuzz/fuzz_serve_request) with a checked-in seed corpus from day one.
///
/// Frame layout (all integers native little-endian, like data/io):
///
///   request  = magic u32 ("LHSV") | version u32 | tenant u32 | op u8
///            | payload_len u32 | payload[payload_len]
///   response = magic u32 ("LHSV") | version u32 | status u8 | op u8
///            | payload_len u32 | payload[payload_len]
///
/// The payload_len prefix is the framing: a decoder always knows how many
/// bytes the frame claims before parsing them, payload_len is capped at
/// kMaxPayloadBytes, and the payload is consumed in full before the next
/// frame — a semantic error inside a fully-read payload leaves the stream
/// synchronized (WireError::recoverable()), so a session can answer with
/// a typed error and keep serving.
///
/// Thread-safety: encode/decode are pure functions of their stream
/// arguments; distinct streams may be used concurrently.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "lhd/geom/rect.hpp"
#include "lhd/util/check.hpp"

namespace lhd::serve {

inline constexpr std::uint32_t kMagic = 0x5653484Cu;  // "LHSV" on the wire
inline constexpr std::uint32_t kVersion = 1;

/// Operation codes, in wire-value order. kOpNames below is the
/// documentation registry scripts/check_docs.sh checks docs/SERVE.md
/// against — adding an op means writing it down.
enum class Op : std::uint8_t {
  ScoreClip = 0,      ///< score one clip through the model's ScoreCache
  ScanRegion = 1,     ///< deduplicated sliding-window scan of a rect soup
  ReloadWeights = 2,  ///< stage + swap new model weights, all-or-nothing
  Stats = 3,          ///< per-tenant counters, queue + cache statistics
};
inline constexpr std::uint8_t kOpCount = 4;

/// Single source of truth for the op-code vocabulary (docs rule 7 in
/// scripts/check_docs.sh parses this block).
inline constexpr const char* kOpNames[] = {
    "score-clip",
    "scan-region",
    "reload-weights",
    "stats",
};

/// Response status byte. Busy is the admission-control answer: the
/// bounded request queue was full, nothing was attempted, retry later.
enum class Status : std::uint8_t { Ok = 0, Busy = 1, Error = 2 };

// --- field caps -------------------------------------------------------------
// Every variable-length field decodes through one of these bounds; a frame
// claiming more is a hard WireError before any allocation grows past the
// cap (bounded_reserve) or at all (bounded_resize).

inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;
inline constexpr std::uint32_t kMaxModelNameBytes = 64;
inline constexpr std::uint32_t kMaxRects = 1u << 16;
inline constexpr std::uint32_t kMaxWeightBytes = 16u << 20;
inline constexpr std::uint32_t kMaxScanHits = 1u << 20;
inline constexpr std::uint32_t kMaxStatsBytes = 1u << 20;
inline constexpr std::uint32_t kMaxErrorBytes = 4096;

/// Decode failure. `offset` is the byte position within the frame stream
/// where the failure was detected; `recoverable()` tells a serving loop
/// whether the stream is still frame-synchronized (the whole payload was
/// consumed before the semantic check failed) so it may answer with a
/// Status::Error response and continue, or must close the connection.
class WireError : public Error {
 public:
  WireError(std::uint64_t offset, const std::string& what, bool recoverable)
      : Error("serve wire error at byte " + std::to_string(offset) + ": " +
              what),
        offset_(offset),
        recoverable_(recoverable) {}

  std::uint64_t offset() const { return offset_; }
  bool recoverable() const { return recoverable_; }

  /// The frame's op, when the decoder got far enough to know it (payload
  /// errors always do; header errors never do). Lets a serving loop echo
  /// the op in its Status::Error answer.
  std::optional<Op> op() const { return op_; }
  void set_op(Op op) { op_ = op; }

 private:
  std::uint64_t offset_ = 0;
  bool recoverable_ = false;
  std::optional<Op> op_;
};

// --- request bodies ---------------------------------------------------------

/// Score one clip. `model` names the target detector; empty picks the
/// server's default model.
struct ScoreClip {
  std::string model;
  std::int32_t window_nm = 1024;
  std::vector<geom::Rect> rects;

  friend bool operator==(const ScoreClip&, const ScoreClip&) = default;
};

/// Sliding-window scan over a client-supplied rect soup (an interactive
/// region check, not a whole chip — the window-grid size is capped
/// server-side).
struct ScanRegion {
  std::string model;
  std::int32_t window_nm = 1024;
  std::int32_t stride_nm = 512;
  std::vector<geom::Rect> rects;

  friend bool operator==(const ScanRegion&, const ScanRegion&) = default;
};

/// Replace `model`'s weights with the carried blob. The server stages the
/// load all-or-nothing (nn/serialize discipline) and swaps atomically;
/// in-flight requests finish on the snapshot they started with.
struct ReloadWeights {
  std::string model;
  std::vector<std::uint8_t> weights;

  friend bool operator==(const ReloadWeights&, const ReloadWeights&) = default;
};

/// Fetch the server's deterministic-order JSON statistics document.
struct Stats {
  friend bool operator==(const Stats&, const Stats&) = default;
};

/// One request frame. The active body alternative *is* the op code
/// (variant index == wire op byte).
struct Request {
  std::uint32_t tenant = 0;
  std::variant<ScoreClip, ScanRegion, ReloadWeights, Stats> body;

  friend bool operator==(const Request&, const Request&) = default;
};

Op request_op(const Request& req);

// --- response bodies --------------------------------------------------------

struct ScoreResult {
  float score = 0.0f;

  friend bool operator==(const ScoreResult&, const ScoreResult&) = default;
};

struct ScanHitWire {
  geom::Rect window;
  float score = 0.0f;

  friend bool operator==(const ScanHitWire&, const ScanHitWire&) = default;
};

struct ScanResultWire {
  std::uint64_t windows_total = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::vector<ScanHitWire> hits;

  friend bool operator==(const ScanResultWire&, const ScanResultWire&) =
      default;
};

struct ReloadResult {
  std::uint64_t version = 0;  ///< model version now serving

  friend bool operator==(const ReloadResult&, const ReloadResult&) = default;
};

struct StatsResult {
  std::string json;  ///< deterministic-order JSON document

  friend bool operator==(const StatsResult&, const StatsResult&) = default;
};

/// Admission-control rejection: the request was never queued; `op` echoes
/// what was asked so pipelined clients can match it up.
struct BusyResult {
  Op op = Op::ScoreClip;

  friend bool operator==(const BusyResult&, const BusyResult&) = default;
};

/// Typed failure (bad payload semantics, unknown model, oversized region,
/// rejected weights, ...). The request had no effect.
struct ErrorResult {
  Op op = Op::ScoreClip;  ///< echoed request op
  std::string message;

  friend bool operator==(const ErrorResult&, const ErrorResult&) = default;
};

struct Response {
  std::variant<ScoreResult, ScanResultWire, ReloadResult, StatsResult,
               BusyResult, ErrorResult>
      body;

  friend bool operator==(const Response&, const Response&) = default;
};

Status response_status(const Response& resp);
/// The op this response answers (the Ok alternative's index, or the echoed
/// op for Busy/Error).
Op response_op(const Response& resp);

// --- wire functions ---------------------------------------------------------

void encode_request(const Request& req, std::ostream& out);
void encode_response(const Response& resp, std::ostream& out);

/// Decode one frame. Throws WireError on anything malformed; returns
/// nullopt (request only) on clean end-of-stream — EOF before the first
/// magic byte is how a client says goodbye, EOF anywhere later is an
/// error. Both consume exactly one frame on success.
std::optional<Request> decode_request(std::istream& in);
Response decode_response(std::istream& in);

}  // namespace lhd::serve
