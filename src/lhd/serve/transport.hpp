#pragma once
/// @file transport.hpp
/// @brief Byte-stream transports the serve daemon and its clients speak
/// over. A Transport is just a paired istream/ostream plus an interrupt
/// hook; the protocol layer never knows whether the bytes cross a
/// socketpair, the daemon's stdio, or an in-memory stringstream — which is
/// what lets the tests and the fuzzer drive a real Server hermetically.
///
/// Thread-safety: in()/out() belong to one session thread at a time (a
/// Transport is one connection, and the protocol is strictly
/// request/response). interrupt() is the exception: it may be called from
/// any thread while a read is blocked — that is its whole purpose (Server::
/// stop() uses it to unblock attached session loops).

#include <iosfwd>
#include <memory>
#include <utility>

namespace lhd::serve {

class Transport {
 public:
  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Request bytes arrive here (server side) / response bytes (client side).
  virtual std::istream& in() = 0;
  /// Peer-bound bytes go here. The protocol layer flushes per frame.
  virtual std::ostream& out() = 0;

  /// Unblock any in-progress or future read — the reader observes
  /// end-of-stream. Callable from any thread, idempotent. Transports that
  /// cannot interrupt a blocked read (borrowed stdio) document it and
  /// no-op; hermetic transports (socketpair) really unblock.
  virtual void interrupt() = 0;
};

/// Transport borrowing caller-owned streams (the daemon's stdin/stdout, a
/// test's stringstreams). interrupt() only poisons the stream state for
/// *future* reads — it cannot wake a read already blocked in the kernel,
/// so attach() long-lived sessions over FdTransport instead.
class StreamTransport final : public Transport {
 public:
  StreamTransport(std::istream& in, std::ostream& out) : in_(in), out_(out) {}

  std::istream& in() override { return in_; }
  std::ostream& out() override { return out_; }
  void interrupt() override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

/// Transport over an OS file descriptor (one fd, read and written — a
/// socketpair end). Owns the fd; the destructor closes it. interrupt()
/// shuts the socket down in both directions, so a session thread blocked
/// in read() wakes with EOF.
class FdTransport final : public Transport {
 public:
  /// Takes ownership of `fd` (must be a connected stream socket).
  explicit FdTransport(int fd);
  ~FdTransport() override;

  std::istream& in() override;
  std::ostream& out() override;
  void interrupt() override;

  int fd() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A connected in-process pipe: two FdTransports wired back to back
/// (AF_UNIX socketpair). first's out() feeds second's in() and vice
/// versa — hand one end to Server::attach() and keep the other for a
/// Client.
std::pair<std::unique_ptr<FdTransport>, std::unique_ptr<FdTransport>>
socketpair_transport();

}  // namespace lhd::serve
