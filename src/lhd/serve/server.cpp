#include "lhd/serve/server.hpp"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "lhd/core/scan.hpp"
#include "lhd/data/clip_hash.hpp"
#include "lhd/obs/json.hpp"
#include "lhd/util/stopwatch.hpp"

namespace lhd::serve {

namespace {

std::string tenant_key(std::uint32_t tenant, const char* leaf) {
  return "serve.tenant." + std::to_string(tenant) + "." + leaf;
}

std::string op_key(Op op, const char* leaf) {
  return std::string("serve.op.") +
         kOpNames[static_cast<std::size_t>(op)] + "." + leaf;
}

/// Decrements the admission counter on every exit path.
class AdmissionSlot {
 public:
  explicit AdmissionSlot(std::atomic<std::size_t>& in_flight)
      : in_flight_(in_flight) {}
  ~AdmissionSlot() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  std::atomic<std::size_t>& in_flight_;
};

}  // namespace

WeightLoader cnn_weight_loader(std::string name,
                               core::CnnDetectorConfig config) {
  return [name = std::move(name), config](
             const std::vector<std::uint8_t>& weights)
             -> std::shared_ptr<const core::Detector> {
    auto detector = std::make_shared<core::CnnDetector>(name, config);
    std::istringstream in(std::string(weights.begin(), weights.end()));
    nn::load_weights(detector->network(), in);  // staged; throws on bad blob
    return detector;
  };
}

Server::Server(ServerConfig config) : config_(config) {
  config_.score_workers = std::max<std::size_t>(1, config_.score_workers);
  config_.session_workers = std::max<std::size_t>(1, config_.session_workers);
  config_.max_queue = std::max<std::size_t>(1, config_.max_queue);
  score_pool_ = std::make_unique<ThreadPool>(config_.score_workers);
  sessions_ = std::make_unique<ThreadPool>(config_.session_workers);
}

Server::~Server() { stop(); }

void Server::add_model(const std::string& name,
                       std::shared_ptr<const core::Detector> detector,
                       WeightLoader loader) {
  LHD_CHECK(detector != nullptr, "add_model needs a detector");
  LHD_CHECK(!name.empty() && name.size() <= kMaxModelNameBytes,
            "model name must be 1..kMaxModelNameBytes bytes");
  const MutexLock lock(models_mutex_);
  LHD_CHECK_MSG(models_.find(name) == models_.end(),
                "model '" + name + "' is already registered — reload it");
  auto model = std::make_unique<Model>();
  model->loader = std::move(loader);
  {
    const MutexLock state_lock(model->mutex);
    model->state.detector = std::move(detector);
    model->state.cache = std::make_shared<core::ScoreCache>(
        config_.cache_capacity, config_.cache_shards);
    model->state.version = 1;
  }
  models_.emplace(name, std::move(model));
  if (default_model_.empty()) default_model_ = name;
}

Server::Model& Server::find_model(const std::string& name) const {
  const MutexLock lock(models_mutex_);
  const std::string& key = name.empty() ? default_model_ : name;
  const auto it = models_.find(key);
  if (it == models_.end()) {
    throw Error("unknown model '" + (name.empty() ? "<default>" : name) + "'");
  }
  // Safe to hand out past the lock: models_ never erases, map nodes are
  // stable, and Model's mutable state carries its own mutex.
  return *it->second;
}

Server::Model::State Server::snapshot(const std::string& name) const {
  Model& model = find_model(name);
  const MutexLock lock(model.mutex);
  return model.state;
}

std::uint64_t Server::model_version(const std::string& name) const {
  return snapshot(name).version;
}

Response Server::handle(const Request& request) {
  const Stopwatch sw;
  const Op op = request_op(request);
  registry_.counter(tenant_key(request.tenant, "requests")).add(1);
  registry_.counter(op_key(op, "requests")).add(1);

  Response resp;
  try {
    if (const auto* score = std::get_if<ScoreClip>(&request.body)) {
      resp = admit_and_run(op, request.tenant,
                           [&] { return do_score(request.tenant, *score); });
    } else if (const auto* scan = std::get_if<ScanRegion>(&request.body)) {
      resp = admit_and_run(op, request.tenant,
                           [&] { return do_scan(request.tenant, *scan); });
    } else if (const auto* reload = std::get_if<ReloadWeights>(&request.body)) {
      resp = do_reload(*reload);
    } else {
      resp.body = StatsResult{stats_json()};
    }
  } catch (const Error& e) {
    resp.body = ErrorResult{op, e.what()};
  }

  switch (response_status(resp)) {
    case Status::Ok:
      registry_.counter("serve.responses_ok").add(1);
      break;
    case Status::Busy:
      registry_.counter("serve.responses_busy").add(1);
      registry_.counter(tenant_key(request.tenant, "busy")).add(1);
      break;
    case Status::Error:
      registry_.counter("serve.responses_error").add(1);
      registry_.counter(tenant_key(request.tenant, "errors")).add(1);
      break;
  }
  registry_.histogram("serve.latency_seconds").observe(sw.seconds());
  registry_.histogram(op_key(op, "latency_seconds")).observe(sw.seconds());
  return resp;
}

Response Server::admit_and_run(Op op, std::uint32_t tenant,
                               const std::function<Response()>& work) {
  // Optimistic acquire: bump, then check the bound. Overshoot is
  // transient (each over-admitted caller immediately backs out) and can
  // only produce spurious Busy under extreme contention — never an
  // over-capacity admit.
  const std::size_t depth =
      in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const AdmissionSlot slot(in_flight_);
  if (stopping_.load(std::memory_order_acquire)) {
    throw Error("server is stopping");
  }
  if (depth > config_.max_queue) {
    Response busy;
    busy.body = BusyResult{op};
    return busy;
  }
  registry_.histogram("serve.queue_depth").observe(static_cast<double>(depth));
  registry_.counter(tenant_key(tenant, "admitted")).add(1);

  // Errors thrown by the work are converted to a typed response *inside*
  // the pooled task, on the worker thread, so no live exception object
  // ever crosses the future boundary: the worker tearing down the task
  // state must not race with this thread reading the exception message.
  // PoolStopped is the one exception the future can still carry, and it
  // is set by submit() on this thread (never by a worker).
  Response resp;
  auto future = score_pool_->submit([&] {
    try {
      resp = work();
    } catch (const Error& e) {
      resp.body = ErrorResult{op, e.what()};
    }
  });
  try {
    future.get();
  } catch (const PoolStopped&) {
    throw Error("server is stopping");
  }
  return resp;
}

Response Server::do_score(std::uint32_t tenant, const ScoreClip& req) {
  if (req.window_nm <= 0) throw Error("score-clip: window_nm must be > 0");
  // Clip geometry is clip-local by contract ([0, window_nm)^2, see
  // data::Clip); enforcing it here also bounds every coordinate, so the
  // canonicalization below cannot overflow on hostile input.
  for (const auto& r : req.rects) {
    if (r.xlo < 0 || r.ylo < 0 || r.xhi > req.window_nm ||
        r.yhi > req.window_nm) {
      throw Error("score-clip: rects must lie within [0, window_nm)^2");
    }
  }
  const Model::State state = snapshot(req.model);
  const data::CanonicalClip canon =
      data::canonical_clip(req.rects, req.window_nm);
  const std::uint64_t hash = data::canonical_hash(canon);
  if (const auto hit = state.cache->lookup(canon, hash)) {
    registry_.counter(tenant_key(tenant, "cache_hits")).add(1);
    Response resp;
    resp.body = ScoreResult{*hit};
    return resp;
  }
  // Score the *canonical* clip (dedup-scan discipline): the memo must not
  // depend on which translation of the pattern asked first.
  data::Clip clip;
  clip.rects = canon.rects;
  clip.window_nm = canon.window_nm;
  const float score = state.detector->score(clip);
  state.cache->insert(canon, hash, score);
  registry_.counter(tenant_key(tenant, "cache_misses")).add(1);
  Response resp;
  resp.body = ScoreResult{score};
  return resp;
}

Response Server::do_scan(std::uint32_t tenant, const ScanRegion& req) {
  // Bound every quantity the grid walk adds together: coordinates to
  // ±2^30 (the GDS reader's own cap) and window/stride below 2^30, so
  // x + window_nm tops out at exactly INT32_MAX — no signed overflow on
  // any hostile input.
  constexpr geom::Coord kMaxAbsCoord = geom::Coord{1} << 30;
  if (req.window_nm <= 0 || req.stride_nm <= 0 ||
      req.window_nm >= kMaxAbsCoord || req.stride_nm >= kMaxAbsCoord) {
    throw Error("scan-region: window_nm and stride_nm must be in [1, 2^30)");
  }
  for (const auto& r : req.rects) {
    if (std::max({std::abs(std::int64_t{r.xlo}), std::abs(std::int64_t{r.ylo}),
                  std::abs(std::int64_t{r.xhi}),
                  std::abs(std::int64_t{r.yhi})}) > kMaxAbsCoord) {
      throw Error("scan-region: coordinates must be within ±2^30 nm");
    }
  }
  const Model::State state = snapshot(req.model);

  // Validate the region's bounding box in 64-bit BEFORE building the
  // spatial index: ChipIndex allocates a bucket grid proportional to the
  // extent, so two far-apart rects must be rejected here, not OOM there.
  std::int64_t xlo = 0, ylo = 0, xhi = 0, yhi = 0;
  bool any = false;
  for (const auto& r : req.rects) {
    if (r.empty()) continue;  // ChipIndex drops these too
    if (!any) {
      xlo = r.xlo, ylo = r.ylo, xhi = r.xhi, yhi = r.yhi;
      any = true;
    } else {
      xlo = std::min<std::int64_t>(xlo, r.xlo);
      ylo = std::min<std::int64_t>(ylo, r.ylo);
      xhi = std::max<std::int64_t>(xhi, r.xhi);
      yhi = std::max<std::int64_t>(yhi, r.yhi);
    }
  }
  const std::int64_t width = any ? xhi - xlo : 0;
  const std::int64_t height = any ? yhi - ylo : 0;
  if (width > config_.max_scan_extent_nm ||
      height > config_.max_scan_extent_nm) {
    throw Error("scan-region: extent " + std::to_string(width) + "x" +
                std::to_string(height) + " nm exceeds the server cap of " +
                std::to_string(config_.max_scan_extent_nm) + " nm per axis");
  }

  // Mirror grid_scan's window enumeration (one window per stride step
  // until the extent edge => ceil(extent/stride) per axis) to reject
  // oversized grids before any scanning happens.
  const auto steps = [&](std::int64_t size) {
    return size <= 0 ? std::int64_t{0}
                     : (size + req.stride_nm - 1) / req.stride_nm;
  };
  const std::int64_t windows = steps(width) * steps(height);
  if (windows > static_cast<std::int64_t>(config_.max_scan_windows)) {
    throw Error("scan-region: " + std::to_string(windows) +
                " windows exceeds the server cap of " +
                std::to_string(config_.max_scan_windows));
  }
  const core::ChipIndex index(req.rects);

  core::ScanConfig cfg;
  cfg.window_nm = req.window_nm;
  cfg.stride_nm = req.stride_nm;
  cfg.threads = 1;  // parallelism comes from concurrent requests, not shards
  cfg.dedup = true;
  cfg.cache = state.cache.get();  // process-shared across sessions + requests
  const core::ScanResult result =
      core::scan_chip(index, *state.detector, cfg);

  registry_.counter(tenant_key(tenant, "cache_hits")).add(result.cache_hits);
  registry_.counter(tenant_key(tenant, "cache_misses"))
      .add(result.cache_misses);

  ScanResultWire wire;
  wire.windows_total = result.windows_total;
  wire.cache_hits = result.cache_hits;
  wire.cache_misses = result.cache_misses;
  wire.hits.reserve(result.hits.size());
  for (const auto& hit : result.hits) {
    wire.hits.push_back(ScanHitWire{hit.window, hit.score});
  }
  Response resp;
  resp.body = std::move(wire);
  return resp;
}

Response Server::do_reload(const ReloadWeights& req) {
  Model& model = find_model(req.model);
  if (!model.loader) {
    throw Error("model does not accept weight reloads");
  }
  // Serialize reloads per model; inference keeps reading the old snapshot
  // (under model.mutex, which this does NOT hold) while the loader stages.
  const MutexLock reload_lock(model.reload_mutex);
  std::shared_ptr<const core::Detector> fresh = model.loader(req.weights);
  if (!fresh) throw Error("weight loader produced no detector");
  std::uint64_t version = 0;
  {
    const MutexLock lock(model.mutex);
    model.state.detector = std::move(fresh);
    // Fresh cache per version: memoized scores are a function of the
    // weights, so none may survive the swap.
    model.state.cache = std::make_shared<core::ScoreCache>(
        config_.cache_capacity, config_.cache_shards);
    version = ++model.state.version;
  }
  registry_.counter("serve.reloads").add(1);
  Response resp;
  resp.body = ReloadResult{version};
  return resp;
}

void Server::serve(Transport& transport) {
  std::istream& in = transport.in();
  std::ostream& out = transport.out();
  registry_.counter("serve.sessions").add(1);
  for (;;) {
    std::optional<Request> request;
    try {
      request = decode_request(in);
    } catch (const WireError& e) {
      registry_.counter("serve.wire_errors").add(1);
      if (!e.recoverable()) break;  // frame sync lost: close the session
      Response err;
      err.body = ErrorResult{e.op().value_or(Op::ScoreClip), e.what()};
      encode_response(err, out);
      out.flush();
      if (!out.good()) break;
      continue;
    }
    if (!request) break;  // clean EOF: client said goodbye
    const Response resp = handle(*request);
    encode_response(resp, out);
    out.flush();
    if (!out.good()) break;  // peer gone mid-answer
  }
}

void Server::attach(std::shared_ptr<Transport> transport) {
  LHD_CHECK(transport != nullptr, "attach needs a transport");
  {
    const MutexLock lock(sessions_mutex_);
    attached_.push_back(transport);
  }
  if (stopping_.load(std::memory_order_acquire)) {
    // stop() may already have swept attached_ — make sure this transport
    // does not strand a session loop blocked on a read.
    transport->interrupt();
  }
  // A PoolStopped future here just means the session never starts; the
  // interrupt above (or stop()'s sweep) already unblocked the peer.
  (void)sessions_->submit([this, t = std::move(transport)] { serve(*t); });
}

void Server::stop() {
  stopping_.store(true, std::memory_order_release);
  {
    const MutexLock lock(sessions_mutex_);
    for (const auto& transport : attached_) transport->interrupt();
  }
  // Sessions first: their loops block on score futures, so the score pool
  // must stay alive until every session drained.
  sessions_->shutdown();
  score_pool_->shutdown();
  const MutexLock lock(sessions_mutex_);
  attached_.clear();
}

std::string Server::stats_json() const {
  obs::Json doc = obs::Json::object();

  obs::Json server = obs::Json::object();
  server["max_queue"] = obs::Json(config_.max_queue);
  server["score_workers"] = obs::Json(config_.score_workers);
  server["in_flight"] = obs::Json(in_flight_.load(std::memory_order_relaxed));
  doc["server"] = std::move(server);

  obs::Json models = obs::Json::object();
  {
    const MutexLock lock(models_mutex_);
    for (const auto& [name, model] : models_) {
      Model::State state;
      {
        const MutexLock state_lock(model->mutex);
        state = model->state;
      }
      const core::ScoreCache::Stats stats = state.cache->stats();
      obs::Json cache = obs::Json::object();
      cache["capacity"] = obs::Json(state.cache->capacity());
      cache["size"] = obs::Json(state.cache->size());
      cache["hits"] = obs::Json(stats.hits);
      cache["misses"] = obs::Json(stats.misses);
      cache["evictions"] = obs::Json(stats.evictions);
      cache["collisions"] = obs::Json(stats.collisions);
      obs::Json entry = obs::Json::object();
      entry["version"] = obs::Json(state.version);
      entry["cache"] = std::move(cache);
      models[name] = std::move(entry);
    }
  }
  doc["models"] = std::move(models);

  obs::Json counters = obs::Json::object();
  for (const auto& [name, value] : registry_.counters()) {
    counters[name] = obs::Json(value);
  }
  doc["counters"] = std::move(counters);

  obs::Json histograms = obs::Json::object();
  for (const auto& [name, snap] : registry_.histograms()) {
    obs::Json entry = obs::Json::object();
    entry["count"] = obs::Json(snap.count);
    entry["sum"] = obs::Json(snap.sum);
    if (snap.count > 0) {  // min/max are infinities before the first observe
      entry["min"] = obs::Json(snap.min);
      entry["max"] = obs::Json(snap.max);
      entry["mean"] = obs::Json(snap.mean());
    }
    histograms[name] = std::move(entry);
  }
  doc["histograms"] = std::move(histograms);

  return doc.dump(0);
}

}  // namespace lhd::serve
