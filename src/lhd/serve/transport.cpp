#include "lhd/serve/transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <istream>
#include <ostream>
#include <streambuf>
#include <vector>

#include "lhd/util/check.hpp"

namespace lhd::serve {

void StreamTransport::interrupt() {
  // Borrowed streams: the best available is poisoning the state so the
  // next read fails. A read already blocked inside the stream cannot be
  // woken — documented limitation; use FdTransport where that matters.
  in_.setstate(std::ios::failbit);
}

namespace {

/// Buffered streambuf over a socket fd. Reads and writes both go through
/// the one descriptor (socketpair semantics). EINTR is retried; any other
/// error — including ECONNRESET after the peer's interrupt() — surfaces as
/// end-of-stream / write failure, which the protocol layer turns into a
/// clean session end or a WireError.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd), rbuf_(kBufSize), wbuf_(kBufSize) {
    setg(rbuf_.data(), rbuf_.data(), rbuf_.data());
    setp(wbuf_.data(), wbuf_.data() + wbuf_.size());
  }

  int fd() const { return fd_; }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, rbuf_.data(), rbuf_.size());
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(rbuf_.data(), rbuf_.data(), rbuf_.data() + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_write() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_write(); }

 private:
  static constexpr std::size_t kBufSize = 1 << 16;

  int flush_write() {
    const char* p = pbase();
    while (p < pptr()) {
      ssize_t n;
      do {
        n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return -1;
      p += n;
    }
    setp(wbuf_.data(), wbuf_.data() + wbuf_.size());
    return 0;
  }

  int fd_;
  std::vector<char> rbuf_;
  std::vector<char> wbuf_;
};

}  // namespace

struct FdTransport::Impl {
  explicit Impl(int fd) : buf(fd), in(&buf), out(&buf) {}

  FdStreamBuf buf;
  std::istream in;
  std::ostream out;
  std::atomic<bool> interrupted{false};
};

FdTransport::FdTransport(int fd) : impl_(std::make_unique<Impl>(fd)) {
  LHD_CHECK(fd >= 0, "FdTransport needs a valid descriptor");
}

FdTransport::~FdTransport() { ::close(impl_->buf.fd()); }

std::istream& FdTransport::in() { return impl_->in; }
std::ostream& FdTransport::out() { return impl_->out; }
int FdTransport::fd() const { return impl_->buf.fd(); }

void FdTransport::interrupt() {
  // shutdown() (not close()) so the fd number stays owned by this object
  // until the destructor — no chance of a recycled descriptor being read.
  // A thread blocked in read() wakes with 0 (EOF); future writes fail.
  if (!impl_->interrupted.exchange(true)) {
    ::shutdown(impl_->buf.fd(), SHUT_RDWR);
  }
}

std::pair<std::unique_ptr<FdTransport>, std::unique_ptr<FdTransport>>
socketpair_transport() {
  int fds[2];
  LHD_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
            "socketpair() failed");
  return {std::make_unique<FdTransport>(fds[0]),
          std::make_unique<FdTransport>(fds[1])};
}

}  // namespace lhd::serve
