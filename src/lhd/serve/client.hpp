#pragma once
/// @file client.hpp
/// @brief Small blocking client for the serve protocol: one call() per
/// request, strictly request/response over a Transport. This is the
/// reference counterpart the round-trip example, the tests, and any
/// out-of-process driver of tools/lhd_served use.
///
/// Thread-safety: a Client wraps one Transport (one connection) and is
/// NOT thread-safe — frames would interleave. Concurrency comes from many
/// clients over many transports, which is exactly what the admission-
/// control tests drive.

#include <cstdint>
#include <string>
#include <vector>

#include "lhd/geom/rect.hpp"
#include "lhd/serve/protocol.hpp"
#include "lhd/serve/transport.hpp"

namespace lhd::serve {

class Client {
 public:
  /// Borrows `transport` (caller keeps it alive). `tenant` stamps every
  /// request this client sends.
  explicit Client(Transport& transport, std::uint32_t tenant = 0);

  /// Send one request, block for its answer. Throws WireError if the
  /// response stream is malformed and lhd::Error if the transport died.
  Response call(const Request& request);

  // Typed conveniences over call(); each returns the raw Response so
  // callers can observe Busy/Error without exceptions.
  Response score_clip(const std::string& model, std::int32_t window_nm,
                      std::vector<geom::Rect> rects);
  Response scan_region(const std::string& model, std::int32_t window_nm,
                       std::int32_t stride_nm, std::vector<geom::Rect> rects);
  Response reload_weights(const std::string& model,
                          std::vector<std::uint8_t> weights);
  Response stats();

  std::uint32_t tenant() const { return tenant_; }

 private:
  Transport& transport_;
  std::uint32_t tenant_ = 0;
};

}  // namespace lhd::serve
