#include "lhd/serve/protocol.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "lhd/util/bounded.hpp"

namespace lhd::serve {

namespace {

// ---------------------------------------------------------------- writing --

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void write_rects(std::ostream& out, const std::vector<geom::Rect>& rects) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(rects.size()));
  for (const auto& r : rects) {
    write_pod(out, r.xlo);
    write_pod(out, r.ylo);
    write_pod(out, r.xhi);
    write_pod(out, r.yhi);
  }
}

// ---------------------------------------------------------------- reading --

/// Offset-tracking bounded reader over an in-memory payload. Every
/// failure names the byte it happened at, relative to the frame start
/// (`base` = header size), and payload-level failures are recoverable:
/// the whole payload was already consumed, so the stream is still
/// frame-synchronized.
class PayloadReader {
 public:
  PayloadReader(const std::vector<std::uint8_t>& bytes, std::uint64_t base)
      : bytes_(bytes), base_(base) {}

  void read_exact(void* dst, std::size_t n, const char* what) {
    if (n > bytes_.size() - pos_) {
      std::ostringstream os;
      os << "payload truncated reading " << what << " (wanted " << n
         << " bytes, " << (bytes_.size() - pos_) << " left)";
      fail(os.str());
    }
    // n == 0 is legal (empty weight blob, empty payload); memcpy's
    // pointer arguments must be non-null even for zero sizes, and both
    // an empty vector's data() and dst can be null then.
    if (n != 0) {
      std::memcpy(dst, bytes_.data() + pos_, n);
    }
    pos_ += n;
  }

  template <typename T>
  T read_pod(const char* what) {
    T v{};
    read_exact(&v, sizeof(T), what);
    return v;
  }

  std::string read_string(const char* what, std::uint32_t cap) {
    const auto n = read_pod<std::uint32_t>(what);
    if (n > cap) {
      std::ostringstream os;
      os << what << " length " << n << " exceeds cap " << cap;
      fail(os.str());
    }
    std::string s(n, '\0');
    read_exact(s.data(), n, what);
    return s;
  }

  std::vector<geom::Rect> read_rects(const char* what) {
    const auto n = read_pod<std::uint32_t>(what);
    if (n > kMaxRects) {
      std::ostringstream os;
      os << what << " count " << n << " exceeds cap " << kMaxRects;
      fail(os.str());
    }
    std::vector<geom::Rect> rects;
    // The count was just validated against the payload-wide cap, and the
    // bytes backing it are already in memory, so reserving `n` cannot
    // out-allocate the frame bound.
    lhd::bounded_reserve(rects, n, kMaxRects);
    for (std::uint32_t i = 0; i < n; ++i) {
      geom::Rect r;
      r.xlo = read_pod<geom::Coord>(what);
      r.ylo = read_pod<geom::Coord>(what);
      r.xhi = read_pod<geom::Coord>(what);
      r.yhi = read_pod<geom::Coord>(what);
      rects.push_back(r);
    }
    return rects;
  }

  /// All payload bytes must be consumed: trailing garbage means the
  /// sender and receiver disagree about the op's shape.
  void expect_consumed() const {
    if (pos_ != bytes_.size()) {
      std::ostringstream os;
      os << (bytes_.size() - pos_) << " trailing payload byte(s)";
      fail(os.str());
    }
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw WireError(base_ + pos_, msg, /*recoverable=*/true);
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::uint64_t base_ = 0;
  std::size_t pos_ = 0;
};

/// Header-level reader straight off the stream; failures here mean the
/// frame boundary is lost, so they are NOT recoverable.
class FrameReader {
 public:
  explicit FrameReader(std::istream& in) : in_(in) {}

  bool at_clean_eof() {
    return in_.peek() == std::istream::traits_type::eof();
  }

  void read_exact(void* dst, std::size_t n, const char* what) {
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got != n) {
      std::ostringstream os;
      os << "truncated reading " << what << " (wanted " << n << " bytes, got "
         << got << ")";
      throw WireError(offset_ + got, os.str(), /*recoverable=*/false);
    }
    offset_ += n;
  }

  template <typename T>
  T read_pod(const char* what) {
    T v{};
    read_exact(&v, sizeof(T), what);
    return v;
  }

  std::uint64_t offset() const { return offset_; }

  [[noreturn]] void fail(const std::string& msg, std::uint64_t at) const {
    throw WireError(at, msg, /*recoverable=*/false);
  }

 private:
  std::istream& in_;
  std::uint64_t offset_ = 0;
};

/// Common magic/version prologue + bounded payload slurp. Returns the
/// payload bytes; `head` receives the two bytes between version and
/// payload_len (tenant+op for requests packs differently, so the caller
/// reads its own fixed fields through `fr` first).
std::vector<std::uint8_t> read_prologue_and_payload(FrameReader& fr) {
  const auto len_at = fr.offset();
  const auto payload_len = fr.read_pod<std::uint32_t>("payload length");
  if (payload_len > kMaxPayloadBytes) {
    std::ostringstream os;
    os << "payload length " << payload_len << " exceeds cap "
       << kMaxPayloadBytes;
    fr.fail(os.str(), len_at);
  }
  std::vector<std::uint8_t> payload;
  // payload_len was just validated against the frame-wide cap, which is
  // the bound this resize commits to.
  lhd::bounded_resize(payload, payload_len, kMaxPayloadBytes);
  if (payload_len > 0) {
    fr.read_exact(payload.data(), payload.size(), "payload");
  }
  return payload;
}

void read_magic_version(FrameReader& fr) {
  const auto magic = fr.read_pod<std::uint32_t>("magic");
  if (magic != kMagic) {
    fr.fail("bad magic (not a serve frame)", 0);
  }
  const auto ver_at = fr.offset();
  const auto version = fr.read_pod<std::uint32_t>("version");
  if (version != kVersion) {
    std::ostringstream os;
    os << "unsupported protocol version " << version;
    fr.fail(os.str(), ver_at);
  }
}

/// Defined below decode_request; switches on `op` to parse the payload
/// fields into `req.body`.
void parse_request_payload(Op op, PayloadReader& pr, Request& req);

}  // namespace

Op request_op(const Request& req) {
  return static_cast<Op>(req.body.index());
}

Status response_status(const Response& resp) {
  if (std::holds_alternative<BusyResult>(resp.body)) return Status::Busy;
  if (std::holds_alternative<ErrorResult>(resp.body)) return Status::Error;
  return Status::Ok;
}

Op response_op(const Response& resp) {
  if (const auto* busy = std::get_if<BusyResult>(&resp.body)) return busy->op;
  if (const auto* err = std::get_if<ErrorResult>(&resp.body)) return err->op;
  return static_cast<Op>(resp.body.index());
}

// ----------------------------------------------------------- request wire --

void encode_request(const Request& req, std::ostream& out) {
  std::ostringstream payload;
  std::visit(
      [&payload](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, ScoreClip>) {
          write_string(payload, body.model);
          write_pod(payload, body.window_nm);
          write_rects(payload, body.rects);
        } else if constexpr (std::is_same_v<T, ScanRegion>) {
          write_string(payload, body.model);
          write_pod(payload, body.window_nm);
          write_pod(payload, body.stride_nm);
          write_rects(payload, body.rects);
        } else if constexpr (std::is_same_v<T, ReloadWeights>) {
          write_string(payload, body.model);
          write_pod<std::uint32_t>(
              payload, static_cast<std::uint32_t>(body.weights.size()));
          payload.write(reinterpret_cast<const char*>(body.weights.data()),
                        static_cast<std::streamsize>(body.weights.size()));
        } else {
          static_assert(std::is_same_v<T, Stats>);
        }
      },
      req.body);
  const std::string bytes = payload.str();
  LHD_CHECK(bytes.size() <= kMaxPayloadBytes, "request payload over cap");
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, req.tenant);
  write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(request_op(req)));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(bytes.size()));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  LHD_CHECK(out.good(), "request write failed");
}

std::optional<Request> decode_request(std::istream& in) {
  FrameReader fr(in);
  if (fr.at_clean_eof()) return std::nullopt;
  read_magic_version(fr);
  Request req;
  req.tenant = fr.read_pod<std::uint32_t>("tenant id");
  const auto op_at = fr.offset();
  const auto op = fr.read_pod<std::uint8_t>("op code");
  if (op >= kOpCount) {
    std::ostringstream os;
    os << "unknown op code " << static_cast<unsigned>(op);
    fr.fail(os.str(), op_at);
  }
  const auto payload = read_prologue_and_payload(fr);
  PayloadReader pr(payload, fr.offset() - payload.size());
  try {
    parse_request_payload(static_cast<Op>(op), pr, req);
    pr.expect_consumed();
  } catch (WireError& e) {
    e.set_op(static_cast<Op>(op));
    throw;
  }
  return req;
}

namespace {

void parse_request_payload(Op op, PayloadReader& pr, Request& req) {
  switch (op) {
    case Op::ScoreClip: {
      ScoreClip body;
      body.model = pr.read_string("model name", kMaxModelNameBytes);
      body.window_nm = pr.read_pod<std::int32_t>("window_nm");
      body.rects = pr.read_rects("clip rects");
      req.body = std::move(body);
      break;
    }
    case Op::ScanRegion: {
      ScanRegion body;
      body.model = pr.read_string("model name", kMaxModelNameBytes);
      body.window_nm = pr.read_pod<std::int32_t>("window_nm");
      body.stride_nm = pr.read_pod<std::int32_t>("stride_nm");
      body.rects = pr.read_rects("region rects");
      req.body = std::move(body);
      break;
    }
    case Op::ReloadWeights: {
      ReloadWeights body;
      body.model = pr.read_string("model name", kMaxModelNameBytes);
      const auto n = pr.read_pod<std::uint32_t>("weight blob length");
      if (n > kMaxWeightBytes) pr.fail("weight blob over cap");
      lhd::bounded_resize(body.weights, n, kMaxWeightBytes);
      pr.read_exact(body.weights.data(), body.weights.size(), "weight blob");
      req.body = std::move(body);
      break;
    }
    case Op::Stats:
      req.body = Stats{};
      break;
  }
}

}  // namespace

// ---------------------------------------------------------- response wire --

void encode_response(const Response& resp, std::ostream& out) {
  std::ostringstream payload;
  std::visit(
      [&payload](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, ScoreResult>) {
          write_pod(payload, body.score);
        } else if constexpr (std::is_same_v<T, ScanResultWire>) {
          write_pod(payload, body.windows_total);
          write_pod(payload, body.cache_hits);
          write_pod(payload, body.cache_misses);
          write_pod<std::uint32_t>(payload,
                                   static_cast<std::uint32_t>(body.hits.size()));
          for (const auto& h : body.hits) {
            write_pod(payload, h.window.xlo);
            write_pod(payload, h.window.ylo);
            write_pod(payload, h.window.xhi);
            write_pod(payload, h.window.yhi);
            write_pod(payload, h.score);
          }
        } else if constexpr (std::is_same_v<T, ReloadResult>) {
          write_pod(payload, body.version);
        } else if constexpr (std::is_same_v<T, StatsResult>) {
          write_string(payload, body.json);
        } else if constexpr (std::is_same_v<T, ErrorResult>) {
          write_string(payload, body.message);
        } else {
          static_assert(std::is_same_v<T, BusyResult>);
        }
      },
      resp.body);
  const std::string bytes = payload.str();
  LHD_CHECK(bytes.size() <= kMaxPayloadBytes, "response payload over cap");
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod<std::uint8_t>(out,
                          static_cast<std::uint8_t>(response_status(resp)));
  write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(response_op(resp)));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(bytes.size()));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  LHD_CHECK(out.good(), "response write failed");
}

Response decode_response(std::istream& in) {
  FrameReader fr(in);
  read_magic_version(fr);
  const auto status_at = fr.offset();
  const auto status = fr.read_pod<std::uint8_t>("status");
  if (status > static_cast<std::uint8_t>(Status::Error)) {
    std::ostringstream os;
    os << "unknown status " << static_cast<unsigned>(status);
    fr.fail(os.str(), status_at);
  }
  const auto op_at = fr.offset();
  const auto op = fr.read_pod<std::uint8_t>("op code");
  if (op >= kOpCount) {
    std::ostringstream os;
    os << "unknown op code " << static_cast<unsigned>(op);
    fr.fail(os.str(), op_at);
  }
  const auto payload = read_prologue_and_payload(fr);
  PayloadReader pr(payload, fr.offset() - payload.size());
  Response resp;
  switch (static_cast<Status>(status)) {
    case Status::Busy:
      resp.body = BusyResult{static_cast<Op>(op)};
      break;
    case Status::Error: {
      ErrorResult err;
      err.op = static_cast<Op>(op);
      err.message = pr.read_string("error message", kMaxErrorBytes);
      resp.body = std::move(err);
      break;
    }
    case Status::Ok:
      switch (static_cast<Op>(op)) {
        case Op::ScoreClip: {
          ScoreResult r;
          r.score = pr.read_pod<float>("score");
          resp.body = r;
          break;
        }
        case Op::ScanRegion: {
          ScanResultWire r;
          r.windows_total = pr.read_pod<std::uint64_t>("windows_total");
          r.cache_hits = pr.read_pod<std::uint64_t>("cache_hits");
          r.cache_misses = pr.read_pod<std::uint64_t>("cache_misses");
          const auto n = pr.read_pod<std::uint32_t>("hit count");
          if (n > kMaxScanHits) pr.fail("hit count over cap");
          lhd::bounded_reserve(r.hits, n, kMaxScanHits);
          for (std::uint32_t i = 0; i < n; ++i) {
            ScanHitWire h;
            h.window.xlo = pr.read_pod<geom::Coord>("hit window");
            h.window.ylo = pr.read_pod<geom::Coord>("hit window");
            h.window.xhi = pr.read_pod<geom::Coord>("hit window");
            h.window.yhi = pr.read_pod<geom::Coord>("hit window");
            h.score = pr.read_pod<float>("hit score");
            r.hits.push_back(h);
          }
          resp.body = std::move(r);
          break;
        }
        case Op::ReloadWeights: {
          ReloadResult r;
          r.version = pr.read_pod<std::uint64_t>("model version");
          resp.body = r;
          break;
        }
        case Op::Stats: {
          StatsResult r;
          r.json = pr.read_string("stats json", kMaxStatsBytes);
          resp.body = std::move(r);
          break;
        }
      }
      break;
  }
  pr.expect_consumed();
  return resp;
}

}  // namespace lhd::serve
