#pragma once
/// @file server.hpp
/// @brief The long-lived detection daemon: a `Server` owns named detectors
/// (each bundled with its own `core::ScoreCache` and a version number),
/// answers protocol requests, and survives everything a long-lived process
/// must — malformed frames, full queues, weight reloads mid-traffic, and
/// shutdown racing in-flight work.
///
/// Admission control: scoring ops (score-clip, scan-region) pass through a
/// bounded in-flight counter before touching the score ThreadPool. Over
/// capacity, the request is *rejected* with a typed Status::Busy response —
/// never queued unboundedly, never blocked, never a crash. Cheap control
/// ops (reload-weights, stats) run on the session thread and bypass
/// admission, so operators can always reach a saturated server.
///
/// Reload contract: ReloadWeights stages the new detector all-or-nothing
/// via the model's WeightLoader (nn/serialize discipline — a bad blob
/// throws before anything is swapped), then swaps the model's
/// {detector, cache, version} snapshot atomically. In-flight requests
/// finish on the snapshot they started with; the fresh cache guarantees no
/// stale score ever crosses a version boundary.
///
/// Observability: every request updates per-tenant counters and
/// queue-depth / latency histograms in the server's own obs::Registry
/// (explicit instruments — they record even when the global LHD_OBS switch
/// is off, because the stats op is a protocol feature, not telemetry).
/// The stats op serializes the whole picture as a deterministic-order JSON
/// document.
///
/// Thread-safety: every public method is safe to call concurrently.
/// handle() is the hot path: model snapshots are shared_ptr copies taken
/// under a short mutex, per-model swaps serialize on that mutex, and the
/// admission counter is a lone atomic.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/detector.hpp"
#include "lhd/core/score_cache.hpp"
#include "lhd/obs/registry.hpp"
#include "lhd/serve/protocol.hpp"
#include "lhd/serve/transport.hpp"
#include "lhd/util/thread_annotations.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::serve {

/// Builds a fresh detector from a reload blob. Must be all-or-nothing:
/// either return a fully usable detector or throw (lhd::Error) leaving no
/// trace — the server swaps nothing on a throw. Called with the model's
/// reloads serialized, but concurrently with inference on the old
/// snapshot, so it must not mutate shared state.
using WeightLoader = std::function<std::shared_ptr<const core::Detector>(
    const std::vector<std::uint8_t>& weights)>;

/// WeightLoader for CNN models: each reload builds a fresh CnnDetector
/// from `config` (architecture is fixed by config, weights come from the
/// blob) and loads it via nn::load_weights — the staged all-or-nothing
/// loader, so a corrupt blob throws before any detector exists and the
/// served snapshot is untouched.
WeightLoader cnn_weight_loader(std::string name,
                               core::CnnDetectorConfig config = {});

struct ServerConfig {
  /// Worker threads executing score-clip / scan-region work.
  std::size_t score_workers = 2;
  /// Admission bound: max scoring requests in flight (queued + running)
  /// across all sessions before new ones get Status::Busy.
  std::size_t max_queue = 32;
  /// Session threads backing attach()ed transports. serve() on a caller
  /// thread does not consume one.
  std::size_t session_workers = 4;
  /// Per-model ScoreCache geometry (fresh cache per weight version).
  std::size_t cache_capacity = 1 << 12;
  std::size_t cache_shards = 16;
  /// Server-side DoS cap: scan-region requests whose window grid exceeds
  /// this many windows are answered with a typed error, not scanned.
  std::size_t max_scan_windows = 1 << 14;
  /// Second scan cap: the region's bounding box must fit in this many nm
  /// per axis. Checked (in 64-bit, overflow-proof) *before* the spatial
  /// index allocates its bucket grid, so a request with two far-apart
  /// rects cannot allocate an extent-sized grid. 2^20 nm ≈ 1 mm — roomy
  /// for the interactive region checks the op exists for.
  std::int64_t max_scan_extent_nm = 1 << 20;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  /// Calls stop(); attached sessions are interrupted and joined.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register a detector under `name` (version 1). The first model added
  /// is the default an empty request model name resolves to. `loader`
  /// may be null: the model then rejects reload-weights with a typed
  /// error. Adding a name twice is an error (reload, don't re-add).
  void add_model(const std::string& name,
                 std::shared_ptr<const core::Detector> detector,
                 WeightLoader loader = nullptr);

  /// Current weight version of `name` (1 until the first reload).
  std::uint64_t model_version(const std::string& name) const;

  /// Answer one request in-process — the core the transports wrap, and the
  /// entry point tests and the fuzz harness drive directly. Never throws
  /// for request-level problems (unknown model, bad geometry, rejected
  /// weights, saturated queue — all typed responses).
  Response handle(const Request& request);

  /// Blocking session loop on the caller's thread: decode frames from
  /// `transport` until clean EOF or an unrecoverable wire error,
  /// answering each. Recoverable wire errors (bad payload inside an
  /// intact frame) get a Status::Error answer and the session continues.
  void serve(Transport& transport);

  /// Run serve(*transport) on an internal session worker; returns
  /// immediately. The server keeps the transport alive and interrupts it
  /// on stop().
  void attach(std::shared_ptr<Transport> transport);

  /// Interrupt attached transports, drain sessions, and stop the worker
  /// pools. Idempotent; safe to call concurrently with traffic — racing
  /// scoring requests are answered (Ok or a typed shutdown error), never
  /// crashed into.
  void stop();

  /// The stats op's payload: deterministic-order JSON over models
  /// (version + cache stats), request totals, per-tenant counters, and
  /// queue/latency histograms.
  std::string stats_json() const;

  /// The server's private instrument registry (tests assert against it).
  obs::Registry& registry() { return registry_; }

  const ServerConfig& config() const { return config_; }

 private:
  /// One registered model: immutable identity + loader, mutable
  /// {detector, cache, version} snapshot swapped on reload.
  struct Model {
    /// Everything a request needs, bundled so it travels as one atomic
    /// snapshot: scores cached in `cache` are valid exactly for
    /// `detector`'s weights.
    struct State {
      std::shared_ptr<const core::Detector> detector;
      std::shared_ptr<core::ScoreCache> cache;
      std::uint64_t version = 1;
    };

    WeightLoader loader;  ///< immutable after add_model
    mutable Mutex mutex;
    State state LHD_GUARDED_BY(mutex);
    /// Serializes loader invocations (reloads), NOT state reads — staging
    /// new weights can be slow and must not block inference snapshots.
    Mutex reload_mutex LHD_ACQUIRED_BEFORE(mutex);
  };

  /// Snapshot lookup; throws lhd::Error for unknown names.
  Model::State snapshot(const std::string& name) const;
  Model& find_model(const std::string& name) const;

  Response do_score(std::uint32_t tenant, const ScoreClip& req);
  Response do_scan(std::uint32_t tenant, const ScanRegion& req);
  Response do_reload(const ReloadWeights& req);

  /// Admission + pool dispatch shared by the scoring ops.
  Response admit_and_run(Op op, std::uint32_t tenant,
                         const std::function<Response()>& work);

  ServerConfig config_;
  mutable obs::Registry registry_;

  mutable Mutex models_mutex_;
  /// name -> model; unique_ptr so references stay stable across inserts.
  std::map<std::string, std::unique_ptr<Model>> models_
      LHD_GUARDED_BY(models_mutex_);
  std::string default_model_ LHD_GUARDED_BY(models_mutex_);

  std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> stopping_{false};

  mutable Mutex sessions_mutex_;
  std::vector<std::shared_ptr<Transport>> attached_
      LHD_GUARDED_BY(sessions_mutex_);

  /// Order matters for destruction: session loops reference score_pool_
  /// through `this`, so sessions_ must be declared after (destroyed
  /// before) score_pool_ — and stop() tears down in that order explicitly.
  std::unique_ptr<ThreadPool> score_pool_;
  std::unique_ptr<ThreadPool> sessions_;
};

}  // namespace lhd::serve
