#pragma once
// RBF-kernel SVM trained with the simplified SMO algorithm (Platt 1998 /
// the CS229 simplified variant with random second-choice). The full kernel
// matrix is cached, which is fine at benchmark training-set sizes
// (hundreds to a few thousand samples).

#include "lhd/ml/classifier.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::ml {

struct KernelSvmConfig {
  double c = 10.0;          ///< box constraint
  double gamma = 0.0;       ///< RBF width; 0 = auto (1 / dim)
  double tol = 1e-3;        ///< KKT violation tolerance
  int max_passes = 5;       ///< passes without alpha change before stopping
  int max_iterations = 200; ///< hard cap on full sweeps
  double positive_weight = 1.0;  ///< C multiplier for +1 samples
  std::uint64_t seed = 1;
};

class KernelSvm final : public BinaryClassifier {
 public:
  explicit KernelSvm(KernelSvmConfig config = {}) : config_(config) {}

  std::string name() const override { return "rbf-svm"; }
  void fit(const Matrix& x, const std::vector<float>& y) override;
  float score(const std::vector<float>& x) const override;

  /// Number of support vectors retained after training.
  std::size_t support_vector_count() const { return support_.size(); }

 private:
  double kernel(const std::vector<float>& a, const std::vector<float>& b) const;

  KernelSvmConfig config_;
  double gamma_ = 1.0;
  Matrix support_;
  std::vector<float> alpha_y_;  ///< alpha_i * y_i per support vector
  double b_ = 0.0;
};

}  // namespace lhd::ml
