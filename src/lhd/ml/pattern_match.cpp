#include "lhd/ml/pattern_match.hpp"

#include <algorithm>
#include <cmath>

namespace lhd::ml {

std::vector<std::int8_t> PatternMatcher::quantize(
    const std::vector<float>& x) const {
  std::vector<std::int8_t> sig(x.size());
  const float span = hi_ - lo_ > 1e-9f ? hi_ - lo_ : 1.0f;
  for (std::size_t d = 0; d < x.size(); ++d) {
    const float unit = std::clamp((x[d] - lo_) / span, 0.0f, 1.0f);
    int q = static_cast<int>(unit * static_cast<float>(config_.quant_levels));
    q = std::min(q, config_.quant_levels - 1);
    sig[d] = static_cast<std::int8_t>(q);
  }
  return sig;
}

std::uint64_t PatternMatcher::hash_signature(
    const std::vector<std::int8_t>& sig) {
  // FNV-1a.
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto v : sig) {
    h ^= static_cast<std::uint8_t>(v);
    h *= 1099511628211ULL;
  }
  return h;
}

void PatternMatcher::fit(const Matrix& x, const std::vector<float>& y) {
  validate(x, y);
  exact_.clear();
  library_.clear();
  lo_ = x[0][0];
  hi_ = x[0][0];
  for (const auto& row : x) {
    for (const float v : row) {
      lo_ = std::min(lo_, v);
      hi_ = std::max(hi_, v);
    }
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (y[i] <= 0) continue;
    exact_.insert(hash_signature(quantize(x[i])));
    if (config_.match_radius > 0 || config_.auto_radius) {
      library_.push_back(x[i]);
    }
  }
  if (config_.auto_radius && library_.size() >= 2) {
    // Median nearest-neighbour distance among stored hotspots.
    std::vector<double> nn(library_.size(), 1e30);
    for (std::size_t i = 0; i < library_.size(); ++i) {
      for (std::size_t j = 0; j < library_.size(); ++j) {
        if (i == j) continue;
        double d2 = 0.0;
        for (std::size_t d = 0; d < library_[i].size(); ++d) {
          const double diff =
              static_cast<double>(library_[i][d]) - library_[j][d];
          d2 += diff * diff;
        }
        nn[i] = std::min(nn[i], d2);
      }
    }
    std::nth_element(nn.begin(), nn.begin() + static_cast<std::ptrdiff_t>(nn.size() / 2),
                     nn.end());
    config_.match_radius =
        std::sqrt(nn[nn.size() / 2]) * config_.radius_scale;
  }
}

float PatternMatcher::score(const std::vector<float>& x) const {
  LHD_CHECK(!exact_.empty() || config_.match_radius > 0,
            "pattern library is empty (model not fitted?)");
  if (exact_.count(hash_signature(quantize(x))) > 0) return 1.0f;
  if (config_.match_radius > 0) {
    double best = 1e30;
    for (const auto& row : library_) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < x.size(); ++d) {
        const double diff = static_cast<double>(x[d]) - row[d];
        d2 += diff * diff;
        if (d2 > best) break;
      }
      best = std::min(best, d2);
    }
    return static_cast<float>(config_.match_radius - std::sqrt(best));
  }
  return -1.0f;
}

}  // namespace lhd::ml
