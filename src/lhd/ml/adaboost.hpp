#pragma once
// AdaBoost over decision stumps — the boosting-era hotspot detector.
// Each round fits the best single-feature threshold stump under the current
// sample weights; the ensemble score is the weighted stump vote.

#include "lhd/ml/classifier.hpp"

namespace lhd::ml {

struct AdaBoostConfig {
  int rounds = 80;               ///< number of stumps
  int threshold_candidates = 32; ///< quantile cut points tried per feature
  double positive_weight = 1.0;  ///< initial weight multiplier for +1 samples
};

class AdaBoost final : public BinaryClassifier {
 public:
  explicit AdaBoost(AdaBoostConfig config = {}) : config_(config) {}

  std::string name() const override { return "adaboost"; }
  void fit(const Matrix& x, const std::vector<float>& y) override;
  float score(const std::vector<float>& x) const override;

  struct Stump {
    int feature = 0;
    float cut = 0.0f;
    float polarity = 1.0f;  ///< +1: predict hotspot when value > cut
    float weight = 0.0f;    ///< alpha_t
  };
  const std::vector<Stump>& stumps() const { return stumps_; }

 private:
  AdaBoostConfig config_;
  std::vector<Stump> stumps_;
};

}  // namespace lhd::ml
