#pragma once
// Random forest: bagged CART trees with per-split feature subsampling.

#include <memory>

#include "lhd/ml/decision_tree.hpp"

namespace lhd::ml {

struct RandomForestConfig {
  int trees = 40;
  DecisionTreeConfig tree;  ///< tree.max_features 0 = auto sqrt(dim)
  std::uint64_t seed = 1;
};

class RandomForest final : public BinaryClassifier {
 public:
  explicit RandomForest(RandomForestConfig config = {}) : config_(config) {}

  std::string name() const override { return "random-forest"; }
  void fit(const Matrix& x, const std::vector<float>& y) override;
  /// Mean tree score (soft vote in [-1, 1]).
  float score(const std::vector<float>& x) const override;

  std::size_t tree_count() const { return trees_.size(); }

 private:
  RandomForestConfig config_;
  std::vector<DecisionTree> trees_;
};

}  // namespace lhd::ml
