#pragma once
// L2-regularized logistic regression trained by mini-batch SGD with
// momentum. Scores are log-odds, so threshold 0 equals probability 0.5.

#include "lhd/ml/classifier.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::ml {

struct LogisticRegressionConfig {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  int epochs = 60;
  int batch = 32;
  double momentum = 0.9;
  double positive_weight = 1.0;
  std::uint64_t seed = 1;
};

class LogisticRegression final : public BinaryClassifier {
 public:
  explicit LogisticRegression(LogisticRegressionConfig config = {})
      : config_(config) {}

  std::string name() const override { return "logistic-regression"; }
  void fit(const Matrix& x, const std::vector<float>& y) override;
  float score(const std::vector<float>& x) const override;

  /// Probability of hotspot.
  float probability(const std::vector<float>& x) const;

 private:
  LogisticRegressionConfig config_;
  std::vector<float> w_;
  float b_ = 0.0f;
};

}  // namespace lhd::ml
