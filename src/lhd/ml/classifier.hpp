#pragma once
// Common interface for the shallow binary classifiers. Labels are signed
// floats: +1 = hotspot, -1 = non-hotspot. score() returns a real-valued
// decision value; predict() thresholds it, and the threshold is exposed so
// the accuracy/false-alarm trade-off experiments can sweep it.

#include <string>
#include <vector>

#include "lhd/util/check.hpp"

namespace lhd::ml {

using Matrix = std::vector<std::vector<float>>;

class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  virtual std::string name() const = 0;

  /// Train on rows X with signed labels y (+1 hotspot / -1 non-hotspot).
  virtual void fit(const Matrix& x, const std::vector<float>& y) = 0;

  /// Real-valued decision score; positive leans hotspot.
  virtual float score(const std::vector<float>& x) const = 0;

  bool predict(const std::vector<float>& x) const {
    return score(x) > threshold_;
  }

  float threshold() const { return threshold_; }
  void set_threshold(float t) { threshold_ = t; }

 protected:
  static void validate(const Matrix& x, const std::vector<float>& y) {
    LHD_CHECK(!x.empty(), "empty training set");
    LHD_CHECK(x.size() == y.size(), "X/y size mismatch");
    for (const float v : y) {
      LHD_CHECK(v == 1.0f || v == -1.0f, "labels must be +1/-1");
    }
  }

 private:
  float threshold_ = 0.0f;
};

}  // namespace lhd::ml
