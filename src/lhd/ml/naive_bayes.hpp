#pragma once
// Gaussian naive Bayes — the simplest probabilistic baseline; per-feature
// Gaussians per class, scores are class log-odds.

#include "lhd/ml/classifier.hpp"

namespace lhd::ml {

struct NaiveBayesConfig {
  double var_smoothing = 1e-6;  ///< added to variances for stability
};

class GaussianNaiveBayes final : public BinaryClassifier {
 public:
  explicit GaussianNaiveBayes(NaiveBayesConfig config = {})
      : config_(config) {}

  std::string name() const override { return "naive-bayes"; }
  void fit(const Matrix& x, const std::vector<float>& y) override;
  /// log P(+1|x) - log P(-1|x).
  float score(const std::vector<float>& x) const override;

 private:
  NaiveBayesConfig config_;
  std::vector<float> mean_pos_, var_pos_;
  std::vector<float> mean_neg_, var_neg_;
  double log_prior_ratio_ = 0.0;
};

}  // namespace lhd::ml
