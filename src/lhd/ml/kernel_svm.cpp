#include "lhd/ml/kernel_svm.hpp"

#include <algorithm>
#include <cmath>

#include "lhd/util/log.hpp"

namespace lhd::ml {

double KernelSvm::kernel(const std::vector<float>& a,
                         const std::vector<float>& b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    d2 += d * d;
  }
  return std::exp(-gamma_ * d2);
}

void KernelSvm::fit(const Matrix& x, const std::vector<float>& y) {
  validate(x, y);
  const std::size_t n = x.size();
  gamma_ = config_.gamma > 0 ? config_.gamma
                             : 1.0 / static_cast<double>(x[0].size());

  // Precompute the kernel matrix (n is benchmark-scale, so O(n^2) is fine).
  std::vector<std::vector<double>> k(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      k[i][j] = k[j][i] = kernel(x[i], x[j]);
    }
  }

  std::vector<double> alpha(n, 0.0);
  b_ = 0.0;
  Rng rng(config_.seed);
  auto box = [&](std::size_t i) {
    return y[i] > 0 ? config_.c * config_.positive_weight : config_.c;
  };
  auto f = [&](std::size_t i) {
    double s = b_;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] != 0.0) s += alpha[j] * y[j] * k[j][i];
    }
    return s;
  };

  int passes = 0;
  int iterations = 0;
  while (passes < config_.max_passes &&
         iterations < config_.max_iterations) {
    int changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = f(i) - y[i];
      const double ci = box(i);
      if ((y[i] * ei < -config_.tol && alpha[i] < ci) ||
          (y[i] * ei > config_.tol && alpha[i] > 0)) {
        std::size_t j = static_cast<std::size_t>(rng.next_below(n - 1));
        if (j >= i) ++j;
        const double ej = f(j) - y[j];
        const double cj = box(j);

        const double ai_old = alpha[i];
        const double aj_old = alpha[j];
        double lo, hi;
        if (y[i] != y[j]) {
          lo = std::max(0.0, aj_old - ai_old);
          hi = std::min(cj, ci + aj_old - ai_old);
        } else {
          lo = std::max(0.0, ai_old + aj_old - ci);
          hi = std::min(cj, ai_old + aj_old);
        }
        if (lo >= hi) continue;
        const double eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
        if (eta >= 0) continue;
        double aj = aj_old - y[j] * (ei - ej) / eta;
        aj = std::clamp(aj, lo, hi);
        if (std::abs(aj - aj_old) < 1e-6) continue;
        const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
        alpha[i] = ai;
        alpha[j] = aj;

        const double b1 = b_ - ei - y[i] * (ai - ai_old) * k[i][i] -
                          y[j] * (aj - aj_old) * k[i][j];
        const double b2 = b_ - ej - y[i] * (ai - ai_old) * k[i][j] -
                          y[j] * (aj - aj_old) * k[j][j];
        if (ai > 0 && ai < ci) {
          b_ = b1;
        } else if (aj > 0 && aj < cj) {
          b_ = b2;
        } else {
          b_ = (b1 + b2) / 2.0;
        }
        ++changed;
      }
    }
    passes = changed == 0 ? passes + 1 : 0;
    ++iterations;
  }

  // Retain support vectors only.
  support_.clear();
  alpha_y_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-8) {
      support_.push_back(x[i]);
      alpha_y_.push_back(static_cast<float>(alpha[i] * y[i]));
    }
  }
  LHD_LOG(Debug) << "rbf-svm: " << support_.size() << "/" << n
                 << " support vectors after " << iterations << " sweeps";
}

float KernelSvm::score(const std::vector<float>& x) const {
  LHD_CHECK(!support_.empty(), "model not fitted");
  double s = b_;
  for (std::size_t i = 0; i < support_.size(); ++i) {
    s += alpha_y_[i] * kernel(support_[i], x);
  }
  return static_cast<float>(s);
}

}  // namespace lhd::ml
