#include "lhd/ml/decision_tree.hpp"

#include <algorithm>
#include <numeric>

namespace lhd::ml {

namespace {

/// Gini impurity of a weighted label split: 2 p (1-p) with p = weight of
/// positives / total.
double gini(double pos_w, double total_w) {
  if (total_w <= 0) return 0.0;
  const double p = pos_w / total_w;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::fit(const Matrix& x, const std::vector<float>& y) {
  fit_weighted(x, y, std::vector<double>(x.size(), 1.0));
}

void DecisionTree::fit_weighted(const Matrix& x, const std::vector<float>& y,
                                const std::vector<double>& weights) {
  validate(x, y);
  LHD_CHECK(weights.size() == x.size(), "weights size mismatch");
  nodes_.clear();
  std::vector<std::size_t> indices(x.size());
  std::iota(indices.begin(), indices.end(), 0);
  Rng rng(config_.seed);
  build(x, y, weights, indices, 0, rng);
}

int DecisionTree::build(const Matrix& x, const std::vector<float>& y,
                        const std::vector<double>& w,
                        std::vector<std::size_t>& indices, int depth,
                        Rng& rng) {
  double pos_w = 0.0, total_w = 0.0;
  for (const auto i : indices) {
    total_w += w[i];
    if (y[i] > 0) pos_w += w[i];
  }
  const float leaf_value =
      total_w > 0 ? static_cast<float>(2.0 * pos_w / total_w - 1.0) : 0.0f;

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{-1, 0.0f, -1, -1, leaf_value});

  const bool pure = pos_w <= 0 || pos_w >= total_w;
  if (depth >= config_.max_depth || pure ||
      indices.size() < static_cast<std::size_t>(config_.min_samples_split)) {
    return node_id;
  }

  const std::size_t dim = x[0].size();
  // Feature subset for this split.
  std::vector<std::size_t> features(dim);
  std::iota(features.begin(), features.end(), 0);
  std::size_t n_try = dim;
  if (config_.max_features > 0 &&
      static_cast<std::size_t>(config_.max_features) < dim) {
    rng.shuffle(features);
    n_try = static_cast<std::size_t>(config_.max_features);
  }

  const double parent_gini = gini(pos_w, total_w);
  int best_feature = -1;
  float best_cut = 0.0f;
  double best_gain = 1e-9;

  std::vector<std::pair<float, std::size_t>> sorted;
  sorted.reserve(indices.size());
  for (std::size_t f = 0; f < n_try; ++f) {
    const std::size_t d = features[f];
    sorted.clear();
    for (const auto i : indices) sorted.emplace_back(x[i][d], i);
    std::sort(sorted.begin(), sorted.end());

    double left_pos = 0.0, left_w = 0.0;
    for (std::size_t s = 0; s + 1 < sorted.size(); ++s) {
      const std::size_t i = sorted[s].second;
      left_w += w[i];
      if (y[i] > 0) left_pos += w[i];
      if (sorted[s].first == sorted[s + 1].first) continue;  // no cut here
      const std::size_t left_n = s + 1;
      const std::size_t right_n = sorted.size() - left_n;
      if (left_n < static_cast<std::size_t>(config_.min_samples_leaf) ||
          right_n < static_cast<std::size_t>(config_.min_samples_leaf)) {
        continue;
      }
      const double right_w = total_w - left_w;
      const double right_pos = pos_w - left_pos;
      const double child =
          (left_w * gini(left_pos, left_w) +
           right_w * gini(right_pos, right_w)) /
          total_w;
      const double gain = parent_gini - child;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(d);
        best_cut = (sorted[s].first + sorted[s + 1].first) / 2.0f;
      }
    }
  }

  if (best_feature < 0) return node_id;  // no useful split

  std::vector<std::size_t> left_idx, right_idx;
  for (const auto i : indices) {
    (x[i][static_cast<std::size_t>(best_feature)] <= best_cut ? left_idx
                                                              : right_idx)
        .push_back(i);
  }
  indices.clear();
  indices.shrink_to_fit();

  const int left = build(x, y, w, left_idx, depth + 1, rng);
  const int right = build(x, y, w, right_idx, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].cut = best_cut;
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

float DecisionTree::score(const std::vector<float>& x) const {
  LHD_CHECK(!nodes_.empty(), "model not fitted");
  int id = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.feature < 0) return n.value;
    id = x[static_cast<std::size_t>(n.feature)] <= n.cut ? n.left : n.right;
  }
}

int DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.feature >= 0) {
      stack.emplace_back(n.left, d + 1);
      stack.emplace_back(n.right, d + 1);
    }
  }
  return max_depth;
}

}  // namespace lhd::ml
