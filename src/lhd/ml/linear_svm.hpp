#pragma once
// Linear SVM trained with the Pegasos stochastic sub-gradient algorithm
// (Shalev-Shwartz et al.). Supports per-class weighting so the rare hotspot
// class is not swamped by the majority.

#include "lhd/ml/classifier.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::ml {

struct LinearSvmConfig {
  double lambda = 1e-4;       ///< L2 regularization strength
  int epochs = 40;            ///< passes over the training set
  double positive_weight = 1.0;  ///< loss weight multiplier for +1 samples
  std::uint64_t seed = 1;
};

class LinearSvm final : public BinaryClassifier {
 public:
  explicit LinearSvm(LinearSvmConfig config = {}) : config_(config) {}

  std::string name() const override { return "linear-svm"; }
  void fit(const Matrix& x, const std::vector<float>& y) override;
  float score(const std::vector<float>& x) const override;

  const std::vector<float>& weights() const { return w_; }
  float bias() const { return b_; }

 private:
  LinearSvmConfig config_;
  std::vector<float> w_;
  float b_ = 0.0f;
};

}  // namespace lhd::ml
