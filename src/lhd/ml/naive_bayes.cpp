#include "lhd/ml/naive_bayes.hpp"

#include <cmath>

namespace lhd::ml {

namespace {

void fit_class(const Matrix& x, const std::vector<float>& y, float cls,
               double smoothing, std::vector<float>& mean,
               std::vector<float>& var, std::size_t* count) {
  const std::size_t dim = x[0].size();
  std::vector<double> sum(dim, 0.0), sum2(dim, 0.0);
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (y[i] != cls) continue;
    ++n;
    for (std::size_t d = 0; d < dim; ++d) {
      sum[d] += x[i][d];
      sum2[d] += static_cast<double>(x[i][d]) * x[i][d];
    }
  }
  mean.assign(dim, 0.0f);
  var.assign(dim, 1.0f);
  if (n > 0) {
    for (std::size_t d = 0; d < dim; ++d) {
      const double mu = sum[d] / static_cast<double>(n);
      mean[d] = static_cast<float>(mu);
      var[d] = static_cast<float>(
          std::max(0.0, sum2[d] / static_cast<double>(n) - mu * mu) +
          smoothing);
    }
  }
  *count = n;
}

double log_likelihood(const std::vector<float>& x,
                      const std::vector<float>& mean,
                      const std::vector<float>& var) {
  double ll = 0.0;
  for (std::size_t d = 0; d < x.size(); ++d) {
    const double diff = static_cast<double>(x[d]) - mean[d];
    ll += -0.5 * (std::log(6.283185307179586 * var[d]) +
                  diff * diff / var[d]);
  }
  return ll;
}

}  // namespace

void GaussianNaiveBayes::fit(const Matrix& x, const std::vector<float>& y) {
  validate(x, y);
  std::size_t n_pos = 0, n_neg = 0;
  fit_class(x, y, 1.0f, config_.var_smoothing, mean_pos_, var_pos_, &n_pos);
  fit_class(x, y, -1.0f, config_.var_smoothing, mean_neg_, var_neg_, &n_neg);
  LHD_CHECK(n_pos > 0 && n_neg > 0,
            "naive bayes needs at least one sample of each class");
  log_prior_ratio_ = std::log(static_cast<double>(n_pos)) -
                     std::log(static_cast<double>(n_neg));
}

float GaussianNaiveBayes::score(const std::vector<float>& x) const {
  LHD_CHECK(x.size() == mean_pos_.size(),
            "dimension mismatch (model not fitted?)");
  const double ll_pos = log_likelihood(x, mean_pos_, var_pos_);
  const double ll_neg = log_likelihood(x, mean_neg_, var_neg_);
  return static_cast<float>(ll_pos - ll_neg + log_prior_ratio_);
}

}  // namespace lhd::ml
