#include "lhd/ml/linear_svm.hpp"

#include <cmath>
#include <numeric>

namespace lhd::ml {

void LinearSvm::fit(const Matrix& x, const std::vector<float>& y) {
  validate(x, y);
  const std::size_t n = x.size();
  const std::size_t dim = x[0].size();
  w_.assign(dim, 0.0f);
  b_ = 0.0f;

  Rng rng(config_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const double lambda = config_.lambda;
  std::size_t t = 0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const std::size_t i : order) {
      ++t;
      const double eta = 1.0 / (lambda * static_cast<double>(t));
      const auto& xi = x[i];
      const float yi = y[i];
      double margin = b_;
      for (std::size_t d = 0; d < dim; ++d) {
        margin += static_cast<double>(w_[d]) * xi[d];
      }
      margin *= yi;
      // Regularization shrink.
      const auto shrink = static_cast<float>(1.0 - eta * lambda);
      for (auto& wd : w_) wd *= shrink;
      if (margin < 1.0) {
        const double weight =
            yi > 0 ? config_.positive_weight : 1.0;
        const auto step = static_cast<float>(eta * weight * yi);
        for (std::size_t d = 0; d < dim; ++d) w_[d] += step * xi[d];
        b_ += static_cast<float>(0.01 * eta * weight * yi);  // unregularized bias, damped
      }
    }
  }
}

float LinearSvm::score(const std::vector<float>& x) const {
  LHD_CHECK(x.size() == w_.size(), "dimension mismatch (model not fitted?)");
  double s = b_;
  for (std::size_t d = 0; d < x.size(); ++d) {
    s += static_cast<double>(w_[d]) * x[d];
  }
  return static_cast<float>(s);
}

}  // namespace lhd::ml
