#include "lhd/ml/logistic_regression.hpp"

#include <cmath>
#include <numeric>

namespace lhd::ml {

void LogisticRegression::fit(const Matrix& x, const std::vector<float>& y) {
  validate(x, y);
  const std::size_t n = x.size();
  const std::size_t dim = x[0].size();
  w_.assign(dim, 0.0f);
  b_ = 0.0f;
  std::vector<float> vw(dim, 0.0f);
  float vb = 0.0f;

  Rng rng(config_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(config_.batch)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(config_.batch));
      std::vector<float> grad(dim, 0.0f);
      float grad_b = 0.0f;
      for (std::size_t s = start; s < end; ++s) {
        const std::size_t i = order[s];
        double z = b_;
        for (std::size_t d = 0; d < dim; ++d) {
          z += static_cast<double>(w_[d]) * x[i][d];
        }
        // dL/dz for label t in {0,1}: sigmoid(z) - t.
        const double t = y[i] > 0 ? 1.0 : 0.0;
        const double p = 1.0 / (1.0 + std::exp(-z));
        const double cw = y[i] > 0 ? config_.positive_weight : 1.0;
        const auto g = static_cast<float>(cw * (p - t));
        for (std::size_t d = 0; d < dim; ++d) grad[d] += g * x[i][d];
        grad_b += g;
      }
      const auto scale =
          static_cast<float>(config_.learning_rate /
                             static_cast<double>(end - start));
      const auto l2 = static_cast<float>(config_.l2);
      const auto mu = static_cast<float>(config_.momentum);
      for (std::size_t d = 0; d < dim; ++d) {
        vw[d] = mu * vw[d] - scale * (grad[d] + l2 * w_[d]);
        w_[d] += vw[d];
      }
      vb = mu * vb - scale * grad_b;
      b_ += vb;
    }
  }
}

float LogisticRegression::score(const std::vector<float>& x) const {
  LHD_CHECK(x.size() == w_.size(), "dimension mismatch (model not fitted?)");
  double z = b_;
  for (std::size_t d = 0; d < x.size(); ++d) {
    z += static_cast<double>(w_[d]) * x[d];
  }
  return static_cast<float>(z);
}

float LogisticRegression::probability(const std::vector<float>& x) const {
  return static_cast<float>(1.0 / (1.0 + std::exp(-score(x))));
}

}  // namespace lhd::ml
