#pragma once
// CART-style binary decision tree (Gini impurity, axis-aligned splits).
// Used standalone and as the base learner of the random forest.

#include <optional>

#include "lhd/ml/classifier.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::ml {

struct DecisionTreeConfig {
  int max_depth = 8;
  int min_samples_split = 8;
  int min_samples_leaf = 3;
  /// Number of features examined per split; 0 = all (set by the forest to
  /// sqrt(dim) for decorrelated trees).
  int max_features = 0;
  std::uint64_t seed = 1;
};

class DecisionTree final : public BinaryClassifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {}) : config_(config) {}

  std::string name() const override { return "decision-tree"; }
  void fit(const Matrix& x, const std::vector<float>& y) override;

  /// Weighted fit used by ensembles (weights >= 0).
  void fit_weighted(const Matrix& x, const std::vector<float>& y,
                    const std::vector<double>& weights);

  /// Score = P(hotspot | leaf) mapped to [-1, 1].
  float score(const std::vector<float>& x) const override;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;

 private:
  struct Node {
    int feature = -1;     ///< -1 = leaf
    float cut = 0.0f;
    int left = -1, right = -1;
    float value = 0.0f;   ///< leaf score in [-1, 1]
  };

  int build(const Matrix& x, const std::vector<float>& y,
            const std::vector<double>& w, std::vector<std::size_t>& indices,
            int depth, Rng& rng);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace lhd::ml
