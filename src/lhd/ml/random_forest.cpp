#include "lhd/ml/random_forest.hpp"

#include <cmath>

namespace lhd::ml {

void RandomForest::fit(const Matrix& x, const std::vector<float>& y) {
  validate(x, y);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(config_.trees));
  Rng rng(config_.seed);
  const std::size_t n = x.size();

  DecisionTreeConfig tree_cfg = config_.tree;
  if (tree_cfg.max_features == 0) {
    tree_cfg.max_features = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(x[0].size()))));
  }

  for (int t = 0; t < config_.trees; ++t) {
    // Bootstrap sample expressed as per-sample multiplicity weights, so we
    // reuse the weighted tree fit without copying rows.
    std::vector<double> w(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      w[static_cast<std::size_t>(rng.next_below(n))] += 1.0;
    }
    tree_cfg.seed = rng.next_u64();
    DecisionTree tree(tree_cfg);
    tree.fit_weighted(x, y, w);
    trees_.push_back(std::move(tree));
  }
}

float RandomForest::score(const std::vector<float>& x) const {
  LHD_CHECK(!trees_.empty(), "model not fitted");
  double s = 0.0;
  for (const auto& t : trees_) s += t.score(x);
  return static_cast<float>(s / static_cast<double>(trees_.size()));
}

}  // namespace lhd::ml
