#include "lhd/ml/adaboost.hpp"

#include <algorithm>
#include <cmath>

namespace lhd::ml {

void AdaBoost::fit(const Matrix& x, const std::vector<float>& y) {
  validate(x, y);
  const std::size_t n = x.size();
  const std::size_t dim = x[0].size();
  stumps_.clear();

  // Initial weights (optionally class-weighted), normalized.
  std::vector<double> w(n);
  double wsum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = y[i] > 0 ? config_.positive_weight : 1.0;
    wsum += w[i];
  }
  for (auto& wi : w) wi /= wsum;

  // Candidate cut points per feature: evenly spaced quantiles.
  std::vector<std::vector<float>> cuts(dim);
  {
    std::vector<float> column(n);
    for (std::size_t d = 0; d < dim; ++d) {
      for (std::size_t i = 0; i < n; ++i) column[i] = x[i][d];
      std::sort(column.begin(), column.end());
      auto& c = cuts[d];
      for (int q = 1; q <= config_.threshold_candidates; ++q) {
        const std::size_t idx =
            std::min(n - 1, q * n / (config_.threshold_candidates + 1));
        const float v = column[idx];
        if (c.empty() || c.back() != v) c.push_back(v);
      }
    }
  }

  for (int round = 0; round < config_.rounds; ++round) {
    Stump best;
    double best_err = 1.0;
    for (std::size_t d = 0; d < dim; ++d) {
      for (const float cut : cuts[d]) {
        // err for polarity +1 (predict + when value > cut).
        double err_pos = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const float pred = x[i][d] > cut ? 1.0f : -1.0f;
          if (pred != y[i]) err_pos += w[i];
        }
        const double err_neg = 1.0 - err_pos;  // flipped polarity
        if (err_pos < best_err) {
          best_err = err_pos;
          best = {static_cast<int>(d), cut, 1.0f, 0.0f};
        }
        if (err_neg < best_err) {
          best_err = err_neg;
          best = {static_cast<int>(d), cut, -1.0f, 0.0f};
        }
      }
    }
    best_err = std::clamp(best_err, 1e-10, 1.0 - 1e-10);
    if (best_err >= 0.5) break;  // no better-than-chance stump remains
    const double alpha = 0.5 * std::log((1.0 - best_err) / best_err);
    best.weight = static_cast<float>(alpha);
    stumps_.push_back(best);

    // Reweight and renormalize.
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float pred =
          (x[i][static_cast<std::size_t>(best.feature)] > best.cut
               ? best.polarity
               : -best.polarity);
      w[i] *= std::exp(-alpha * y[i] * pred);
      norm += w[i];
    }
    for (auto& wi : w) wi /= norm;
  }
}

float AdaBoost::score(const std::vector<float>& x) const {
  LHD_CHECK(!stumps_.empty(), "model not fitted");
  double s = 0.0;
  for (const auto& st : stumps_) {
    const float pred =
        x[static_cast<std::size_t>(st.feature)] > st.cut ? st.polarity
                                                         : -st.polarity;
    s += st.weight * pred;
  }
  return static_cast<float>(s);
}

}  // namespace lhd::ml
