#pragma once
// Pattern-matching baseline — the pre-ML generation of hotspot detection.
// Known hotspot patterns are stored as quantized feature signatures in a
// hash table; a test clip is flagged when it exactly matches a stored
// signature, or (fuzzy mode) lies within an L2 ball of one. Fast and
// precise on seen patterns, blind to unseen ones — exactly the failure
// mode the ML generations were invented to fix.

#include <unordered_set>

#include "lhd/ml/classifier.hpp"

namespace lhd::ml {

struct PatternMatchConfig {
  int quant_levels = 8;    ///< quantization levels per feature dimension
  double match_radius = 0.0;  ///< L2 radius for fuzzy match (0 = exact only)
  /// Calibrate match_radius from the data: median nearest-neighbour
  /// distance among stored hotspot signatures, times radius_scale.
  bool auto_radius = false;
  double radius_scale = 1.0;
};

class PatternMatcher final : public BinaryClassifier {
 public:
  explicit PatternMatcher(PatternMatchConfig config = {}) : config_(config) {}

  std::string name() const override { return "pattern-match"; }

  /// Stores quantized signatures of the *hotspot* training samples.
  void fit(const Matrix& x, const std::vector<float>& y) override;

  /// +1 on a match, -1 otherwise; fuzzy mode returns radius - distance to
  /// the nearest stored hotspot (positive inside the ball).
  float score(const std::vector<float>& x) const override;

  std::size_t library_size() const { return library_.size(); }

 private:
  std::vector<std::int8_t> quantize(const std::vector<float>& x) const;
  static std::uint64_t hash_signature(const std::vector<std::int8_t>& sig);

  PatternMatchConfig config_;
  std::unordered_set<std::uint64_t> exact_;
  Matrix library_;  ///< raw hotspot feature rows (fuzzy matching)
  float lo_ = 0.0f, hi_ = 1.0f;  ///< quantization range from training data
};

}  // namespace lhd::ml
