#include "lhd/ml/knn.hpp"

#include <algorithm>
#include <cmath>

namespace lhd::ml {

void KNearest::fit(const Matrix& x, const std::vector<float>& y) {
  validate(x, y);
  LHD_CHECK(config_.k > 0, "k must be positive");
  x_ = x;
  y_ = y;
}

float KNearest::score(const std::vector<float>& x) const {
  LHD_CHECK(!x_.empty(), "model not fitted");
  LHD_CHECK(x.size() == x_[0].size(), "dimension mismatch");
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(config_.k), x_.size());

  // Partial selection of the k nearest by squared distance.
  std::vector<std::pair<double, float>> dist;
  dist.reserve(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t d = 0; d < x.size(); ++d) {
      const double diff = static_cast<double>(x[d]) - x_[i][d];
      d2 += diff * diff;
    }
    dist.emplace_back(d2, y_[i]);
  }
  std::nth_element(dist.begin(),
                   dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());

  double vote = 0.0, weight_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = config_.distance_weighted
                         ? 1.0 / (std::sqrt(dist[i].first) + 1e-9)
                         : 1.0;
    vote += w * dist[i].second;
    weight_sum += w;
  }
  return static_cast<float>(vote / weight_sum);
}

}  // namespace lhd::ml
