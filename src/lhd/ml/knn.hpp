#pragma once
// k-nearest-neighbour classifier — the bridge between pattern matching
// (k=1 on exact signatures) and learned models: distance-weighted vote of
// the k closest training samples.

#include "lhd/ml/classifier.hpp"

namespace lhd::ml {

struct KnnConfig {
  int k = 5;
  /// Weight votes by 1/(distance + epsilon) instead of uniformly.
  bool distance_weighted = true;
};

class KNearest final : public BinaryClassifier {
 public:
  explicit KNearest(KnnConfig config = {}) : config_(config) {}

  std::string name() const override { return "knn"; }
  void fit(const Matrix& x, const std::vector<float>& y) override;
  /// Signed vote in [-1, 1].
  float score(const std::vector<float>& x) const override;

  std::size_t stored() const { return x_.size(); }

 private:
  KnnConfig config_;
  Matrix x_;
  std::vector<float> y_;
};

}  // namespace lhd::ml
