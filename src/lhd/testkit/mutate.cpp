#include "lhd/testkit/mutate.hpp"

#include <algorithm>
#include <iterator>
#include <string>

#include "lhd/gds/model.hpp"
#include "lhd/gds/records.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/geom/polygon.hpp"
#include "lhd/util/check.hpp"

namespace lhd::testkit {

namespace {

/// Pick a random element of a non-empty vector.
template <typename T>
const T& pick(const std::vector<T>& v, Rng& rng) {
  return v[static_cast<std::size_t>(rng.next_below(v.size()))];
}

std::vector<std::uint8_t> flip_bits(std::vector<std::uint8_t> bytes,
                                    Rng& rng) {
  if (bytes.empty()) return bytes;
  const std::size_t flips = 1 + rng.next_below(8);
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t at = rng.next_below(bytes.size());
    bytes[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
  }
  return bytes;
}

/// [start, end) span of the record beginning at `offsets[i]`.
std::pair<std::size_t, std::size_t> record_span(
    const std::vector<std::uint8_t>& bytes,
    const std::vector<std::size_t>& offsets, std::size_t i) {
  const std::size_t start = offsets[i];
  const std::size_t end = i + 1 < offsets.size()
                              ? offsets[i + 1]
                              : std::min(bytes.size(),
                                         start + gds::read_u16(bytes.data() +
                                                               start));
  return {start, end};
}

}  // namespace

std::vector<std::size_t> record_offsets(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<std::size_t> offsets;
  std::size_t pos = 0;
  while (pos + 4 <= bytes.size()) {
    const std::uint16_t total = gds::read_u16(bytes.data() + pos);
    if (total < 4 || total % 2 != 0 || pos + total > bytes.size()) break;
    offsets.push_back(pos);
    pos += total;
  }
  return offsets;
}

std::vector<std::uint8_t> apply_mutation(std::vector<std::uint8_t> bytes,
                                         GdsMutation mutation, Rng& rng) {
  const auto offsets = record_offsets(bytes);
  switch (mutation) {
    case GdsMutation::TruncateTail: {
      if (bytes.size() < 2) return flip_bits(std::move(bytes), rng);
      const std::size_t keep = rng.next_below(bytes.size());
      bytes.resize(keep);
      return bytes;
    }
    case GdsMutation::TruncateRecord: {
      if (offsets.size() < 2) return flip_bits(std::move(bytes), rng);
      // Cut before a random record (never offset 0 — that is empty input).
      const std::size_t cut =
          offsets[1 + rng.next_below(offsets.size() - 1)];
      bytes.resize(cut);
      return bytes;
    }
    case GdsMutation::CorruptLength: {
      if (offsets.empty()) return flip_bits(std::move(bytes), rng);
      const std::size_t at = pick(offsets, rng);
      bytes[at] = static_cast<std::uint8_t>(rng.next_below(256));
      bytes[at + 1] = static_cast<std::uint8_t>(rng.next_below(256));
      return bytes;
    }
    case GdsMutation::BitFlip:
      return flip_bits(std::move(bytes), rng);
    case GdsMutation::CorruptPayload: {
      if (offsets.empty()) return flip_bits(std::move(bytes), rng);
      const std::size_t i = rng.next_below(offsets.size());
      const auto [start, end] = record_span(bytes, offsets, i);
      if (end <= start + 4) return flip_bits(std::move(bytes), rng);
      const std::size_t edits = 1 + rng.next_below(4);
      for (std::size_t e = 0; e < edits; ++e) {
        const std::size_t at = start + 4 + rng.next_below(end - start - 4);
        bytes[at] = static_cast<std::uint8_t>(rng.next_below(256));
      }
      return bytes;
    }
    case GdsMutation::SwapRecords: {
      if (offsets.size() < 2) return flip_bits(std::move(bytes), rng);
      const std::size_t i = rng.next_below(offsets.size());
      const std::size_t j = rng.next_below(offsets.size());
      if (i == j) return flip_bits(std::move(bytes), rng);
      const auto [is, ie] = record_span(bytes, offsets, std::min(i, j));
      const auto [js, je] = record_span(bytes, offsets, std::max(i, j));
      std::vector<std::uint8_t> out;
      out.reserve(bytes.size());
      out.insert(out.end(), bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(is));
      out.insert(out.end(), bytes.begin() + static_cast<std::ptrdiff_t>(js),
                 bytes.begin() + static_cast<std::ptrdiff_t>(je));
      out.insert(out.end(), bytes.begin() + static_cast<std::ptrdiff_t>(ie),
                 bytes.begin() + static_cast<std::ptrdiff_t>(js));
      out.insert(out.end(), bytes.begin() + static_cast<std::ptrdiff_t>(is),
                 bytes.begin() + static_cast<std::ptrdiff_t>(ie));
      out.insert(out.end(), bytes.begin() + static_cast<std::ptrdiff_t>(je),
                 bytes.end());
      return out;
    }
    case GdsMutation::DuplicateRecord: {
      if (offsets.empty()) return flip_bits(std::move(bytes), rng);
      const std::size_t i = rng.next_below(offsets.size());
      const auto [start, end] = record_span(bytes, offsets, i);
      std::vector<std::uint8_t> rec(bytes.begin() + static_cast<std::ptrdiff_t>(start),
                                    bytes.begin() + static_cast<std::ptrdiff_t>(end));
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(end),
                   rec.begin(), rec.end());
      return bytes;
    }
    case GdsMutation::DeleteRecord: {
      if (offsets.size() < 2) return flip_bits(std::move(bytes), rng);
      const std::size_t i = rng.next_below(offsets.size());
      const auto [start, end] = record_span(bytes, offsets, i);
      bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(start),
                  bytes.begin() + static_cast<std::ptrdiff_t>(end));
      return bytes;
    }
    case GdsMutation::TypeSwap: {
      if (offsets.empty()) return flip_bits(std::move(bytes), rng);
      static constexpr std::uint8_t kTypes[] = {
          0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A,
          0x0B, 0x0D, 0x0E, 0x0F, 0x10, 0x11, 0x12, 0x13, 0x1A, 0x1B, 0x1C,
          0x21, 0xFE /* unknown type on purpose */};
      const std::size_t at = pick(offsets, rng);
      bytes[at + 2] = kTypes[rng.next_below(std::size(kTypes))];
      return bytes;
    }
    case GdsMutation::kCount:
      break;
  }
  LHD_CHECK(false, "invalid GdsMutation");
}

std::vector<std::uint8_t> mutate_gds(std::vector<std::uint8_t> bytes,
                                     Rng& rng) {
  const std::size_t rounds = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < rounds; ++i) {
    const auto m = static_cast<GdsMutation>(
        rng.next_below(static_cast<std::uint64_t>(GdsMutation::kCount)));
    bytes = apply_mutation(std::move(bytes), m, rng);
    if (bytes.empty()) break;
  }
  return bytes;
}

std::vector<std::uint8_t> sref_depth_bomb(int depth) {
  LHD_CHECK(depth >= 1, "depth bomb needs depth >= 1");
  gds::Library lib;
  lib.name = "BOMB";
  // Build names with append, not `"S" + to_string(...)`: GCC 12's
  // -Wrestrict false-positives on operator+(const char*, string&&) here.
  for (int i = 0; i <= depth; ++i) {
    std::string name = "S";
    name += std::to_string(i);
    gds::Structure& s = lib.add_structure(name);
    if (i == depth) {
      gds::Boundary b;
      b.layer = 1;
      b.polygon = geom::Polygon::from_rect(geom::Rect(0, 0, 10, 10));
      s.add(b);
    } else {
      std::string child = "S";
      child += std::to_string(i + 1);
      gds::SRef ref;
      ref.structure = child;
      s.add(ref);
    }
  }
  return gds::write_bytes(lib);
}

std::vector<std::uint8_t> aref_fanout_bomb(int cols, int rows) {
  gds::Library lib;
  lib.name = "BOMB";
  gds::Structure& cell = lib.add_structure("CELL");
  gds::Boundary b;
  b.layer = 1;
  b.polygon = geom::Polygon::from_rect(geom::Rect(0, 0, 10, 10));
  cell.add(b);
  gds::Structure& top = lib.add_structure("TOP");
  gds::ARef arr;
  arr.structure = "CELL";
  arr.cols = cols;
  arr.rows = rows;
  arr.col_step = {100, 0};
  arr.row_step = {0, 100};
  top.add(arr);
  return gds::write_bytes(lib);
}

}  // namespace lhd::testkit
