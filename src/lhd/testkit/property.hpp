#pragma once
// Deterministic property-based test runner.
//
// A property is a callable `void body(Rng& rng, std::size_t size)` that
// derives a random input from `rng` (scaled by `size`) and throws on
// violation (lhd::Error, PropertyFailure, any std::exception — gtest
// assertions work too when the body uses them directly). The runner
// executes the body over a seed schedule, and on the first failure
// shrinks the `size` parameter down to the smallest size that still
// fails under the same seed, then reports a single-line reproducer:
//
//   property 'scan-parity' failed: seed=0x2f... size=5 (shrunk from 48)
//   replay: LHD_PROPERTY_SEED=0x2f... LHD_PROPERTY_SIZE=5 <test binary>
//
// Replaying: set LHD_PROPERTY_SEED (and optionally LHD_PROPERTY_SIZE) in
// the environment and rerun the test — every CHECK_PROPERTY in the
// process then runs exactly that one (seed, size) case. See
// docs/TESTING.md for the full workflow.

#include <cstdint>
#include <functional>
#include <string>

#include "lhd/util/check.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::testkit {

/// Thrown by oracles / CHECK_PROPERTY to signal a property violation.
/// Derives from lhd::Error so generic catch sites treat it uniformly.
class PropertyFailure : public Error {
 public:
  using Error::Error;
};

struct PropertyConfig {
  std::size_t runs = 64;      ///< number of (seed, size) cases executed
  std::size_t min_size = 2;   ///< size of the first case (and shrink floor)
  std::size_t max_size = 48;  ///< size of the last case (linear ramp)
  std::uint64_t base_seed = 0;  ///< 0 = derive from the property name
};

struct PropertyReport {
  bool ok = true;
  std::size_t runs = 0;           ///< cases executed (excluding shrinks)
  std::uint64_t failing_seed = 0;
  std::size_t failing_size = 0;   ///< after shrinking
  std::size_t original_size = 0;  ///< size at which the failure first hit
  std::size_t shrink_steps = 0;   ///< bodies executed while shrinking
  std::string message;            ///< failure text + reproducer line
};

using PropertyFn = std::function<void(Rng&, std::size_t)>;

/// Run `body` over the seed schedule; never throws — inspect the report.
PropertyReport run_property(const std::string& name,
                            const PropertyConfig& config,
                            const PropertyFn& body);

/// Shorthand with default sizes.
PropertyReport run_property(const std::string& name, std::size_t runs,
                            const PropertyFn& body);

/// Stable 64-bit FNV-1a hash — the default per-property seed base, so two
/// properties with different names never share input streams.
std::uint64_t fnv1a(const std::string& s);

}  // namespace lhd::testkit

/// Run a property and fail the enclosing test on violation. The failure
/// message (with the reproducer line) travels via PropertyFailure, which
/// gtest reports as the test's failure text.
#define CHECK_PROPERTY(name, runs, ...)                                      \
  do {                                                                       \
    const ::lhd::testkit::PropertyReport lhd_prop_report_ =                  \
        ::lhd::testkit::run_property((name), static_cast<std::size_t>(runs), \
                                     (__VA_ARGS__));                         \
    if (!lhd_prop_report_.ok) {                                              \
      throw ::lhd::testkit::PropertyFailure(lhd_prop_report_.message);       \
    }                                                                        \
  } while (false)
