#include "lhd/testkit/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "lhd/data/io.hpp"
#include "lhd/feature/dct.hpp"
#include "lhd/gds/reader.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/geom/polygon.hpp"
#include "lhd/nn/gemm.hpp"
#include "lhd/nn/layers.hpp"
#include "lhd/nn/serialize.hpp"
#include "lhd/testkit/property.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::testkit {

namespace {

[[noreturn]] void oracle_fail(const std::string& what) {
  throw PropertyFailure(what);
}

std::size_t idx(int n, int r, int c) {
  return static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(c);
}

/// Orthonormal DCT-II basis row scale: c(0) = sqrt(1/n), c(k>0) = sqrt(2/n).
double basis_scale(int n, int k) {
  return k == 0 ? std::sqrt(1.0 / n) : std::sqrt(2.0 / n);
}

double basis(int n, int k, int i) {
  return basis_scale(n, k) *
         std::cos(M_PI * (2.0 * i + 1.0) * k / (2.0 * n));
}

void compare_blocks(const double* a, const double* b, int n, double tol,
                    const char* what) {
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const double diff = std::abs(a[idx(n, r, c)] - b[idx(n, r, c)]);
      if (!(diff <= tol)) {
        std::ostringstream os;
        os << what << ": coefficient (" << r << "," << c << ") differs by "
           << diff << " (tolerance " << tol << "): " << a[idx(n, r, c)]
           << " vs " << b[idx(n, r, c)];
        oracle_fail(os.str());
      }
    }
  }
}

}  // namespace

void naive_dct2d(const double* in, double* out, int n) {
  LHD_CHECK(n > 0, "DCT block side must be positive");
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      double acc = 0.0;
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          acc += in[idx(n, i, j)] * basis(n, u, i) * basis(n, v, j);
        }
      }
      out[idx(n, u, v)] = acc;
    }
  }
}

void matrix_dct2d(const double* in, double* out, int n) {
  LHD_CHECK(n > 0, "DCT block side must be positive");
  // tmp = B * in (rows transformed), out = tmp * B^T (columns transformed)
  // — the same two-matmul shape as the production float kernel.
  std::vector<double> tmp(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int i = 0; i < n; ++i) acc += basis(n, u, i) * in[idx(n, i, j)];
      tmp[idx(n, u, j)] = acc;
    }
  }
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      double acc = 0.0;
      for (int j = 0; j < n; ++j) acc += tmp[idx(n, u, j)] * basis(n, v, j);
      out[idx(n, u, v)] = acc;
    }
  }
}

void expect_dct_parity(const std::vector<float>& block, int n,
                       double algo_tol, double float_tol) {
  const auto count =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  LHD_CHECK(block.size() == count, "block size must be n*n");

  std::vector<double> in_d(count);
  for (std::size_t i = 0; i < count; ++i) in_d[i] = block[i];

  std::vector<double> ref(count), fast_d(count);
  naive_dct2d(in_d.data(), ref.data(), n);
  matrix_dct2d(in_d.data(), fast_d.data(), n);
  compare_blocks(fast_d.data(), ref.data(), n, algo_tol,
                 "matrix DCT vs naive DCT (double)");

  std::vector<float> prod(count), round(count);
  feature::dct2d(block.data(), prod.data(), n);
  std::vector<double> prod_d(count);
  for (std::size_t i = 0; i < count; ++i) prod_d[i] = prod[i];
  compare_blocks(prod_d.data(), ref.data(), n, float_tol,
                 "production float DCT vs naive DCT");

  feature::idct2d(prod.data(), round.data(), n);
  for (std::size_t i = 0; i < count; ++i) {
    const double diff = std::abs(static_cast<double>(round[i]) - block[i]);
    if (!(diff <= float_tol)) {
      std::ostringstream os;
      os << "idct2d(dct2d(x)) round-trip: element " << i << " differs by "
         << diff << " (tolerance " << float_tol << ")";
      oracle_fail(os.str());
    }
  }
}

float DensityCutDetector::score(const data::Clip& clip) const {
  const double area = static_cast<double>(geom::union_area(clip.rects));
  const double total =
      static_cast<double>(clip.window_nm) * clip.window_nm;
  return static_cast<float>(area / total);
}

void expect_scan_parity(const core::ChipIndex& chip,
                        const core::Detector& detector,
                        core::ScanConfig config,
                        const std::vector<std::size_t>& thread_counts,
                        ThreadPool& pool) {
  config.threads = 1;
  const auto serial = core::scan_chip(chip, detector, config);
  for (const std::size_t threads : thread_counts) {
    config.threads = threads;
    const auto parallel = core::scan_chip(chip, detector, config, pool);
    std::ostringstream os;
    os << "scan(threads=" << threads << ") vs scan(threads=1): ";
    if (parallel.windows_total != serial.windows_total ||
        parallel.windows_classified != serial.windows_classified ||
        parallel.flagged != serial.flagged) {
      os << "window counts diverge (total " << parallel.windows_total << "/"
         << serial.windows_total << ", classified "
         << parallel.windows_classified << "/" << serial.windows_classified
         << ", flagged " << parallel.flagged << "/" << serial.flagged << ")";
      oracle_fail(os.str());
    }
    if (parallel.hits.size() != serial.hits.size()) {
      os << "hit count " << parallel.hits.size() << " vs "
         << serial.hits.size();
      oracle_fail(os.str());
    }
    for (std::size_t i = 0; i < serial.hits.size(); ++i) {
      if (!(parallel.hits[i] == serial.hits[i])) {
        const auto& p = parallel.hits[i];
        const auto& s = serial.hits[i];
        os << "hit " << i << " differs: window (" << p.window.xlo << ","
           << p.window.ylo << ") score " << p.score << " vs (" << s.window.xlo
           << "," << s.window.ylo << ") score " << s.score;
        oracle_fail(os.str());
      }
    }
  }
}

void expect_dedup_scan_parity(const core::ChipIndex& chip,
                              const core::Detector& detector,
                              core::ScanConfig config,
                              const std::vector<std::size_t>& thread_counts,
                              const std::vector<std::size_t>& cache_capacities,
                              const std::vector<std::size_t>& batch_sizes,
                              ThreadPool& pool) {
  config.dedup = false;
  config.threads = 1;
  const auto naive = core::scan_chip(chip, detector, config);
  config.dedup = true;
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t capacity : cache_capacities) {
      for (const std::size_t batch : batch_sizes) {
        config.threads = threads;
        config.cache_capacity = capacity;
        config.batch = batch;
        const auto dedup = core::scan_chip(chip, detector, config, pool);
        std::ostringstream os;
        os << "dedup scan(threads=" << threads << ", capacity=" << capacity
           << ", batch=" << batch << ") vs naive scan: ";
        if (dedup.windows_total != naive.windows_total ||
            dedup.flagged != naive.flagged) {
          os << "window counts diverge (total " << dedup.windows_total << "/"
             << naive.windows_total << ", flagged " << dedup.flagged << "/"
             << naive.flagged << ")";
          oracle_fail(os.str());
        }
        if (dedup.windows_classified > naive.windows_classified) {
          os << "dedup classified MORE windows than naive ("
             << dedup.windows_classified << " vs "
             << naive.windows_classified << ")";
          oracle_fail(os.str());
        }
        if (dedup.hits.size() != naive.hits.size()) {
          os << "hit count " << dedup.hits.size() << " vs "
             << naive.hits.size();
          oracle_fail(os.str());
        }
        for (std::size_t i = 0; i < naive.hits.size(); ++i) {
          if (!(dedup.hits[i] == naive.hits[i])) {
            const auto& d = dedup.hits[i];
            const auto& n = naive.hits[i];
            os << "hit " << i << " differs: window (" << d.window.xlo << ","
               << d.window.ylo << ") score " << d.score << " vs ("
               << n.window.xlo << "," << n.window.ylo << ") score "
               << n.score;
            oracle_fail(os.str());
          }
        }
      }
    }
  }
}

void expect_hierarchical_scan_parity(
    const gds::Library& lib, const std::string& top, std::int16_t layer,
    const core::Detector& detector, core::ScanConfig config,
    const std::vector<std::size_t>& thread_counts, ThreadPool& pool) {
  config.hierarchical = false;
  config.dedup = false;
  config.threads = 1;
  const auto chip = core::ChipIndex::from_library(lib, top, layer);
  const auto naive = core::scan_chip(chip, detector, config);
  config.hierarchical = true;
  for (const std::size_t threads : thread_counts) {
    for (const bool dedup : {false, true}) {
      config.threads = threads;
      config.dedup = dedup;
      const auto hier =
          core::scan_library(lib, top, layer, detector, config, pool);
      std::ostringstream os;
      os << "hierarchical scan(threads=" << threads << ", dedup=" << dedup
         << ") vs flattened naive scan: ";
      if (hier.windows_total != naive.windows_total ||
          hier.flagged != naive.flagged) {
        os << "window counts diverge (total " << hier.windows_total << "/"
           << naive.windows_total << ", flagged " << hier.flagged << "/"
           << naive.flagged << ")";
        oracle_fail(os.str());
      }
      if (hier.windows_classified > naive.windows_classified) {
        os << "hierarchical scan classified MORE windows than naive ("
           << hier.windows_classified << " vs " << naive.windows_classified
           << ")";
        oracle_fail(os.str());
      }
      if (hier.hits.size() != naive.hits.size()) {
        os << "hit count " << hier.hits.size() << " vs "
           << naive.hits.size();
        oracle_fail(os.str());
      }
      for (std::size_t i = 0; i < naive.hits.size(); ++i) {
        if (!(hier.hits[i] == naive.hits[i])) {
          const auto& h = hier.hits[i];
          const auto& n = naive.hits[i];
          os << "hit " << i << " differs: window (" << h.window.xlo << ","
             << h.window.ylo << ") score " << h.score << " vs ("
             << n.window.xlo << "," << n.window.ylo << ") score " << n.score;
          oracle_fail(os.str());
        }
      }
    }
  }
}

namespace {

/// Clears the programmatic kernel-path override on scope exit, so a
/// throwing comparison never leaks a forced path into later tests.
struct KernelPathOverrideGuard {
  KernelPathOverrideGuard() = default;
  KernelPathOverrideGuard(const KernelPathOverrideGuard&) = delete;
  KernelPathOverrideGuard& operator=(const KernelPathOverrideGuard&) = delete;
  ~KernelPathOverrideGuard() { nn::clear_kernel_path_override(); }
};

std::size_t zu(int v) { return static_cast<std::size_t>(v); }

void fill_uniform(Rng& rng, float* dst, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
}

void compare_close(const float* fast, const float* ref, std::size_t count,
                   double tol, const char* what) {
  for (std::size_t i = 0; i < count; ++i) {
    const double f = fast[i];
    const double r = ref[i];
    const double diff = std::abs(f - r);
    const double bound = tol * (1.0 + std::max(std::abs(f), std::abs(r)));
    if (!(diff <= bound)) {
      std::ostringstream os;
      os << what << ": element " << i << " differs by " << diff << " (bound "
         << bound << "): fast " << f << " vs reference " << r;
      oracle_fail(os.str());
    }
  }
}

}  // namespace

void expect_nn_kernel_parity(Rng& rng, std::size_t size, double tol) {
  KernelPathOverrideGuard guard;

  // 1. Raw GEMM, blocked vs naive. The bounds keep shapes small enough to
  //    shrink well while still crossing the microkernel sliver edges
  //    (and, at large sizes, the kKC panel edge) so tail handling is hit.
  {
    const int m = static_cast<int>(1 + rng.next_below(6 + size / 4));
    const int n = static_cast<int>(1 + rng.next_below(20 + size));
    const int k = static_cast<int>(1 + rng.next_below(12 + 4 * size));
    const bool trans_b = rng.next_bool();
    std::vector<float> a(zu(m) * zu(k));
    std::vector<float> b(zu(k) * zu(n));
    fill_uniform(rng, a.data(), a.size());
    fill_uniform(rng, b.data(), b.size());
    std::vector<float> c_fast(zu(m) * zu(n));
    fill_uniform(rng, c_fast.data(), c_fast.size());
    std::vector<float> c_ref = c_fast;
    const int ldb = trans_b ? k : n;
    nn::gemm(m, n, k, a.data(), k, b.data(), ldb, trans_b, c_fast.data(), n);
    nn::gemm_reference(m, n, k, a.data(), k, b.data(), ldb, trans_b,
                       c_ref.data(), n);
    std::ostringstream what;
    what << "blocked GEMM vs reference (m=" << m << " n=" << n << " k=" << k
         << " trans_b=" << trans_b << ")";
    compare_close(c_fast.data(), c_ref.data(), c_fast.size(), tol,
                  what.str().c_str());
  }

  // 2. A random conv→relu→pool→linear stack, fast vs reference infer().
  //    Channel counts deliberately include values that are not multiples
  //    of any sliver width.
  {
    const int batch = static_cast<int>(1 + rng.next_below(3 + size / 8));
    const int grid = 4 * static_cast<int>(1 + rng.next_below(2));
    const int in_c = static_cast<int>(1 + rng.next_below(4));
    const int mid_c = static_cast<int>(1 + rng.next_below(12));
    const int out_f = static_cast<int>(1 + rng.next_below(8));
    nn::Network net;
    net.add(std::make_unique<nn::Conv2d>(in_c, mid_c, 3, 1));
    net.add(std::make_unique<nn::Relu>());
    net.add(std::make_unique<nn::MaxPool2>());
    net.add(std::make_unique<nn::Linear>(mid_c * (grid / 2) * (grid / 2),
                                         out_f));
    Rng winit(rng.next_u64());
    net.init(winit);

    nn::Tensor in({batch, in_c, grid, grid});
    fill_uniform(rng, in.data(), in.size());

    nn::set_kernel_path(nn::KernelPath::kFast);
    const nn::Tensor fast = net.infer(in);
    nn::set_kernel_path(nn::KernelPath::kReference);
    const nn::Tensor ref = net.infer(in);
    std::ostringstream what;
    what << "conv/linear stack fast vs reference (batch=" << batch
         << " grid=" << grid << " in_c=" << in_c << " mid_c=" << mid_c
         << " out_f=" << out_f << ")";
    compare_close(fast.data(), ref.data(), fast.size(), tol,
                  what.str().c_str());
  }

  // 3. The batch-1 Linear shape (m = 1, trans_b): gemm() takes the
  //    no-packing row-direct path. Checked two ways: close to the naive
  //    reference, and — the property the per-sample vs batched score
  //    contract rests on — bit-identical to the same row computed by the
  //    blocked multi-row path. k deliberately straddles the kKC = 256
  //    panel edge so the chunked accumulation order is exercised.
  {
    const int n = static_cast<int>(1 + rng.next_below(20 + size));
    const int k = static_cast<int>(200 + rng.next_below(120 + 4 * size));
    const int rows = static_cast<int>(2 + rng.next_below(3));
    std::vector<float> a(zu(rows) * zu(k));
    std::vector<float> b(zu(n) * zu(k));  // n×k weight matrix, used as Bᵀ
    std::vector<float> bias(zu(n));
    fill_uniform(rng, a.data(), a.size());
    fill_uniform(rng, b.data(), b.size());
    fill_uniform(rng, bias.data(), bias.size());

    std::vector<float> c_direct = bias;  // C seeded with the bias, as Linear does
    nn::gemm(1, n, k, a.data(), k, b.data(), k, /*trans_b=*/true,
             c_direct.data(), n);
    std::vector<float> c_batch(zu(rows) * zu(n));
    for (int r = 0; r < rows; ++r) {
      std::copy(bias.begin(), bias.end(), c_batch.begin() + zu(r) * zu(n));
    }
    nn::gemm(rows, n, k, a.data(), k, b.data(), k, /*trans_b=*/true,
             c_batch.data(), n);
    std::vector<float> c_ref = bias;
    nn::gemm_reference(1, n, k, a.data(), k, b.data(), k, /*trans_b=*/true,
                       c_ref.data(), n);

    std::ostringstream what;
    what << "batch-1 row-direct GEMM (n=" << n << " k=" << k << ")";
    compare_close(c_direct.data(), c_ref.data(), zu(n), tol,
                  what.str().c_str());
    if (std::memcmp(c_direct.data(), c_batch.data(),
                    zu(n) * sizeof(float)) != 0) {
      std::ostringstream os;
      os << what.str()
         << ": row 0 is not bit-identical to the blocked multi-row path "
            "(rows="
         << rows << ") — the per-sample vs batched score contract is broken";
      oracle_fail(os.str());
    }
  }
}

namespace {

void compare_bytes(const std::vector<std::uint8_t>& a,
                   const std::vector<std::uint8_t>& b, const char* what) {
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << what << ": byte count " << a.size() << " vs " << b.size();
    oracle_fail(os.str());
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      std::ostringstream os;
      os << what << ": first difference at offset " << i << " (0x" << std::hex
         << static_cast<int>(a[i]) << " vs 0x" << static_cast<int>(b[i])
         << ")";
      oracle_fail(os.str());
    }
  }
}

std::vector<std::uint8_t> stream_bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

}  // namespace

void expect_gds_fixpoint(const gds::Library& lib) {
  const auto first = gds::write_bytes(lib);
  const gds::Library round = gds::read_bytes(first);
  const auto second = gds::write_bytes(round);
  compare_bytes(second, first, "GDS write->read->write fixpoint");
}

void expect_weights_fixpoint(nn::Network& a, nn::Network& b) {
  std::ostringstream first;
  nn::save_weights(a, first);
  std::istringstream in(first.str());
  nn::load_weights(b, in);
  std::ostringstream second;
  nn::save_weights(b, second);
  compare_bytes(stream_bytes(second.str()), stream_bytes(first.str()),
                "weights save->load->save fixpoint");

  const auto pa = a.params();
  const auto pb = b.params();
  if (pa.size() != pb.size()) {
    oracle_fail("weights fixpoint: networks have different topology");
  }
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (*pa[i].value != *pb[i].value) {
      std::ostringstream os;
      os << "weights fixpoint: parameter " << i
         << " differs after load (size " << pa[i].value->size() << " vs "
         << pb[i].value->size() << ")";
      oracle_fail(os.str());
    }
  }
}

void expect_dataset_fixpoint(const data::Dataset& ds) {
  std::ostringstream first;
  data::save_dataset(ds, first);
  std::istringstream in(first.str());
  const data::Dataset round = data::load_dataset(in);
  std::ostringstream second;
  data::save_dataset(round, second);
  compare_bytes(stream_bytes(second.str()), stream_bytes(first.str()),
                "dataset save->load->save fixpoint");
}

}  // namespace lhd::testkit
