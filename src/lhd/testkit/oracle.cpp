#include "lhd/testkit/oracle.hpp"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>

#include "lhd/data/io.hpp"
#include "lhd/feature/dct.hpp"
#include "lhd/gds/reader.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/geom/polygon.hpp"
#include "lhd/nn/serialize.hpp"
#include "lhd/testkit/property.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::testkit {

namespace {

[[noreturn]] void oracle_fail(const std::string& what) {
  throw PropertyFailure(what);
}

std::size_t idx(int n, int r, int c) {
  return static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(c);
}

/// Orthonormal DCT-II basis row scale: c(0) = sqrt(1/n), c(k>0) = sqrt(2/n).
double basis_scale(int n, int k) {
  return k == 0 ? std::sqrt(1.0 / n) : std::sqrt(2.0 / n);
}

double basis(int n, int k, int i) {
  return basis_scale(n, k) *
         std::cos(M_PI * (2.0 * i + 1.0) * k / (2.0 * n));
}

void compare_blocks(const double* a, const double* b, int n, double tol,
                    const char* what) {
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const double diff = std::abs(a[idx(n, r, c)] - b[idx(n, r, c)]);
      if (!(diff <= tol)) {
        std::ostringstream os;
        os << what << ": coefficient (" << r << "," << c << ") differs by "
           << diff << " (tolerance " << tol << "): " << a[idx(n, r, c)]
           << " vs " << b[idx(n, r, c)];
        oracle_fail(os.str());
      }
    }
  }
}

}  // namespace

void naive_dct2d(const double* in, double* out, int n) {
  LHD_CHECK(n > 0, "DCT block side must be positive");
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      double acc = 0.0;
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          acc += in[idx(n, i, j)] * basis(n, u, i) * basis(n, v, j);
        }
      }
      out[idx(n, u, v)] = acc;
    }
  }
}

void matrix_dct2d(const double* in, double* out, int n) {
  LHD_CHECK(n > 0, "DCT block side must be positive");
  // tmp = B * in (rows transformed), out = tmp * B^T (columns transformed)
  // — the same two-matmul shape as the production float kernel.
  std::vector<double> tmp(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int i = 0; i < n; ++i) acc += basis(n, u, i) * in[idx(n, i, j)];
      tmp[idx(n, u, j)] = acc;
    }
  }
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      double acc = 0.0;
      for (int j = 0; j < n; ++j) acc += tmp[idx(n, u, j)] * basis(n, v, j);
      out[idx(n, u, v)] = acc;
    }
  }
}

void expect_dct_parity(const std::vector<float>& block, int n,
                       double algo_tol, double float_tol) {
  const auto count =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  LHD_CHECK(block.size() == count, "block size must be n*n");

  std::vector<double> in_d(count);
  for (std::size_t i = 0; i < count; ++i) in_d[i] = block[i];

  std::vector<double> ref(count), fast_d(count);
  naive_dct2d(in_d.data(), ref.data(), n);
  matrix_dct2d(in_d.data(), fast_d.data(), n);
  compare_blocks(fast_d.data(), ref.data(), n, algo_tol,
                 "matrix DCT vs naive DCT (double)");

  std::vector<float> prod(count), round(count);
  feature::dct2d(block.data(), prod.data(), n);
  std::vector<double> prod_d(count);
  for (std::size_t i = 0; i < count; ++i) prod_d[i] = prod[i];
  compare_blocks(prod_d.data(), ref.data(), n, float_tol,
                 "production float DCT vs naive DCT");

  feature::idct2d(prod.data(), round.data(), n);
  for (std::size_t i = 0; i < count; ++i) {
    const double diff = std::abs(static_cast<double>(round[i]) - block[i]);
    if (!(diff <= float_tol)) {
      std::ostringstream os;
      os << "idct2d(dct2d(x)) round-trip: element " << i << " differs by "
         << diff << " (tolerance " << float_tol << ")";
      oracle_fail(os.str());
    }
  }
}

float DensityCutDetector::score(const data::Clip& clip) const {
  const double area = static_cast<double>(geom::union_area(clip.rects));
  const double total =
      static_cast<double>(clip.window_nm) * clip.window_nm;
  return static_cast<float>(area / total);
}

void expect_scan_parity(const core::ChipIndex& chip,
                        const core::Detector& detector,
                        core::ScanConfig config,
                        const std::vector<std::size_t>& thread_counts,
                        ThreadPool& pool) {
  config.threads = 1;
  const auto serial = core::scan_chip(chip, detector, config);
  for (const std::size_t threads : thread_counts) {
    config.threads = threads;
    const auto parallel = core::scan_chip(chip, detector, config, pool);
    std::ostringstream os;
    os << "scan(threads=" << threads << ") vs scan(threads=1): ";
    if (parallel.windows_total != serial.windows_total ||
        parallel.windows_classified != serial.windows_classified ||
        parallel.flagged != serial.flagged) {
      os << "window counts diverge (total " << parallel.windows_total << "/"
         << serial.windows_total << ", classified "
         << parallel.windows_classified << "/" << serial.windows_classified
         << ", flagged " << parallel.flagged << "/" << serial.flagged << ")";
      oracle_fail(os.str());
    }
    if (parallel.hits.size() != serial.hits.size()) {
      os << "hit count " << parallel.hits.size() << " vs "
         << serial.hits.size();
      oracle_fail(os.str());
    }
    for (std::size_t i = 0; i < serial.hits.size(); ++i) {
      if (!(parallel.hits[i] == serial.hits[i])) {
        const auto& p = parallel.hits[i];
        const auto& s = serial.hits[i];
        os << "hit " << i << " differs: window (" << p.window.xlo << ","
           << p.window.ylo << ") score " << p.score << " vs (" << s.window.xlo
           << "," << s.window.ylo << ") score " << s.score;
        oracle_fail(os.str());
      }
    }
  }
}

void expect_dedup_scan_parity(const core::ChipIndex& chip,
                              const core::Detector& detector,
                              core::ScanConfig config,
                              const std::vector<std::size_t>& thread_counts,
                              const std::vector<std::size_t>& cache_capacities,
                              const std::vector<std::size_t>& batch_sizes,
                              ThreadPool& pool) {
  config.dedup = false;
  config.threads = 1;
  const auto naive = core::scan_chip(chip, detector, config);
  config.dedup = true;
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t capacity : cache_capacities) {
      for (const std::size_t batch : batch_sizes) {
        config.threads = threads;
        config.cache_capacity = capacity;
        config.batch = batch;
        const auto dedup = core::scan_chip(chip, detector, config, pool);
        std::ostringstream os;
        os << "dedup scan(threads=" << threads << ", capacity=" << capacity
           << ", batch=" << batch << ") vs naive scan: ";
        if (dedup.windows_total != naive.windows_total ||
            dedup.flagged != naive.flagged) {
          os << "window counts diverge (total " << dedup.windows_total << "/"
             << naive.windows_total << ", flagged " << dedup.flagged << "/"
             << naive.flagged << ")";
          oracle_fail(os.str());
        }
        if (dedup.windows_classified > naive.windows_classified) {
          os << "dedup classified MORE windows than naive ("
             << dedup.windows_classified << " vs "
             << naive.windows_classified << ")";
          oracle_fail(os.str());
        }
        if (dedup.hits.size() != naive.hits.size()) {
          os << "hit count " << dedup.hits.size() << " vs "
             << naive.hits.size();
          oracle_fail(os.str());
        }
        for (std::size_t i = 0; i < naive.hits.size(); ++i) {
          if (!(dedup.hits[i] == naive.hits[i])) {
            const auto& d = dedup.hits[i];
            const auto& n = naive.hits[i];
            os << "hit " << i << " differs: window (" << d.window.xlo << ","
               << d.window.ylo << ") score " << d.score << " vs ("
               << n.window.xlo << "," << n.window.ylo << ") score "
               << n.score;
            oracle_fail(os.str());
          }
        }
      }
    }
  }
}

void expect_hierarchical_scan_parity(
    const gds::Library& lib, const std::string& top, std::int16_t layer,
    const core::Detector& detector, core::ScanConfig config,
    const std::vector<std::size_t>& thread_counts, ThreadPool& pool) {
  config.hierarchical = false;
  config.dedup = false;
  config.threads = 1;
  const auto chip = core::ChipIndex::from_library(lib, top, layer);
  const auto naive = core::scan_chip(chip, detector, config);
  config.hierarchical = true;
  for (const std::size_t threads : thread_counts) {
    for (const bool dedup : {false, true}) {
      config.threads = threads;
      config.dedup = dedup;
      const auto hier =
          core::scan_library(lib, top, layer, detector, config, pool);
      std::ostringstream os;
      os << "hierarchical scan(threads=" << threads << ", dedup=" << dedup
         << ") vs flattened naive scan: ";
      if (hier.windows_total != naive.windows_total ||
          hier.flagged != naive.flagged) {
        os << "window counts diverge (total " << hier.windows_total << "/"
           << naive.windows_total << ", flagged " << hier.flagged << "/"
           << naive.flagged << ")";
        oracle_fail(os.str());
      }
      if (hier.windows_classified > naive.windows_classified) {
        os << "hierarchical scan classified MORE windows than naive ("
           << hier.windows_classified << " vs " << naive.windows_classified
           << ")";
        oracle_fail(os.str());
      }
      if (hier.hits.size() != naive.hits.size()) {
        os << "hit count " << hier.hits.size() << " vs "
           << naive.hits.size();
        oracle_fail(os.str());
      }
      for (std::size_t i = 0; i < naive.hits.size(); ++i) {
        if (!(hier.hits[i] == naive.hits[i])) {
          const auto& h = hier.hits[i];
          const auto& n = naive.hits[i];
          os << "hit " << i << " differs: window (" << h.window.xlo << ","
             << h.window.ylo << ") score " << h.score << " vs ("
             << n.window.xlo << "," << n.window.ylo << ") score " << n.score;
          oracle_fail(os.str());
        }
      }
    }
  }
}

namespace {

void compare_bytes(const std::vector<std::uint8_t>& a,
                   const std::vector<std::uint8_t>& b, const char* what) {
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << what << ": byte count " << a.size() << " vs " << b.size();
    oracle_fail(os.str());
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      std::ostringstream os;
      os << what << ": first difference at offset " << i << " (0x" << std::hex
         << static_cast<int>(a[i]) << " vs 0x" << static_cast<int>(b[i])
         << ")";
      oracle_fail(os.str());
    }
  }
}

std::vector<std::uint8_t> stream_bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

}  // namespace

void expect_gds_fixpoint(const gds::Library& lib) {
  const auto first = gds::write_bytes(lib);
  const gds::Library round = gds::read_bytes(first);
  const auto second = gds::write_bytes(round);
  compare_bytes(second, first, "GDS write->read->write fixpoint");
}

void expect_weights_fixpoint(nn::Network& a, nn::Network& b) {
  std::ostringstream first;
  nn::save_weights(a, first);
  std::istringstream in(first.str());
  nn::load_weights(b, in);
  std::ostringstream second;
  nn::save_weights(b, second);
  compare_bytes(stream_bytes(second.str()), stream_bytes(first.str()),
                "weights save->load->save fixpoint");

  const auto pa = a.params();
  const auto pb = b.params();
  if (pa.size() != pb.size()) {
    oracle_fail("weights fixpoint: networks have different topology");
  }
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (*pa[i].value != *pb[i].value) {
      std::ostringstream os;
      os << "weights fixpoint: parameter " << i
         << " differs after load (size " << pa[i].value->size() << " vs "
         << pb[i].value->size() << ")";
      oracle_fail(os.str());
    }
  }
}

void expect_dataset_fixpoint(const data::Dataset& ds) {
  std::ostringstream first;
  data::save_dataset(ds, first);
  std::istringstream in(first.str());
  const data::Dataset round = data::load_dataset(in);
  std::ostringstream second;
  data::save_dataset(round, second);
  compare_bytes(stream_bytes(second.str()), stream_bytes(first.str()),
                "dataset save->load->save fixpoint");
}

}  // namespace lhd::testkit
