#pragma once
// Fault-injection shims for binary decoder tests.
//
// FaultyIStream / FaultyOStream serve (or accept) bytes normally up to a
// configurable byte index, then hard-fail every subsequent operation —
// the stream-level equivalent of a disk running full or a file being
// truncated mid-read. Decoders under test must surface lhd::Error (with
// context) and leave their outputs untouched, never crash or commit
// partial state.

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

namespace lhd::testkit {

/// Input stream over an in-memory buffer that fails from byte `fail_at`
/// on: reading bytes [0, fail_at) succeeds, the fail_at-th byte read
/// reports end-of-stream/failure. `fail_at >= bytes.size()` never fails.
class FaultyIStream : public std::istream {
 public:
  FaultyIStream(std::vector<std::uint8_t> bytes, std::size_t fail_at);

  std::size_t bytes_served() const { return buf_.served(); }

 private:
  class Buf : public std::streambuf {
   public:
    Buf(std::vector<std::uint8_t> bytes, std::size_t fail_at)
        : bytes_(std::move(bytes)), fail_at_(fail_at) {}
    std::size_t served() const { return pos_; }

   protected:
    int_type underflow() override;
    int_type uflow() override;

   private:
    std::vector<std::uint8_t> bytes_;
    std::size_t fail_at_;
    std::size_t pos_ = 0;
  };

  Buf buf_;
};

/// Output stream that accepts bytes [0, fail_at) into an in-memory buffer
/// and fails every write from byte `fail_at` on.
class FaultyOStream : public std::ostream {
 public:
  explicit FaultyOStream(std::size_t fail_at);

  const std::vector<std::uint8_t>& bytes() const { return buf_.bytes(); }

 private:
  class Buf : public std::streambuf {
   public:
    explicit Buf(std::size_t fail_at) : fail_at_(fail_at) {}
    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

   protected:
    int_type overflow(int_type ch) override;

   private:
    std::vector<std::uint8_t> bytes_;
    std::size_t fail_at_;
  };

  Buf buf_;
};

/// Invoke `fn(stream, fail_at)` once per fail point in [0, bytes.size()):
/// the stream fails exactly at byte `fail_at`. The decoder must throw
/// lhd::Error for every prefix of a valid stream (assuming the full
/// stream is longer than every proper prefix's parse needs).
void for_each_fail_point(
    const std::vector<std::uint8_t>& bytes,
    const std::function<void(std::istream&, std::size_t)>& fn);

}  // namespace lhd::testkit
