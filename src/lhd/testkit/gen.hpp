#pragma once
// Seed-threaded random input builders for tests and fuzzing.
//
// Every generator takes an explicit Rng so the produced value is a pure
// function of (arguments, rng state) — the property runner threads one
// seed through a test case and that seed alone reproduces it. The `size`
// arguments are deliberately coarse (element counts, structure counts):
// the property runner shrinks along that axis.

#include <cstdint>
#include <string>
#include <vector>

#include "lhd/data/clip.hpp"
#include "lhd/gds/model.hpp"
#include "lhd/geom/point.hpp"
#include "lhd/geom/rect.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::testkit {

/// Non-degenerate rect with corners in [0, extent)² and sides in
/// [min_side, max_side] (clamped to the extent).
geom::Rect random_rect(Rng& rng, geom::Coord extent, geom::Coord min_side = 1,
                       geom::Coord max_side = 400);

/// `count` independent random_rect draws.
std::vector<geom::Rect> random_rects(Rng& rng, std::size_t count,
                                     geom::Coord extent,
                                     geom::Coord min_side = 1,
                                     geom::Coord max_side = 400);

/// Closed Manhattan staircase ring with `steps` stair treads — always a
/// valid simple rectilinear polygon (H/V alternating, no zero edges).
std::vector<geom::Point> random_staircase_ring(Rng& rng, int steps);

/// Labeled clip with ~`size` random rects clipped to [0, window_nm)².
data::Clip random_clip(Rng& rng, std::size_t size,
                       geom::Coord window_nm = 1024);

/// n×n row-major block of floats in [0, 1) — DCT test input.
std::vector<float> random_block(Rng& rng, int n);

/// Random but valid GDS library: ~size/6 + 1 leaf structures holding
/// boundaries and Manhattan paths, plus a TOP structure referencing the
/// leaves through random SREF/AREF transforms (angle ∈ {0,90,180,270},
/// optional mirror). Always writer- and reader-clean.
gds::Library random_library(Rng& rng, std::size_t size);

/// Uniformly random byte blob (unstructured fuzz input).
std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t count);

// --- hex corpus helpers -----------------------------------------------------
// Corpus files under tests/fixtures/*_corpus/ are plain hex text (pairs of
// hex digits; whitespace and '#'-to-end-of-line comments ignored) so crash
// reproducers are reviewable in a diff.

std::string to_hex(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> from_hex(const std::string& hex);
std::vector<std::uint8_t> load_hex_file(const std::string& path);

}  // namespace lhd::testkit
