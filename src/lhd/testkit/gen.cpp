#include "lhd/testkit/gen.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "lhd/geom/polygon.hpp"
#include "lhd/util/check.hpp"

namespace lhd::testkit {

geom::Rect random_rect(Rng& rng, geom::Coord extent, geom::Coord min_side,
                       geom::Coord max_side) {
  LHD_CHECK(extent > 1 && min_side > 0 && min_side <= max_side,
            "random_rect needs extent > 1 and 0 < min_side <= max_side");
  const geom::Coord side_cap = std::min(max_side, extent - 1);
  const geom::Coord side_floor = std::min(min_side, side_cap);
  const auto w = static_cast<geom::Coord>(rng.next_int(side_floor, side_cap));
  const auto h = static_cast<geom::Coord>(rng.next_int(side_floor, side_cap));
  const auto x = static_cast<geom::Coord>(rng.next_int(0, extent - w - 1));
  const auto y = static_cast<geom::Coord>(rng.next_int(0, extent - h - 1));
  return geom::Rect(x, y, x + w, y + h);
}

std::vector<geom::Rect> random_rects(Rng& rng, std::size_t count,
                                     geom::Coord extent, geom::Coord min_side,
                                     geom::Coord max_side) {
  std::vector<geom::Rect> rects;
  rects.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    rects.push_back(random_rect(rng, extent, min_side, max_side));
  }
  return rects;
}

std::vector<geom::Point> random_staircase_ring(Rng& rng, int steps) {
  LHD_CHECK(steps >= 1, "staircase needs >= 1 step");
  // Climb right-and-up, then close over the top-left corner. Strictly
  // positive treads/risers keep every edge non-degenerate and alternating.
  std::vector<geom::Point> ring;
  geom::Coord x = 0, y = 0;
  ring.push_back({x, y});
  for (int i = 0; i < steps; ++i) {
    x += static_cast<geom::Coord>(rng.next_int(5, 30));
    ring.push_back({x, y});
    y += static_cast<geom::Coord>(rng.next_int(5, 30));
    ring.push_back({x, y});
  }
  ring.push_back({0, y});
  return ring;
}

data::Clip random_clip(Rng& rng, std::size_t size, geom::Coord window_nm) {
  data::Clip clip;
  clip.window_nm = window_nm;
  const geom::Coord max_side = std::max<geom::Coord>(2, window_nm / 4);
  clip.rects = random_rects(rng, size, window_nm, 1, max_side);
  clip.label = rng.next_bool() ? data::Label::Hotspot : data::Label::NonHotspot;
  return clip;
}

std::vector<float> random_block(Rng& rng, int n) {
  LHD_CHECK(n > 0, "block side must be positive");
  std::vector<float> block(static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(n));
  for (auto& v : block) v = static_cast<float>(rng.next_double());
  return block;
}

gds::Library random_library(Rng& rng, std::size_t size) {
  gds::Library lib;
  lib.name = "FUZZ";
  const std::size_t leaves = 1 + size / 6;
  for (std::size_t i = 0; i < leaves; ++i) {
    gds::Structure& s = lib.add_structure("L" + std::to_string(i));
    const std::size_t shapes = 1 + rng.next_below(3);
    for (std::size_t j = 0; j < shapes; ++j) {
      if (rng.next_bool(0.7)) {
        gds::Boundary b;
        b.layer = static_cast<std::int16_t>(rng.next_int(0, 3));
        if (rng.next_bool(0.3)) {
          b.polygon = geom::Polygon(
              random_staircase_ring(rng, 1 + static_cast<int>(rng.next_below(4))));
        } else {
          b.polygon = geom::Polygon::from_rect(random_rect(rng, 4000, 4, 600));
        }
        s.add(b);
      } else {
        gds::Path p;
        p.layer = static_cast<std::int16_t>(rng.next_int(0, 3));
        p.width = static_cast<geom::Coord>(rng.next_int(2, 60));
        if (rng.next_bool()) p.pathtype = 2;
        geom::Point at{static_cast<geom::Coord>(rng.next_int(0, 2000)),
                       static_cast<geom::Coord>(rng.next_int(0, 2000))};
        p.points.push_back(at);
        const std::size_t segs = 1 + rng.next_below(3);
        bool horizontal = rng.next_bool();
        for (std::size_t k = 0; k < segs; ++k) {
          const auto step = static_cast<geom::Coord>(rng.next_int(20, 400));
          if (horizontal) {
            at.x += step;
          } else {
            at.y += step;
          }
          horizontal = !horizontal;
          p.points.push_back(at);
        }
        s.add(p);
      }
    }
  }

  gds::Structure& top = lib.add_structure("TOP");
  const std::size_t refs = 1 + size / 2;
  for (std::size_t i = 0; i < refs; ++i) {
    const std::string target = "L" + std::to_string(rng.next_below(leaves));
    gds::Transform t;
    t.angle_deg = static_cast<int>(rng.next_below(4)) * 90;
    t.mirror_x = rng.next_bool(0.25);
    t.origin = {static_cast<geom::Coord>(rng.next_int(-20000, 20000)),
                static_cast<geom::Coord>(rng.next_int(-20000, 20000))};
    if (rng.next_bool(0.7)) {
      gds::SRef ref;
      ref.structure = target;
      ref.transform = t;
      top.add(ref);
    } else {
      gds::ARef arr;
      arr.structure = target;
      arr.transform = t;
      arr.cols = static_cast<int>(1 + rng.next_below(4));
      arr.rows = static_cast<int>(1 + rng.next_below(4));
      arr.col_step = {static_cast<geom::Coord>(rng.next_int(500, 5000)), 0};
      arr.row_step = {0, static_cast<geom::Coord>(rng.next_int(500, 5000))};
      top.add(arr);
    }
  }
  return lib;
}

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t count) {
  std::vector<std::uint8_t> bytes(count);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  return bytes;
}

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2 + bytes.size() / 16 + 1);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out.push_back(digits[bytes[i] >> 4]);
    out.push_back(digits[bytes[i] & 0x0F]);
    out.push_back((i + 1) % 16 == 0 ? '\n' : ' ');
  }
  if (!out.empty() && out.back() == ' ') out.back() = '\n';
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> bytes;
  int nibble = -1;
  bool in_comment = false;
  for (const char c : hex) {
    if (c == '\n') {
      in_comment = false;
      continue;
    }
    if (in_comment) continue;
    if (c == '#') {
      in_comment = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') continue;
    int v = -1;
    if (c >= '0' && c <= '9') v = c - '0';
    if (c >= 'a' && c <= 'f') v = 10 + (c - 'a');
    if (c >= 'A' && c <= 'F') v = 10 + (c - 'A');
    LHD_CHECK_MSG(v >= 0, "invalid hex character '" << c << "'");
    if (nibble < 0) {
      nibble = v;
    } else {
      bytes.push_back(static_cast<std::uint8_t>((nibble << 4) | v));
      nibble = -1;
    }
  }
  LHD_CHECK(nibble < 0, "odd number of hex digits");
  return bytes;
}

std::vector<std::uint8_t> load_hex_file(const std::string& path) {
  std::ifstream in(path);
  LHD_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  std::ostringstream os;
  os << in.rdbuf();
  return from_hex(os.str());
}

}  // namespace lhd::testkit
