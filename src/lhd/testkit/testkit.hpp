#pragma once
// Umbrella header for lhd::testkit — the deterministic testing library.
//
// testkit links only into tests, benches, and fuzz harnesses; production
// targets must not depend on it. Contents:
//   - gen.hpp      seed-threaded random builders (rects, clips, libraries)
//   - mutate.hpp   structure-aware GDSII byte-stream mutators + bombs
//   - property.hpp CHECK_PROPERTY runner with shrinking and seed replay
//   - oracle.hpp   differential oracles (scan parity, DCT parity, fixpoints)
//   - fault.hpp    fault-injection streams (fail at the Nth byte)

#include "lhd/testkit/fault.hpp"
#include "lhd/testkit/gen.hpp"
#include "lhd/testkit/mutate.hpp"
#include "lhd/testkit/oracle.hpp"
#include "lhd/testkit/property.hpp"
