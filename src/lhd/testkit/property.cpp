#include "lhd/testkit/property.hpp"

#include <cstdlib>
#include <exception>
#include <sstream>

namespace lhd::testkit {

namespace {

/// Outcome of one body execution.
struct RunOutcome {
  bool failed = false;
  std::string what;
};

RunOutcome run_once(const PropertyFn& body, std::uint64_t seed,
                    std::size_t size) {
  Rng rng(seed);
  try {
    body(rng, size);
    return {};
  } catch (const std::exception& e) {
    return {true, e.what()};
  } catch (...) {
    return {true, "non-std exception"};
  }
}

std::size_t size_for_run(const PropertyConfig& cfg, std::size_t i) {
  if (cfg.runs <= 1 || cfg.max_size <= cfg.min_size) return cfg.min_size;
  return cfg.min_size +
         ((cfg.max_size - cfg.min_size) * i) / (cfg.runs - 1);
}

bool env_seed(std::uint64_t* seed) {
  const char* s = std::getenv("LHD_PROPERTY_SEED");
  if (s == nullptr || *s == '\0') return false;
  *seed = std::strtoull(s, nullptr, 0);  // accepts decimal and 0x-hex
  return true;
}

bool env_size(std::size_t* size) {
  const char* s = std::getenv("LHD_PROPERTY_SIZE");
  if (s == nullptr || *s == '\0') return false;
  *size = static_cast<std::size_t>(std::strtoull(s, nullptr, 0));
  return true;
}

PropertyReport fail_report(const std::string& name, std::uint64_t seed,
                           std::size_t size, std::size_t original_size,
                           std::size_t shrink_steps, std::size_t runs,
                           const std::string& what) {
  PropertyReport rep;
  rep.ok = false;
  rep.runs = runs;
  rep.failing_seed = seed;
  rep.failing_size = size;
  rep.original_size = original_size;
  rep.shrink_steps = shrink_steps;
  std::ostringstream os;
  os << "property '" << name << "' failed: seed=0x" << std::hex << seed
     << std::dec << " size=" << size;
  if (size != original_size) {
    os << " (shrunk from " << original_size << " in " << shrink_steps
       << " step" << (shrink_steps == 1 ? "" : "s") << ")";
  }
  os << "\n  " << what << "\n  replay: LHD_PROPERTY_SEED=0x" << std::hex
     << seed << std::dec << " LHD_PROPERTY_SIZE=" << size
     << " <test binary>";
  rep.message = os.str();
  return rep;
}

}  // namespace

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

PropertyReport run_property(const std::string& name,
                            const PropertyConfig& config,
                            const PropertyFn& body) {
  LHD_CHECK(config.runs > 0, "property needs at least one run");
  LHD_CHECK(config.min_size > 0 && config.min_size <= config.max_size,
            "property sizes must satisfy 0 < min_size <= max_size");

  // Replay mode: one exact (seed, size) case, no shrinking.
  std::uint64_t replay_seed = 0;
  if (env_seed(&replay_seed)) {
    std::size_t replay_size = config.max_size;
    env_size(&replay_size);
    const RunOutcome out = run_once(body, replay_seed, replay_size);
    if (out.failed) {
      return fail_report(name, replay_seed, replay_size, replay_size, 0, 1,
                         out.what);
    }
    PropertyReport rep;
    rep.runs = 1;
    return rep;
  }

  const std::uint64_t base =
      config.base_seed != 0 ? config.base_seed : fnv1a(name);
  for (std::size_t i = 0; i < config.runs; ++i) {
    const std::uint64_t seed = base + i;
    const std::size_t size = size_for_run(config, i);
    const RunOutcome out = run_once(body, seed, size);
    if (!out.failed) continue;

    // Shrink: smallest size in [min_size, size) that still fails under
    // this seed. Sizes are tried ascending so the first hit is minimal.
    std::size_t best_size = size;
    std::string best_what = out.what;
    std::size_t steps = 0;
    for (std::size_t s = config.min_size; s < size; ++s) {
      ++steps;
      const RunOutcome shrunk = run_once(body, seed, s);
      if (shrunk.failed) {
        best_size = s;
        best_what = shrunk.what;
        break;
      }
    }
    return fail_report(name, seed, best_size, size, steps, i + 1, best_what);
  }

  PropertyReport rep;
  rep.runs = config.runs;
  return rep;
}

PropertyReport run_property(const std::string& name, std::size_t runs,
                            const PropertyFn& body) {
  PropertyConfig cfg;
  cfg.runs = runs;
  return run_property(name, cfg, body);
}

}  // namespace lhd::testkit
