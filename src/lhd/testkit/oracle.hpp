#pragma once
// Differential oracles: two independent implementations (or two execution
// strategies) of the same computation, checked for agreement. Each
// expect_* helper throws PropertyFailure with enough context to pin down
// the first disagreement; combined with CHECK_PROPERTY the failing seed
// is printed too.

#include <cstddef>
#include <vector>

#include "lhd/core/detector.hpp"
#include "lhd/core/scan.hpp"
#include "lhd/data/dataset.hpp"
#include "lhd/gds/model.hpp"
#include "lhd/nn/network.hpp"
#include "lhd/util/rng.hpp"

namespace lhd {
class ThreadPool;
}

namespace lhd::testkit {

// --- DCT --------------------------------------------------------------------

/// Textbook O(n²)-per-coefficient 2-D DCT-II with orthonormal scaling —
/// the slow reference the fast basis-matmul path is checked against.
void naive_dct2d(const double* in, double* out, int n);

/// The production algorithm (cached-basis matrix multiply) recomputed in
/// double precision, so the *algorithm* can be compared against the naive
/// definition at tight tolerance independent of float rounding.
void matrix_dct2d(const double* in, double* out, int n);

/// Three-way DCT check on one n×n block:
///   1. matrix_dct2d (double) vs naive_dct2d (double) within `algo_tol`
///      — same math, so 1e-9 holds;
///   2. production feature::dct2d (float) vs naive_dct2d within
///      `float_tol` — bounds the float rounding of the shipped kernel;
///   3. feature::idct2d(feature::dct2d(x)) round-trips within `float_tol`.
void expect_dct_parity(const std::vector<float>& block, int n,
                       double algo_tol = 1e-9, double float_tol = 5e-5);

// --- scan -------------------------------------------------------------------

/// Geometry-density detector for parity tests: score = covered area /
/// window area, no training needed. Deterministic and thread-safe.
class DensityCutDetector : public core::Detector {
 public:
  explicit DensityCutDetector(float threshold = 0.10f)
      : threshold_(threshold) {}

  std::string name() const override { return "testkit-density-cut"; }
  void train(const data::Dataset&) override {}
  float score(const data::Clip& clip) const override;
  bool predict(const data::Clip& clip) const override {
    return score(clip) > threshold_;
  }
  void set_threshold(float threshold) override { threshold_ = threshold; }
  float threshold() const override { return threshold_; }

 private:
  float threshold_;
};

/// Serial-vs-parallel scan equality: runs scan_chip with threads=1 as the
/// baseline and requires bit-identical hits / window counts for every
/// entry of `thread_counts` on the given pool.
void expect_scan_parity(const core::ChipIndex& chip,
                        const core::Detector& detector,
                        core::ScanConfig config,
                        const std::vector<std::size_t>& thread_counts,
                        ThreadPool& pool);

/// Dedup-vs-naive scan equality: runs the naive scan (dedup off,
/// threads=1) as the baseline, then requires identical hits / flagged /
/// windows_total from the dedup scan across every (thread count, cache
/// capacity, batch size) combination. Requires a detector whose score is
/// invariant under rect order and whole-pattern translation
/// (DensityCutDetector is) — that is the precondition under which dedup
/// promises bit-identical results. windows_classified is deliberately NOT
/// compared: with a shared cache it counts unique misses, which is
/// schedule-dependent; instead it is checked to never exceed the naive
/// count.
void expect_dedup_scan_parity(const core::ChipIndex& chip,
                              const core::Detector& detector,
                              core::ScanConfig config,
                              const std::vector<std::size_t>& thread_counts,
                              const std::vector<std::size_t>& cache_capacities,
                              const std::vector<std::size_t>& batch_sizes,
                              ThreadPool& pool);

/// Hierarchical-vs-flattened scan equality: flattens `top`/`layer` once
/// and runs the naive scan (threads=1, dedup off) as the baseline, then
/// requires bit-identical hits / flagged / windows_total from the
/// hierarchical scan (scan_library with ScanConfig::hierarchical) across
/// every (thread count, dedup on/off) combination. Same detector
/// precondition as dedup parity: the score must be invariant under rect
/// order and whole-pattern translation (DensityCutDetector is).
/// windows_classified — detector invocations — must never exceed the
/// naive count: replay plus dedup can only shrink the detector work.
void expect_hierarchical_scan_parity(
    const gds::Library& lib, const std::string& top, std::int16_t layer,
    const core::Detector& detector, core::ScanConfig config,
    const std::vector<std::size_t>& thread_counts, ThreadPool& pool);

// --- nn kernels -------------------------------------------------------------

/// Fast-vs-reference nn kernel parity, two checks per call:
///   1. the blocked GEMM vs the naive triple loop on a random (m, n, k)
///      straddling the packing sliver edges, both B orientations, with C
///      seeded non-zero to verify the accumulate (+=) semantics;
///   2. a random conv→relu→pool→linear stack with random (odd-friendly)
///      channel counts, weights and batch, run through Network::infer()
///      under KernelPath::kFast and KernelPath::kReference.
/// Agreement is tolerance-based — |fast - ref| ≤ tol·(1 + max magnitude)
/// per element — because the two paths accumulate in different orders and
/// precisions; bit equality is deliberately NOT the contract (see
/// docs/PERFORMANCE.md). Clears the programmatic kernel-path override on
/// exit, even when throwing, so a failure never leaks a forced path.
void expect_nn_kernel_parity(Rng& rng, std::size_t size, double tol = 1e-3);

// --- serialization fixpoints ------------------------------------------------

/// write → read → write must reproduce the exact byte stream (the writer
/// is canonical: fixed timestamps, deterministic record order).
void expect_gds_fixpoint(const gds::Library& lib);

/// save(a) → load into b (same topology) → save(b) must reproduce the
/// exact byte stream, and b's parameters must equal a's.
void expect_weights_fixpoint(nn::Network& a, nn::Network& b);

/// save → load → save must reproduce the exact byte stream.
void expect_dataset_fixpoint(const data::Dataset& ds);

}  // namespace lhd::testkit
