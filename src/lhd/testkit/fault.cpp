#include "lhd/testkit/fault.hpp"

namespace lhd::testkit {

FaultyIStream::FaultyIStream(std::vector<std::uint8_t> bytes,
                             std::size_t fail_at)
    : std::istream(nullptr), buf_(std::move(bytes), fail_at) {
  rdbuf(&buf_);
}

std::streambuf::int_type FaultyIStream::Buf::underflow() {
  if (pos_ >= fail_at_ || pos_ >= bytes_.size()) return traits_type::eof();
  return traits_type::to_int_type(bytes_[pos_]);
}

std::streambuf::int_type FaultyIStream::Buf::uflow() {
  if (pos_ >= fail_at_ || pos_ >= bytes_.size()) return traits_type::eof();
  return traits_type::to_int_type(bytes_[pos_++]);
}

FaultyOStream::FaultyOStream(std::size_t fail_at)
    : std::ostream(nullptr), buf_(fail_at) {
  rdbuf(&buf_);
}

std::streambuf::int_type FaultyOStream::Buf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) {
    return traits_type::not_eof(ch);
  }
  if (bytes_.size() >= fail_at_) return traits_type::eof();
  bytes_.push_back(static_cast<std::uint8_t>(ch));
  return ch;
}

void for_each_fail_point(
    const std::vector<std::uint8_t>& bytes,
    const std::function<void(std::istream&, std::size_t)>& fn) {
  for (std::size_t fail_at = 0; fail_at < bytes.size(); ++fail_at) {
    FaultyIStream in(bytes, fail_at);
    fn(in, fail_at);
  }
}

}  // namespace lhd::testkit
