#pragma once
// Structure-aware GDSII byte-stream mutators.
//
// Unlike blind bit-flipping, these mutators understand the record framing
// ([u16 length][u8 type][u8 dtype][payload]) of a well-formed input, so a
// single mutation lands on a meaningful boundary: a length field, a record
// type, a whole-record reorder, a mid-record truncation. Fed to
// gds::read_bytes they exercise every ParseError path; the contract under
// test is "either a Library comes back or lhd::Error is thrown — never a
// crash, hang, or silent corruption".

#include <cstdint>
#include <vector>

#include "lhd/util/rng.hpp"

namespace lhd::testkit {

enum class GdsMutation : std::uint8_t {
  TruncateTail,     ///< drop 1..N trailing bytes (usually mid-record)
  TruncateRecord,   ///< cut at a record boundary (well-framed, no ENDLIB)
  CorruptLength,    ///< overwrite one record's u16 length field
  BitFlip,          ///< flip 1..8 random bits anywhere in the stream
  CorruptPayload,   ///< overwrite random payload bytes of one record
  SwapRecords,      ///< exchange two whole records
  DuplicateRecord,  ///< repeat one record in place
  DeleteRecord,     ///< remove one whole record
  TypeSwap,         ///< replace one record's type byte with another type
  kCount            ///< sentinel — number of strategies
};

/// Byte offsets of record starts in a well-framed stream (framing scan;
/// stops early at the first malformed header, so it is safe on any input).
std::vector<std::size_t> record_offsets(const std::vector<std::uint8_t>& bytes);

/// Apply one specific mutation. Degenerate inputs (too short for the
/// strategy) fall back to a bit flip so the result always differs when
/// the input is non-empty.
std::vector<std::uint8_t> apply_mutation(std::vector<std::uint8_t> bytes,
                                         GdsMutation mutation, Rng& rng);

/// Apply 1–3 randomly chosen mutations — the default fuzz step.
std::vector<std::uint8_t> mutate_gds(std::vector<std::uint8_t> bytes,
                                     Rng& rng);

/// Well-formed stream whose structures chain SREFs `depth` levels deep
/// (S0 -> S1 -> ... -> S(depth) -> boundary). Parses fine; flattening must
/// reject it once depth exceeds the reader's recursion bound instead of
/// blowing the stack.
std::vector<std::uint8_t> sref_depth_bomb(int depth);

/// Well-formed stream with a single AREF of cols × rows placements — the
/// quadratic-expansion bomb the reader must cap at parse time.
std::vector<std::uint8_t> aref_fanout_bomb(int cols, int rows);

}  // namespace lhd::testkit
