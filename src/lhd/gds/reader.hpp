#pragma once
// GDSII binary stream reader/parser.

#include <string>
#include <vector>

#include "lhd/gds/model.hpp"
#include "lhd/gds/records.hpp"
#include "lhd/util/check.hpp"

namespace lhd::gds {

/// Parse error with byte offset context.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Tokenize a byte stream into records (no semantic checks beyond framing).
std::vector<Record> scan_records(const std::vector<std::uint8_t>& bytes);

/// Parse GDSII bytes into a Library. Throws ParseError on malformed input
/// (bad framing, missing mandatory records, truncated stream, unsupported
/// angles/magnification).
Library read_bytes(const std::vector<std::uint8_t>& bytes);

/// Parse a GDSII file; throws lhd::Error on I/O failure.
Library read_file(const std::string& path);

}  // namespace lhd::gds
