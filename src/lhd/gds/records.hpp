#pragma once
// GDSII stream-format record layer: record/data-type ids, byte-order
// helpers, and the excess-64 8-byte floating point encoding ("GDS real").
//
// A GDSII file is a sequence of records:
//   [u16 total_length][u8 record_type][u8 data_type][payload ...]
// with big-endian integers throughout.

#include <cstdint>
#include <string>
#include <vector>

namespace lhd::gds {

enum class RecordType : std::uint8_t {
  Header = 0x00,
  BgnLib = 0x01,
  LibName = 0x02,
  Units = 0x03,
  EndLib = 0x04,
  BgnStr = 0x05,
  StrName = 0x06,
  EndStr = 0x07,
  Boundary = 0x08,
  Path = 0x09,
  SRef = 0x0A,
  ARef = 0x0B,
  Layer = 0x0D,
  DataType = 0x0E,
  Width = 0x0F,
  Xy = 0x10,
  EndEl = 0x11,
  SName = 0x12,
  ColRow = 0x13,
  STrans = 0x1A,
  Mag = 0x1B,
  Angle = 0x1C,
  PathType = 0x21,
};

enum class DataType : std::uint8_t {
  None = 0,
  BitArray = 1,
  Int16 = 2,
  Int32 = 3,
  Real32 = 4,
  Real64 = 5,
  Ascii = 6,
};

/// One decoded record: type tags plus the raw big-endian payload bytes.
struct Record {
  RecordType type;
  DataType data_type;
  std::vector<std::uint8_t> payload;

  // Typed payload decoding (validates size, throws lhd::Error on mismatch).
  std::int16_t as_i16(std::size_t index = 0) const;
  std::int32_t as_i32(std::size_t index = 0) const;
  double as_real64(std::size_t index = 0) const;
  std::string as_string() const;
  std::size_t count_i16() const { return payload.size() / 2; }
  std::size_t count_i32() const { return payload.size() / 4; }
};

/// Human-readable record name for error messages.
const char* record_name(RecordType type);

// --- big-endian scalar packing ---------------------------------------------
void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void append_i16(std::vector<std::uint8_t>& out, std::int16_t v);
void append_i32(std::vector<std::uint8_t>& out, std::int32_t v);
std::uint16_t read_u16(const std::uint8_t* p);
std::int32_t read_i32(const std::uint8_t* p);

// --- GDS 8-byte real (excess-64, base-16 exponent) --------------------------
/// Encode an IEEE double; values representable in the GDS format round-trip
/// exactly (1e-9, 1e-3 and friends do).
std::uint64_t encode_real64(double value);
double decode_real64(std::uint64_t bits);
void append_real64(std::vector<std::uint8_t>& out, double value);

}  // namespace lhd::gds
