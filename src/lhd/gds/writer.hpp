#pragma once
// GDSII binary stream writer.

#include <string>
#include <vector>

#include "lhd/gds/model.hpp"

namespace lhd::gds {

/// Serialize a library to GDSII stream-format bytes.
std::vector<std::uint8_t> write_bytes(const Library& lib);

/// Serialize to a file; throws lhd::Error on I/O failure.
void write_file(const Library& lib, const std::string& path);

}  // namespace lhd::gds
