#include "lhd/gds/model.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "lhd/util/check.hpp"

namespace lhd::gds {

using geom::Coord;
using geom::Point;
using geom::Rect;

namespace {

constexpr bool fits_coord(std::int64_t v) {
  return v >= std::numeric_limits<Coord>::min() &&
         v <= std::numeric_limits<Coord>::max();
}

}  // namespace

Point Transform::apply(const Point& p) const {
  // int64 intermediates: rotation is magnitude-preserving, but the origin
  // add can leave the 32-bit range (reader-capped inputs still allow
  // |coord| + |origin| to reach 2^31).
  std::int64_t x = p.x, y = p.y;
  if (mirror_x) y = -y;
  switch (angle_deg) {
    case 0: break;
    case 90: {
      const std::int64_t t = x;
      x = -y;
      y = t;
      break;
    }
    case 180:
      x = -x;
      y = -y;
      break;
    case 270: {
      const std::int64_t t = x;
      x = y;
      y = -t;
      break;
    }
    default:
      LHD_CHECK_MSG(false, "unsupported SREF angle " << angle_deg);
  }
  x += origin.x;
  y += origin.y;
  LHD_CHECK(fits_coord(x) && fits_coord(y),
            "transformed coordinate overflows 32-bit range");
  return {static_cast<Coord>(x), static_cast<Coord>(y)};
}

Rect Transform::apply(const Rect& r) const {
  const Point a = apply({r.xlo, r.ylo});
  const Point b = apply({r.xhi, r.yhi});
  return Rect(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
              std::max(a.y, b.y));
}

Transform Transform::compose(const Transform& inner) const {
  Transform out;
  // Mirror composition in the dihedral group D4: outer ∘ inner.
  out.mirror_x = mirror_x != inner.mirror_x;
  // When the outer transform mirrors, the inner rotation flips handedness.
  const int inner_angle = mirror_x ? (360 - inner.angle_deg) % 360
                                   : inner.angle_deg;
  out.angle_deg = (angle_deg + inner_angle) % 360;
  out.origin = apply(inner.origin);
  return out;
}

std::vector<Rect> Path::to_rects() const {
  LHD_CHECK(width > 0, "path width must be positive");
  LHD_CHECK(points.size() >= 2, "path needs >= 2 points");
  const Coord half = width / 2;
  const Coord ext = (pathtype == 2) ? half : 0;
  std::vector<Rect> out;
  out.reserve(points.size() - 1);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const Point& a = points[i];
    const Point& b = points[i + 1];
    LHD_CHECK(a.x == b.x || a.y == b.y, "path segment not Manhattan");
    // Extend only the free ends; interior joints are already covered by the
    // half-width overlap of perpendicular segments.
    const Coord lo_ext = (i == 0) ? ext : half;
    const Coord hi_ext = (i + 2 == points.size()) ? ext : half;
    if (a.y == b.y) {
      const Coord xlo = std::min(a.x, b.x);
      const Coord xhi = std::max(a.x, b.x);
      const bool a_is_lo = a.x < b.x;
      out.emplace_back(xlo - (a_is_lo ? lo_ext : hi_ext), a.y - half,
                       xhi + (a_is_lo ? hi_ext : lo_ext), a.y + half);
    } else {
      const Coord ylo = std::min(a.y, b.y);
      const Coord yhi = std::max(a.y, b.y);
      const bool a_is_lo = a.y < b.y;
      out.emplace_back(a.x - half, ylo - (a_is_lo ? lo_ext : hi_ext),
                       a.x + half, yhi + (a_is_lo ? hi_ext : lo_ext));
    }
  }
  return out;
}

// GCC 12's middle end flags the std::variant reallocation-move path with
// -Wmaybe-uninitialized (it thinks the inactive union alternatives are
// read); the storage is never read before being written. Confining the
// growth instantiation to this function keeps the suppression to one spot.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void Structure::add(Element element) {
  elements.push_back(std::move(element));
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

Structure& Library::add_structure(const std::string& structure_name) {
  LHD_CHECK_MSG(index_.find(structure_name) == index_.end(),
                "duplicate structure " << structure_name);
  index_[structure_name] = structures_.size();
  structures_.push_back(Structure{structure_name, {}});
  return structures_.back();
}

const Structure* Library::find(const std::string& structure_name) const {
  const auto it = index_.find(structure_name);
  return it == index_.end() ? nullptr : &structures_[it->second];
}

Structure* Library::find(const std::string& structure_name) {
  const auto it = index_.find(structure_name);
  return it == index_.end() ? nullptr : &structures_[it->second];
}

std::vector<Rect> Library::flatten_layer(const std::string& top,
                                         std::int16_t layer) const {
  const Structure* s = find(top);
  LHD_CHECK_MSG(s != nullptr, "unknown top structure " << top);
  std::vector<Rect> out;
  flatten_into(*s, layer, Transform{}, 0, out);
  return out;
}

geom::Rect Library::layer_bbox(const std::string& top,
                               std::int16_t layer) const {
  Rect box;
  bool first = true;
  for (const Rect& r : flatten_layer(top, layer)) {
    box = first ? r : box.unite(r);
    first = false;
  }
  return first ? Rect{} : box;
}

void Library::flatten_into(const Structure& s, std::int16_t layer,
                           const Transform& t, int depth,
                           std::vector<Rect>& out) const {
  LHD_CHECK(depth < 64, "reference depth exceeds 64 — likely a cycle");
  for (const Element& el : s.elements) {
    if (const auto* b = std::get_if<Boundary>(&el)) {
      if (b->layer != layer) continue;
      for (const Rect& r : b->polygon.decompose()) out.push_back(t.apply(r));
    } else if (const auto* p = std::get_if<Path>(&el)) {
      if (p->layer != layer) continue;
      for (const Rect& r : p->to_rects()) out.push_back(t.apply(r));
    } else if (const auto* sr = std::get_if<SRef>(&el)) {
      const Structure* child = find(sr->structure);
      LHD_CHECK_MSG(child != nullptr, "SREF to unknown " << sr->structure);
      flatten_into(*child, layer, t.compose(sr->transform), depth + 1, out);
    } else if (const auto* ar = std::get_if<ARef>(&el)) {
      const Structure* child = find(ar->structure);
      LHD_CHECK_MSG(child != nullptr, "AREF to unknown " << ar->structure);
      for (int r = 0; r < ar->rows; ++r) {
        for (int c = 0; c < ar->cols; ++c) {
          Transform cell = ar->transform;
          // Accumulate in int64: c*step alone can pass 2^31 for large
          // arrays even when every individual step is reader-capped.
          const std::int64_t ox =
              static_cast<std::int64_t>(cell.origin.x) +
              static_cast<std::int64_t>(c) * ar->col_step.x +
              static_cast<std::int64_t>(r) * ar->row_step.x;
          const std::int64_t oy =
              static_cast<std::int64_t>(cell.origin.y) +
              static_cast<std::int64_t>(c) * ar->col_step.y +
              static_cast<std::int64_t>(r) * ar->row_step.y;
          LHD_CHECK(fits_coord(ox) && fits_coord(oy),
                    "AREF cell origin overflows 32-bit range");
          cell.origin = {static_cast<Coord>(ox), static_cast<Coord>(oy)};
          flatten_into(*child, layer, t.compose(cell), depth + 1, out);
        }
      }
    }
  }
}

}  // namespace lhd::gds
