#include "lhd/gds/model.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "lhd/util/check.hpp"

namespace lhd::gds {

using geom::Coord;
using geom::Point;
using geom::Rect;

namespace {

constexpr bool fits_coord(std::int64_t v) {
  return v >= std::numeric_limits<Coord>::min() &&
         v <= std::numeric_limits<Coord>::max();
}

}  // namespace

Point Transform::apply(const Point& p) const {
  // int64 intermediates: rotation is magnitude-preserving, but the origin
  // add can leave the 32-bit range (reader-capped inputs still allow
  // |coord| + |origin| to reach 2^31).
  std::int64_t x = p.x, y = p.y;
  if (mirror_x) y = -y;
  switch (angle_deg) {
    case 0: break;
    case 90: {
      const std::int64_t t = x;
      x = -y;
      y = t;
      break;
    }
    case 180:
      x = -x;
      y = -y;
      break;
    case 270: {
      const std::int64_t t = x;
      x = y;
      y = -t;
      break;
    }
    default:
      LHD_CHECK_MSG(false, "unsupported SREF angle " << angle_deg);
  }
  x += origin.x;
  y += origin.y;
  LHD_CHECK(fits_coord(x) && fits_coord(y),
            "transformed coordinate overflows 32-bit range");
  return {static_cast<Coord>(x), static_cast<Coord>(y)};
}

Rect Transform::apply(const Rect& r) const {
  const Point a = apply({r.xlo, r.ylo});
  const Point b = apply({r.xhi, r.yhi});
  return Rect(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
              std::max(a.y, b.y));
}

Transform Transform::inverse() const {
  // T(p) = R p + o with R = rot(angle) ∘ mirror(m), so T⁻¹(p) =
  // R⁻¹ p + R⁻¹(-o). R⁻¹ keeps the mirror bit (reflections are
  // involutions) and negates the rotation — except that expressing
  // M·rot(-a) back in GDS order (mirror first, rotate second) flips the
  // negation again: M·rot(-a) == rot(a)·M.
  Transform inv;
  inv.mirror_x = mirror_x;
  inv.angle_deg = mirror_x ? angle_deg : (360 - angle_deg) % 360;
  Transform rot = inv;  // rotation/mirror part only
  rot.origin = {0, 0};
  // -origin stays in range: |coord| <= 2^31 - 1 implies the negation fits
  // unless origin is exactly INT32_MIN, which apply()'s int64 math plus
  // fits_coord check rejects rather than overflowing.
  const std::int64_t nx = -static_cast<std::int64_t>(origin.x);
  const std::int64_t ny = -static_cast<std::int64_t>(origin.y);
  LHD_CHECK(fits_coord(nx) && fits_coord(ny),
            "transform origin negation overflows 32-bit range");
  inv.origin = rot.apply(Point{static_cast<Coord>(nx), static_cast<Coord>(ny)});
  return inv;
}

Transform Transform::compose(const Transform& inner) const {
  Transform out;
  // Mirror composition in the dihedral group D4: outer ∘ inner.
  out.mirror_x = mirror_x != inner.mirror_x;
  // When the outer transform mirrors, the inner rotation flips handedness.
  const int inner_angle = mirror_x ? (360 - inner.angle_deg) % 360
                                   : inner.angle_deg;
  out.angle_deg = (angle_deg + inner_angle) % 360;
  out.origin = apply(inner.origin);
  return out;
}

std::vector<Rect> Path::to_rects() const {
  LHD_CHECK(width > 0, "path width must be positive");
  LHD_CHECK(points.size() >= 2, "path needs >= 2 points");
  const Coord half = width / 2;
  const Coord ext = (pathtype == 2) ? half : 0;
  std::vector<Rect> out;
  out.reserve(points.size() - 1);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const Point& a = points[i];
    const Point& b = points[i + 1];
    LHD_CHECK(a.x == b.x || a.y == b.y, "path segment not Manhattan");
    // Extend only the free ends; interior joints are already covered by the
    // half-width overlap of perpendicular segments.
    const Coord lo_ext = (i == 0) ? ext : half;
    const Coord hi_ext = (i + 2 == points.size()) ? ext : half;
    if (a.y == b.y) {
      const Coord xlo = std::min(a.x, b.x);
      const Coord xhi = std::max(a.x, b.x);
      const bool a_is_lo = a.x < b.x;
      out.emplace_back(xlo - (a_is_lo ? lo_ext : hi_ext), a.y - half,
                       xhi + (a_is_lo ? hi_ext : lo_ext), a.y + half);
    } else {
      const Coord ylo = std::min(a.y, b.y);
      const Coord yhi = std::max(a.y, b.y);
      const bool a_is_lo = a.y < b.y;
      out.emplace_back(a.x - half, ylo - (a_is_lo ? lo_ext : hi_ext),
                       a.x + half, yhi + (a_is_lo ? hi_ext : lo_ext));
    }
  }
  return out;
}

// GCC 12's middle end flags the std::variant reallocation-move path with
// -Wmaybe-uninitialized (it thinks the inactive union alternatives are
// read); the storage is never read before being written. Confining the
// growth instantiation to this function keeps the suppression to one spot.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void Structure::add(Element element) {
  elements.push_back(std::move(element));
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::vector<Rect> structure_layer_rects(const Structure& s,
                                        std::int16_t layer) {
  std::vector<Rect> out;
  for (const Element& el : s.elements) {
    if (const auto* b = std::get_if<Boundary>(&el)) {
      if (b->layer != layer) continue;
      for (const Rect& r : b->polygon.decompose()) out.push_back(r);
    } else if (const auto* p = std::get_if<Path>(&el)) {
      if (p->layer != layer) continue;
      for (const Rect& r : p->to_rects()) out.push_back(r);
    }
  }
  return out;
}

Structure& Library::add_structure(const std::string& structure_name) {
  LHD_CHECK_MSG(index_.find(structure_name) == index_.end(),
                "duplicate structure " << structure_name);
  index_[structure_name] = structures_.size();
  structures_.push_back(Structure{structure_name, {}});
  return structures_.back();
}

const Structure* Library::find(const std::string& structure_name) const {
  const auto it = index_.find(structure_name);
  return it == index_.end() ? nullptr : &structures_[it->second];
}

Structure* Library::find(const std::string& structure_name) {
  const auto it = index_.find(structure_name);
  return it == index_.end() ? nullptr : &structures_[it->second];
}

std::vector<Rect> Library::flatten_layer(const std::string& top,
                                         std::int16_t layer) const {
  const Structure* s = find(top);
  LHD_CHECK_MSG(s != nullptr, "unknown top structure " << top);
  std::vector<Rect> out;
  flatten_into(*s, layer, Transform{}, 0, out);
  return out;
}

geom::Rect Library::layer_bbox(const std::string& top,
                               std::int16_t layer) const {
  const auto it = index_.find(top);
  LHD_CHECK_MSG(it != index_.end(), "unknown top structure " << top);
  std::vector<char> state(structures_.size(), 0);
  std::vector<char> own(structures_.size(), 0);
  std::vector<Rect> memo(structures_.size());
  return subtree_bbox(it->second, layer, 0, state, memo, own);
}

std::vector<LayerInstance> Library::layer_instances(const std::string& top,
                                                    std::int16_t layer) const {
  const auto it = index_.find(top);
  LHD_CHECK_MSG(it != index_.end(), "unknown top structure " << top);
  // One bbox pass validates every reachable reference and memoizes which
  // subtrees carry layer geometry; the placement walk then prunes empty
  // subtrees without descending into them.
  std::vector<char> state(structures_.size(), 0);
  std::vector<char> own(structures_.size(), 0);
  std::vector<Rect> memo(structures_.size());
  subtree_bbox(it->second, layer, 0, state, memo, own);
  std::vector<LayerInstance> out;
  collect_instances(it->second, layer, Transform{}, 0, own, memo, out);
  return out;
}

geom::Rect Library::subtree_bbox(std::size_t index, std::int16_t layer,
                                 int depth, std::vector<char>& state,
                                 std::vector<geom::Rect>& memo,
                                 std::vector<char>& own_nonempty) const {
  LHD_CHECK(depth < 64, "reference depth exceeds 64 — likely a cycle");
  if (state[index]) return memo[index];
  const Structure& s = structures_[index];
  Rect own;
  for (const Rect& r : structure_layer_rects(s, layer)) own = own.unite(r);
  Rect box = own;
  for (const Element& el : s.elements) {
    if (const auto* sr = std::get_if<SRef>(&el)) {
      const auto it = index_.find(sr->structure);
      LHD_CHECK_MSG(it != index_.end(), "SREF to unknown " << sr->structure);
      const Rect child =
          subtree_bbox(it->second, layer, depth + 1, state, memo,
                       own_nonempty);
      if (!child.empty()) box = box.unite(sr->transform.apply(child));
    } else if (const auto* ar = std::get_if<ARef>(&el)) {
      const auto it = index_.find(ar->structure);
      LHD_CHECK_MSG(it != index_.end(), "AREF to unknown " << ar->structure);
      const Rect child =
          subtree_bbox(it->second, layer, depth + 1, state, memo,
                       own_nonempty);
      if (child.empty() || ar->rows <= 0 || ar->cols <= 0) continue;
      // Cell origins are linear in (row, col), so the union over the whole
      // grid of translated child boxes — and the coordinate extremes the
      // flatten path range-checks cell by cell — are attained at the four
      // corner cells. Uniting just those is exact and O(1) per AREF.
      for (const int r : {0, ar->rows - 1}) {
        for (const int c : {0, ar->cols - 1}) {
          Transform cell = ar->transform;
          const std::int64_t ox = static_cast<std::int64_t>(cell.origin.x) +
                                  static_cast<std::int64_t>(c) * ar->col_step.x +
                                  static_cast<std::int64_t>(r) * ar->row_step.x;
          const std::int64_t oy = static_cast<std::int64_t>(cell.origin.y) +
                                  static_cast<std::int64_t>(c) * ar->col_step.y +
                                  static_cast<std::int64_t>(r) * ar->row_step.y;
          LHD_CHECK(fits_coord(ox) && fits_coord(oy),
                    "AREF cell origin overflows 32-bit range");
          cell.origin = {static_cast<Coord>(ox), static_cast<Coord>(oy)};
          box = box.unite(cell.apply(child));
        }
      }
    }
  }
  state[index] = 1;
  own_nonempty[index] = own.empty() ? 0 : 1;
  memo[index] = box;
  return box;
}

void Library::collect_instances(std::size_t index, std::int16_t layer,
                                const Transform& t, int depth,
                                const std::vector<char>& own_nonempty,
                                const std::vector<geom::Rect>& tree_bbox,
                                std::vector<LayerInstance>& out) const {
  LHD_CHECK(depth < 64, "reference depth exceeds 64 — likely a cycle");
  if (tree_bbox[index].empty()) return;  // nothing on the layer below here
  if (own_nonempty[index]) out.push_back({index, t});
  const Structure& s = structures_[index];
  for (const Element& el : s.elements) {
    if (const auto* sr = std::get_if<SRef>(&el)) {
      collect_instances(index_.at(sr->structure), layer,
                        t.compose(sr->transform), depth + 1, own_nonempty,
                        tree_bbox, out);
    } else if (const auto* ar = std::get_if<ARef>(&el)) {
      const std::size_t child = index_.at(ar->structure);
      if (tree_bbox[child].empty()) continue;  // skip the grid expansion too
      for (int r = 0; r < ar->rows; ++r) {
        for (int c = 0; c < ar->cols; ++c) {
          Transform cell = ar->transform;
          const std::int64_t ox = static_cast<std::int64_t>(cell.origin.x) +
                                  static_cast<std::int64_t>(c) * ar->col_step.x +
                                  static_cast<std::int64_t>(r) * ar->row_step.x;
          const std::int64_t oy = static_cast<std::int64_t>(cell.origin.y) +
                                  static_cast<std::int64_t>(c) * ar->col_step.y +
                                  static_cast<std::int64_t>(r) * ar->row_step.y;
          LHD_CHECK(fits_coord(ox) && fits_coord(oy),
                    "AREF cell origin overflows 32-bit range");
          cell.origin = {static_cast<Coord>(ox), static_cast<Coord>(oy)};
          collect_instances(child, layer, t.compose(cell), depth + 1,
                            own_nonempty, tree_bbox, out);
        }
      }
    }
  }
}

void Library::flatten_into(const Structure& s, std::int16_t layer,
                           const Transform& t, int depth,
                           std::vector<Rect>& out) const {
  LHD_CHECK(depth < 64, "reference depth exceeds 64 — likely a cycle");
  for (const Element& el : s.elements) {
    if (const auto* b = std::get_if<Boundary>(&el)) {
      if (b->layer != layer) continue;
      for (const Rect& r : b->polygon.decompose()) out.push_back(t.apply(r));
    } else if (const auto* p = std::get_if<Path>(&el)) {
      if (p->layer != layer) continue;
      for (const Rect& r : p->to_rects()) out.push_back(t.apply(r));
    } else if (const auto* sr = std::get_if<SRef>(&el)) {
      const Structure* child = find(sr->structure);
      LHD_CHECK_MSG(child != nullptr, "SREF to unknown " << sr->structure);
      flatten_into(*child, layer, t.compose(sr->transform), depth + 1, out);
    } else if (const auto* ar = std::get_if<ARef>(&el)) {
      const Structure* child = find(ar->structure);
      LHD_CHECK_MSG(child != nullptr, "AREF to unknown " << ar->structure);
      for (int r = 0; r < ar->rows; ++r) {
        for (int c = 0; c < ar->cols; ++c) {
          Transform cell = ar->transform;
          // Accumulate in int64: c*step alone can pass 2^31 for large
          // arrays even when every individual step is reader-capped.
          const std::int64_t ox =
              static_cast<std::int64_t>(cell.origin.x) +
              static_cast<std::int64_t>(c) * ar->col_step.x +
              static_cast<std::int64_t>(r) * ar->row_step.x;
          const std::int64_t oy =
              static_cast<std::int64_t>(cell.origin.y) +
              static_cast<std::int64_t>(c) * ar->col_step.y +
              static_cast<std::int64_t>(r) * ar->row_step.y;
          LHD_CHECK(fits_coord(ox) && fits_coord(oy),
                    "AREF cell origin overflows 32-bit range");
          cell.origin = {static_cast<Coord>(ox), static_cast<Coord>(oy)};
          flatten_into(*child, layer, t.compose(cell), depth + 1, out);
        }
      }
    }
  }
}

}  // namespace lhd::gds
