#pragma once
// GDSII object model: library -> structures -> elements, plus hierarchy
// flattening into per-layer rectangle sets.
//
// The model supports the subset of GDSII the benchmarks exercise: BOUNDARY
// (Manhattan), PATH (Manhattan centre-line, pathtype 0/2), SREF and AREF
// with axis-aligned transforms (angle ∈ {0,90,180,270}, optional X-axis
// reflection, mag = 1).

#include <deque>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "lhd/geom/polygon.hpp"

namespace lhd::gds {

/// Axis-aligned structure-reference transform. GDS order of operations:
/// reflect about the x axis (if mirror_x), rotate CCW by angle, translate
/// to origin.
struct Transform {
  bool mirror_x = false;
  int angle_deg = 0;  // one of {0, 90, 180, 270}
  geom::Point origin;

  geom::Point apply(const geom::Point& p) const;
  /// Axis-aligned rectangles stay axis-aligned under this transform group.
  geom::Rect apply(const geom::Rect& r) const;
  /// Composition: (this ∘ inner)(p) == this.apply(inner.apply(p)).
  Transform compose(const Transform& inner) const;
};

struct Boundary {
  std::int16_t layer = 0;
  std::int16_t datatype = 0;
  geom::Polygon polygon;
};

struct Path {
  std::int16_t layer = 0;
  std::int16_t datatype = 0;
  std::int16_t pathtype = 0;  // 0 = flush ends, 2 = extended by width/2
  geom::Coord width = 0;
  std::vector<geom::Point> points;  // Manhattan centre-line

  /// Expand the centre-line into rectangles (one per segment, plus pathtype-2
  /// end extensions folded into the segment rects).
  std::vector<geom::Rect> to_rects() const;
};

struct SRef {
  std::string structure;
  Transform transform;
};

struct ARef {
  std::string structure;
  Transform transform;
  int cols = 1, rows = 1;
  geom::Point col_step;  // displacement per column
  geom::Point row_step;  // displacement per row
};

using Element = std::variant<Boundary, Path, SRef, ARef>;

struct Structure {
  std::string name;
  std::vector<Element> elements;

  /// Append an element. Use this instead of `elements.push_back` — it
  /// keeps the vector<variant> growth path instantiated in exactly one
  /// translation unit (model.cpp), where a GCC 12 -Wmaybe-uninitialized
  /// false positive on std::variant reallocation is suppressed once with
  /// a scoped pragma instead of leaking into every caller's build.
  void add(Element element);
};

class Library {
 public:
  std::string name = "LHD";
  /// Database unit in user units (1e-3: 1 dbu = 0.001 um) and in metres
  /// (1e-9: 1 dbu = 1 nm) — the library-wide convention.
  double dbu_in_user = 1e-3;
  double dbu_in_meters = 1e-9;

  /// Add a structure. The returned reference is stable for the lifetime of
  /// the Library (structures are stored in a deque).
  Structure& add_structure(const std::string& name);
  const Structure* find(const std::string& name) const;
  Structure* find(const std::string& name);
  const std::deque<Structure>& structures() const { return structures_; }

  /// Flatten `top` (recursively resolving SREF/AREF) and return all shapes
  /// on `layer` as rectangles in top-level coordinates. Throws lhd::Error on
  /// unknown structure references or reference cycles.
  std::vector<geom::Rect> flatten_layer(const std::string& top,
                                        std::int16_t layer) const;

  /// Bounding box of the flattened layer (empty rect if no shapes).
  geom::Rect layer_bbox(const std::string& top, std::int16_t layer) const;

 private:
  void flatten_into(const Structure& s, std::int16_t layer,
                    const Transform& t, int depth,
                    std::vector<geom::Rect>& out) const;

  std::deque<Structure> structures_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace lhd::gds
