#pragma once
// GDSII object model: library -> structures -> elements, plus hierarchy
// flattening into per-layer rectangle sets.
//
// The model supports the subset of GDSII the benchmarks exercise: BOUNDARY
// (Manhattan), PATH (Manhattan centre-line, pathtype 0/2), SREF and AREF
// with axis-aligned transforms (angle ∈ {0,90,180,270}, optional X-axis
// reflection, mag = 1).

#include <deque>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "lhd/geom/polygon.hpp"

namespace lhd::gds {

/// Axis-aligned structure-reference transform. GDS order of operations:
/// reflect about the x axis (if mirror_x), rotate CCW by angle, translate
/// to origin.
struct Transform {
  bool mirror_x = false;
  int angle_deg = 0;  // one of {0, 90, 180, 270}
  geom::Point origin;

  geom::Point apply(const geom::Point& p) const;
  /// Axis-aligned rectangles stay axis-aligned under this transform group.
  /// Maps the *cell set* [xlo,xhi)×[ylo,yhi) exactly: the image of a
  /// half-open rect under any D4 element is again half-open with the
  /// mapped corners reordered, so apply(a.intersect(b)) ==
  /// apply(a).intersect(apply(b)) holds exactly.
  geom::Rect apply(const geom::Rect& r) const;
  /// Composition: (this ∘ inner)(p) == this.apply(inner.apply(p)).
  Transform compose(const Transform& inner) const;
  /// Group inverse: inverse().apply(apply(p)) == p. Like apply(), the
  /// int64 intermediates are range-checked, so inverting a transform whose
  /// origin magnitude approaches the coordinate cap stays exact or throws.
  Transform inverse() const;

  friend bool operator==(const Transform&, const Transform&) = default;
};

struct Boundary {
  std::int16_t layer = 0;
  std::int16_t datatype = 0;
  geom::Polygon polygon;
};

struct Path {
  std::int16_t layer = 0;
  std::int16_t datatype = 0;
  std::int16_t pathtype = 0;  // 0 = flush ends, 2 = extended by width/2
  geom::Coord width = 0;
  std::vector<geom::Point> points;  // Manhattan centre-line

  /// Expand the centre-line into rectangles (one per segment, plus pathtype-2
  /// end extensions folded into the segment rects).
  std::vector<geom::Rect> to_rects() const;
};

struct SRef {
  std::string structure;
  Transform transform;
};

struct ARef {
  std::string structure;
  Transform transform;
  int cols = 1, rows = 1;
  geom::Point col_step;  // displacement per column
  geom::Point row_step;  // displacement per row
};

using Element = std::variant<Boundary, Path, SRef, ARef>;

struct Structure {
  std::string name;
  std::vector<Element> elements;

  /// Append an element. Use this instead of `elements.push_back` — it
  /// keeps the vector<variant> growth path instantiated in exactly one
  /// translation unit (model.cpp), where a GCC 12 -Wmaybe-uninitialized
  /// false positive on std::variant reallocation is suppressed once with
  /// a scoped pragma instead of leaking into every caller's build.
  void add(Element element);
};

/// A structure's *own* shapes (BOUNDARY/PATH, no reference expansion) on
/// `layer`, decomposed into rectangles in the structure's local frame —
/// the per-cell geometry the hierarchical scan indexes once per distinct
/// structure. flatten_layer() emits exactly these rects (transformed), so
/// the two views of a cell's geometry can never diverge.
std::vector<geom::Rect> structure_layer_rects(const Structure& s,
                                              std::int16_t layer);

/// One placement of a structure's own geometry in top-level coordinates:
/// the unit the hierarchical scan replays. `structure` indexes into
/// Library::structures(); `transform` maps the structure's local frame to
/// the top frame (every SREF/AREF hop composed, AREF cells expanded).
struct LayerInstance {
  std::size_t structure = 0;
  Transform transform;
};

class Library {
 public:
  std::string name = "LHD";
  /// Database unit in user units (1e-3: 1 dbu = 0.001 um) and in metres
  /// (1e-9: 1 dbu = 1 nm) — the library-wide convention.
  double dbu_in_user = 1e-3;
  double dbu_in_meters = 1e-9;

  /// Add a structure. The returned reference is stable for the lifetime of
  /// the Library (structures are stored in a deque).
  Structure& add_structure(const std::string& name);
  const Structure* find(const std::string& name) const;
  Structure* find(const std::string& name);
  const std::deque<Structure>& structures() const { return structures_; }

  /// Flatten `top` (recursively resolving SREF/AREF) and return all shapes
  /// on `layer` as rectangles in top-level coordinates. Throws lhd::Error on
  /// unknown structure references or reference cycles.
  std::vector<geom::Rect> flatten_layer(const std::string& top,
                                        std::int16_t layer) const;

  /// Bounding box of the flattened layer (empty rect if no shapes).
  /// Computed hierarchically from memoized per-structure bounding boxes —
  /// O(structures + references), *not* O(flattened rects): the layer is
  /// never materialized. Axis-aligned transforms commute with bounding
  /// boxes and an AREF's cell origins are linear in (row, col), so the
  /// result is exactly the bbox flatten_layer() would produce (asserted by
  /// the LayerBboxMatchesFlattenedReference test).
  geom::Rect layer_bbox(const std::string& top, std::int16_t layer) const;

  /// Every placement of own-geometry on `layer` reachable from `top`:
  /// SREF/AREF hops composed into one local→top transform per visit,
  /// structures with no own shapes on the layer omitted, subtrees whose
  /// memoized bbox is empty on the layer pruned without descending.
  /// flatten_layer(top, layer) equals the union over these instances of
  /// `instance.transform.apply(structure_layer_rects(structure, layer))`.
  /// Throws lhd::Error on unknown references or reference cycles.
  std::vector<LayerInstance> layer_instances(const std::string& top,
                                             std::int16_t layer) const;

 private:
  void flatten_into(const Structure& s, std::int16_t layer,
                    const Transform& t, int depth,
                    std::vector<geom::Rect>& out) const;
  geom::Rect subtree_bbox(std::size_t index, std::int16_t layer, int depth,
                          std::vector<char>& state,
                          std::vector<geom::Rect>& memo,
                          std::vector<char>& own_nonempty) const;
  void collect_instances(std::size_t index, std::int16_t layer,
                         const Transform& t, int depth,
                         const std::vector<char>& own_nonempty,
                         const std::vector<geom::Rect>& tree_bbox,
                         std::vector<LayerInstance>& out) const;

  std::deque<Structure> structures_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace lhd::gds
