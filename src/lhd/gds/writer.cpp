#include "lhd/gds/writer.hpp"

#include <fstream>

#include "lhd/gds/records.hpp"
#include "lhd/util/check.hpp"

namespace lhd::gds {

namespace {

class RecordWriter {
 public:
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

  void record(RecordType type, DataType dtype,
              const std::vector<std::uint8_t>& payload = {}) {
    const std::size_t total = payload.size() + 4;
    LHD_CHECK(total <= 0xFFFF, "GDS record too long");
    LHD_CHECK(payload.size() % 2 == 0, "GDS payload must be even-sized");
    append_u16(bytes_, static_cast<std::uint16_t>(total));
    bytes_.push_back(static_cast<std::uint8_t>(type));
    bytes_.push_back(static_cast<std::uint8_t>(dtype));
    bytes_.insert(bytes_.end(), payload.begin(), payload.end());
  }

  void i16_record(RecordType type, std::int16_t v) {
    std::vector<std::uint8_t> p;
    append_i16(p, v);
    record(type, DataType::Int16, p);
  }

  void i32_record(RecordType type, std::int32_t v) {
    std::vector<std::uint8_t> p;
    append_i32(p, v);
    record(type, DataType::Int32, p);
  }

  void string_record(RecordType type, const std::string& s) {
    std::vector<std::uint8_t> p(s.begin(), s.end());
    if (p.size() % 2 != 0) p.push_back(0);  // pad to even length
    record(type, DataType::Ascii, p);
  }

  void xy_record(const std::vector<geom::Point>& pts) {
    std::vector<std::uint8_t> p;
    p.reserve(pts.size() * 8);
    for (const auto& pt : pts) {
      append_i32(p, pt.x);
      append_i32(p, pt.y);
    }
    record(RecordType::Xy, DataType::Int32, p);
  }

  void timestamp_record(RecordType type) {
    // Fixed timestamp (2017-10-01 00:00:00 twice) for byte-reproducible
    // output; GDS requires 12 int16s: modification + access time.
    std::vector<std::uint8_t> p;
    const std::int16_t t[6] = {2017, 10, 1, 0, 0, 0};
    for (int rep = 0; rep < 2; ++rep) {
      for (const std::int16_t v : t) append_i16(p, v);
    }
    record(type, DataType::Int16, p);
  }

  void transform_records(const Transform& t) {
    if (t.mirror_x) {
      std::vector<std::uint8_t> p;
      append_u16(p, 0x8000);  // bit 0 (MSB-first) = reflection
      record(RecordType::STrans, DataType::BitArray, p);
    } else if (t.angle_deg != 0) {
      std::vector<std::uint8_t> p;
      append_u16(p, 0);
      record(RecordType::STrans, DataType::BitArray, p);
    }
    if (t.angle_deg != 0) {
      std::vector<std::uint8_t> p;
      append_real64(p, static_cast<double>(t.angle_deg));
      record(RecordType::Angle, DataType::Real64, p);
    }
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

void write_element(RecordWriter& w, const Element& el) {
  if (const auto* b = std::get_if<Boundary>(&el)) {
    w.record(RecordType::Boundary, DataType::None);
    w.i16_record(RecordType::Layer, b->layer);
    w.i16_record(RecordType::DataType, b->datatype);
    std::vector<geom::Point> ring = b->polygon.ring();
    ring.push_back(ring.front());  // GDS closes the ring explicitly
    w.xy_record(ring);
  } else if (const auto* p = std::get_if<Path>(&el)) {
    w.record(RecordType::Path, DataType::None);
    w.i16_record(RecordType::Layer, p->layer);
    w.i16_record(RecordType::DataType, p->datatype);
    if (p->pathtype != 0) w.i16_record(RecordType::PathType, p->pathtype);
    w.i32_record(RecordType::Width, p->width);
    w.xy_record(p->points);
  } else if (const auto* sr = std::get_if<SRef>(&el)) {
    w.record(RecordType::SRef, DataType::None);
    w.string_record(RecordType::SName, sr->structure);
    w.transform_records(sr->transform);
    w.xy_record({sr->transform.origin});
  } else if (const auto* ar = std::get_if<ARef>(&el)) {
    w.record(RecordType::ARef, DataType::None);
    w.string_record(RecordType::SName, ar->structure);
    w.transform_records(ar->transform);
    {
      std::vector<std::uint8_t> colrow;
      append_i16(colrow, static_cast<std::int16_t>(ar->cols));
      append_i16(colrow, static_cast<std::int16_t>(ar->rows));
      w.record(RecordType::ColRow, DataType::Int16, colrow);
    }
    // AREF XY: origin, origin + cols*col_step, origin + rows*row_step.
    const geom::Point o = ar->transform.origin;
    w.xy_record({o,
                 {o.x + ar->cols * ar->col_step.x,
                  o.y + ar->cols * ar->col_step.y},
                 {o.x + ar->rows * ar->row_step.x,
                  o.y + ar->rows * ar->row_step.y}});
  }
  w.record(RecordType::EndEl, DataType::None);
}

}  // namespace

std::vector<std::uint8_t> write_bytes(const Library& lib) {
  RecordWriter w;
  {
    std::vector<std::uint8_t> p;
    append_i16(p, 600);  // stream version 6
    w.record(RecordType::Header, DataType::Int16, p);
  }
  w.timestamp_record(RecordType::BgnLib);
  w.string_record(RecordType::LibName, lib.name);
  {
    std::vector<std::uint8_t> p;
    append_real64(p, lib.dbu_in_user);
    append_real64(p, lib.dbu_in_meters);
    w.record(RecordType::Units, DataType::Real64, p);
  }
  for (const Structure& s : lib.structures()) {
    w.timestamp_record(RecordType::BgnStr);
    w.string_record(RecordType::StrName, s.name);
    for (const Element& el : s.elements) write_element(w, el);
    w.record(RecordType::EndStr, DataType::None);
  }
  w.record(RecordType::EndLib, DataType::None);
  return w.take();
}

void write_file(const Library& lib, const std::string& path) {
  const auto bytes = write_bytes(lib);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LHD_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  LHD_CHECK_MSG(out.good(), "write to " << path << " failed");
}

}  // namespace lhd::gds
