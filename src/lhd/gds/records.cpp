#include "lhd/gds/records.hpp"

#include <cmath>

#include "lhd/util/check.hpp"

namespace lhd::gds {

std::int16_t Record::as_i16(std::size_t index) const {
  LHD_CHECK_MSG(payload.size() >= (index + 1) * 2,
                record_name(type) << " payload too short for i16[" << index
                                  << "]");
  const std::uint8_t* p = payload.data() + index * 2;
  return static_cast<std::int16_t>(read_u16(p));
}

std::int32_t Record::as_i32(std::size_t index) const {
  LHD_CHECK_MSG(payload.size() >= (index + 1) * 4,
                record_name(type) << " payload too short for i32[" << index
                                  << "]");
  return read_i32(payload.data() + index * 4);
}

double Record::as_real64(std::size_t index) const {
  LHD_CHECK_MSG(payload.size() >= (index + 1) * 8,
                record_name(type) << " payload too short for real64[" << index
                                  << "]");
  const std::uint8_t* p = payload.data() + index * 8;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits = (bits << 8) | p[i];
  return decode_real64(bits);
}

std::string Record::as_string() const {
  std::string s(payload.begin(), payload.end());
  // GDS pads odd-length strings with a trailing NUL.
  while (!s.empty() && s.back() == '\0') s.pop_back();
  return s;
}

const char* record_name(RecordType type) {
  switch (type) {
    case RecordType::Header: return "HEADER";
    case RecordType::BgnLib: return "BGNLIB";
    case RecordType::LibName: return "LIBNAME";
    case RecordType::Units: return "UNITS";
    case RecordType::EndLib: return "ENDLIB";
    case RecordType::BgnStr: return "BGNSTR";
    case RecordType::StrName: return "STRNAME";
    case RecordType::EndStr: return "ENDSTR";
    case RecordType::Boundary: return "BOUNDARY";
    case RecordType::Path: return "PATH";
    case RecordType::SRef: return "SREF";
    case RecordType::ARef: return "AREF";
    case RecordType::Layer: return "LAYER";
    case RecordType::DataType: return "DATATYPE";
    case RecordType::Width: return "WIDTH";
    case RecordType::Xy: return "XY";
    case RecordType::EndEl: return "ENDEL";
    case RecordType::SName: return "SNAME";
    case RecordType::ColRow: return "COLROW";
    case RecordType::STrans: return "STRANS";
    case RecordType::Mag: return "MAG";
    case RecordType::Angle: return "ANGLE";
    case RecordType::PathType: return "PATHTYPE";
  }
  return "UNKNOWN";
}

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void append_i16(std::vector<std::uint8_t>& out, std::int16_t v) {
  append_u16(out, static_cast<std::uint16_t>(v));
}

void append_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  out.push_back(static_cast<std::uint8_t>(u >> 24));
  out.push_back(static_cast<std::uint8_t>((u >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((u >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(u & 0xFF));
}

std::uint16_t read_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::int32_t read_i32(const std::uint8_t* p) {
  const std::uint32_t u = (static_cast<std::uint32_t>(p[0]) << 24) |
                          (static_cast<std::uint32_t>(p[1]) << 16) |
                          (static_cast<std::uint32_t>(p[2]) << 8) |
                          static_cast<std::uint32_t>(p[3]);
  return static_cast<std::int32_t>(u);
}

std::uint64_t encode_real64(double value) {
  // inf would spin the base-16 normalization loop forever; NaN would fall
  // through both loops and feed llround undefined input.
  LHD_CHECK(std::isfinite(value), "real64 value must be finite");
  if (value == 0.0) return 0;
  std::uint64_t sign = 0;
  if (value < 0) {
    sign = 1ULL << 63;
    value = -value;
  }
  // Normalize mantissa into [1/16, 1) with exponent base 16.
  int exp16 = 0;
  while (value >= 1.0) {
    value /= 16.0;
    ++exp16;
  }
  while (value < 1.0 / 16.0) {
    value *= 16.0;
    --exp16;
  }
  LHD_CHECK(exp16 + 64 >= 0 && exp16 + 64 < 128, "real64 exponent overflow");
  const auto mantissa =
      static_cast<std::uint64_t>(std::llround(value * 72057594037927936.0));
  // 2^56; rounding can push the mantissa to exactly 2^56 — renormalize.
  if (mantissa >> 56 != 0) {
    return sign | (static_cast<std::uint64_t>(exp16 + 65) << 56) |
           (mantissa >> 4);
  }
  return sign | (static_cast<std::uint64_t>(exp16 + 64) << 56) | mantissa;
}

double decode_real64(std::uint64_t bits) {
  if ((bits & ~(1ULL << 63)) == 0) return 0.0;
  const bool negative = (bits >> 63) != 0;
  const int exp16 = static_cast<int>((bits >> 56) & 0x7F) - 64;
  const std::uint64_t mantissa = bits & 0x00FFFFFFFFFFFFFFULL;
  double value =
      static_cast<double>(mantissa) / 72057594037927936.0;  // / 2^56
  value *= std::pow(16.0, exp16);
  return negative ? -value : value;
}

void append_real64(std::vector<std::uint8_t>& out, double value) {
  const std::uint64_t bits = encode_real64(value);
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((bits >> (i * 8)) & 0xFF));
  }
}

}  // namespace lhd::gds
