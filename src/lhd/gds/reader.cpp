#include "lhd/gds/reader.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "lhd/util/bounded.hpp"
#include "lhd/util/check.hpp"

namespace lhd::gds {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& msg) {
  std::ostringstream os;
  os << "GDS parse error at byte " << offset << ": " << msg;
  throw ParseError(os.str());
}

// Hostile-input bounds. Coordinates and path widths are capped well below
// INT32_MAX so that downstream arithmetic (transform rotation + origin
// add, path half-width extension) stays inside int64 intermediates and can
// be range-checked before narrowing; the AREF cell cap bounds the
// flatten-time expansion a single record can demand.
constexpr geom::Coord kMaxAbsCoord = 1 << 30;
constexpr geom::Coord kMaxPathWidth = 1 << 30;
constexpr std::int64_t kMaxARefCells = 1 << 20;

/// Cursor over the record sequence with one-record lookahead.
class RecordCursor {
 public:
  explicit RecordCursor(std::vector<Record> records)
      : records_(std::move(records)) {}

  bool done() const { return pos_ >= records_.size(); }
  const Record& peek() const {
    if (done()) throw ParseError("unexpected end of GDS record stream");
    return records_[pos_];
  }
  const Record& next() {
    const Record& r = peek();
    ++pos_;
    return r;
  }
  const Record& expect(RecordType type) {
    const Record& r = next();
    if (r.type != type) {
      std::ostringstream os;
      os << "expected " << record_name(type) << ", got "
         << record_name(r.type);
      throw ParseError(os.str());
    }
    return r;
  }
  bool accept(RecordType type) {
    if (!done() && peek().type == type) {
      ++pos_;
      return true;
    }
    return false;
  }

 private:
  std::vector<Record> records_;
  std::size_t pos_ = 0;
};

std::vector<geom::Point> parse_xy(const Record& r) {
  if (r.payload.size() % 8 != 0) {
    throw ParseError("XY payload not a multiple of 8 bytes");
  }
  std::vector<geom::Point> pts;
  // A GDS record length is 16-bit, so a well-formed XY payload can never
  // claim more than 2^16 / 8 points — cap the allocation there.
  constexpr std::uint64_t kMaxXYPoints = (1u << 16) / 8;
  lhd::bounded_reserve(pts, r.payload.size() / 8, kMaxXYPoints);
  for (std::size_t i = 0; i + 8 <= r.payload.size(); i += 8) {
    const geom::Point p{read_i32(r.payload.data() + i),
                        read_i32(r.payload.data() + i + 4)};
    if (p.x < -kMaxAbsCoord || p.x > kMaxAbsCoord || p.y < -kMaxAbsCoord ||
        p.y > kMaxAbsCoord) {
      throw ParseError("XY coordinate magnitude exceeds 2^30");
    }
    pts.push_back(p);
  }
  return pts;
}

Transform parse_transform(RecordCursor& cur) {
  Transform t;
  if (!cur.done() && cur.peek().type == RecordType::STrans) {
    const Record& st = cur.next();
    if (st.payload.size() != 2) throw ParseError("STRANS payload size != 2");
    const std::uint16_t bits = read_u16(st.payload.data());
    t.mirror_x = (bits & 0x8000) != 0;
    if (bits & 0x0006) {
      throw ParseError("absolute mag/angle STRANS flags unsupported");
    }
  }
  if (!cur.done() && cur.peek().type == RecordType::Mag) {
    const double mag = cur.next().as_real64();
    if (std::abs(mag - 1.0) > 1e-9) {
      throw ParseError("only MAG == 1 is supported");
    }
  }
  if (!cur.done() && cur.peek().type == RecordType::Angle) {
    const double angle = cur.next().as_real64();
    const long rounded = std::lround(angle);
    if (std::abs(angle - static_cast<double>(rounded)) > 1e-9 ||
        rounded % 90 != 0) {
      throw ParseError("only multiples of 90 degrees are supported");
    }
    t.angle_deg = static_cast<int>(((rounded % 360) + 360) % 360);
  }
  return t;
}

Element parse_boundary(RecordCursor& cur) {
  Boundary b;
  b.layer = cur.expect(RecordType::Layer).as_i16();
  b.datatype = cur.expect(RecordType::DataType).as_i16();
  auto pts = parse_xy(cur.expect(RecordType::Xy));
  if (pts.size() < 4) throw ParseError("BOUNDARY with < 4 points");
  try {
    b.polygon = geom::Polygon(std::move(pts));
  } catch (const Error& e) {
    throw ParseError(std::string("invalid BOUNDARY polygon: ") + e.what());
  }
  cur.expect(RecordType::EndEl);
  return b;
}

Element parse_path(RecordCursor& cur) {
  Path p;
  p.layer = cur.expect(RecordType::Layer).as_i16();
  p.datatype = cur.expect(RecordType::DataType).as_i16();
  if (!cur.done() && cur.peek().type == RecordType::PathType) {
    p.pathtype = cur.next().as_i16();
    if (p.pathtype != 0 && p.pathtype != 2) {
      throw ParseError("only PATHTYPE 0/2 supported");
    }
  }
  p.width = cur.expect(RecordType::Width).as_i32();
  if (p.width <= 0) throw ParseError("PATH width must be positive");
  if (p.width > kMaxPathWidth) {
    throw ParseError("PATH width exceeds 2^30");
  }
  p.points = parse_xy(cur.expect(RecordType::Xy));
  if (p.points.size() < 2) throw ParseError("PATH with < 2 points");
  cur.expect(RecordType::EndEl);
  return p;
}

Element parse_sref(RecordCursor& cur) {
  SRef s;
  s.structure = cur.expect(RecordType::SName).as_string();
  s.transform = parse_transform(cur);
  const auto pts = parse_xy(cur.expect(RecordType::Xy));
  if (pts.size() != 1) throw ParseError("SREF XY must have 1 point");
  s.transform.origin = pts[0];
  cur.expect(RecordType::EndEl);
  return s;
}

Element parse_aref(RecordCursor& cur) {
  ARef a;
  a.structure = cur.expect(RecordType::SName).as_string();
  a.transform = parse_transform(cur);
  const Record& colrow = cur.expect(RecordType::ColRow);
  a.cols = colrow.as_i16(0);
  a.rows = colrow.as_i16(1);
  if (a.cols <= 0 || a.rows <= 0) throw ParseError("AREF with non-positive COLROW");
  if (static_cast<std::int64_t>(a.cols) * a.rows > kMaxARefCells) {
    throw ParseError("AREF expands to more than 2^20 cells");
  }
  const auto pts = parse_xy(cur.expect(RecordType::Xy));
  if (pts.size() != 3) throw ParseError("AREF XY must have 3 points");
  a.transform.origin = pts[0];
  // Step math in int64: with |coord| <= 2^30 the corner displacement can
  // reach 2^31, which overflows the int32 subtraction.
  const auto step = [](geom::Coord hi, geom::Coord lo,
                       int n) -> geom::Coord {
    const std::int64_t d =
        (static_cast<std::int64_t>(hi) - static_cast<std::int64_t>(lo)) / n;
    if (d < -kMaxAbsCoord || d > kMaxAbsCoord) {
      throw ParseError("AREF step magnitude exceeds 2^30");
    }
    return static_cast<geom::Coord>(d);
  };
  a.col_step = {step(pts[1].x, pts[0].x, a.cols),
                step(pts[1].y, pts[0].y, a.cols)};
  a.row_step = {step(pts[2].x, pts[0].x, a.rows),
                step(pts[2].y, pts[0].y, a.rows)};
  cur.expect(RecordType::EndEl);
  return a;
}

Structure parse_structure(RecordCursor& cur) {
  Structure s;
  s.name = cur.expect(RecordType::StrName).as_string();
  if (s.name.empty()) throw ParseError("empty STRNAME");
  for (;;) {
    const Record& r = cur.next();
    switch (r.type) {
      case RecordType::EndStr: return s;
      case RecordType::Boundary: s.add(parse_boundary(cur)); break;
      case RecordType::Path: s.add(parse_path(cur)); break;
      case RecordType::SRef: s.add(parse_sref(cur)); break;
      case RecordType::ARef: s.add(parse_aref(cur)); break;
      default: {
        std::ostringstream os;
        os << "unexpected " << record_name(r.type) << " inside structure";
        throw ParseError(os.str());
      }
    }
  }
}

}  // namespace

std::vector<Record> scan_records(const std::vector<std::uint8_t>& bytes) {
  std::vector<Record> records;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (pos + 4 > bytes.size()) fail(pos, "truncated record header");
    const std::uint16_t total = read_u16(bytes.data() + pos);
    if (total < 4) fail(pos, "record length < 4");
    if (total % 2 != 0) fail(pos, "odd record length");
    if (pos + total > bytes.size()) fail(pos, "record overruns stream");
    Record r;
    r.type = static_cast<RecordType>(bytes[pos + 2]);
    r.data_type = static_cast<DataType>(bytes[pos + 3]);
    r.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos) + 4,
                     bytes.begin() + static_cast<std::ptrdiff_t>(pos) + total);
    const bool is_endlib = r.type == RecordType::EndLib;
    records.push_back(std::move(r));
    pos += total;
    if (is_endlib) break;  // ignore tape padding after ENDLIB
  }
  return records;
}

Library read_bytes(const std::vector<std::uint8_t>& bytes) {
  RecordCursor cur(scan_records(bytes));
  cur.expect(RecordType::Header);
  cur.expect(RecordType::BgnLib);
  Library lib;
  lib.name = cur.expect(RecordType::LibName).as_string();
  const Record& units = cur.expect(RecordType::Units);
  lib.dbu_in_user = units.as_real64(0);
  lib.dbu_in_meters = units.as_real64(1);
  if (!std::isfinite(lib.dbu_in_user) || !std::isfinite(lib.dbu_in_meters)) {
    // A hostile excess-64 exponent decodes to +/-inf; writing it back
    // would never terminate encode_real64's normalization loop.
    throw ParseError("non-finite UNITS");
  }
  if (lib.dbu_in_user <= 0 || lib.dbu_in_meters <= 0) {
    throw ParseError("non-positive UNITS");
  }
  for (;;) {
    const Record& r = cur.next();
    if (r.type == RecordType::EndLib) break;
    if (r.type != RecordType::BgnStr) {
      std::ostringstream os;
      os << "expected BGNSTR or ENDLIB, got " << record_name(r.type);
      throw ParseError(os.str());
    }
    Structure parsed = parse_structure(cur);
    Structure& dest = lib.add_structure(parsed.name);
    dest.elements = std::move(parsed.elements);
  }
  return lib;
}

Library read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LHD_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return read_bytes(bytes);
}

}  // namespace lhd::gds
