#include "lhd/exec/registry.hpp"

#include <atomic>
#include <cstdlib>

#include "lhd/exec/backends.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/log.hpp"

namespace lhd::exec {

namespace {

/// nullptr = no programmatic override.
std::atomic<const ExecBackend*> g_backend_override{nullptr};

/// Env (then compiled) default, resolved once on first use — the same
/// warn-and-fallback shape as LHD_NN_KERNEL: a deployment typo degrades
/// to the shipped backend instead of aborting.
const ExecBackend& env_default_backend() {
  static const ExecBackend* const backend = [] {
    const char* value = std::getenv("LHD_EXEC_BACKEND");
    if (value == nullptr) return &get_backend(kDefaultBackendName);
    if (const ExecBackend* found = find_backend(value)) return found;
    LHD_LOG(Warn) << "unrecognized LHD_EXEC_BACKEND value '" << value
                  << "' (want 'serial', 'threadpool' or 'simd') — falling "
                  << "back to the compiled default '" << kDefaultBackendName
                  << "'";
    return &get_backend(kDefaultBackendName);
  }();
  return *backend;
}

}  // namespace

std::vector<std::string> list_backends() {
  std::vector<std::string> names;
  names.reserve(std::size(kBackendNames));
  for (const std::string_view name : kBackendNames) names.emplace_back(name);
  return names;
}

const ExecBackend* find_backend(std::string_view name) {
  if (name == "serial") return &serial_backend();
  if (name == "threadpool") return &threadpool_backend();
  if (name == "simd") return &simd_backend();
  return nullptr;
}

const ExecBackend& get_backend(std::string_view name) {
  const ExecBackend* backend = find_backend(name);
  LHD_CHECK_MSG(backend != nullptr, "unknown exec backend '"
                                        << name
                                        << "' (see exec::list_backends())");
  return *backend;
}

const ExecBackend& resolve(std::string_view requested) {
  if (!requested.empty()) {
    if (const ExecBackend* backend = find_backend(requested)) return *backend;
    LHD_LOG(Warn) << "unknown exec backend '" << requested
                  << "' requested — falling back to the configured default";
  }
  if (const ExecBackend* backend =
          g_backend_override.load(std::memory_order_relaxed)) {
    return *backend;
  }
  return env_default_backend();
}

void set_backend_override(std::string_view name) {
  g_backend_override.store(&get_backend(name), std::memory_order_relaxed);
}

void clear_backend_override() {
  g_backend_override.store(nullptr, std::memory_order_relaxed);
}

}  // namespace lhd::exec
