#pragma once
// Execution-backend interface: the batched primitives behind every
// scoring path. `core/scan`, `core/pipeline` and `CnnDetector` dispatch
// GEMM, conv forwards and batch submission through an ExecBackend picked
// at runtime (registry.hpp), so a new backend — a GPU offload, a remote
// pool — lands by implementing this interface and passing the
// conformance suite in tests/conformance/, without touching scan logic.
// The contract (what must be bit-identical, what merely numerically
// close) is written down in docs/BACKENDS.md.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "lhd/nn/tensor.hpp"

namespace lhd::exec {

/// One batch of work: process items [lo, hi). Submitted functions must
/// write only state owned by their own range — batches may run
/// concurrently — and their combined effect must not depend on how the
/// backend partitions [0, count) (scoring qualifies: Detector::
/// score_batch is bit-identical to per-sample score() by contract).
using BatchFn = std::function<void(std::size_t lo, std::size_t hi)>;

/// Tuning knobs for submit_batches. Zeros mean "backend chooses".
struct SubmitConfig {
  /// Upper bound on batches concurrently in flight (relevant to
  /// pool-backed backends); 0 lets the backend scale with its pool.
  std::size_t max_in_flight = 0;
  /// Items per batch. Non-zero is a hard cap: no single call to the batch
  /// function may span more than this many items, whatever the scheduling
  /// (the conformance suite asserts it). 0 lets the backend choose — the
  /// serial backend runs item-at-a-time (the reference loop), simd hands
  /// out the widest batch possible.
  std::size_t batch = 0;
};

class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  /// Stable lowercase registry name ("serial", "threadpool", "simd").
  const char* name() const { return name_; }

  /// C (m×n, row-major, ldc) += A (m×k, row-major, lda) × B — exactly the
  /// nn::gemm contract (trans_b reads B as n×k row-major used
  /// transposed). Accumulates into C; callers seed C with the bias.
  /// Results must match nn::gemm_reference within the tolerance in
  /// docs/BACKENDS.md.
  virtual void gemm(int m, int n, int k, const float* a, int lda,
                    const float* b, int ldb, bool trans_b, float* c,
                    int ldc) const = 0;

  /// Batched NCHW convolution, stride 1, symmetric zero padding `pad`:
  /// input [n, in_c, h, w], weight [out_c][in_c*kernel*kernel] row-major,
  /// bias [out_c]; returns [n, out_c, h+2*pad-kernel+1, w+2*pad-kernel+1].
  /// Must match the naive direct loops within tolerance.
  virtual nn::Tensor conv2d_forward(const nn::Tensor& input,
                                    std::span<const float> weight,
                                    std::span<const float> bias,
                                    int out_channels, int kernel,
                                    int pad) const = 0;

  /// Partition [0, count) into batches and invoke fn for each, keeping at
  /// most a bounded number in flight, and return once every batch has
  /// completed. If any invocation throws, no further batches are started,
  /// every batch already in flight is drained, and the first exception is
  /// rethrown — work completed before the fault stays completed, and the
  /// backend remains usable. Safe to call from inside a pool worker
  /// (backends must degrade to inline execution rather than deadlock).
  virtual void submit_batches(std::size_t count, const SubmitConfig& config,
                              const BatchFn& fn) const = 0;

 protected:
  explicit ExecBackend(const char* name) : name_(name) {}

 private:
  const char* name_;
};

}  // namespace lhd::exec
