#pragma once
// Backend registry and runtime selection. Selection precedence, highest
// first: an explicit per-call request (e.g. ScanConfig::backend), the
// process-wide programmatic override (set_backend_override — tests and
// benches), the LHD_EXEC_BACKEND environment variable (parsed once, with
// warn-and-fallback semantics matching LHD_NN_KERNEL), then the compiled
// default. Unknown names degrade with a warning instead of aborting — a
// deployment typo must fall back to the shipped backend.

#include <string>
#include <string_view>
#include <vector>

#include "lhd/exec/backend.hpp"

namespace lhd::exec {

/// Every registered backend, in registration order. This block is the
/// source of truth scripts/check_docs.sh greps: each name must appear
/// backticked in docs/BACKENDS.md and README.md.
inline constexpr std::string_view kBackendNames[] = {
    "serial",
    "threadpool",
    "simd",
};

/// The compiled default ("simd" — the PR 7 packed-GEMM path, matching
/// pre-exec behaviour of scan's batched scoring).
inline constexpr std::string_view kDefaultBackendName = "simd";

/// Registered backend names, in registration order (kBackendNames as
/// strings — the conformance suite parameterizes over this).
std::vector<std::string> list_backends();

/// The named backend, or nullptr if no such backend is registered.
const ExecBackend* find_backend(std::string_view name);

/// The named backend; LHD_CHECKs that it exists (use find_backend or
/// resolve when the name is untrusted).
const ExecBackend& get_backend(std::string_view name);

/// Resolve the backend to run on: `requested` if non-empty and known
/// (unknown requests warn and fall through), else the programmatic
/// override, else LHD_EXEC_BACKEND, else the compiled default.
const ExecBackend& resolve(std::string_view requested = {});

/// Process-wide programmatic override (highest precedence after explicit
/// per-call requests). LHD_CHECKs the name; do not flip it while scans
/// are in flight on other threads.
void set_backend_override(std::string_view name);

/// Drop the programmatic override and fall back to env/compiled default.
void clear_backend_override();

}  // namespace lhd::exec
