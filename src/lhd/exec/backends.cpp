#include "lhd/exec/backends.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <exception>
#include <future>
#include <utility>

#include "lhd/nn/gemm.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::exec {

namespace {

// ---------------------------------------------------------- conv common --

struct ConvShape {
  int n, in_c, h, w, oh, ow;
  std::size_t krows;  // in_c * kernel * kernel
};

ConvShape conv_shape(const nn::Tensor& input, std::span<const float> weight,
                     std::span<const float> bias, int out_channels,
                     int kernel, int pad) {
  LHD_CHECK(input.rank() == 4, "conv2d_forward wants NCHW input");
  LHD_CHECK(out_channels > 0 && kernel > 0 && pad >= 0,
            "conv2d_forward bad hyperparameters");
  ConvShape s{};
  s.n = input.dim(0);
  s.in_c = input.dim(1);
  s.h = input.dim(2);
  s.w = input.dim(3);
  s.oh = s.h + 2 * pad - kernel + 1;
  s.ow = s.w + 2 * pad - kernel + 1;
  LHD_CHECK(s.oh > 0 && s.ow > 0, "conv2d_forward kernel exceeds padded input");
  s.krows = static_cast<std::size_t>(s.in_c) * static_cast<std::size_t>(kernel) *
            static_cast<std::size_t>(kernel);
  LHD_CHECK(weight.size() == static_cast<std::size_t>(out_channels) * s.krows,
            "conv2d_forward weight size mismatch");
  LHD_CHECK(bias.size() == static_cast<std::size_t>(out_channels),
            "conv2d_forward bias size mismatch");
  return s;
}

/// Direct convolution for one sample, accumulating in (c, ky, kx) order —
/// the same order as the im2col row layout, so it doubles as the
/// readable statement of what every backend must compute.
void conv_sample_direct(const ConvShape& s, const float* src,
                        std::span<const float> weight,
                        std::span<const float> bias, int out_channels,
                        int kernel, int pad, float* dst) {
  const std::size_t plane = static_cast<std::size_t>(s.oh) * static_cast<std::size_t>(s.ow);
  for (int oc = 0; oc < out_channels; ++oc) {
    const float* wrow = weight.data() + static_cast<std::size_t>(oc) * s.krows;
    float* orow = dst + static_cast<std::size_t>(oc) * plane;
    for (int oy = 0; oy < s.oh; ++oy) {
      for (int ox = 0; ox < s.ow; ++ox) {
        float acc = bias[static_cast<std::size_t>(oc)];
        for (int c = 0; c < s.in_c; ++c) {
          const float* cplane =
              src + static_cast<std::size_t>(c) * static_cast<std::size_t>(s.h) *
                        static_cast<std::size_t>(s.w);
          for (int ky = 0; ky < kernel; ++ky) {
            const int iy = oy + ky - pad;
            if (iy < 0 || iy >= s.h) continue;
            for (int kx = 0; kx < kernel; ++kx) {
              const int ix = ox + kx - pad;
              if (ix < 0 || ix >= s.w) continue;
              acc += cplane[static_cast<std::size_t>(iy) *
                                static_cast<std::size_t>(s.w) +
                            static_cast<std::size_t>(ix)] *
                     wrow[static_cast<std::size_t>((c * kernel + ky) * kernel +
                                                   kx)];
            }
          }
        }
        orow[static_cast<std::size_t>(oy) * static_cast<std::size_t>(s.ow) +
             static_cast<std::size_t>(ox)] = acc;
      }
    }
  }
}

/// Gather-style im2col for one sample: row r = (c*k + ky)*k + kx holds the
/// input value under kernel tap (c, ky, kx) for each output position,
/// zero where the tap falls into padding. col is [krows][oh*ow].
void im2col_gather(const ConvShape& s, const float* src, int kernel, int pad,
                   float* col) {
  const std::size_t pitch = static_cast<std::size_t>(s.oh) * static_cast<std::size_t>(s.ow);
  std::size_t r = 0;
  for (int c = 0; c < s.in_c; ++c) {
    const float* cplane = src + static_cast<std::size_t>(c) *
                                    static_cast<std::size_t>(s.h) *
                                    static_cast<std::size_t>(s.w);
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx, ++r) {
        float* out = col + r * pitch;
        for (int oy = 0; oy < s.oh; ++oy) {
          const int iy = oy + ky - pad;
          for (int ox = 0; ox < s.ow; ++ox) {
            const int ix = ox + kx - pad;
            const bool inside = iy >= 0 && iy < s.h && ix >= 0 && ix < s.w;
            out[static_cast<std::size_t>(oy) * static_cast<std::size_t>(s.ow) +
                static_cast<std::size_t>(ox)] =
                inside ? cplane[static_cast<std::size_t>(iy) *
                                    static_cast<std::size_t>(s.w) +
                                static_cast<std::size_t>(ix)]
                       : 0.0f;
          }
        }
      }
    }
  }
}

/// im2col + blocked GEMM for one sample: seed the output plane with the
/// bias, then accumulate weight [out_c × krows] times col [krows × oh*ow].
void conv_sample_gemm(const ConvShape& s, const float* src,
                      std::span<const float> weight,
                      std::span<const float> bias, int out_channels,
                      int kernel, int pad, float* dst) {
  const std::size_t plane = static_cast<std::size_t>(s.oh) * static_cast<std::size_t>(s.ow);
  nn::AlignedVec col(s.krows * plane);
  im2col_gather(s, src, kernel, pad, col.data());
  for (int oc = 0; oc < out_channels; ++oc) {
    std::fill_n(dst + static_cast<std::size_t>(oc) * plane, plane,
                bias[static_cast<std::size_t>(oc)]);
  }
  nn::gemm(out_channels, static_cast<int>(plane), static_cast<int>(s.krows),
           weight.data(), static_cast<int>(s.krows), col.data(),
           static_cast<int>(plane), /*trans_b=*/false, dst,
           static_cast<int>(plane));
}

// --------------------------------------------------------------- serial --

class SerialBackend final : public ExecBackend {
 public:
  SerialBackend() : ExecBackend("serial") {}

  void gemm(int m, int n, int k, const float* a, int lda, const float* b,
            int ldb, bool trans_b, float* c, int ldc) const override {
    nn::gemm_reference(m, n, k, a, lda, b, ldb, trans_b, c, ldc);
  }

  nn::Tensor conv2d_forward(const nn::Tensor& input,
                            std::span<const float> weight,
                            std::span<const float> bias, int out_channels,
                            int kernel, int pad) const override {
    const ConvShape s = conv_shape(input, weight, bias, out_channels, kernel, pad);
    nn::Tensor out({s.n, out_channels, s.oh, s.ow});
    const std::size_t in_stride = static_cast<std::size_t>(s.in_c) *
                                  static_cast<std::size_t>(s.h) *
                                  static_cast<std::size_t>(s.w);
    const std::size_t out_stride = static_cast<std::size_t>(out_channels) *
                                   static_cast<std::size_t>(s.oh) *
                                   static_cast<std::size_t>(s.ow);
    for (int i = 0; i < s.n; ++i) {
      conv_sample_direct(s, input.data() + static_cast<std::size_t>(i) * in_stride,
                         weight, bias, out_channels, kernel, pad,
                         out.data() + static_cast<std::size_t>(i) * out_stride);
    }
    return out;
  }

  void submit_batches(std::size_t count, const SubmitConfig& /*config*/,
                      const BatchFn& fn) const override {
    // The reference loop: one item per batch, in order, on the calling
    // thread. A fault stops the loop with earlier items completed.
    for (std::size_t i = 0; i < count; ++i) fn(i, i + 1);
  }
};

// ----------------------------------------------------------- threadpool --

class ThreadPoolBackend final : public ExecBackend {
 public:
  ThreadPoolBackend() : ExecBackend("threadpool") {}

  void gemm(int m, int n, int k, const float* a, int lda, const float* b,
            int ldb, bool trans_b, float* c, int ldc) const override {
    // Row-band the packed GEMM across the pool: each band is an
    // independent nn::gemm over a contiguous block of A/C rows, so the
    // per-element accumulation order (and hence the bits) match the
    // unsharded kernel. One A-panel (96 rows = kMC) per band keeps the
    // per-task packing cost identical to the monolithic call.
    constexpr int kRowBand = 96;
    ThreadPool& pool = ThreadPool::global();
    if (m <= kRowBand || pool.size() <= 1 || ThreadPool::on_worker()) {
      nn::gemm(m, n, k, a, lda, b, ldb, trans_b, c, ldc);
      return;
    }
    const std::size_t bands =
        (static_cast<std::size_t>(m) + kRowBand - 1) / kRowBand;
    pool.parallel_for(0, bands, [&](std::size_t band) {
      const int i0 = static_cast<int>(band) * kRowBand;
      const int rows = std::min(kRowBand, m - i0);
      nn::gemm(rows, n, k,
               a + static_cast<std::size_t>(i0) * static_cast<std::size_t>(lda),
               lda, b, ldb, trans_b,
               c + static_cast<std::size_t>(i0) * static_cast<std::size_t>(ldc),
               ldc);
    });
  }

  nn::Tensor conv2d_forward(const nn::Tensor& input,
                            std::span<const float> weight,
                            std::span<const float> bias, int out_channels,
                            int kernel, int pad) const override {
    const ConvShape s = conv_shape(input, weight, bias, out_channels, kernel, pad);
    nn::Tensor out({s.n, out_channels, s.oh, s.ow});
    const std::size_t in_stride = static_cast<std::size_t>(s.in_c) *
                                  static_cast<std::size_t>(s.h) *
                                  static_cast<std::size_t>(s.w);
    const std::size_t out_stride = static_cast<std::size_t>(out_channels) *
                                   static_cast<std::size_t>(s.oh) *
                                   static_cast<std::size_t>(s.ow);
    const auto sample = [&](std::size_t i) {
      conv_sample_gemm(s, input.data() + i * in_stride, weight, bias,
                       out_channels, kernel, pad, out.data() + i * out_stride);
    };
    ThreadPool& pool = ThreadPool::global();
    if (pool.size() <= 1 || ThreadPool::on_worker()) {
      for (std::size_t i = 0; i < static_cast<std::size_t>(s.n); ++i) sample(i);
    } else {
      pool.parallel_for(0, static_cast<std::size_t>(s.n), sample);
    }
    return out;
  }

  void submit_batches(std::size_t count, const SubmitConfig& config,
                      const BatchFn& fn) const override {
    if (count == 0) return;
    ThreadPool& pool = ThreadPool::global();
    // On a pool worker, fan-out would have this worker block on futures
    // only other (possibly equally blocked) workers can drain — run the
    // batches inline instead, still chunked by the caller's batch size (an
    // explicit SubmitConfig::batch bounds every span the function sees,
    // parallel or not). Partition-invariance of fn makes the result
    // identical.
    if (pool.size() <= 1 || ThreadPool::on_worker()) {
      const std::size_t batch = config.batch != 0 ? config.batch : count;
      for (std::size_t lo = 0; lo < count; lo += batch) {
        fn(lo, std::min(count, lo + batch));
      }
      return;
    }
    const std::size_t cap = std::max<std::size_t>(
        1, config.max_in_flight != 0 ? config.max_in_flight : 2 * pool.size());
    std::size_t batch = config.batch;
    if (batch == 0) batch = (count + 2 * pool.size() - 1) / (2 * pool.size());
    batch = std::max<std::size_t>(1, batch);

    // Sliding window: at most `cap` batches in flight. On a fault, stop
    // submitting, drain what is in flight, rethrow the first exception.
    std::deque<std::future<void>> in_flight;
    std::exception_ptr first_error;
    const auto reap = [&](std::future<void>& f) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    };
    for (std::size_t lo = 0; lo < count && !first_error; lo += batch) {
      const std::size_t hi = std::min(count, lo + batch);
      if (in_flight.size() >= cap) {
        reap(in_flight.front());
        in_flight.pop_front();
        if (first_error) break;
      }
      in_flight.push_back(pool.submit([lo, hi, &fn] { fn(lo, hi); }));
    }
    for (auto& f : in_flight) reap(f);
    if (first_error) std::rethrow_exception(first_error);
  }
};

// ----------------------------------------------------------------- simd --

class SimdBackend final : public ExecBackend {
 public:
  SimdBackend() : ExecBackend("simd") {}

  void gemm(int m, int n, int k, const float* a, int lda, const float* b,
            int ldb, bool trans_b, float* c, int ldc) const override {
    nn::gemm(m, n, k, a, lda, b, ldb, trans_b, c, ldc);
  }

  nn::Tensor conv2d_forward(const nn::Tensor& input,
                            std::span<const float> weight,
                            std::span<const float> bias, int out_channels,
                            int kernel, int pad) const override {
    const ConvShape s = conv_shape(input, weight, bias, out_channels, kernel, pad);
    nn::Tensor out({s.n, out_channels, s.oh, s.ow});
    const std::size_t in_stride = static_cast<std::size_t>(s.in_c) *
                                  static_cast<std::size_t>(s.h) *
                                  static_cast<std::size_t>(s.w);
    const std::size_t out_stride = static_cast<std::size_t>(out_channels) *
                                   static_cast<std::size_t>(s.oh) *
                                   static_cast<std::size_t>(s.ow);
    for (int i = 0; i < s.n; ++i) {
      conv_sample_gemm(s, input.data() + static_cast<std::size_t>(i) * in_stride,
                       weight, bias, out_channels, kernel, pad,
                       out.data() + static_cast<std::size_t>(i) * out_stride);
    }
    return out;
  }

  void submit_batches(std::size_t count, const SubmitConfig& config,
                      const BatchFn& fn) const override {
    if (count == 0) return;
    // Maximal spans: the batched kernels downstream (forward_batch,
    // im2col+GEMM) are what this backend exists for, so hand them the
    // widest batch the caller allows.
    const std::size_t batch = config.batch != 0 ? config.batch : count;
    for (std::size_t lo = 0; lo < count; lo += batch) {
      fn(lo, std::min(count, lo + batch));
    }
  }
};

}  // namespace

const ExecBackend& serial_backend() {
  static const SerialBackend backend;
  return backend;
}

const ExecBackend& threadpool_backend() {
  static const ThreadPoolBackend backend;
  return backend;
}

const ExecBackend& simd_backend() {
  static const SimdBackend backend;
  return backend;
}

}  // namespace lhd::exec
