#pragma once
// Internal: the concrete backend singletons behind the registry. Code
// outside exec selects backends through registry.hpp by name; these
// accessors exist so registry.cpp can build its table without owning the
// implementations.

#include "lhd/exec/backend.hpp"

namespace lhd::exec {

/// Reference loops: nn::gemm_reference, direct conv loops, item-at-a-time
/// submission. The oracle every other backend is conformance-tested
/// against.
const ExecBackend& serial_backend();

/// ThreadPool-sharded batching: row-banded packed GEMM, sample-parallel
/// conv, bounded-in-flight batch submission on ThreadPool::global().
/// Degrades to inline execution on pool workers (no nested fan-out).
const ExecBackend& threadpool_backend();

/// The PR 7 vectorized path: packed cache-blocked nn::gemm, im2col+GEMM
/// conv, whole-span submission so batched kernels see maximal batches.
const ExecBackend& simd_backend();

}  // namespace lhd::exec
