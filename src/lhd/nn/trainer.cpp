#include "lhd/nn/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "lhd/obs/registry.hpp"
#include "lhd/obs/timer.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/log.hpp"

namespace lhd::nn {

namespace {

/// Flush one finished epoch's cost profile to the global registry.
void record_epoch(const EpochStats& stats) {
  auto& reg = obs::Registry::global();
  reg.add("nn.epochs");
  reg.observe("nn.epoch_seconds", stats.seconds);
  reg.observe("nn.epoch_loss", stats.loss);
}

}  // namespace

Trainer::Trainer(Network* net, std::array<int, 3> input_shape)
    : net_(net), shape_(input_shape) {
  LHD_CHECK(net_ != nullptr, "null network");
  LHD_CHECK(shape_[0] > 0 && shape_[1] > 0 && shape_[2] > 0,
            "bad input shape");
}

Tensor Trainer::make_batch(const Rows& x,
                           const std::vector<std::size_t>& order,
                           std::size_t begin, std::size_t end) const {
  const int n = static_cast<int>(end - begin);
  const std::size_t sample =
      static_cast<std::size_t>(shape_[0]) * shape_[1] * shape_[2];
  Tensor batch({n, shape_[0], shape_[1], shape_[2]});
  for (std::size_t s = begin; s < end; ++s) {
    const auto& row = x[order[s]];
    LHD_CHECK(row.size() == sample, "row size != input shape");
    std::copy(row.begin(), row.end(),
              batch.data() + (s - begin) * sample);
  }
  return batch;
}

std::vector<EpochStats> Trainer::train(const Rows& x,
                                       const std::vector<float>& y,
                                       const TrainConfig& config) {
  LHD_CHECK(!x.empty() && x.size() == y.size(), "bad training data");
  Rng rng(config.seed);
  net_->init(rng);

  std::unique_ptr<Optimizer> opt;
  if (config.use_adam) {
    opt = make_adam({config.learning_rate, 0.9, 0.999, 1e-8,
                     config.weight_decay});
  } else {
    opt = make_sgd({config.learning_rate, config.momentum,
                    config.weight_decay});
  }
  opt->attach(net_->params());

  std::vector<EpochStats> history;
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    EpochStats stats;
    stats.epoch = epoch;
    stats.lambda = config.bias_lambda;
    run_epoch(x, y, config, *opt, order, stats);
    opt->set_learning_rate(opt->learning_rate() * config.lr_decay);
    record_epoch(stats);
    history.push_back(stats);
    LHD_LOG(Debug) << "epoch " << epoch << ": loss " << stats.loss << " acc "
                   << stats.accuracy << " recall " << stats.recall << " fa "
                   << stats.false_alarm;
  }
  return history;
}

void Trainer::run_epoch(const Rows& x, const std::vector<float>& y,
                        const TrainConfig& config, Optimizer& opt,
                        const std::vector<std::size_t>& order,
                        EpochStats& stats) {
  obs::ScopedTimer epoch_timer(stats.seconds);
  const std::size_t n = x.size();
  double loss_sum = 0.0;
  std::size_t batches = 0;
  std::size_t correct = 0;
  std::size_t tp = 0, fn = 0, fp = 0, tn = 0;
  const auto lambda = static_cast<float>(config.bias_lambda);

  for (std::size_t start = 0; start < n;
       start += static_cast<std::size_t>(config.batch)) {
    const std::size_t end =
        std::min(n, start + static_cast<std::size_t>(config.batch));
    Tensor batch = make_batch(x, order, start, end);
    const int bn = static_cast<int>(end - start);

    Tensor targets({bn, 2});
    for (int s = 0; s < bn; ++s) {
      const bool hot = y[order[start + static_cast<std::size_t>(s)]] > 0;
      // channel 0 = non-hotspot, 1 = hotspot; biased learning shifts the
      // non-hotspot target towards the hotspot side by lambda.
      if (hot) {
        targets[static_cast<std::size_t>(s) * 2 + 0] = 0.0f;
        targets[static_cast<std::size_t>(s) * 2 + 1] = 1.0f;
      } else {
        targets[static_cast<std::size_t>(s) * 2 + 0] = 1.0f - lambda;
        targets[static_cast<std::size_t>(s) * 2 + 1] = lambda;
      }
    }

    const Tensor logits = net_->forward(batch, /*training=*/true);
    const LossResult lr = softmax_cross_entropy(logits, targets);
    net_->backward(lr.grad);
    opt.step();

    loss_sum += lr.loss;
    ++batches;
    for (int s = 0; s < bn; ++s) {
      const bool hot = y[order[start + static_cast<std::size_t>(s)]] > 0;
      const bool pred = lr.probs[static_cast<std::size_t>(s) * 2 + 1] > 0.5f;
      correct += (pred == hot);
      if (hot && pred) ++tp;
      if (hot && !pred) ++fn;
      if (!hot && pred) ++fp;
      if (!hot && !pred) ++tn;
    }
  }

  obs::Registry::global().add("nn.batches", batches);
  stats.loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
  stats.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  stats.recall =
      (tp + fn) ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  stats.false_alarm =
      (fp + tn) ? static_cast<double>(fp) / static_cast<double>(fp + tn) : 0.0;
}

std::vector<EpochStats> Trainer::continue_training(
    const Rows& x, const std::vector<float>& y, const TrainConfig& config,
    int epoch_offset) {
  Rng rng(config.seed + 1000);
  std::unique_ptr<Optimizer> opt;
  if (config.use_adam) {
    opt = make_adam({config.learning_rate, 0.9, 0.999, 1e-8,
                     config.weight_decay});
  } else {
    opt = make_sgd({config.learning_rate, config.momentum,
                    config.weight_decay});
  }
  opt->attach(net_->params());

  std::vector<EpochStats> history;
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    EpochStats stats;
    stats.epoch = epoch_offset + epoch;
    stats.lambda = config.bias_lambda;
    run_epoch(x, y, config, *opt, order, stats);
    opt->set_learning_rate(opt->learning_rate() * config.lr_decay);
    record_epoch(stats);
    history.push_back(stats);
  }
  return history;
}

float Trainer::predict_proba(const std::vector<float>& row) const {
  Tensor in({1, shape_[0], shape_[1], shape_[2]});
  LHD_CHECK(row.size() == in.size(), "row size != input shape");
  std::copy(row.begin(), row.end(), in.data());
  // infer() is the side-effect-free path: prediction never perturbs
  // backward caches and is safe from concurrent threads.
  const Tensor logits = net_->infer(in);
  const Tensor probs = softmax(logits);
  return probs[1];
}

std::vector<float> Trainer::predict_proba_batch(const Rows& rows) const {
  std::vector<float> out;
  out.reserve(rows.size());
  // Chunked batched inference: each chunk is ONE Network::forward_batch —
  // a single batched im2col+GEMM per conv/linear layer on the fast kernel
  // path. The chunk bound caps activation memory, not GEMM granularity.
  constexpr std::size_t kChunk = 64;
  const std::span<const std::vector<float>> all(rows);
  for (std::size_t start = 0; start < rows.size(); start += kChunk) {
    const std::size_t end = std::min(rows.size(), start + kChunk);
    const Tensor probs = softmax(
        net_->forward_batch(all.subspan(start, end - start), shape_));
    for (std::size_t s = 0; s < end - start; ++s) {
      out.push_back(probs[s * 2 + 1]);
    }
  }
  return out;
}

std::vector<EpochStats> train_biased(Trainer& trainer, const Rows& x,
                                     const std::vector<float>& y,
                                     const BiasedTrainConfig& config) {
  TrainConfig phase1 = config.pretrain;
  phase1.bias_lambda = 0.0;
  auto history = trainer.train(x, y, phase1);

  TrainConfig phase2 = config.pretrain;
  phase2.bias_lambda = config.lambda;
  phase2.epochs = config.bias_epochs;
  phase2.learning_rate = config.pretrain.learning_rate * 0.3;  // fine-tune
  auto h2 = trainer.continue_training(x, y, phase2,
                                      static_cast<int>(history.size()));
  history.insert(history.end(), h2.begin(), h2.end());
  return history;
}

std::vector<EpochStats> train_batch_biased(Trainer& trainer, const Rows& x,
                                           const std::vector<float>& y,
                                           const BatchBiasedConfig& config) {
  TrainConfig phase1 = config.pretrain;
  phase1.bias_lambda = 0.0;
  auto history = trainer.train(x, y, phase1);

  for (const double lambda : config.lambda_schedule) {
    TrainConfig stage = config.pretrain;
    stage.bias_lambda = lambda;
    stage.epochs = config.epochs_per_stage;
    stage.learning_rate = config.pretrain.learning_rate * 0.3;
    auto hs = trainer.continue_training(x, y, stage,
                                        static_cast<int>(history.size()));
    history.insert(history.end(), hs.begin(), hs.end());
    if (!history.empty() &&
        history.back().false_alarm > config.max_false_alarm) {
      LHD_LOG(Debug) << "batch-BL stopping: training FA "
                     << history.back().false_alarm << " > "
                     << config.max_false_alarm << " at lambda " << lambda;
      break;
    }
  }
  return history;
}

}  // namespace lhd::nn
