#include "lhd/nn/tensor.hpp"

namespace lhd::nn {

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)), data_(count(shape_), fill) {}

void Tensor::reshape(std::vector<int> shape) {
  LHD_CHECK_MSG(count(shape) == data_.size(),
                "reshape size mismatch: " << count(shape) << " vs "
                                          << data_.size());
  shape_ = std::move(shape);
}

std::size_t Tensor::count(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (const int d : shape) {
    LHD_CHECK(d > 0, "tensor dims must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}

}  // namespace lhd::nn
