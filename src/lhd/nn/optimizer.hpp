#pragma once
// First-order optimizers operating on Param handles (value + grad pairs).
// step() consumes the accumulated gradients and zeroes them.

#include <memory>
#include <vector>

#include "lhd/nn/layers.hpp"

namespace lhd::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Bind the parameter set (allocates per-parameter state).
  virtual void attach(std::vector<Param> params) = 0;

  /// Apply one update from the accumulated gradients, then zero them.
  virtual void step() = 0;

  virtual double learning_rate() const = 0;
  virtual void set_learning_rate(double lr) = 0;
};

struct SgdConfig {
  double learning_rate = 0.01;
  double momentum = 0.9;
  double weight_decay = 1e-4;
};

std::unique_ptr<Optimizer> make_sgd(SgdConfig config = {});

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 1e-4;
};

std::unique_ptr<Optimizer> make_adam(AdamConfig config = {});

}  // namespace lhd::nn
