#pragma once
// Cache-blocked single-precision GEMM — the shared microkernel behind the
// fast Conv2d (im2col+GEMM) and Linear forward paths — plus the runtime
// kernel-path switch (`LHD_NN_KERNEL`). The layout/alignment/tolerance
// contract every caller relies on is written down in docs/PERFORMANCE.md.

namespace lhd::nn {

/// Which implementation the nn layers run their forward passes through.
///  * kFast      — blocked, packed im2col+GEMM kernels (the default);
///  * kReference — the original naive loops, kept verbatim as the
///                 differential-testing oracle and portability fallback.
enum class KernelPath { kFast, kReference };

/// The path in effect: a process-wide programmatic override if one was
/// set, else the `LHD_NN_KERNEL` environment variable (`fast` or
/// `reference`, parsed once via parse_kernel_override), else the compiled
/// default (CMake cache variable `LHD_NN_KERNEL`, normally `fast`). An
/// unrecognized environment value logs a warning and falls back to the
/// compiled default — a typo in deployment config must degrade to the
/// shipped kernel, not abort the process. Thread-safe to read
/// concurrently.
KernelPath active_kernel_path();

/// Parse one override string: "fast" / "reference" map to their paths;
/// nullptr (variable unset) silently returns `fallback`; any other value
/// logs a warning naming the bad value and returns `fallback`. Exposed
/// for tests; active_kernel_path() routes the LHD_NN_KERNEL environment
/// variable through here.
KernelPath parse_kernel_override(const char* value, KernelPath fallback);

/// Programmatic override of the kernel path (tests and benches compare
/// both paths in one process). Takes effect for subsequent forwards; do
/// not flip it while other threads are inside an inference call.
void set_kernel_path(KernelPath path);

/// Drop the programmatic override and fall back to env/compiled default.
void clear_kernel_path_override();

/// Stable lowercase name ("fast" / "reference") for logs and reports.
const char* kernel_path_name(KernelPath path);

/// C (m×n, row-major, leading dimension ldc) += A (m×k, row-major, lda)
/// times B, where B is
///  * trans_b == false: k×n row-major with leading dimension ldb, or
///  * trans_b == true:  n×k row-major with leading dimension ldb, used as
///    its transpose (the Linear layer's weight matrix, untransposed).
/// Accumulates into C, so callers seed C with the bias. Any m, n, k ≥ 0;
/// pointers may be unaligned (packing copies into aligned scratch).
void gemm(int m, int n, int k, const float* a, int lda, const float* b,
          int ldb, bool trans_b, float* c, int ldc);

/// Textbook triple loop with the same signature and accumulation order
/// fixed by definition — the oracle gemm() is differential-tested against.
void gemm_reference(int m, int n, int k, const float* a, int lda,
                    const float* b, int ldb, bool trans_b, float* c,
                    int ldc);

}  // namespace lhd::nn
