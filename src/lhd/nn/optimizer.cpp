#include "lhd/nn/optimizer.hpp"

#include <cmath>

#include "lhd/util/check.hpp"

namespace lhd::nn {

namespace {

class Sgd final : public Optimizer {
 public:
  explicit Sgd(SgdConfig config) : config_(config) {}

  void attach(std::vector<Param> params) override {
    params_ = std::move(params);
    velocity_.clear();
    for (const auto& p : params_) {
      velocity_.emplace_back(p.value->size(), 0.0f);
    }
  }

  void step() override {
    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
      auto& v = velocity_[pi];
      auto& w = *params_[pi].value;
      auto& g = *params_[pi].grad;
      const auto lr = static_cast<float>(config_.learning_rate);
      const auto mu = static_cast<float>(config_.momentum);
      const auto wd = static_cast<float>(config_.weight_decay);
      for (std::size_t i = 0; i < w.size(); ++i) {
        v[i] = mu * v[i] - lr * (g[i] + wd * w[i]);
        w[i] += v[i];
        g[i] = 0.0f;
      }
    }
  }

  double learning_rate() const override { return config_.learning_rate; }
  void set_learning_rate(double lr) override { config_.learning_rate = lr; }

 private:
  SgdConfig config_;
  std::vector<Param> params_;
  std::vector<std::vector<float>> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(AdamConfig config) : config_(config) {}

  void attach(std::vector<Param> params) override {
    params_ = std::move(params);
    m_.clear();
    v_.clear();
    t_ = 0;
    for (const auto& p : params_) {
      m_.emplace_back(p.value->size(), 0.0f);
      v_.emplace_back(p.value->size(), 0.0f);
    }
  }

  void step() override {
    ++t_;
    const double b1 = config_.beta1;
    const double b2 = config_.beta2;
    const double bias1 = 1.0 - std::pow(b1, t_);
    const double bias2 = 1.0 - std::pow(b2, t_);
    const double lr = config_.learning_rate;
    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
      auto& w = *params_[pi].value;
      auto& g = *params_[pi].grad;
      auto& m = m_[pi];
      auto& v = v_[pi];
      for (std::size_t i = 0; i < w.size(); ++i) {
        const double grad = g[i] + config_.weight_decay * w[i];
        m[i] = static_cast<float>(b1 * m[i] + (1.0 - b1) * grad);
        v[i] = static_cast<float>(b2 * v[i] + (1.0 - b2) * grad * grad);
        const double mh = m[i] / bias1;
        const double vh = v[i] / bias2;
        w[i] -= static_cast<float>(lr * mh /
                                   (std::sqrt(vh) + config_.epsilon));
        g[i] = 0.0f;
      }
    }
  }

  double learning_rate() const override { return config_.learning_rate; }
  void set_learning_rate(double lr) override { config_.learning_rate = lr; }

 private:
  AdamConfig config_;
  std::vector<Param> params_;
  std::vector<std::vector<float>> m_, v_;
  long long t_ = 0;
};

}  // namespace

std::unique_ptr<Optimizer> make_sgd(SgdConfig config) {
  return std::make_unique<Sgd>(config);
}

std::unique_ptr<Optimizer> make_adam(AdamConfig config) {
  return std::make_unique<Adam>(config);
}

}  // namespace lhd::nn
