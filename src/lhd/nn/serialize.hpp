#pragma once
// Network weight (de)serialization. The architecture is not encoded —
// callers rebuild the same topology (e.g. via make_hotspot_cnn) and load
// weights into it; sizes are checked parameter-by-parameter.

#include <iosfwd>
#include <string>

#include "lhd/nn/network.hpp"

namespace lhd::nn {

void save_weights(Network& net, std::ostream& out);
void load_weights(Network& net, std::istream& in);

void save_weights_file(Network& net, const std::string& path);
void load_weights_file(Network& net, const std::string& path);

}  // namespace lhd::nn
