#pragma once
// Sequential network container + the reference hotspot CNN architecture
// (a scaled-down variant of the feature-tensor CNN of Yang et al.: two
// conv blocks with pooling, then two fully connected layers over the
// DCT tensor input).

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "lhd/nn/layers.hpp"
#include "lhd/nn/loss.hpp"

namespace lhd::nn {

/// Flat CHW sample rows, the lingua franca of the trainer and detectors.
using Rows = std::vector<std::vector<float>>;

class Network {
 public:
  Network() = default;

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Initialize all layer weights.
  void init(Rng& rng);

  Tensor forward(const Tensor& input, bool training);

  /// Evaluation-mode forward with no side effects (no backward caches):
  /// safe to call concurrently from many threads on the same network, and
  /// bit-identical to forward(input, /*training=*/false).
  Tensor infer(const Tensor& input) const;

  /// Batched evaluation forward over flat CHW rows of `sample_shape`
  /// ({channels, height, width}): assembles ONE [N,C,H,W] tensor and runs
  /// infer() on it, so on the fast kernel path every conv/linear layer
  /// executes a single batched im2col+GEMM for the whole batch instead of
  /// N per-sample forwards. Returns the [N, out] logits in row order.
  /// Same thread-safety and bit-identity guarantees as infer(); callers
  /// bound N (the trainer chunks) to cap activation memory.
  Tensor forward_batch(std::span<const std::vector<float>> rows,
                       const std::array<int, 3>& sample_shape) const;

  /// Backprop from dL/d(output); accumulates parameter gradients.
  void backward(const Tensor& grad_output);

  /// All trainable parameters across layers.
  std::vector<Param> params();

  /// Total number of trainable scalars.
  std::size_t param_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// The hotspot-CNN used by the deep-learning detector. Input is the DCT
/// feature tensor [channels, grid, grid] (grid must be divisible by 4).
/// With batchnorm = true, each conv is followed by BatchNorm2d (an
/// ablation-ready variant; the benchmarked default is without).
Network make_hotspot_cnn(int in_channels, int grid, bool batchnorm = false);

}  // namespace lhd::nn
