#pragma once
// Mini-batch trainer for the hotspot CNN, including the survey's
// deep-learning training recipes:
//
//  * plain training (softmax CE, Adam/SGD);
//  * biased learning (Yang et al.): after convergence at λ=0, continue
//    training with the *non-hotspot* targets shifted from (0,1) to
//    (λ, 1-λ), which pushes the decision boundary into non-hotspot
//    territory and trades a small false-alarm penalty for hotspot recall;
//  * batch biased learning: a λ schedule with an on-training-set
//    false-alarm guard, automating the λ choice.
//
// Class order convention throughout: channel 0 = non-hotspot,
// channel 1 = hotspot. Labels arrive as signed floats (+1 hotspot).

#include <array>
#include <vector>

#include "lhd/nn/network.hpp"
#include "lhd/nn/optimizer.hpp"

namespace lhd::nn {

// Rows (flat CHW sample rows) lives in network.hpp next to forward_batch.

struct TrainConfig {
  int epochs = 25;
  int batch = 32;
  double learning_rate = 1e-3;
  double weight_decay = 1e-4;
  bool use_adam = true;
  double momentum = 0.9;        ///< SGD only
  double lr_decay = 1.0;        ///< per-epoch learning-rate multiplier
  double bias_lambda = 0.0;     ///< non-hotspot soft-target shift
  std::uint64_t seed = 42;
};

struct EpochStats {
  int epoch = 0;
  double loss = 0.0;
  double accuracy = 0.0;     ///< overall training accuracy
  double recall = 0.0;       ///< hotspot recall on the training set
  double false_alarm = 0.0;  ///< non-hotspots flagged / non-hotspots
  double lambda = 0.0;       ///< bias in effect this epoch
  double seconds = 0.0;      ///< epoch wall time (also in obs "nn.epoch_seconds")
};

class Trainer {
 public:
  /// `input_shape` is {channels, height, width} of one sample.
  Trainer(Network* net, std::array<int, 3> input_shape);

  /// Train on flat CHW rows with signed labels; returns per-epoch stats.
  /// Re-initializes the network weights.
  std::vector<EpochStats> train(const Rows& x, const std::vector<float>& y,
                                const TrainConfig& config);

  /// Continue training from the current weights (fresh optimizer state) —
  /// the fine-tune phase of biased learning. `epoch_offset` only relabels
  /// the returned stats.
  std::vector<EpochStats> continue_training(const Rows& x,
                                            const std::vector<float>& y,
                                            const TrainConfig& config,
                                            int epoch_offset = 0);

  /// P(hotspot) for one flat CHW row.
  float predict_proba(const std::vector<float>& row) const;
  std::vector<float> predict_proba_batch(const Rows& rows) const;

  Network& network() { return *net_; }
  const std::array<int, 3>& input_shape() const { return shape_; }

 private:
  Tensor make_batch(const Rows& x, const std::vector<std::size_t>& order,
                    std::size_t begin, std::size_t end) const;
  void run_epoch(const Rows& x, const std::vector<float>& y,
                 const TrainConfig& config, Optimizer& opt,
                 const std::vector<std::size_t>& order, EpochStats& stats);

  Network* net_;
  std::array<int, 3> shape_;
};

struct BiasedTrainConfig {
  TrainConfig pretrain;      ///< phase 1 (λ forced to 0)
  int bias_epochs = 10;      ///< phase 2 length
  double lambda = 0.25;      ///< phase 2 non-hotspot target shift
};

/// Two-phase biased learning. Returns concatenated epoch stats.
std::vector<EpochStats> train_biased(Trainer& trainer, const Rows& x,
                                     const std::vector<float>& y,
                                     const BiasedTrainConfig& config);

struct BatchBiasedConfig {
  TrainConfig pretrain;
  std::vector<double> lambda_schedule = {0.1, 0.2, 0.3};
  int epochs_per_stage = 4;
  /// Abort the schedule once training false alarms exceed this rate.
  double max_false_alarm = 0.08;
};

/// Batch biased learning: walk the λ schedule, stopping when the training
/// false-alarm guard trips. Returns concatenated epoch stats.
std::vector<EpochStats> train_batch_biased(Trainer& trainer, const Rows& x,
                                           const std::vector<float>& y,
                                           const BatchBiasedConfig& config);

}  // namespace lhd::nn
