#include "lhd/nn/serialize.hpp"

#include <cstring>
#include <fstream>

#include "lhd/util/check.hpp"

namespace lhd::nn {

namespace {
constexpr char kMagic[4] = {'L', 'H', 'D', 'N'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_weights(Network& net, std::ostream& out) {
  out.write(kMagic, 4);
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const auto params = net.params();
  const auto count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const auto n = static_cast<std::uint64_t>(p.value->size());
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(p.value->data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
  LHD_CHECK(out.good(), "weight write failed");
}

void load_weights(Network& net, std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  LHD_CHECK(in.good() && std::memcmp(magic, kMagic, 4) == 0,
            "not a lhd weight stream");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  LHD_CHECK_MSG(version == kVersion, "unsupported weight version " << version);
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  const auto params = net.params();
  LHD_CHECK_MSG(count == params.size(),
                "parameter count mismatch: stream has "
                    << count << ", network has " << params.size());
  for (const auto& p : params) {
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    LHD_CHECK_MSG(in.good() && n == p.value->size(),
                  "parameter size mismatch: stream has "
                      << n << ", network wants " << p.value->size());
    in.read(reinterpret_cast<char*>(p.value->data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    LHD_CHECK(in.good(), "truncated weight stream");
  }
}

void save_weights_file(Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LHD_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  save_weights(net, out);
}

void load_weights_file(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LHD_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  load_weights(net, in);
}

}  // namespace lhd::nn
