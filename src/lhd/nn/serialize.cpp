#include "lhd/nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "lhd/util/bounded.hpp"
#include "lhd/util/check.hpp"

namespace lhd::nn {

namespace {
constexpr char kMagic[4] = {'L', 'H', 'D', 'N'};
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void fail_at(std::uint64_t offset, const std::string& msg) {
  std::ostringstream os;
  os << "weight stream error at byte " << offset << ": " << msg;
  throw Error(os.str());
}

/// Offset-tracking reader so every failure names the byte it happened at.
class StreamReader {
 public:
  explicit StreamReader(std::istream& in) : in_(in) {}

  void read_exact(void* dst, std::size_t n, const char* what) {
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got != n) {
      std::ostringstream os;
      os << "truncated reading " << what << " (wanted " << n
         << " bytes, got " << got << ")";
      fail_at(offset_ + got, os.str());
    }
    offset_ += n;
  }

  std::uint64_t offset() const { return offset_; }

 private:
  std::istream& in_;
  std::uint64_t offset_ = 0;
};
}  // namespace

void save_weights(Network& net, std::ostream& out) {
  out.write(kMagic, 4);
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const auto params = net.params();
  const auto count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const auto n = static_cast<std::uint64_t>(p.value->size());
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(p.value->data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
  LHD_CHECK(out.good(), "weight write failed");
}

void load_weights(Network& net, std::istream& in) {
  StreamReader r(in);
  char magic[4];
  r.read_exact(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, 4) != 0) {
    fail_at(0, "not a lhd weight stream (bad magic)");
  }
  std::uint32_t version = 0;
  std::uint64_t field_at = r.offset();
  r.read_exact(&version, sizeof(version), "version");
  if (version != kVersion) {
    std::ostringstream os;
    os << "unsupported weight version " << version;
    fail_at(field_at, os.str());
  }
  std::uint32_t count = 0;
  field_at = r.offset();
  r.read_exact(&count, sizeof(count), "parameter count");
  const auto params = net.params();
  if (count != params.size()) {
    std::ostringstream os;
    os << "parameter count mismatch: stream has " << count
       << ", network has " << params.size();
    fail_at(field_at, os.str());
  }
  // Stage every blob before touching the network, so a stream that fails
  // mid-way never leaves a half-loaded model. Each size field is validated
  // against the expected parameter size before the allocation it drives.
  std::vector<std::vector<float>> staged(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::uint64_t n = 0;
    field_at = r.offset();
    r.read_exact(&n, sizeof(n), "parameter size");
    if (n != params[i].value->size()) {
      std::ostringstream os;
      os << "parameter " << i << " size mismatch: stream has " << n
         << ", network wants " << params[i].value->size();
      fail_at(field_at, os.str());
    }
    // n == params[i].value->size() was just validated, so the cap is the
    // network's own parameter size — the stream cannot out-allocate it.
    lhd::bounded_resize(staged[i], n, params[i].value->size());
    r.read_exact(staged[i].data(),
                 static_cast<std::size_t>(n) * sizeof(float),
                 "parameter data");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    *params[i].value = std::move(staged[i]);
  }
}

void save_weights_file(Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LHD_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  save_weights(net, out);
}

void load_weights_file(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LHD_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  load_weights(net, in);
}

}  // namespace lhd::nn
