#pragma once
// Softmax cross-entropy with *soft* targets. Soft targets are what the
// biased-learning algorithm manipulates: a non-hotspot sample's target is
// shifted from (0,1) to (λ, 1-λ) during the bias phase.

#include "lhd/nn/tensor.hpp"

namespace lhd::nn {

struct LossResult {
  double loss = 0.0;   ///< mean cross-entropy over the batch
  Tensor grad;         ///< dL/dlogits, shape [N, C]
  Tensor probs;        ///< softmax probabilities, shape [N, C]
};

/// logits [N, C], targets [N, C] rows summing to 1.
LossResult softmax_cross_entropy(const Tensor& logits, const Tensor& targets);

/// Softmax probabilities only (inference path).
Tensor softmax(const Tensor& logits);

}  // namespace lhd::nn
