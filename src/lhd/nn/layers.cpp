#include "lhd/nn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "lhd/nn/gemm.hpp"

namespace lhd::nn {

namespace {

inline std::size_t uz(int v) { return static_cast<std::size_t>(v); }

/// Scratch budget (floats) for one batched im2col chunk: bounds the col
/// matrix at 1 MiB so the chunk's scratch stays cache-resident and the
/// lowering never balloons memory on big batches (measured flat vs larger
/// budgets on the hotspot-CNN shapes).
constexpr std::size_t kConvColBudget = std::size_t{1} << 18;

/// The original per-element im2col gather, kept verbatim as part of the
/// reference kernel path (same output bits as Conv2d::im2col, produced the
/// slow branchy way).
void im2col_naive(const float* src, int in_c, int k, int pad, int h, int w,
                  float* col, std::size_t pitch) {
  const int oh = h + 2 * pad - k + 1;
  const int ow = w + 2 * pad - k + 1;
  std::size_t row = 0;
  for (int c = 0; c < in_c; ++c) {
    const float* plane = src + static_cast<std::size_t>(c) * h * w;
    for (int ky = 0; ky < k; ++ky) {
      for (int kx = 0; kx < k; ++kx, ++row) {
        float* dst = col + row * pitch;
        for (int y = 0; y < oh; ++y) {
          const int sy = y + ky - pad;
          for (int x = 0; x < ow; ++x) {
            const int sx = x + kx - pad;
            dst[y * ow + x] = (sy < 0 || sy >= h || sx < 0 || sx >= w)
                                  ? 0.0f
                                  : plane[sy * w + sx];
          }
        }
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- Conv2d --

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int pad)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel), pad_(pad) {
  LHD_CHECK(in_c_ > 0 && out_c_ > 0 && k_ > 0 && pad_ >= 0, "bad conv dims");
  const auto wsize = static_cast<std::size_t>(out_c_) * in_c_ * k_ * k_;
  weight_.assign(wsize, 0.0f);
  weight_grad_.assign(wsize, 0.0f);
  bias_.assign(static_cast<std::size_t>(out_c_), 0.0f);
  bias_grad_.assign(static_cast<std::size_t>(out_c_), 0.0f);
}

void Conv2d::init(Rng& rng) {
  const double fan_in = static_cast<double>(in_c_) * k_ * k_;
  const double stddev = std::sqrt(2.0 / fan_in);
  for (auto& w : weight_) {
    w = static_cast<float>(rng.next_gaussian(0.0, stddev));
  }
  std::fill(bias_.begin(), bias_.end(), 0.0f);
}

void Conv2d::im2col(const float* src, int h, int w, float* col,
                    std::size_t pitch) const {
  // col layout: [in_c*k*k] rows of `pitch` floats each (row r at
  // col + r*pitch; this sample's oh*ow entries start at col). Output
  // spatial size equals input size because stride 1 with symmetric
  // padding keeps H, W when pad = (k-1)/2.
  //
  // Bit-identical to the naive per-element gather the reference path
  // keeps, but structured as bulk copies: when ow == w (the same-pad
  // case every hotspot CNN layer hits), destination lines and source
  // lines share the same stride, so ALL in-range y lines of one
  // (c, ky, kx) row form one contiguous copy — the ≤pad elements per
  // line that wrap across a row boundary are re-zeroed afterwards.
  // That turns the 8-float lines of the pooled grids into a single
  // multi-KB memcpy instead of hundreds of tiny ones.
  const int oh = h + 2 * pad_ - k_ + 1;
  const int ow = w + 2 * pad_ - k_ + 1;
  std::size_t row = 0;
  for (int c = 0; c < in_c_; ++c) {
    const float* plane = src + static_cast<std::size_t>(c) * h * w;
    for (int ky = 0; ky < k_; ++ky) {
      // y + ky - pad_ lands in [0, h) for y in [ylo, yhi).
      const int ylo = std::clamp(pad_ - ky, 0, oh);
      const int yhi = std::clamp(h + pad_ - ky, ylo, oh);
      for (int kx = 0; kx < k_; ++kx, ++row) {
        float* dst = col + row * pitch;
        // x + kx - pad_ lands in [0, w) for x in [xlo, xhi).
        const int xlo = std::clamp(pad_ - kx, 0, ow);
        const int xhi = std::clamp(w + pad_ - kx, xlo, ow);
        const int shift = kx - pad_;
        // Whole top/bottom padding lines.
        std::fill_n(dst, uz(ylo) * uz(ow), 0.0f);
        std::fill_n(dst + uz(yhi) * uz(ow), uz(oh - yhi) * uz(ow), 0.0f);
        if (ow == w && yhi > ylo) {
          // One flat copy for rows [ylo, yhi): dst[y*ow + x] reads
          // plane[(y+ky-pad)*w + x+shift], and with ow == w both sides
          // advance by w per line. Trim the head/tail so every read
          // stays inside the plane, then re-zero the margin columns
          // (which the flat copy filled with wrapped neighbours).
          const std::ptrdiff_t base =
              static_cast<std::ptrdiff_t>(ylo + ky - pad_) * w + shift;
          const std::size_t lead = uz(shift < 0 ? xlo : 0);
          const std::size_t tail = uz(shift > 0 ? ow - xhi : 0);
          const std::size_t block = uz(yhi - ylo) * uz(ow);
          std::copy_n(plane + (base + static_cast<std::ptrdiff_t>(lead)),
                      block - lead - tail, dst + uz(ylo) * uz(ow) + lead);
          if (xlo > 0 || xhi < ow) {
            for (int y = ylo; y < yhi; ++y) {
              float* line = dst + static_cast<std::size_t>(y) * uz(ow);
              for (int x = 0; x < xlo; ++x) line[x] = 0.0f;
              for (int x = xhi; x < ow; ++x) line[x] = 0.0f;
            }
          }
        } else {
          // General (non-same-pad) shape: per-line prefix zeros, one
          // run copied from the source row, suffix zeros.
          for (int y = ylo; y < yhi; ++y) {
            float* line = dst + static_cast<std::size_t>(y) * uz(ow);
            const float* srow =
                plane + static_cast<std::size_t>(y + ky - pad_) * uz(w);
            for (int x = 0; x < xlo; ++x) line[x] = 0.0f;
            for (int x = xlo; x < xhi; ++x) line[x] = srow[x + shift];
            for (int x = xhi; x < ow; ++x) line[x] = 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* col, int h, int w, float* dst) const {
  const int oh = h + 2 * pad_ - k_ + 1;
  const int ow = w + 2 * pad_ - k_ + 1;
  std::size_t row = 0;
  for (int c = 0; c < in_c_; ++c) {
    float* plane = dst + static_cast<std::size_t>(c) * h * w;
    for (int ky = 0; ky < k_; ++ky) {
      for (int kx = 0; kx < k_; ++kx, ++row) {
        const float* src = col + row * static_cast<std::size_t>(oh) * ow;
        for (int y = 0; y < oh; ++y) {
          const int sy = y + ky - pad_;
          if (sy < 0 || sy >= h) continue;
          for (int x = 0; x < ow; ++x) {
            const int sx = x + kx - pad_;
            if (sx < 0 || sx >= w) continue;
            plane[sy * w + sx] += src[y * ow + x];
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  input_ = input;
  return apply(input);
}

Tensor Conv2d::infer(const Tensor& input) const { return apply(input); }

Tensor Conv2d::apply(const Tensor& input) const {
  LHD_CHECK(input.rank() == 4, "conv expects NCHW");
  LHD_CHECK_MSG(input.dim(1) == in_c_, "conv channel mismatch: got "
                                           << input.dim(1) << ", want "
                                           << in_c_);
  const int oh = input.dim(2) + 2 * pad_ - k_ + 1;
  const int ow = input.dim(3) + 2 * pad_ - k_ + 1;
  LHD_CHECK(oh > 0 && ow > 0, "conv output collapsed to zero");
  return active_kernel_path() == KernelPath::kFast ? apply_gemm(input)
                                                   : apply_reference(input);
}

Tensor Conv2d::apply_gemm(const Tensor& input) const {
  const int n = input.dim(0);
  const int h = input.dim(2);
  const int w = input.dim(3);
  const int oh = h + 2 * pad_ - k_ + 1;
  const int ow = w + 2 * pad_ - k_ + 1;
  const int krows = in_c_ * k_ * k_;
  const std::size_t spatial = uz(oh) * uz(ow);
  const std::size_t sample = uz(in_c_) * uz(h) * uz(w);
  Tensor out({n, out_c_, oh, ow});

  // Batched lowering: one shared col matrix [krows × chunk*spatial] and
  // ONE blocked GEMM per chunk of samples (the whole batch when it fits
  // kConvColBudget), instead of an im2col+matmul per sample. The GEMM
  // lands in [out_c][sample][spatial] scratch, then contiguous planes are
  // scattered back to NCHW.
  const std::size_t per_sample = uz(krows) * spatial;
  const int chunk = static_cast<int>(std::clamp<std::size_t>(
      kConvColBudget / std::max<std::size_t>(per_sample, 1), 1, uz(n)));

  thread_local AlignedVec col;
  thread_local AlignedVec gemm_out;
  for (int s0 = 0; s0 < n; s0 += chunk) {
    const int cn = std::min(chunk, n - s0);
    const std::size_t cols = uz(cn) * spatial;
    col.resize(uz(krows) * cols);
    for (int s = 0; s < cn; ++s) {
      im2col(input.data() + uz(s0 + s) * sample, h, w,
             col.data() + uz(s) * spatial, cols);
    }
    // A single-sample chunk's [out_c][spatial] GEMM result IS that
    // sample's CHW plane, so the GEMM writes the output tensor directly;
    // multi-sample chunks land in [out_c][s][spatial] scratch and scatter
    // planes back to NCHW.
    float* gdst;
    if (cn == 1) {
      gdst = out.data() + uz(s0) * uz(out_c_) * spatial;
    } else {
      gemm_out.resize(uz(out_c_) * cols);
      gdst = gemm_out.data();
    }
    // Seed every output row with its bias; gemm() accumulates on top.
    for (int oc = 0; oc < out_c_; ++oc) {
      std::fill_n(gdst + uz(oc) * cols, cols, bias_[uz(oc)]);
    }
    gemm(out_c_, static_cast<int>(cols), krows, weight_.data(), krows,
         col.data(), static_cast<int>(cols), /*trans_b=*/false, gdst,
         static_cast<int>(cols));
    if (cn > 1) {
      for (int s = 0; s < cn; ++s) {
        float* dst = out.data() + uz(s0 + s) * uz(out_c_) * spatial;
        for (int oc = 0; oc < out_c_; ++oc) {
          std::copy_n(gemm_out.data() + uz(oc) * cols + uz(s) * spatial,
                      spatial, dst + uz(oc) * spatial);
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::apply_reference(const Tensor& input) const {
  const int n = input.dim(0);
  const int h = input.dim(2);
  const int w = input.dim(3);
  const int oh = h + 2 * pad_ - k_ + 1;
  const int ow = w + 2 * pad_ - k_ + 1;

  Tensor out({n, out_c_, oh, ow});
  const int krows = in_c_ * k_ * k_;
  std::vector<float> col(static_cast<std::size_t>(krows) * oh * ow);
  const std::size_t spatial = static_cast<std::size_t>(oh) * ow;

  for (int s = 0; s < n; ++s) {
    im2col_naive(input.data() + static_cast<std::size_t>(s) * in_c_ * h * w,
                 in_c_, k_, pad_, h, w, col.data(), spatial);
    float* dst = out.data() + static_cast<std::size_t>(s) * out_c_ * spatial;
    // Process output channels four at a time so each col row is read once
    // per group instead of once per channel (the loop is memory-bound).
    int oc = 0;
    for (; oc + 4 <= out_c_; oc += 4) {
      float* o0 = dst + static_cast<std::size_t>(oc) * spatial;
      float* o1 = o0 + spatial;
      float* o2 = o1 + spatial;
      float* o3 = o2 + spatial;
      std::fill(o0, o0 + spatial, bias_[static_cast<std::size_t>(oc)]);
      std::fill(o1, o1 + spatial, bias_[static_cast<std::size_t>(oc) + 1]);
      std::fill(o2, o2 + spatial, bias_[static_cast<std::size_t>(oc) + 2]);
      std::fill(o3, o3 + spatial, bias_[static_cast<std::size_t>(oc) + 3]);
      const float* w0 = weight_.data() + static_cast<std::size_t>(oc) * krows;
      const float* w1 = w0 + krows;
      const float* w2 = w1 + krows;
      const float* w3 = w2 + krows;
      for (int r = 0; r < krows; ++r) {
        const float* crow = col.data() + static_cast<std::size_t>(r) * spatial;
        const float a = w0[r], b = w1[r], c = w2[r], d = w3[r];
        for (std::size_t i = 0; i < spatial; ++i) {
          const float v = crow[i];
          o0[i] += a * v;
          o1[i] += b * v;
          o2[i] += c * v;
          o3[i] += d * v;
        }
      }
    }
    for (; oc < out_c_; ++oc) {
      const float* wrow = weight_.data() + static_cast<std::size_t>(oc) * krows;
      float* orow = dst + static_cast<std::size_t>(oc) * spatial;
      std::fill(orow, orow + spatial, bias_[static_cast<std::size_t>(oc)]);
      for (int r = 0; r < krows; ++r) {
        const float wv = wrow[r];
        const float* crow = col.data() + static_cast<std::size_t>(r) * spatial;
        for (std::size_t i = 0; i < spatial; ++i) orow[i] += wv * crow[i];
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const int n = input_.dim(0);
  const int h = input_.dim(2);
  const int w = input_.dim(3);
  const int oh = grad_output.dim(2);
  const int ow = grad_output.dim(3);
  const int krows = in_c_ * k_ * k_;
  const std::size_t spatial = static_cast<std::size_t>(oh) * ow;

  Tensor grad_in(input_.shape());
  std::vector<float> col(static_cast<std::size_t>(krows) * spatial);
  std::vector<float> col_grad(col.size());

  for (int s = 0; s < n; ++s) {
    im2col(input_.data() + static_cast<std::size_t>(s) * in_c_ * h * w, h, w,
           col.data(), spatial);
    const float* gout =
        grad_output.data() + static_cast<std::size_t>(s) * out_c_ * spatial;

    // dW += gout * col^T ; db += sum(gout). col rows are the long axis, so
    // walk them once and accumulate against all output-channel grads.
    for (int oc = 0; oc < out_c_; ++oc) {
      const float* grow = gout + static_cast<std::size_t>(oc) * spatial;
      double bsum = 0.0;
      for (std::size_t i = 0; i < spatial; ++i) bsum += grow[i];
      bias_grad_[static_cast<std::size_t>(oc)] += static_cast<float>(bsum);
    }
    for (int r = 0; r < krows; ++r) {
      const float* crow = col.data() + static_cast<std::size_t>(r) * spatial;
      int oc = 0;
      for (; oc + 4 <= out_c_; oc += 4) {
        const float* g0 = gout + static_cast<std::size_t>(oc) * spatial;
        const float* g1 = g0 + spatial;
        const float* g2 = g1 + spatial;
        const float* g3 = g2 + spatial;
        float a0 = 0, a1 = 0, a2 = 0, a3 = 0;
        for (std::size_t i = 0; i < spatial; ++i) {
          const float v = crow[i];
          a0 += g0[i] * v;
          a1 += g1[i] * v;
          a2 += g2[i] * v;
          a3 += g3[i] * v;
        }
        weight_grad_[static_cast<std::size_t>(oc) * krows + r] += a0;
        weight_grad_[(static_cast<std::size_t>(oc) + 1) * krows + r] += a1;
        weight_grad_[(static_cast<std::size_t>(oc) + 2) * krows + r] += a2;
        weight_grad_[(static_cast<std::size_t>(oc) + 3) * krows + r] += a3;
      }
      for (; oc < out_c_; ++oc) {
        const float* grow = gout + static_cast<std::size_t>(oc) * spatial;
        float acc = 0;
        for (std::size_t i = 0; i < spatial; ++i) acc += grow[i] * crow[i];
        weight_grad_[static_cast<std::size_t>(oc) * krows + r] += acc;
      }
    }

    // dcol = W^T * gout, then scatter back with col2im.
    std::fill(col_grad.begin(), col_grad.end(), 0.0f);
    for (int r = 0; r < krows; ++r) {
      float* crow = col_grad.data() + static_cast<std::size_t>(r) * spatial;
      int oc = 0;
      for (; oc + 4 <= out_c_; oc += 4) {
        const float* g0 = gout + static_cast<std::size_t>(oc) * spatial;
        const float* g1 = g0 + spatial;
        const float* g2 = g1 + spatial;
        const float* g3 = g2 + spatial;
        const float a = weight_[static_cast<std::size_t>(oc) * krows + r];
        const float b = weight_[(static_cast<std::size_t>(oc) + 1) * krows + r];
        const float c = weight_[(static_cast<std::size_t>(oc) + 2) * krows + r];
        const float d = weight_[(static_cast<std::size_t>(oc) + 3) * krows + r];
        for (std::size_t i = 0; i < spatial; ++i) {
          crow[i] += a * g0[i] + b * g1[i] + c * g2[i] + d * g3[i];
        }
      }
      for (; oc < out_c_; ++oc) {
        const float wv = weight_[static_cast<std::size_t>(oc) * krows + r];
        const float* grow = gout + static_cast<std::size_t>(oc) * spatial;
        for (std::size_t i = 0; i < spatial; ++i) crow[i] += wv * grow[i];
      }
    }
    col2im(col_grad.data(), h, w,
           grad_in.data() + static_cast<std::size_t>(s) * in_c_ * h * w);
  }
  return grad_in;
}

std::vector<Param> Conv2d::params() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

// ------------------------------------------------------------------ Relu --

Tensor Relu::forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  mask_.assign(input.size(), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0) {
      mask_[i] = 1;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor Relu::infer(const Tensor& input) const {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!(out[i] > 0)) out[i] = 0.0f;
  }
  return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
  LHD_CHECK(grad_output.size() == mask_.size(), "relu backward shape mismatch");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (!mask_[i]) grad[i] = 0.0f;
  }
  return grad;
}

// -------------------------------------------------------------- MaxPool2 --

Tensor MaxPool2::forward(const Tensor& input, bool /*training*/) {
  in_shape_ = input.shape();
  return apply(input, &argmax_);
}

Tensor MaxPool2::infer(const Tensor& input) const {
  return apply(input, nullptr);
}

Tensor MaxPool2::apply(const Tensor& input, std::vector<int>* argmax) const {
  LHD_CHECK(input.rank() == 4, "pool expects NCHW");
  const int n = input.dim(0), c = input.dim(1);
  const int h = input.dim(2), w = input.dim(3);
  LHD_CHECK(h % 2 == 0 && w % 2 == 0, "pool input dims must be even");
  const int oh = h / 2, ow = w / 2;
  Tensor out({n, c, oh, ow});
  if (argmax) argmax->assign(out.size(), 0);

  std::size_t oi = 0;
  for (int s = 0; s < n; ++s) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          input.data() + (static_cast<std::size_t>(s) * c + ch) * h * w;
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x, ++oi) {
          int best_idx = (2 * y) * w + 2 * x;
          float best = plane[best_idx];
          const int candidates[3] = {(2 * y) * w + 2 * x + 1,
                                     (2 * y + 1) * w + 2 * x,
                                     (2 * y + 1) * w + 2 * x + 1};
          for (const int idx : candidates) {
            if (plane[idx] > best) {
              best = plane[idx];
              best_idx = idx;
            }
          }
          out[oi] = best;
          if (argmax) {
            (*argmax)[oi] = static_cast<int>(
                                (static_cast<std::size_t>(s) * c + ch) * h * w) +
                            best_idx;
          }
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2::backward(const Tensor& grad_output) {
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_in[static_cast<std::size_t>(argmax_[i])] += grad_output[i];
  }
  return grad_in;
}

// ---------------------------------------------------------------- Linear --

Linear::Linear(int in_features, int out_features)
    : in_f_(in_features), out_f_(out_features) {
  LHD_CHECK(in_f_ > 0 && out_f_ > 0, "bad linear dims");
  weight_.assign(static_cast<std::size_t>(out_f_) * in_f_, 0.0f);
  weight_grad_.assign(weight_.size(), 0.0f);
  bias_.assign(static_cast<std::size_t>(out_f_), 0.0f);
  bias_grad_.assign(bias_.size(), 0.0f);
}

void Linear::init(Rng& rng) {
  const double stddev = std::sqrt(2.0 / in_f_);
  for (auto& w : weight_) {
    w = static_cast<float>(rng.next_gaussian(0.0, stddev));
  }
  std::fill(bias_.begin(), bias_.end(), 0.0f);
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  Tensor out = apply(input);  // shape-checks before the caches are written
  in_shape_ = input.shape();
  input_ = input;
  input_.reshape({input.dim(0), in_f_});
  return out;
}

Tensor Linear::infer(const Tensor& input) const { return apply(input); }

Tensor Linear::apply(const Tensor& input) const {
  const int n = input.dim(0);
  LHD_CHECK_MSG(input.size() == static_cast<std::size_t>(n) * in_f_,
                "linear expects " << in_f_ << " features, got "
                                  << input.size() / static_cast<std::size_t>(n));
  return active_kernel_path() == KernelPath::kFast ? apply_gemm(input)
                                                   : apply_reference(input);
}

Tensor Linear::apply_gemm(const Tensor& input) const {
  // out[n × out_f] = x[n × in_f] · Wᵀ + b; the GEMM's packing reads the
  // row-major [out_f × in_f] weights through their transpose directly.
  const int n = input.dim(0);
  Tensor out({n, out_f_});
  for (int s = 0; s < n; ++s) {
    std::copy(bias_.begin(), bias_.end(),
              out.data() + static_cast<std::size_t>(s) * uz(out_f_));
  }
  gemm(n, out_f_, in_f_, input.data(), in_f_, weight_.data(), in_f_,
       /*trans_b=*/true, out.data(), out_f_);
  return out;
}

Tensor Linear::apply_reference(const Tensor& input) const {
  const int n = input.dim(0);
  Tensor out({n, out_f_});
  for (int s = 0; s < n; ++s) {
    const float* x = input.data() + static_cast<std::size_t>(s) * in_f_;
    float* o = out.data() + static_cast<std::size_t>(s) * out_f_;
    for (int j = 0; j < out_f_; ++j) {
      const float* wrow = weight_.data() + static_cast<std::size_t>(j) * in_f_;
      double acc = bias_[static_cast<std::size_t>(j)];
      for (int i = 0; i < in_f_; ++i) acc += wrow[i] * x[i];
      o[j] = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const int n = input_.dim(0);
  Tensor grad_in({n, in_f_});
  for (int s = 0; s < n; ++s) {
    const float* x = input_.data() + static_cast<std::size_t>(s) * in_f_;
    const float* g = grad_output.data() + static_cast<std::size_t>(s) * out_f_;
    float* gi = grad_in.data() + static_cast<std::size_t>(s) * in_f_;
    for (int j = 0; j < out_f_; ++j) {
      const float gj = g[j];
      bias_grad_[static_cast<std::size_t>(j)] += gj;
      float* wg = weight_grad_.data() + static_cast<std::size_t>(j) * in_f_;
      const float* wrow = weight_.data() + static_cast<std::size_t>(j) * in_f_;
      for (int i = 0; i < in_f_; ++i) {
        wg[i] += gj * x[i];
        gi[i] += gj * wrow[i];
      }
    }
  }
  grad_in.reshape(in_shape_);
  return grad_in;
}

std::vector<Param> Linear::params() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

// ------------------------------------------------------------- BatchNorm --

BatchNorm2d::BatchNorm2d(int channels, double momentum, double epsilon)
    : c_(channels), momentum_(momentum), eps_(epsilon) {
  LHD_CHECK(c_ > 0, "channels must be positive");
  gamma_.assign(static_cast<std::size_t>(c_), 1.0f);
  gamma_grad_.assign(gamma_.size(), 0.0f);
  beta_.assign(gamma_.size(), 0.0f);
  beta_grad_.assign(gamma_.size(), 0.0f);
  running_mean_.assign(gamma_.size(), 0.0f);
  running_var_.assign(gamma_.size(), 1.0f);
}

void BatchNorm2d::init(Rng& /*rng*/) {
  std::fill(gamma_.begin(), gamma_.end(), 1.0f);
  std::fill(beta_.begin(), beta_.end(), 0.0f);
  std::fill(running_mean_.begin(), running_mean_.end(), 0.0f);
  std::fill(running_var_.begin(), running_var_.end(), 1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  LHD_CHECK(input.rank() == 4 && input.dim(1) == c_,
            "batchnorm expects NCHW with matching channels");
  const int n = input.dim(0);
  const int h = input.dim(2);
  const int w = input.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const std::size_t per_c = static_cast<std::size_t>(n) * plane;
  in_shape_ = input.shape();

  Tensor out(input.shape());
  x_hat_ = Tensor(input.shape());
  inv_std_.assign(static_cast<std::size_t>(c_), 0.0f);
  trained_forward_ = training;

  for (int c = 0; c < c_; ++c) {
    double mean, var;
    if (training) {
      double sum = 0.0, sum2 = 0.0;
      for (int s = 0; s < n; ++s) {
        const float* p = input.data() +
                         (static_cast<std::size_t>(s) * c_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          sum += p[i];
          sum2 += static_cast<double>(p[i]) * p[i];
        }
      }
      mean = sum / static_cast<double>(per_c);
      var = std::max(0.0, sum2 / static_cast<double>(per_c) - mean * mean);
      running_mean_[static_cast<std::size_t>(c)] = static_cast<float>(
          momentum_ * running_mean_[static_cast<std::size_t>(c)] +
          (1.0 - momentum_) * mean);
      running_var_[static_cast<std::size_t>(c)] = static_cast<float>(
          momentum_ * running_var_[static_cast<std::size_t>(c)] +
          (1.0 - momentum_) * var);
    } else {
      mean = running_mean_[static_cast<std::size_t>(c)];
      var = running_var_[static_cast<std::size_t>(c)];
    }
    const auto istd = static_cast<float>(1.0 / std::sqrt(var + eps_));
    inv_std_[static_cast<std::size_t>(c)] = istd;
    const float g = gamma_[static_cast<std::size_t>(c)];
    const float b = beta_[static_cast<std::size_t>(c)];
    const auto m = static_cast<float>(mean);
    for (int s = 0; s < n; ++s) {
      const std::size_t off = (static_cast<std::size_t>(s) * c_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float xh = (input.data()[off + i] - m) * istd;
        x_hat_.data()[off + i] = xh;
        out.data()[off + i] = g * xh + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::infer(const Tensor& input) const {
  LHD_CHECK(input.rank() == 4 && input.dim(1) == c_,
            "batchnorm expects NCHW with matching channels");
  const int n = input.dim(0);
  const int h = input.dim(2);
  const int w = input.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;

  Tensor out(input.shape());
  for (int c = 0; c < c_; ++c) {
    const double mean = running_mean_[static_cast<std::size_t>(c)];
    const double var = running_var_[static_cast<std::size_t>(c)];
    const auto istd = static_cast<float>(1.0 / std::sqrt(var + eps_));
    const float g = gamma_[static_cast<std::size_t>(c)];
    const float b = beta_[static_cast<std::size_t>(c)];
    const auto m = static_cast<float>(mean);
    for (int s = 0; s < n; ++s) {
      const std::size_t off = (static_cast<std::size_t>(s) * c_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float xh = (input.data()[off + i] - m) * istd;
        out.data()[off + i] = g * xh + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  const int n = in_shape_[0];
  const int h = in_shape_[2];
  const int w = in_shape_[3];
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const auto per_c = static_cast<double>(static_cast<std::size_t>(n) * plane);

  Tensor grad_in(in_shape_);
  for (int c = 0; c < c_; ++c) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (int s = 0; s < n; ++s) {
      const std::size_t off = (static_cast<std::size_t>(s) * c_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum_g += grad_output.data()[off + i];
        sum_gx += static_cast<double>(grad_output.data()[off + i]) *
                  x_hat_.data()[off + i];
      }
    }
    gamma_grad_[static_cast<std::size_t>(c)] += static_cast<float>(sum_gx);
    beta_grad_[static_cast<std::size_t>(c)] += static_cast<float>(sum_g);
    // Training mode couples every output to the batch statistics; eval mode
    // treats mean/var as constants, so the input gradient is a pure scale.
    const double mean_g = trained_forward_ ? sum_g / per_c : 0.0;
    const double mean_gx = trained_forward_ ? sum_gx / per_c : 0.0;
    const float scale = gamma_[static_cast<std::size_t>(c)] *
                        inv_std_[static_cast<std::size_t>(c)];
    for (int s = 0; s < n; ++s) {
      const std::size_t off = (static_cast<std::size_t>(s) * c_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        grad_in.data()[off + i] = static_cast<float>(
            scale * (grad_output.data()[off + i] - mean_g -
                     x_hat_.data()[off + i] * mean_gx));
      }
    }
  }
  return grad_in;
}

std::vector<Param> BatchNorm2d::params() {
  return {{&gamma_, &gamma_grad_}, {&beta_, &beta_grad_}};
}

// --------------------------------------------------------------- Dropout --

Dropout::Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  LHD_CHECK(p >= 0 && p < 1, "dropout p must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || p_ == 0.0) {
    mask_.assign(input.size(), 1);
    return input;
  }
  Tensor out = input;
  mask_.assign(input.size(), 0);
  const auto scale = static_cast<float>(1.0 / (1.0 - p_));
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng_.next_double() >= p_) {
      mask_[i] = 1;
      out[i] *= scale;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor Dropout::infer(const Tensor& input) const { return input; }

Tensor Dropout::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const auto scale = static_cast<float>(1.0 / (1.0 - p_));
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] = mask_[i] ? grad[i] * scale : 0.0f;
  }
  return grad;
}

}  // namespace lhd::nn
