#include "lhd/nn/network.hpp"

#include "lhd/util/check.hpp"

namespace lhd::nn {

void Network::init(Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

Tensor Network::forward(const Tensor& input, bool training) {
  LHD_CHECK(!layers_.empty(), "empty network");
  Tensor t = input;
  for (auto& l : layers_) t = l->forward(t, training);
  return t;
}

Tensor Network::infer(const Tensor& input) const {
  LHD_CHECK(!layers_.empty(), "empty network");
  Tensor t = input;
  for (const auto& l : layers_) t = l->infer(t);
  return t;
}

Tensor Network::forward_batch(std::span<const std::vector<float>> rows,
                              const std::array<int, 3>& sample_shape) const {
  LHD_CHECK(!rows.empty(), "empty batch");
  const std::size_t sample = static_cast<std::size_t>(sample_shape[0]) *
                             static_cast<std::size_t>(sample_shape[1]) *
                             static_cast<std::size_t>(sample_shape[2]);
  Tensor in({static_cast<int>(rows.size()), sample_shape[0], sample_shape[1],
             sample_shape[2]});
  for (std::size_t s = 0; s < rows.size(); ++s) {
    LHD_CHECK(rows[s].size() == sample, "row size != input shape");
    std::copy(rows[s].begin(), rows[s].end(), in.data() + s * sample);
  }
  return infer(in);
}

void Network::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

std::vector<Param> Network::params() {
  std::vector<Param> all;
  for (auto& l : layers_) {
    for (auto& p : l->params()) all.push_back(p);
  }
  return all;
}

std::size_t Network::param_count() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->size();
  return n;
}

Network make_hotspot_cnn(int in_channels, int grid, bool batchnorm) {
  LHD_CHECK(grid % 4 == 0, "grid must be divisible by 4 (two pools)");
  Network net;
  net.add(std::make_unique<Conv2d>(in_channels, 24, 3, 1));
  if (batchnorm) net.add(std::make_unique<BatchNorm2d>(24));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Conv2d>(24, 24, 3, 1));
  if (batchnorm) net.add(std::make_unique<BatchNorm2d>(24));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<MaxPool2>());
  net.add(std::make_unique<Conv2d>(24, 32, 3, 1));
  if (batchnorm) net.add(std::make_unique<BatchNorm2d>(32));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<MaxPool2>());
  const int flat = 32 * (grid / 4) * (grid / 4);
  net.add(std::make_unique<Linear>(flat, 64));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Dropout>(0.3));
  net.add(std::make_unique<Linear>(64, 2));
  return net;
}

}  // namespace lhd::nn
