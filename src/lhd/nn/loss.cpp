#include "lhd/nn/loss.hpp"

#include <algorithm>
#include <cmath>

namespace lhd::nn {

Tensor softmax(const Tensor& logits) {
  LHD_CHECK(logits.rank() == 2, "softmax expects [N, C]");
  const int n = logits.dim(0);
  const int c = logits.dim(1);
  Tensor probs(logits.shape());
  for (int s = 0; s < n; ++s) {
    const float* in = logits.data() + static_cast<std::size_t>(s) * c;
    float* out = probs.data() + static_cast<std::size_t>(s) * c;
    float max_v = in[0];
    for (int j = 1; j < c; ++j) max_v = std::max(max_v, in[j]);
    double sum = 0.0;
    for (int j = 0; j < c; ++j) {
      out[j] = std::exp(in[j] - max_v);
      sum += out[j];
    }
    for (int j = 0; j < c; ++j) {
      out[j] = static_cast<float>(out[j] / sum);
    }
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits, const Tensor& targets) {
  LHD_CHECK(logits.shape() == targets.shape(), "logits/targets shape mismatch");
  const int n = logits.dim(0);
  const int c = logits.dim(1);
  LossResult r;
  r.probs = softmax(logits);
  r.grad = Tensor(logits.shape());
  double total = 0.0;
  for (int s = 0; s < n; ++s) {
    const float* p = r.probs.data() + static_cast<std::size_t>(s) * c;
    const float* t = targets.data() + static_cast<std::size_t>(s) * c;
    float* g = r.grad.data() + static_cast<std::size_t>(s) * c;
    for (int j = 0; j < c; ++j) {
      if (t[j] > 0) {
        total -= t[j] * std::log(std::max(p[j], 1e-12f));
      }
      g[j] = (p[j] - t[j]) / static_cast<float>(n);
    }
  }
  r.loss = total / n;
  return r;
}

}  // namespace lhd::nn
