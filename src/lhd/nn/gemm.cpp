#include "lhd/nn/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "lhd/nn/tensor.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/log.hpp"

namespace lhd::nn {

// ----------------------------------------------------------- path switch --

namespace {

#ifndef LHD_NN_KERNEL_DEFAULT
#define LHD_NN_KERNEL_DEFAULT "fast"
#endif

KernelPath parse_kernel_name(const std::string& name, const char* source) {
  if (name == "fast") return KernelPath::kFast;
  if (name == "reference") return KernelPath::kReference;
  LHD_CHECK_MSG(false, "unrecognized " << source << " kernel path '" << name
                                       << "' (want 'fast' or 'reference')");
}

/// Env (then compiled) default, resolved once on first use. The compiled
/// default still *throws* on an unknown name — that is a build
/// misconfiguration, not a deployment typo.
KernelPath env_default_path() {
  static const KernelPath path = parse_kernel_override(
      std::getenv("LHD_NN_KERNEL"),
      parse_kernel_name(LHD_NN_KERNEL_DEFAULT, "compiled-default"));
  return path;
}

/// -1 = no override, else static_cast<int>(KernelPath).
std::atomic<int> g_path_override{-1};

}  // namespace

KernelPath parse_kernel_override(const char* value, KernelPath fallback) {
  if (value == nullptr) return fallback;
  const std::string name(value);
  if (name == "fast") return KernelPath::kFast;
  if (name == "reference") return KernelPath::kReference;
  LHD_LOG(Warn) << "unrecognized LHD_NN_KERNEL value '" << name
                << "' (want 'fast' or 'reference') — falling back to the "
                << "compiled default '" << kernel_path_name(fallback) << "'";
  return fallback;
}

KernelPath active_kernel_path() {
  const int o = g_path_override.load(std::memory_order_relaxed);
  return o < 0 ? env_default_path() : static_cast<KernelPath>(o);
}

void set_kernel_path(KernelPath path) {
  g_path_override.store(static_cast<int>(path), std::memory_order_relaxed);
}

void clear_kernel_path_override() {
  g_path_override.store(-1, std::memory_order_relaxed);
}

const char* kernel_path_name(KernelPath path) {
  return path == KernelPath::kFast ? "fast" : "reference";
}

// ------------------------------------------------------------- reference --

void gemm_reference(int m, int n, int k, const float* a, int lda,
                    const float* b, int ldb, bool trans_b, float* c,
                    int ldc) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(lda);
    float* crow = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(ldc);
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float bv =
            trans_b ? b[static_cast<std::size_t>(j) * static_cast<std::size_t>(ldb) +
                        static_cast<std::size_t>(p)]
                    : b[static_cast<std::size_t>(p) * static_cast<std::size_t>(ldb) +
                        static_cast<std::size_t>(j)];
        acc += arow[p] * bv;
      }
      crow[j] += acc;
    }
  }
}

// --------------------------------------------------------------- blocked --
//
// Classic three-level cache blocking (GotoBLAS shape): panels of B
// (kKC × kNC) are packed into column-major-of-NR-slivers scratch, panels
// of A (kMC × kKC) into row-major-of-MR-slivers scratch, and a kMR × kNR
// register microkernel walks the packed panels. Packing zero-pads the
// sliver tails, so the microkernel always runs full kMR × kNR with no
// branches; the write-back clips to the real m × n. All scratch is
// kTensorAlignment-aligned and thread-local — concurrent infer() calls
// from scan shards never share packing buffers.

namespace {

// The 6×32 accumulator tile is what GCC's autovectorizer needs to keep the
// whole accumulator in vector registers (four AVX2 lanes or two AVX-512
// lanes per row): measured on an AVX-512 Xeon, 6×32 sustains ~150 GFLOP/s
// where a 4×16 tile fails to vectorize at all (~3 GFLOP/s).
constexpr int kMR = 6;    // microkernel rows (accumulator rows)
constexpr int kNR = 32;   // microkernel cols, in floats
constexpr int kMC = 96;   // A-panel rows kept L2-resident (multiple of kMR)
constexpr int kKC = 256;  // shared K extent of the packed panels
constexpr int kNC = 1024; // B-panel cols kept L3-resident (multiple of kNR)

inline std::size_t uz(int v) { return static_cast<std::size_t>(v); }

/// Pack a (mc × kc) block of A, rows [i0, i0+mc), cols [p0, p0+kc), into
/// slivers of kMR rows: sliver s holds kc groups of kMR floats, column by
/// column, rows beyond mc zero-filled.
void pack_a(const float* a, int lda, int i0, int p0, int mc, int kc,
            float* dst) {
  for (int i = 0; i < mc; i += kMR) {
    const int rows = std::min(kMR, mc - i);
    for (int p = 0; p < kc; ++p) {
      for (int r = 0; r < kMR; ++r) {
        *dst++ = r < rows ? a[uz(i0 + i + r) * uz(lda) + uz(p0 + p)] : 0.0f;
      }
    }
  }
}

/// Pack a (kc × nc) block of B, rows [p0, p0+kc), cols [j0, j0+nc), into
/// slivers of kNR columns: sliver s holds kc groups of kNR floats, row by
/// row, columns beyond nc zero-filled. With trans_b the source is the
/// (n × k) row-major matrix read through its transpose — packing absorbs
/// the transpose so the microkernel never sees it.
void pack_b(const float* b, int ldb, bool trans_b, int p0, int j0, int kc,
            int nc, float* dst) {
  for (int j = 0; j < nc; j += kNR) {
    const int cols = std::min(kNR, nc - j);
    for (int p = 0; p < kc; ++p) {
      if (trans_b) {
        for (int q = 0; q < kNR; ++q) {
          *dst++ = q < cols
                       ? b[uz(j0 + j + q) * uz(ldb) + uz(p0 + p)]
                       : 0.0f;
        }
      } else {
        const float* src = b + uz(p0 + p) * uz(ldb) + uz(j0 + j);
        for (int q = 0; q < kNR; ++q) {
          *dst++ = q < cols ? src[q] : 0.0f;
        }
      }
    }
  }
}

/// kMR × kNR microkernel: acc += Asliver * Bsliver over kc, accumulators
/// in registers, then C[i][j] += acc clipped to (rows × cols). The inner
/// q-loop is a fixed kNR-wide float FMA the autovectorizer lowers to full
/// vector lanes; the fixed-trip r/q loops unroll completely.
void micro_kernel(int kc, const float* apanel, const float* bpanel, float* c,
                  int ldc, int rows, int cols) {
  float acc[kMR][kNR] = {};
  for (int p = 0; p < kc; ++p) {
    const float* av = apanel + uz(p) * uz(kMR);
    const float* bv = bpanel + uz(p) * uz(kNR);
    for (int r = 0; r < kMR; ++r) {
      const float ar = av[r];
      for (int q = 0; q < kNR; ++q) {
        acc[r][q] += ar * bv[q];
      }
    }
  }
  for (int r = 0; r < rows; ++r) {
    float* crow = c + uz(r) * uz(ldc);
    for (int q = 0; q < cols; ++q) {
      crow[q] += acc[r][q];
    }
  }
}

/// micro_kernel twin that reads B in place (row-major, stride ldb) instead
/// of from a packed panel. Only called on full kNR-wide tiles, so every
/// bv[q] read stays inside the matrix; same accumulation order as the
/// packed kernel, so results are bit-identical.
void micro_kernel_direct_b(int kc, const float* apanel, const float* b,
                           int ldb, float* c, int ldc, int rows) {
  float acc[kMR][kNR] = {};
  for (int p = 0; p < kc; ++p) {
    const float* av = apanel + uz(p) * uz(kMR);
    const float* bv = b + uz(p) * uz(ldb);
    for (int r = 0; r < kMR; ++r) {
      const float ar = av[r];
      for (int q = 0; q < kNR; ++q) {
        acc[r][q] += ar * bv[q];
      }
    }
  }
  for (int r = 0; r < rows; ++r) {
    float* crow = c + uz(r) * uz(ldc);
    for (int q = 0; q < kNR; ++q) {
      crow[q] += acc[r][q];
    }
  }
}

/// Single-row C += a · Bᵀ — the batch-1 Linear shape (m = 1, trans_b).
/// The blocked path is pure overhead here: it packs a 1 × k A block into
/// kMR-row slivers that are 5/6 zeros and transpose-packs the whole weight
/// matrix into scratch to feed a microkernel computing 6 rows of which 5
/// are discarded. Instead, gather each p-row of the kNR-column tile into a
/// stack-local `btile` as it is consumed — the only "packing" left is one
/// register-resident row, never written to memory scratch.
///
/// Bit-equality contract (docs/PERFORMANCE.md): batched and per-sample
/// scores must agree bit-for-bit. Matching the accumulation *order* (kKC
/// chunks ascending, p ascending within a chunk, one chunk total added to
/// c[j] at a time) is necessary but NOT sufficient: the accumulator loop
/// must also have the same shape as micro_kernel's inner loop, so the
/// compiler makes the same FMA-contraction choice for both. A plain
/// single-float dot-product chain here measurably diverges — GCC -O3
/// vectorizes that reduction in-order *without* contracting, while the
/// microkernel's independent fixed-width accumulators contract to FMA,
/// and fma(a,b,acc) rounds once where a*b+acc rounds twice. Hence the
/// fixed kNR-wide `acc[] += av * btile[]` below, structurally identical
/// to micro_kernel's q-loop, zero-padded tail and all. Covered by
/// Gemm.BatchOneRowDirectBitEqualsBlockedRow and the nn-kernel-parity
/// oracle's memcmp case.
void gemm_row_direct(int n, int k, const float* a, const float* b, int ldb,
                     float* c) {
  for (int p0 = 0; p0 < k; p0 += kKC) {
    const int kc = std::min(kKC, k - p0);
    for (int j0 = 0; j0 < n; j0 += kNR) {
      const int cols = std::min(kNR, n - j0);
      float acc[kNR] = {};
      for (int p = 0; p < kc; ++p) {
        const float av = a[uz(p0 + p)];
        float btile[kNR];
        for (int q = 0; q < kNR; ++q) {
          btile[q] =
              q < cols ? b[uz(j0 + q) * uz(ldb) + uz(p0 + p)] : 0.0f;
        }
        for (int q = 0; q < kNR; ++q) {
          acc[q] += av * btile[q];
        }
      }
      for (int q = 0; q < cols; ++q) {
        c[j0 + q] += acc[q];
      }
    }
  }
}

void gemm_blocked(int m, int n, int k, const float* a, int lda,
                  const float* b, int ldb, bool trans_b, float* c, int ldc) {
  thread_local AlignedVec apack;
  thread_local AlignedVec bpack;
  apack.resize(uz(kMC) * uz(kKC));
  bpack.resize(uz(kKC) * uz(kNC));

  // With m ≤ kMC there is a single A block, so each packed B panel would be
  // consumed exactly once — packing it is pure memory traffic with zero
  // reuse. Read B in place instead (possible when it isn't transposed: the
  // microkernel's kNR-wide rows are contiguous in memory), and pack only
  // the n-tail sliver, whose zero-padding the direct kernel can't provide.
  // The im2col-lowered convolutions (m = out channels, n = batch·H·W) are
  // exactly this shape.
  const bool direct_b = !trans_b && m <= kMC;

  for (int j0 = 0; j0 < n; j0 += kNC) {
    const int nc = std::min(kNC, n - j0);
    for (int p0 = 0; p0 < k; p0 += kKC) {
      const int kc = std::min(kKC, k - p0);
      if (!direct_b) pack_b(b, ldb, trans_b, p0, j0, kc, nc, bpack.data());
      for (int i0 = 0; i0 < m; i0 += kMC) {
        const int mc = std::min(kMC, m - i0);
        pack_a(a, lda, i0, p0, mc, kc, apack.data());
        for (int jr = 0; jr < nc; jr += kNR) {
          const int cols = std::min(kNR, nc - jr);
          const float* bdirect = nullptr;
          const float* bpanel = nullptr;
          if (direct_b && cols == kNR) {
            bdirect = b + uz(p0) * uz(ldb) + uz(j0 + jr);
          } else if (direct_b) {
            pack_b(b, ldb, false, p0, j0 + jr, kc, cols, bpack.data());
            bpanel = bpack.data();
          } else {
            bpanel = bpack.data() + uz(jr) * uz(kc);
          }
          for (int ir = 0; ir < mc; ir += kMR) {
            const float* apanel = apack.data() + uz(ir) * uz(kc);
            const int rows = std::min(kMR, mc - ir);
            float* ctile = c + uz(i0 + ir) * uz(ldc) + uz(j0 + jr);
            if (bdirect != nullptr) {
              micro_kernel_direct_b(kc, apanel, bdirect, ldb, ctile, ldc,
                                    rows);
            } else {
              micro_kernel(kc, apanel, bpanel, ctile, ldc, rows, cols);
            }
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(int m, int n, int k, const float* a, int lda, const float* b,
          int ldb, bool trans_b, float* c, int ldc) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) return;  // C += A*B with empty K is a no-op
  if (m == 1 && trans_b) {
    gemm_row_direct(n, k, a, b, ldb, c);
    return;
  }
  gemm_blocked(m, n, k, a, lda, b, ldb, trans_b, c, ldc);
}

}  // namespace lhd::nn
