#pragma once
// Dense float tensor with dynamic shape (row-major). Deliberately minimal:
// the layers below need shape bookkeeping and raw storage, nothing more.

#include <initializer_list>
#include <numeric>
#include <vector>

#include "lhd/util/check.hpp"

namespace lhd::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  const std::vector<int>& shape() const { return shape_; }
  int dim(std::size_t i) const {
    LHD_CHECK(i < shape_.size(), "dim index out of range");
    return shape_[i];
  }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Change the shape without touching data (total size must match).
  void reshape(std::vector<int> shape);

  friend bool operator==(const Tensor&, const Tensor&) = default;

  /// Total element count implied by a shape.
  static std::size_t count(const std::vector<int>& shape);

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace lhd::nn
