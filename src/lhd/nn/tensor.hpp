#pragma once
// Dense float tensor with dynamic shape (row-major). Deliberately minimal:
// the layers below need shape bookkeeping and raw storage, nothing more.
// Storage is 32-byte aligned (kTensorAlignment) so the blocked GEMM and
// the compiler's autovectorizer get aligned base pointers on every tensor
// and scratch buffer; the element layout itself is dense — logical shape
// and size() are never padded, padding happens only inside the kernels'
// packed scratch panels (docs/PERFORMANCE.md spells out the contract).

#include <cstddef>
#include <initializer_list>
#include <new>
#include <numeric>
#include <vector>

#include "lhd/util/check.hpp"

namespace lhd::nn {

/// Byte alignment of all tensor (and kernel scratch) storage: one AVX2
/// float lane. Power of two, ≥ alignof(float).
inline constexpr std::size_t kTensorAlignment = 32;

/// Minimal aligned allocator so tensor storage stays a std::vector (copy,
/// resize and comparison semantics unchanged) while data() is guaranteed
/// kTensorAlignment-aligned.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment power of 2");
  static_assert(Alignment >= alignof(T), "alignment below natural");

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t /*n*/) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Aligned float buffer: tensor storage and kernel packing scratch.
using AlignedVec = std::vector<float, AlignedAllocator<float, kTensorAlignment>>;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  const std::vector<int>& shape() const { return shape_; }
  int dim(std::size_t i) const {
    LHD_CHECK(i < shape_.size(), "dim index out of range");
    return shape_[i];
  }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  AlignedVec& storage() { return data_; }
  const AlignedVec& storage() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Change the shape without touching data (total size must match).
  void reshape(std::vector<int> shape);

  friend bool operator==(const Tensor&, const Tensor&) = default;

  /// Total element count implied by a shape.
  static std::size_t count(const std::vector<int>& shape);

 private:
  std::vector<int> shape_;
  AlignedVec data_;
};

}  // namespace lhd::nn
