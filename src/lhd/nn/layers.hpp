#pragma once
// Neural-network layers with explicit forward/backward passes. Batched
// NCHW tensors; convolution is im2col + matmul, the standard CPU route.
// Conv2d and Linear forwards run through the blocked GEMM in gemm.hpp by
// default and keep their original naive loops as a selectable reference
// path (`LHD_NN_KERNEL`); see docs/PERFORMANCE.md for the contract.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "lhd/nn/tensor.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::nn {

/// A trainable parameter: the value vector and its gradient accumulator.
struct Param {
  std::vector<float>* value = nullptr;
  std::vector<float>* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Forward pass; `training` toggles dropout-style behaviour. The layer
  /// caches whatever it needs for backward().
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Evaluation-mode forward pass with no side effects: no backward caches
  /// are written, so concurrent infer() calls on the same layer are safe.
  /// Output is bit-identical to forward(input, /*training=*/false).
  virtual Tensor infer(const Tensor& input) const = 0;

  /// Backward pass: takes dL/d(output), accumulates parameter gradients,
  /// returns dL/d(input).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param> params() { return {}; }

  /// Initialize weights (He-normal for conv/fc); stateless layers no-op.
  virtual void init(Rng& /*rng*/) {}
};

/// 2-D convolution, stride 1, symmetric zero padding.
class Conv2d final : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int pad);

  std::string name() const override { return "conv2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  void init(Rng& rng) override;

  int in_channels() const { return in_c_; }
  int out_channels() const { return out_c_; }

 private:
  /// Shape checks, then dispatch on the active kernel path.
  Tensor apply(const Tensor& input) const;
  /// The original per-sample naive loops — the differential oracle.
  Tensor apply_reference(const Tensor& input) const;
  /// Batched im2col+GEMM: one col matrix and one blocked GEMM per chunk
  /// of samples (the whole batch when it fits the scratch budget).
  Tensor apply_gemm(const Tensor& input) const;
  /// Writes the im2col row r for this sample at col + r*pitch (pitch ≥
  /// oh*ow; the batched path interleaves samples with a larger pitch).
  void im2col(const float* src, int h, int w, float* col,
              std::size_t pitch) const;
  void col2im(const float* col, int h, int w, float* dst) const;

  int in_c_, out_c_, k_, pad_;
  std::vector<float> weight_, weight_grad_;  // [out_c][in_c*k*k]
  std::vector<float> bias_, bias_grad_;      // [out_c]
  Tensor input_;                             // cached for backward
};

class Relu final : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  std::vector<std::uint8_t> mask_;
};

/// 2x2 max pooling, stride 2 (input H, W must be even).
class MaxPool2 final : public Layer {
 public:
  std::string name() const override { return "maxpool2"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor apply(const Tensor& input, std::vector<int>* argmax) const;

  std::vector<int> argmax_;
  std::vector<int> in_shape_;
};

/// Fully connected layer; flattens any input to [N, in_features].
class Linear final : public Layer {
 public:
  Linear(int in_features, int out_features);

  std::string name() const override { return "linear"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  void init(Rng& rng) override;

 private:
  /// Shape checks, then dispatch on the active kernel path.
  Tensor apply(const Tensor& input) const;
  Tensor apply_reference(const Tensor& input) const;
  Tensor apply_gemm(const Tensor& input) const;

  int in_f_, out_f_;
  std::vector<float> weight_, weight_grad_;  // [out_f][in_f]
  std::vector<float> bias_, bias_grad_;
  Tensor input_;
  std::vector<int> in_shape_;
};

/// Per-channel batch normalization for NCHW tensors. Training uses batch
/// statistics and maintains running estimates; evaluation uses the running
/// estimates.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(int channels, double momentum = 0.9,
                       double epsilon = 1e-5);

  std::string name() const override { return "batchnorm2d"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  void init(Rng& rng) override;

 private:
  int c_;
  double momentum_, eps_;
  std::vector<float> gamma_, gamma_grad_;
  std::vector<float> beta_, beta_grad_;
  std::vector<float> running_mean_, running_var_;
  // backward cache
  Tensor x_hat_;
  std::vector<float> inv_std_;
  std::vector<int> in_shape_;
  bool trained_forward_ = true;  ///< mode of the cached forward pass
};

/// Inverted dropout (train-time scaling by 1/(1-p)).
class Dropout final : public Layer {
 public:
  explicit Dropout(double p, std::uint64_t seed = 7);

  std::string name() const override { return "dropout"; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  double p_;
  Rng rng_;
  std::vector<std::uint8_t> mask_;
};

}  // namespace lhd::nn
