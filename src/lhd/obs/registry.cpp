#include "lhd/obs/registry.hpp"

#include <cstdlib>
#include <string_view>

namespace lhd::obs {

namespace {

#ifndef LHD_OBS_DISABLED
bool env_default() {
  const char* v = std::getenv("LHD_OBS");
  if (v == nullptr) return true;
  const std::string_view s(v);
  return !(s == "off" || s == "OFF" || s == "0" || s == "false" ||
           s == "FALSE");
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_default()};
  return flag;
}
#endif

}  // namespace

bool enabled() {
#ifdef LHD_OBS_DISABLED
  return false;
#else
  return enabled_flag().load(std::memory_order_relaxed);
#endif
}

void set_enabled(bool on) {
#ifdef LHD_OBS_DISABLED
  (void)on;
#else
  enabled_flag().store(on, std::memory_order_relaxed);
#endif
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  const MutexLock lock(mutex_);
  return counters_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  const MutexLock lock(mutex_);
  return histograms_[name];
}

void Registry::add(const std::string& name, std::uint64_t delta) {
  if (!enabled()) return;
  counter(name).add(delta);
}

void Registry::observe(const std::string& name, double value) {
  if (!enabled()) return;
  histogram(name).observe(value);
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  const MutexLock lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter.value();
  return out;
}

std::map<std::string, HistogramSnapshot> Registry::histograms() const {
  const MutexLock lock(mutex_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) out[name] = hist.snapshot();
  return out;
}

void Registry::reset() {
  const MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter.reset();
  for (auto& [name, hist] : histograms_) hist.reset();
}

}  // namespace lhd::obs
