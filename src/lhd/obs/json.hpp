#pragma once
/// @file json.hpp
/// @brief Minimal JSON value type with a deterministic serializer (sorted
/// object keys, shortest-round-trip number formatting) and a strict
/// recursive-descent parser — just enough for `RunReport` files.
///
/// Thread-safety: `Json` is a plain value type with no global state; a
/// given instance may be read concurrently but not mutated concurrently.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lhd::obs {

/// One JSON value: null, bool, number (int64 or double), string, array or
/// object. Objects keep their keys in a `std::map`, so serialization order
/// is alphabetical and therefore deterministic across runs.
class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(int v) : type_(Type::Int), int_(v) {}
  Json(long v) : type_(Type::Int), int_(v) {}
  Json(long long v) : type_(Type::Int), int_(v) {}
  Json(unsigned v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v)
      : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long long v)
      : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : type_(Type::Double), double_(v) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::String), string_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const { return int_; }
  /// Numeric value as double regardless of integer/float representation.
  double as_double() const {
    return type_ == Type::Int ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return array_; }
  const std::map<std::string, Json>& members() const { return object_; }

  /// Object access; creates the key (and coerces a null to an object).
  Json& operator[](const std::string& key);
  /// Read-only object lookup; returns a shared null for missing keys.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Array append (coerces a null to an array).
  void push_back(Json value);

  std::size_t size() const;

  friend bool operator==(const Json&, const Json&);

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits compact one-line JSON. Output is byte-deterministic
  /// for equal values.
  std::string dump(int indent = 2) const;

  /// Strict parser (no comments, no trailing commas). Throws
  /// `std::runtime_error` with an offset on malformed input.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace lhd::obs
