#pragma once
/// @file timer.hpp
/// @brief RAII scoped wall-clock timers feeding obs histograms, with an
/// accumulator mode for contention-free per-thread timing.
///
/// Thread-safety: a `ScopedTimer` instance is used by one thread (it is a
/// stack object). The histogram-targeting constructors record through the
/// thread-safe `Histogram`/`Registry`; the accumulator constructor writes
/// a caller-owned `double`, so a shard can time thousands of scopes with
/// zero synchronization and flush the total to a histogram once.

#include <chrono>
#include <string>

#include "lhd/obs/registry.hpp"

namespace lhd::obs {

/// Times the enclosing scope. Destinations:
///  * `ScopedTimer(hist)` — observe elapsed seconds into a Histogram;
///  * `ScopedTimer("name")` — into Registry::global().histogram("name");
///  * `ScopedTimer(acc)` — add elapsed seconds to a plain double the
///    caller owns (per-thread accumulation; flush the double yourself).
/// When obs is disabled (LHD_OBS=off or -DLHD_OBS=OFF) construction skips
/// the clock read and destruction records nothing.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) : hist_(&hist) { start(); }

  explicit ScopedTimer(const std::string& name) {
    if (!enabled()) return;
    hist_ = &Registry::global().histogram(name);
    start();
  }

  explicit ScopedTimer(double& accumulator) : accum_(&accumulator) {
    start();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Record now instead of at scope exit; returns elapsed seconds (0.0 if
  /// already stopped or obs is disabled). Idempotent.
  double stop() {
    if (!running_) return 0.0;
    running_ = false;
    const double s =
        std::chrono::duration<double>(Clock::now() - start_).count();
    if (hist_ != nullptr) hist_->observe(s);
    if (accum_ != nullptr) *accum_ += s;
    return s;
  }

  /// Seconds since construction without stopping (0.0 when not running).
  double elapsed() const {
    if (!running_) return 0.0;
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;

  void start() {
    if (!enabled()) return;
    running_ = true;
    start_ = Clock::now();
  }

  Histogram* hist_ = nullptr;
  double* accum_ = nullptr;
  bool running_ = false;
  Clock::time_point start_{};
};

}  // namespace lhd::obs
