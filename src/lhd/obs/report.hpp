#pragma once
/// @file report.hpp
/// @brief `RunReport`: a whole run (tool, suite, config, timed phases,
/// counter/histogram totals) serialized to deterministic JSON — the
/// machine-readable output behind the `BENCH_*.json` files.
///
/// Thread-safety: a RunReport is built by one thread (typically main after
/// the measured work finishes); `capture_registry()` reads the thread-safe
/// registry, so it may run while workers are still counting, but the
/// snapshot is only guaranteed complete once they have joined.

#include <string>

#include "lhd/obs/json.hpp"
#include "lhd/obs/registry.hpp"

namespace lhd::obs {

/// Accumulates one run's description and serializes it. Top-level schema
/// (keys always present, alphabetically ordered by the serializer):
///
/// {
///   "config":     { ... },            // set_config() key/values
///   "counters":   { "name": n },      // capture_registry()
///   "histograms": { "name": {count,max,mean,min,sum} },
///   "phases":     [ {"name", "seconds", ...extras} ],  // insertion order
///   "schema":     "lhd.run_report/1",
///   "suite":      "B2",
///   "tool":       "fig8_scan"
/// }
///
/// Within the fixed shape every value except wall/CPU times is
/// deterministic for deterministic workloads: counter totals, window
/// counts and hit tallies reproduce bit-identically run to run; only
/// "seconds"-like fields vary.
class RunReport {
 public:
  explicit RunReport(std::string tool, std::string suite = "");

  /// Record one configuration knob (stride, threads, detector, ...).
  void set_config(const std::string& key, Json value);

  /// Append a timed phase. `extra` must be an object (or null); its
  /// members are merged into the phase entry alongside name/seconds.
  void add_phase(const std::string& name, double seconds,
                 Json extra = Json());

  /// Snapshot a registry's counters and histograms into the report.
  void capture_registry(const Registry& registry = Registry::global());

  /// Mutable access for fields outside the helpers above.
  Json& root() { return root_; }
  const Json& root() const { return root_; }

  std::string to_json(int indent = 2) const { return root_.dump(indent); }

  /// Write to_json() + trailing newline to `path`; logs and returns false
  /// on I/O failure.
  bool write(const std::string& path) const;

 private:
  Json root_;
};

}  // namespace lhd::obs
