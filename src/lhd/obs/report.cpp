#include "lhd/obs/report.hpp"

#include <fstream>

#include "lhd/util/log.hpp"

namespace lhd::obs {

RunReport::RunReport(std::string tool, std::string suite) {
  root_ = Json::object();
  root_["schema"] = "lhd.run_report/1";
  root_["tool"] = std::move(tool);
  root_["suite"] = std::move(suite);
  root_["config"] = Json::object();
  root_["phases"] = Json::array();
  root_["counters"] = Json::object();
  root_["histograms"] = Json::object();
}

void RunReport::set_config(const std::string& key, Json value) {
  root_["config"][key] = std::move(value);
}

void RunReport::add_phase(const std::string& name, double seconds,
                          Json extra) {
  Json phase = Json::object();
  phase["name"] = name;
  phase["seconds"] = seconds;
  if (extra.is_object()) {
    for (const auto& [key, value] : extra.members()) phase[key] = value;
  }
  root_["phases"].push_back(std::move(phase));
}

void RunReport::capture_registry(const Registry& registry) {
  Json counters = Json::object();
  for (const auto& [name, value] : registry.counters()) {
    counters[name] = static_cast<long long>(value);
  }
  root_["counters"] = std::move(counters);

  Json hists = Json::object();
  for (const auto& [name, snap] : registry.histograms()) {
    Json h = Json::object();
    h["count"] = static_cast<long long>(snap.count);
    if (snap.count > 0) {
      h["sum"] = snap.sum;
      h["min"] = snap.min;
      h["max"] = snap.max;
      h["mean"] = snap.mean();
    }
    hists[name] = std::move(h);
  }
  root_["histograms"] = std::move(hists);
}

bool RunReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    LHD_LOG(Warn) << "RunReport: cannot open " << path << " for writing";
    return false;
  }
  out << to_json() << "\n";
  if (!out) {
    LHD_LOG(Warn) << "RunReport: short write to " << path;
    return false;
  }
  LHD_LOG(Info) << "wrote run report " << path;
  return true;
}

}  // namespace lhd::obs
