#pragma once
/// @file obs.hpp
/// @brief Umbrella header for the lhd::obs observability layer: named
/// counters/histograms (`Registry`), RAII scoped timers (`ScopedTimer`),
/// deterministic JSON (`Json`) and whole-run reports (`RunReport`).
///
/// Switches: build with -DLHD_OBS=OFF to compile recording out entirely,
/// or set the LHD_OBS=off environment variable to disable it at runtime
/// (obs::enabled() / obs::set_enabled()). Either way the instrumented and
/// uninstrumented pipelines produce bit-identical results — instruments
/// only ever observe, never steer.
///
/// Thread-safety: everything here is safe for concurrent use; see the
/// individual headers for the precise guarantees.

#include "lhd/obs/json.hpp"
#include "lhd/obs/registry.hpp"
#include "lhd/obs/report.hpp"
#include "lhd/obs/timer.hpp"
