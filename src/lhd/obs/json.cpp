#include "lhd/obs/json.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace lhd::obs {

namespace {

const Json& shared_null() {
  static const Json null;
  return null;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  // Shortest round-trip representation: deterministic for equal doubles
  // and stable across runs, unlike locale-dependent printf formatting.
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
  // Keep floats visually distinct from integers ("1" -> "1e0" is what
  // to_chars gives only sometimes; add ".0" when the text parses as int).
  const std::string_view text(buf, static_cast<std::size_t>(res.ptr - buf));
  if (text.find_first_of(".eE") == std::string_view::npos) out += ".0";
}

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) {
    throw std::runtime_error("Json::operator[]: not an object");
  }
  return object_[key];
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::Object) return shared_null();
  const auto it = object_.find(key);
  return it == object_.end() ? shared_null() : it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::Object && object_.count(key) > 0;
}

void Json::push_back(Json value) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) {
    throw std::runtime_error("Json::push_back: not an array");
  }
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::Array: return array_.size();
    case Type::Object: return object_.size();
    case Type::String: return string_.size();
    default: return 0;
  }
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) {
    // Int and Double compare numerically so a parsed "2.0" still matches.
    const bool numeric_a =
        a.type_ == Json::Type::Int || a.type_ == Json::Type::Double;
    const bool numeric_b =
        b.type_ == Json::Type::Int || b.type_ == Json::Type::Double;
    return numeric_a && numeric_b && a.as_double() == b.as_double();
  }
  switch (a.type_) {
    case Json::Type::Null: return true;
    case Json::Type::Bool: return a.bool_ == b.bool_;
    case Json::Type::Int: return a.int_ == b.int_;
    case Json::Type::Double: return a.double_ == b.double_;
    case Json::Type::String: return a.string_ == b.string_;
    case Json::Type::Array: return a.array_ == b.array_;
    case Json::Type::Object: return a.object_ == b.object_;
  }
  return false;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf), int_);
      out.append(buf, res.ptr);
      break;
    }
    case Type::Double: append_double(out, double_); break;
    case Type::String: append_escaped(out, string_); break;
    case Type::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& item : array_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        append_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the code point as UTF-8 (BMP only; the serializer never
          // emits escapes above U+001F, so this covers round-trips).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view text(text_.data() + start, pos_ - start);
    if (text.empty()) fail("expected value");
    if (text.find_first_of(".eE") == std::string_view::npos) {
      std::int64_t v = 0;
      const auto res = std::from_chars(text.begin(), text.end(), v);
      if (res.ec == std::errc() && res.ptr == text.end()) return Json(v);
    }
    double v = 0.0;
    const auto res = std::from_chars(text.begin(), text.end(), v);
    if (res.ec != std::errc() || res.ptr != text.end()) fail("bad number");
    return Json(v);
  }

  Json array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out[key] = value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace lhd::obs
