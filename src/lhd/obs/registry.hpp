#pragma once
/// @file registry.hpp
/// @brief Named monotonic counters and value histograms behind a
/// process-wide (or caller-owned) `Registry`.
///
/// Thread-safety: every operation on `Counter`, `Histogram` and `Registry`
/// is safe to call concurrently. Counters are relaxed atomics (monotonic
/// totals, no ordering guarantees); histograms take a short per-histogram
/// mutex; the registry's name maps are guarded by a mutex but hand out
/// stable references, so hot paths look a counter up once and then update
/// it lock-free. The locking discipline is annotated (LHD_GUARDED_BY) and
/// machine-checked under Clang — see docs/STATIC_ANALYSIS.md.

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "lhd/util/thread_annotations.hpp"

namespace lhd::obs {

/// Whether instrumentation is recorded. Compile-time off when the build
/// defines LHD_OBS_DISABLED (CMake -DLHD_OBS=OFF); otherwise read once
/// from the LHD_OBS environment variable ("off"/"0"/"false" disable) and
/// overridable at runtime with set_enabled() (used by tests and overhead
/// measurement). Disabled means Registry::add/observe and ScopedTimer
/// become no-ops; explicitly-held Counter/Histogram references still work.
bool enabled();

/// Runtime override of the LHD_OBS environment switch. No-op (stays off)
/// in LHD_OBS_DISABLED builds.
void set_enabled(bool on);

/// Monotonic event counter. add() is wait-free (relaxed fetch_add).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Aggregate view of a histogram at one point in time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Streaming count/sum/min/max of observed values (typically seconds).
/// observe() takes a short mutex — fine for per-shard / per-epoch / per-run
/// observations; for per-item hot loops accumulate locally and observe the
/// total once (see ScopedTimer's accumulator mode).
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value) noexcept {
    const MutexLock lock(mutex_);
    ++snap_.count;
    snap_.sum += value;
    if (value < snap_.min) snap_.min = value;
    if (value > snap_.max) snap_.max = value;
  }

  HistogramSnapshot snapshot() const {
    const MutexLock lock(mutex_);
    return snap_;
  }

  void reset() {
    const MutexLock lock(mutex_);
    snap_ = HistogramSnapshot{};
  }

 private:
  mutable Mutex mutex_;
  HistogramSnapshot snap_ LHD_GUARDED_BY(mutex_);
};

/// Name -> Counter/Histogram registry. Instruments register lazily on
/// first use; names are conventionally dotted paths ("scan.windows_total",
/// "nn.epoch_seconds"). References returned by counter()/histogram() stay
/// valid for the registry's lifetime (std::map nodes are stable).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrument records into.
  static Registry& global();

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Convenience recording; no-ops (without creating the instrument) when
  /// obs is disabled, so call sites need no enabled() guard of their own.
  void add(const std::string& name, std::uint64_t delta = 1);
  void observe(const std::string& name, double value);

  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, HistogramSnapshot> histograms() const;

  /// Zero every instrument (names stay registered).
  void reset();

 private:
  mutable Mutex mutex_;
  std::map<std::string, Counter> counters_ LHD_GUARDED_BY(mutex_);
  std::map<std::string, Histogram> histograms_ LHD_GUARDED_BY(mutex_);
};

}  // namespace lhd::obs
