#pragma once
// Minimal leveled logger. Thread-safe line-at-a-time output to stderr.
//
//   LHD_LOG(Info) << "trained " << n << " epochs";
//
// The global level defaults to Info; set_log_level(Level::Debug) to see more,
// Level::Off to silence (used by tests and micro-benchmarks).

#include <sstream>
#include <string_view>

namespace lhd {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) os_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace lhd

#define LHD_LOG(severity)                                                  \
  ::lhd::detail::LogLine(::lhd::LogLevel::severity, __FILE__, __LINE__)
