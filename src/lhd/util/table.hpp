#pragma once
// Plain-text table rendering + CSV export for the benchmark harnesses.
// Every table/figure binary prints its rows through this so the output
// format is uniform and machine-scrapable.

#include <iosfwd>
#include <string>
#include <vector>

namespace lhd {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles/ints into cells.
  static std::string cell(double v, int precision = 2);
  static std::string cell(long long v);

  /// Render as an aligned ASCII table.
  std::string to_text() const;

  /// Render as CSV (header + rows).
  std::string to_csv() const;

  /// Print to stream (text form).
  void print(std::ostream& os) const;

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lhd
