#pragma once
// Tiny --flag=value command-line parser for examples and bench harnesses.
//
//   lhd::Cli cli(argc, argv);
//   const int epochs = cli.get_int("epochs", 20);
//   const std::string suite = cli.get_string("suite", "B2");

#include <cstdint>
#include <map>
#include <string>

namespace lhd {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& def = "") const;
  long long get_int(const std::string& name, long long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace lhd
