#pragma once
// Precondition / invariant checking.
//
// LHD_CHECK(cond, msg...) throws lhd::Error on violation; it is active in all
// build types because the costs here are negligible next to the numerical
// kernels, and a hard failure with context beats silent corruption.

#include <sstream>
#include <stdexcept>
#include <string>

namespace lhd {

/// Base error type for all lhd failures (bad arguments, parse errors,
/// violated invariants). Derives from std::runtime_error so callers may
/// catch either.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace lhd

#define LHD_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::lhd::detail::check_failed(#cond, __FILE__, __LINE__,              \
                                  ::std::string(__VA_ARGS__));            \
    }                                                                     \
  } while (false)

#define LHD_CHECK_MSG(cond, stream_expr)                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::std::ostringstream lhd_check_os_;                                 \
      lhd_check_os_ << stream_expr;                                       \
      ::lhd::detail::check_failed(#cond, __FILE__, __LINE__,              \
                                  lhd_check_os_.str());                   \
    }                                                                     \
  } while (false)
