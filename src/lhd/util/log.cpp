#include "lhd/util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "lhd/util/thread_annotations.hpp"

namespace lhd {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
// Serializes line writes so concurrent LHD_LOG statements never
// interleave mid-line; the guarded resource is the stderr stream itself.
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

LogLine::LogLine(LogLevel level, std::string_view file, int line)
    : enabled_(level >= g_level.load() && level != LogLevel::Off) {
  if (!enabled_) return;
  // Keep only the basename for brevity.
  const auto slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  os_ << "[" << level_name(level) << " " << file << ":" << line << "] ";
}

LogLine::~LogLine() {
  if (!enabled_) return;
  os_ << '\n';
  const std::string line = os_.str();
  const MutexLock lock(g_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail
}  // namespace lhd
