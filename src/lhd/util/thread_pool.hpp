#pragma once
// Fixed-size worker pool with a parallel_for convenience wrapper.
//
// The labeling and feature-extraction stages are embarrassingly parallel
// over clips; on a single-core host the pool degenerates gracefully (the
// caller thread executes chunks directly when the pool has one worker).
//
// Locking discipline (machine-checked under Clang, see
// docs/STATIC_ANALYSIS.md): queue_ and stop_ are only touched with
// mutex_ held; cv_ wakes workers when either changes.

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "lhd/util/check.hpp"
#include "lhd/util/thread_annotations.hpp"

namespace lhd {

/// Thrown (via the returned future) when a task is submitted to a pool
/// that has been shut down. A long-lived process must be able to lose the
/// submit-vs-shutdown race without dying: the caller observes this error
/// from future::get() and rejects or re-routes the work, instead of the
/// whole process aborting inside submit().
class PoolStopped : public Error {
 public:
  PoolStopped() : Error("thread pool is stopped — task rejected") {}
};

/// Hardware thread count, never 0. The sanctioned query point: lhd_lint's
/// header-hygiene rule bans touching std::thread anywhere outside this
/// module, so thread sizing stays decided in one place.
std::size_t hardware_threads();

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task; the future resolves when it has run.
  /// After shutdown() (or concurrently with it — the race is benign and
  /// safe to lose) the task is NOT queued and the returned future holds a
  /// PoolStopped error instead; submit never throws and never aborts.
  std::future<void> submit(std::function<void()> task);

  /// Stop accepting tasks, drain the queue, and join every worker.
  /// Idempotent and safe to call concurrently with submit(); the
  /// destructor calls it. Tasks already queued still run to completion;
  /// tasks submitted after (or racing past) the stop flag get PoolStopped
  /// futures.
  void shutdown();

  /// Run fn(i) for every i in [begin, end), blocking until all complete.
  /// Work is split into roughly 4x#workers contiguous chunks. If any
  /// invocation throws, every chunk is still awaited before the first
  /// exception is rethrown (so no chunk outlives the call).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool.
  static ThreadPool& global();

  /// True when the calling thread is a worker of *any* ThreadPool. Code
  /// that fans work out to a pool from inside a task must check this and
  /// run inline instead: a worker blocking on futures that only other
  /// workers can drain deadlocks once every worker is blocked the same
  /// way (nested parallel_for is the canonical instance).
  static bool on_worker();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::packaged_task<void()>> queue_ LHD_GUARDED_BY(mutex_);
  bool stop_ LHD_GUARDED_BY(mutex_) = false;
  bool joined_ LHD_GUARDED_BY(mutex_) = false;
};

}  // namespace lhd
