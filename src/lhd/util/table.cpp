#include "lhd/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "lhd/util/check.hpp"

namespace lhd {

void Table::set_header(std::vector<std::string> header) {
  LHD_CHECK(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  LHD_CHECK_MSG(row.size() == header_.size(),
                "row width " << row.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::cell(long long v) { return std::to_string(v); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text() << std::flush; }

}  // namespace lhd
