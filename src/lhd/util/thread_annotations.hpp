#pragma once
/// @file thread_annotations.hpp
/// @brief Clang Thread Safety Analysis vocabulary plus the annotated
/// `lhd::Mutex` / `lhd::MutexLock` / `lhd::CondVar` shims every locked
/// data structure in the tree uses instead of raw `std::mutex`.
///
/// With Clang, a build carries `-Wthread-safety -Werror=thread-safety`
/// (wired unconditionally in the top-level CMakeLists), so touching an
/// `LHD_GUARDED_BY` member without holding its mutex — or releasing a
/// mutex a function promised to hold via `LHD_REQUIRES` — is a compile
/// error, not a hope that a TSan run hits the interleaving. With GCC the
/// macros expand to nothing and the shims behave exactly like the
/// standard primitives they wrap. See docs/STATIC_ANALYSIS.md for the
/// full vocabulary and a triage guide; scripts/check_thread_safety.sh
/// holds the machine-checked negative fixture proving the analysis bites.
///
/// Thread-safety: `Mutex` and `CondVar` are themselves safe for
/// concurrent use (they are synchronization primitives); `MutexLock` is
/// a stack object owned by one thread.

#include <condition_variable>
#include <mutex>

// Attribute plumbing: Clang exposes the analysis through GNU-style
// attributes; every other compiler sees empty macros.
#if defined(__clang__)
#define LHD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LHD_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define LHD_CAPABILITY(x) LHD_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define LHD_SCOPED_CAPABILITY LHD_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read/written while holding `x`.
#define LHD_GUARDED_BY(x) LHD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is protected by `x`.
#define LHD_PT_GUARDED_BY(x) LHD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering edges, for deadlock findings across multiple mutexes.
#define LHD_ACQUIRED_BEFORE(...) \
  LHD_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LHD_ACQUIRED_AFTER(...) \
  LHD_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the listed capabilities to be held on entry (and
/// they stay held: the function neither acquires nor releases them).
#define LHD_REQUIRES(...) \
  LHD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires / releases the listed capabilities.
#define LHD_ACQUIRE(...) \
  LHD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LHD_RELEASE(...) \
  LHD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given bool, e.g.
/// `bool try_lock() LHD_TRY_ACQUIRE(true)`.
#define LHD_TRY_ACQUIRE(...) \
  LHD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (non-reentrancy).
#define LHD_EXCLUDES(...) LHD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define LHD_RETURN_CAPABILITY(x) LHD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (e.g. a predicate
/// lambda invoked under the mutex by type-erased std machinery). Use
/// sparingly and say why at the use site.
#define LHD_NO_THREAD_SAFETY_ANALYSIS \
  LHD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace lhd {

/// `std::mutex` with the capability annotation the analysis needs.
/// Drop-in: satisfies BasicLockable/Lockable, so it also works directly
/// with `std::condition_variable_any` (see CondVar).
class LHD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LHD_ACQUIRE() { m_.lock(); }
  void unlock() LHD_RELEASE() { m_.unlock(); }
  bool try_lock() LHD_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// `std::lock_guard` over an `lhd::Mutex`, visible to the analysis as a
/// scoped capability: the guarded members are accessible for exactly the
/// lifetime of the `MutexLock`.
class LHD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LHD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() LHD_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// Condition variable paired with `lhd::Mutex` (a
/// `std::condition_variable_any` underneath — Mutex is Lockable, so it
/// waits on the annotated mutex directly, no `native_handle` leakage).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release `mu`, sleep until notified with `pred()` true,
  /// and re-acquire `mu` before returning. The caller must hold `mu`
  /// (typically via a MutexLock in the same scope). `pred` runs with
  /// `mu` held, but the analysis cannot see that through the type-erased
  /// std wait loop — annotate the predicate lambda itself with
  /// LHD_NO_THREAD_SAFETY_ANALYSIS at the call site.
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) LHD_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace lhd
