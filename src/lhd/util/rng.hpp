#pragma once
// Deterministic, seedable random number generation.
//
// All stochastic components of the library (layout synthesis, dataset
// shuffles, weight init, dropout) take an explicit Rng so every experiment
// is reproducible from a single seed. The generator is xoshiro256**, seeded
// via splitmix64, matching the reference implementations by Blackman/Vigna.

#include <array>
#include <cstdint>
#include <cmath>

#include "lhd/util/check.hpp"

namespace lhd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to fill the state; never all-zero.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) — bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method for unbiased results.
  std::uint64_t next_below(std::uint64_t bound) {
    LHD_CHECK(bound > 0, "next_below requires positive bound");
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    LHD_CHECK(lo <= hi, "next_int requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Standard normal via Box–Muller (cached second value discarded for
  /// simplicity; this is not a hot path).
  double next_gaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = next_double();
    while (u1 <= 1e-12) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derive an independent child generator (for per-worker determinism).
  Rng fork() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lhd
