#include "lhd/util/cli.hpp"

#include <cstdlib>
#include <string_view>

#include "lhd/util/check.hpp"

namespace lhd {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;  // positional args are ignored
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";  // bare flag
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get_string(const std::string& name,
                            const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& name, long long def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace lhd
