#pragma once
// Wall-clock stopwatch used by the benchmark harnesses and ODST metric.

#include <chrono>

namespace lhd {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lhd
