#include "lhd/util/thread_pool.hpp"

#include <algorithm>

#include "lhd/util/check.hpp"

namespace lhd {

namespace {
// Set once at worker_loop entry, never cleared: the flag is per-thread
// and worker threads run worker_loop for their whole lifetime.
thread_local bool t_on_pool_worker = false;
}  // namespace

std::size_t hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = hardware_threads();
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  bool do_join = false;
  {
    const MutexLock lock(mutex_);
    if (!stop_) {
      stop_ = true;
      do_join = true;
    }
  }
  cv_.notify_all();
  if (do_join) {
    for (auto& w : workers_) w.join();
    {
      const MutexLock lock(mutex_);
      joined_ = true;
    }
    cv_.notify_all();
  } else {
    // Another caller won the race to join; wait until it has finished so
    // every shutdown() return (and thus the destructor) implies "workers
    // are gone", not "someone is joining them".
    const MutexLock lock(mutex_);
    cv_.wait(mutex_, [this]() LHD_NO_THREAD_SAFETY_ANALYSIS {
      return joined_;
    });
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  auto future = wrapped.get_future();
  {
    const MutexLock lock(mutex_);
    if (stop_) {
      // Losing the submit-vs-shutdown race must not kill the process (a
      // long-lived server hits this on every drain); surface a typed
      // error through the future instead and drop the task unrun.
      std::promise<void> reject;
      reject.set_exception(std::make_exception_ptr(PoolStopped()));
      return reject.get_future();
    }
    queue_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // On a single worker, avoid queue overhead entirely.
  if (size() <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Await every chunk before surfacing any failure: the queued tasks hold
  // references to `fn` and this frame's locals, so unwinding while chunks
  // are still pending would leave workers running over freed storage.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::on_worker() { return t_on_pool_worker; }

void ThreadPool::worker_loop() {
  t_on_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      const MutexLock lock(mutex_);
      // The predicate runs with mutex_ held (CondVar::wait re-acquires
      // before each evaluation), but the analysis cannot follow it
      // through the type-erased std wait loop — hence the exemption.
      cv_.wait(mutex_, [this]() LHD_NO_THREAD_SAFETY_ANALYSIS {
        return stop_ || !queue_.empty();
      });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

}  // namespace lhd
