#pragma once
// Allocation discipline for the binary decoders (GDS records, weight
// streams, dataset files): a size field read from the stream must never
// drive an allocation on its own. These helpers force the call site to
// name the bound, and the lhd_lint `decoder-bounds` rule bans raw
// .reserve()/.resize() in the decoder files so the discipline cannot
// silently erode. See docs/STATIC_ANALYSIS.md.

#include <cstddef>
#include <cstdint>

#include "lhd/util/check.hpp"

namespace lhd {

/// reserve() capped at `cap`: a *hint*, safe to clamp. A stream claiming
/// a billion elements pre-allocates at most `cap`; if the data really
/// arrives, push_back growth takes over from there — the attacker has to
/// send the bytes to make us hold them.
template <class Container>
void bounded_reserve(Container& c, std::uint64_t claimed, std::uint64_t cap) {
  c.reserve(static_cast<std::size_t>(claimed < cap ? claimed : cap));
}

/// resize() validated against `cap`: a *commitment*, so an over-cap claim
/// is a hard parse failure (lhd::Error), never a clamp — silently reading
/// fewer elements than the header promised would desynchronize the stream.
template <class Container>
void bounded_resize(Container& c, std::uint64_t claimed, std::uint64_t cap) {
  LHD_CHECK_MSG(claimed <= cap, "stream claims " << claimed
                                                 << " elements, cap is " << cap);
  c.resize(static_cast<std::size_t>(claimed));
}

}  // namespace lhd
