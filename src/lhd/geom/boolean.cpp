#include "lhd/geom/boolean.hpp"

#include <algorithm>
#include <functional>

namespace lhd::geom {

namespace {

/// Generic scanline combine: for each y-slab, computes covered x-intervals
/// of A and B and emits slab rects where `keep(inA, inB)` holds. The
/// output is canonical: within a slab intervals are disjoint and sorted;
/// vertically adjacent rects with identical x-spans are merged afterwards.
std::vector<Rect> combine(const std::vector<Rect>& a,
                          const std::vector<Rect>& b,
                          const std::function<bool(bool, bool)>& keep) {
  std::vector<Coord> ys;
  for (const auto& r : a) {
    if (r.empty()) continue;
    ys.push_back(r.ylo);
    ys.push_back(r.yhi);
  }
  for (const auto& r : b) {
    if (r.empty()) continue;
    ys.push_back(r.ylo);
    ys.push_back(r.yhi);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // Covered x-intervals of a rect set within slab [ya, yb).
  auto spans_in_slab = [](const std::vector<Rect>& rects, Coord ya,
                          Coord yb) {
    std::vector<std::pair<Coord, Coord>> spans;
    for (const auto& r : rects) {
      if (!r.empty() && r.ylo <= ya && r.yhi >= yb) {
        spans.emplace_back(r.xlo, r.xhi);
      }
    }
    std::sort(spans.begin(), spans.end());
    // Merge overlaps.
    std::vector<std::pair<Coord, Coord>> merged;
    for (const auto& s : spans) {
      if (!merged.empty() && s.first <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, s.second);
      } else {
        merged.push_back(s);
      }
    }
    return merged;
  };

  std::vector<Rect> out;
  for (std::size_t s = 0; s + 1 < ys.size(); ++s) {
    const Coord ya = ys[s];
    const Coord yb = ys[s + 1];
    const auto sa = spans_in_slab(a, ya, yb);
    const auto sb = spans_in_slab(b, ya, yb);
    // Sweep the merged x breakpoints of both interval sets.
    std::vector<Coord> xs;
    for (const auto& [lo, hi] : sa) {
      xs.push_back(lo);
      xs.push_back(hi);
    }
    for (const auto& [lo, hi] : sb) {
      xs.push_back(lo);
      xs.push_back(hi);
    }
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    auto covered = [](const std::vector<std::pair<Coord, Coord>>& spans,
                      Coord x) {
      for (const auto& [lo, hi] : spans) {
        if (x >= lo && x < hi) return true;
        if (lo > x) break;
      }
      return false;
    };
    Coord run_start = 0;
    bool in_run = false;
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
      const Coord x = xs[i];
      const bool on = keep(covered(sa, x), covered(sb, x));
      if (on && !in_run) {
        run_start = x;
        in_run = true;
      }
      if (!on && in_run) {
        out.emplace_back(run_start, ya, x, yb);
        in_run = false;
      }
    }
    if (in_run) out.emplace_back(run_start, ya, xs.back(), yb);
  }

  // Vertical merge of identical x-spans (canonical form).
  std::sort(out.begin(), out.end(), [](const Rect& p, const Rect& q) {
    if (p.xlo != q.xlo) return p.xlo < q.xlo;
    if (p.xhi != q.xhi) return p.xhi < q.xhi;
    return p.ylo < q.ylo;
  });
  std::vector<Rect> merged;
  for (const auto& r : out) {
    if (!merged.empty() && merged.back().xlo == r.xlo &&
        merged.back().xhi == r.xhi && merged.back().yhi == r.ylo) {
      merged.back().yhi = r.yhi;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

}  // namespace

std::vector<Rect> rect_union(const std::vector<Rect>& rects) {
  return combine(rects, {}, [](bool a, bool) { return a; });
}

std::vector<Rect> rect_intersection(const std::vector<Rect>& a,
                                    const std::vector<Rect>& b) {
  return combine(a, b, [](bool ia, bool ib) { return ia && ib; });
}

std::vector<Rect> rect_difference(const std::vector<Rect>& a,
                                  const std::vector<Rect>& b) {
  return combine(a, b, [](bool ia, bool ib) { return ia && !ib; });
}

}  // namespace lhd::geom
