#pragma once
// Axis-aligned rectangle with half-open extent: [xlo, xhi) × [ylo, yhi).
// Half-open semantics make area/intersection/rasterization exact and make
// abutting rectangles tile without overlap.

#include <algorithm>
#include <cstdint>

#include "lhd/geom/point.hpp"

namespace lhd::geom {

struct Rect {
  Coord xlo = 0, ylo = 0, xhi = 0, yhi = 0;

  Rect() = default;
  Rect(Coord xl, Coord yl, Coord xh, Coord yh)
      : xlo(xl), ylo(yl), xhi(xh), yhi(yh) {}

  friend bool operator==(const Rect&, const Rect&) = default;

  Coord width() const { return xhi - xlo; }
  Coord height() const { return yhi - ylo; }
  bool empty() const { return xhi <= xlo || yhi <= ylo; }
  std::int64_t area() const {
    return empty() ? 0
                   : static_cast<std::int64_t>(width()) *
                         static_cast<std::int64_t>(height());
  }

  Point center() const { return {(xlo + xhi) / 2, (ylo + yhi) / 2}; }

  bool contains(const Point& p) const {
    return p.x >= xlo && p.x < xhi && p.y >= ylo && p.y < yhi;
  }
  bool contains(const Rect& r) const {
    return r.xlo >= xlo && r.xhi <= xhi && r.ylo >= ylo && r.yhi <= yhi;
  }
  bool overlaps(const Rect& r) const {
    return xlo < r.xhi && r.xlo < xhi && ylo < r.yhi && r.ylo < yhi;
  }

  /// Intersection; empty() if disjoint.
  Rect intersect(const Rect& r) const {
    return Rect(std::max(xlo, r.xlo), std::max(ylo, r.ylo),
                std::min(xhi, r.xhi), std::min(yhi, r.yhi));
  }

  /// Smallest rect containing both (treats empty operands as identity).
  Rect unite(const Rect& r) const {
    if (empty()) return r;
    if (r.empty()) return *this;
    return Rect(std::min(xlo, r.xlo), std::min(ylo, r.ylo),
                std::max(xhi, r.xhi), std::max(yhi, r.yhi));
  }

  /// Grow (or shrink, if negative) by d on every side.
  Rect inflated(Coord d) const {
    return Rect(xlo - d, ylo - d, xhi + d, yhi + d);
  }

  Rect shifted(Coord dx, Coord dy) const {
    return Rect(xlo + dx, ylo + dy, xhi + dx, yhi + dy);
  }
};

}  // namespace lhd::geom
