#include "lhd/geom/polygon.hpp"

#include <algorithm>
#include <map>

#include "lhd/util/check.hpp"

namespace lhd::geom {

Polygon::Polygon(std::vector<Point> ring) : ring_(std::move(ring)) {
  if (ring_.size() >= 2 && ring_.front() == ring_.back()) ring_.pop_back();
  LHD_CHECK(ring_.size() >= 4, "Manhattan polygon needs >= 4 vertices");
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    const bool horizontal = a.y == b.y && a.x != b.x;
    const bool vertical = a.x == b.x && a.y != b.y;
    LHD_CHECK_MSG(horizontal || vertical,
                  "edge " << i << " is not axis-aligned or has zero length");
    // Alternation: compare with the next edge's orientation.
    const Point& c = ring_[(i + 2) % n];
    const bool next_horizontal = b.y == c.y && b.x != c.x;
    LHD_CHECK_MSG(horizontal != next_horizontal,
                  "edges " << i << "," << i + 1 << " do not alternate H/V");
  }
}

Polygon Polygon::from_rect(const Rect& r) {
  LHD_CHECK(!r.empty(), "from_rect requires non-empty rect");
  return Polygon({{r.xlo, r.ylo}, {r.xhi, r.ylo}, {r.xhi, r.yhi},
                  {r.xlo, r.yhi}});
}

Rect Polygon::bbox() const {
  Rect b(ring_[0].x, ring_[0].y, ring_[0].x, ring_[0].y);
  for (const auto& p : ring_) {
    b.xlo = std::min(b.xlo, p.x);
    b.ylo = std::min(b.ylo, p.y);
    b.xhi = std::max(b.xhi, p.x);
    b.yhi = std::max(b.yhi, p.y);
  }
  return b;
}

std::int64_t Polygon::signed_area2() const {
  std::int64_t sum = 0;
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    sum += static_cast<std::int64_t>(a.x) * b.y -
           static_cast<std::int64_t>(b.x) * a.y;
  }
  return sum;
}

std::int64_t Polygon::area() const {
  const std::int64_t a2 = signed_area2();
  return (a2 < 0 ? -a2 : a2) / 2;
}

bool Polygon::contains(const Point& p) const {
  // Cast a ray towards +x, counting crossings of vertical edges whose y-span
  // covers p.y under the half-open convention [ymin, ymax).
  bool inside = false;
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    if (a.x != b.x) continue;  // horizontal edge, ignore
    const Coord ymin = std::min(a.y, b.y);
    const Coord ymax = std::max(a.y, b.y);
    if (p.y >= ymin && p.y < ymax && p.x < a.x) inside = !inside;
  }
  return inside;
}

std::vector<Rect> Polygon::decompose() const {
  // Vertical edges, keyed by their y-span; horizontal slab sweep.
  struct VEdge {
    Coord x, ylo, yhi;
  };
  std::vector<VEdge> edges;
  const std::size_t n = ring_.size();
  std::vector<Coord> ys;
  ys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    if (a.x == b.x) {
      edges.push_back({a.x, std::min(a.y, b.y), std::max(a.y, b.y)});
    }
    ys.push_back(a.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::vector<Rect> out;
  std::vector<Coord> xs;
  for (std::size_t s = 0; s + 1 < ys.size(); ++s) {
    const Coord ya = ys[s];
    const Coord yb = ys[s + 1];
    xs.clear();
    for (const auto& e : edges) {
      if (e.ylo <= ya && e.yhi >= yb) xs.push_back(e.x);
    }
    std::sort(xs.begin(), xs.end());
    // Even-odd fill: pair up crossings.
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      if (xs[i] != xs[i + 1]) out.emplace_back(xs[i], ya, xs[i + 1], yb);
    }
  }

  // Merge vertically adjacent rects with identical x-span to reduce count.
  std::sort(out.begin(), out.end(), [](const Rect& a, const Rect& b) {
    if (a.xlo != b.xlo) return a.xlo < b.xlo;
    if (a.xhi != b.xhi) return a.xhi < b.xhi;
    return a.ylo < b.ylo;
  });
  std::vector<Rect> merged;
  for (const auto& r : out) {
    if (!merged.empty() && merged.back().xlo == r.xlo &&
        merged.back().xhi == r.xhi && merged.back().yhi == r.ylo) {
      merged.back().yhi = r.yhi;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

Polygon Polygon::translated(Coord dx, Coord dy) const {
  std::vector<Point> ring = ring_;
  for (auto& p : ring) {
    p.x += dx;
    p.y += dy;
  }
  Polygon out;
  out.ring_ = std::move(ring);
  return out;
}

void decompose_all(const std::vector<Polygon>& polys, std::vector<Rect>& out) {
  for (const auto& poly : polys) {
    auto rects = poly.decompose();
    out.insert(out.end(), rects.begin(), rects.end());
  }
}

std::int64_t union_area(std::vector<Rect> rects) {
  rects.erase(std::remove_if(rects.begin(), rects.end(),
                             [](const Rect& r) { return r.empty(); }),
              rects.end());
  if (rects.empty()) return 0;
  // Coordinate-compressed vertical scanline over x; interval coverage in y.
  std::vector<Coord> xs;
  xs.reserve(rects.size() * 2);
  for (const auto& r : rects) {
    xs.push_back(r.xlo);
    xs.push_back(r.xhi);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::int64_t total = 0;
  std::vector<std::pair<Coord, Coord>> spans;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const Coord xa = xs[i];
    const Coord xb = xs[i + 1];
    spans.clear();
    for (const auto& r : rects) {
      if (r.xlo <= xa && r.xhi >= xb) spans.emplace_back(r.ylo, r.yhi);
    }
    if (spans.empty()) continue;
    std::sort(spans.begin(), spans.end());
    std::int64_t covered = 0;
    Coord cur_lo = spans[0].first, cur_hi = spans[0].second;
    for (std::size_t k = 1; k < spans.size(); ++k) {
      if (spans[k].first > cur_hi) {
        covered += cur_hi - cur_lo;
        cur_lo = spans[k].first;
        cur_hi = spans[k].second;
      } else {
        cur_hi = std::max(cur_hi, spans[k].second);
      }
    }
    covered += cur_hi - cur_lo;
    total += covered * static_cast<std::int64_t>(xb - xa);
  }
  return total;
}

std::vector<Rect> clip_rects(const std::vector<Rect>& rects,
                             const Rect& window) {
  std::vector<Rect> out;
  out.reserve(rects.size());
  for (const auto& r : rects) {
    const Rect c = r.intersect(window);
    if (!c.empty()) out.push_back(c.shifted(-window.xlo, -window.ylo));
  }
  return out;
}

}  // namespace lhd::geom
