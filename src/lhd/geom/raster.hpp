#pragma once
// Dense raster images and polygon rasterization.
//
// Image<T> is a simple row-major W×H grid. Rasterization converts a clipped
// rectangle set into a float coverage image (exact per-pixel area fractions,
// clamped to 1 where rects overlap) — the mask transmission function the
// lithography model convolves.

#include <cstdint>
#include <vector>

#include "lhd/geom/rect.hpp"
#include "lhd/util/check.hpp"

namespace lhd::geom {

template <typename T>
class Image {
 public:
  Image() = default;
  Image(int width, int height, T fill = T{})
      : w_(width), h_(height), data_(checked_size(width, height), fill) {}

  int width() const { return w_; }
  int height() const { return h_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(int x, int y) {
    return data_[static_cast<std::size_t>(y) * w_ + x];
  }
  const T& at(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * w_ + x];
  }

  /// Bounds-checked read returning `outside` beyond the image.
  T get_or(int x, int y, T outside) const {
    if (x < 0 || y < 0 || x >= w_ || y >= h_) return outside;
    return at(x, y);
  }

  T* row(int y) { return data_.data() + static_cast<std::size_t>(y) * w_; }
  const T* row(int y) const {
    return data_.data() + static_cast<std::size_t>(y) * w_;
  }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  friend bool operator==(const Image&, const Image&) = default;

 private:
  static std::size_t checked_size(int width, int height) {
    LHD_CHECK(width > 0 && height > 0, "image dims must be positive");
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }

  int w_ = 0, h_ = 0;
  std::vector<T> data_;
};

using FloatImage = Image<float>;
using ByteImage = Image<std::uint8_t>;

/// Rasterize `rects` (clip-local nm coordinates) over `window_nm` × `window_nm`
/// at `pixel_nm` nm per pixel. Pixel (0,0) covers [0,pixel_nm)×[0,pixel_nm).
/// Coverage is the exact overlapped-area fraction, clamped to 1.
FloatImage rasterize(const std::vector<Rect>& rects, Coord window_nm,
                     Coord pixel_nm);

/// Threshold a float image into {0,1}.
ByteImage binarize(const FloatImage& img, float threshold);

/// Image flips / rotation (used by data augmentation and GDS transforms).
template <typename T>
Image<T> flip_x(const Image<T>& img);
template <typename T>
Image<T> flip_y(const Image<T>& img);
template <typename T>
Image<T> rotate90(const Image<T>& img);  // counter-clockwise

/// 4-connected component labeling. Returns the label image (0 = background,
/// components numbered from 1) and writes the component count.
Image<std::int32_t> connected_components(const ByteImage& img,
                                         int* component_count);

/// Count pixels with value != 0.
std::int64_t count_nonzero(const ByteImage& img);

/// Morphological dilation / erosion with a (2r+1)² square structuring
/// element (chebyshev ball). Outside the image counts as background for
/// dilation and as foreground for erosion (so border shapes do not erode
/// away artificially).
ByteImage dilate(const ByteImage& img, int radius);
ByteImage erode(const ByteImage& img, int radius);

}  // namespace lhd::geom
