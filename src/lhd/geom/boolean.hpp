#pragma once
// Exact boolean operations on Manhattan rectangle sets via coordinate-
// compressed scanline: union (as disjoint rects), intersection, and
// difference. Used by layout analysis utilities and available to users who
// need geometric set algebra on flattened layers.

#include <vector>

#include "lhd/geom/rect.hpp"

namespace lhd::geom {

/// Disjoint decomposition of the union of `rects` (maximal horizontal
/// slabs merged vertically where spans coincide).
std::vector<Rect> rect_union(const std::vector<Rect>& rects);

/// Disjoint decomposition of (union of a) ∩ (union of b).
std::vector<Rect> rect_intersection(const std::vector<Rect>& a,
                                    const std::vector<Rect>& b);

/// Disjoint decomposition of (union of a) \ (union of b).
std::vector<Rect> rect_difference(const std::vector<Rect>& a,
                                  const std::vector<Rect>& b);

}  // namespace lhd::geom
