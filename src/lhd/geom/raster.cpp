#include "lhd/geom/raster.hpp"

#include <algorithm>

namespace lhd::geom {

FloatImage rasterize(const std::vector<Rect>& rects, Coord window_nm,
                     Coord pixel_nm) {
  LHD_CHECK(window_nm > 0 && pixel_nm > 0, "bad raster dims");
  LHD_CHECK(window_nm % pixel_nm == 0, "pixel size must divide window");
  const int n = static_cast<int>(window_nm / pixel_nm);
  FloatImage img(n, n, 0.0f);
  const Rect window(0, 0, window_nm, window_nm);
  const double inv_area =
      1.0 / (static_cast<double>(pixel_nm) * static_cast<double>(pixel_nm));

  for (const Rect& raw : rects) {
    const Rect r = raw.intersect(window);
    if (r.empty()) continue;
    const int px_lo = static_cast<int>(r.xlo / pixel_nm);
    const int py_lo = static_cast<int>(r.ylo / pixel_nm);
    const int px_hi = static_cast<int>((r.xhi - 1) / pixel_nm);
    const int py_hi = static_cast<int>((r.yhi - 1) / pixel_nm);
    for (int py = py_lo; py <= py_hi; ++py) {
      const Coord cell_ylo = static_cast<Coord>(py) * pixel_nm;
      const Coord ylo = std::max(r.ylo, cell_ylo);
      const Coord yhi = std::min(r.yhi, cell_ylo + pixel_nm);
      float* row = img.row(py);
      for (int px = px_lo; px <= px_hi; ++px) {
        const Coord cell_xlo = static_cast<Coord>(px) * pixel_nm;
        const Coord xlo = std::max(r.xlo, cell_xlo);
        const Coord xhi = std::min(r.xhi, cell_xlo + pixel_nm);
        const double frac = static_cast<double>(xhi - xlo) *
                            static_cast<double>(yhi - ylo) * inv_area;
        row[px] = std::min(1.0f, row[px] + static_cast<float>(frac));
      }
    }
  }
  return img;
}

ByteImage binarize(const FloatImage& img, float threshold) {
  ByteImage out(img.width(), img.height(), 0);
  const auto& src = img.data();
  auto& dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i] >= threshold;
  return out;
}

template <typename T>
Image<T> flip_x(const Image<T>& img) {
  Image<T> out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out.at(img.width() - 1 - x, y) = img.at(x, y);
    }
  }
  return out;
}

template <typename T>
Image<T> flip_y(const Image<T>& img) {
  Image<T> out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      out.at(x, img.height() - 1 - y) = img.at(x, y);
    }
  }
  return out;
}

template <typename T>
Image<T> rotate90(const Image<T>& img) {
  Image<T> out(img.height(), img.width());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      // CCW: (x, y) -> (y, W-1-x) in the rotated frame.
      out.at(y, img.width() - 1 - x) = img.at(x, y);
    }
  }
  return out;
}

template Image<float> flip_x(const Image<float>&);
template Image<float> flip_y(const Image<float>&);
template Image<float> rotate90(const Image<float>&);
template Image<std::uint8_t> flip_x(const Image<std::uint8_t>&);
template Image<std::uint8_t> flip_y(const Image<std::uint8_t>&);
template Image<std::uint8_t> rotate90(const Image<std::uint8_t>&);

Image<std::int32_t> connected_components(const ByteImage& img,
                                         int* component_count) {
  const int w = img.width();
  const int h = img.height();
  Image<std::int32_t> labels(w, h, 0);
  int next_label = 0;
  std::vector<std::pair<int, int>> stack;

  for (int y0 = 0; y0 < h; ++y0) {
    for (int x0 = 0; x0 < w; ++x0) {
      if (!img.at(x0, y0) || labels.at(x0, y0) != 0) continue;
      ++next_label;
      stack.clear();
      stack.emplace_back(x0, y0);
      labels.at(x0, y0) = next_label;
      while (!stack.empty()) {
        const auto [x, y] = stack.back();
        stack.pop_back();
        constexpr int dx[4] = {1, -1, 0, 0};
        constexpr int dy[4] = {0, 0, 1, -1};
        for (int k = 0; k < 4; ++k) {
          const int nx = x + dx[k];
          const int ny = y + dy[k];
          if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
          if (!img.at(nx, ny) || labels.at(nx, ny) != 0) continue;
          labels.at(nx, ny) = next_label;
          stack.emplace_back(nx, ny);
        }
      }
    }
  }
  if (component_count != nullptr) *component_count = next_label;
  return labels;
}

std::int64_t count_nonzero(const ByteImage& img) {
  std::int64_t n = 0;
  for (const auto v : img.data()) n += (v != 0);
  return n;
}

namespace {

// Separable chebyshev-ball morphology: a horizontal pass then a vertical
// pass of 1-D max (dilate) or min (erode) filters of width 2r+1.
ByteImage morph(const ByteImage& img, int radius, bool is_dilate,
                std::uint8_t outside) {
  LHD_CHECK(radius >= 0, "negative morphology radius");
  if (radius == 0) return img;
  const int w = img.width();
  const int h = img.height();
  ByteImage tmp(w, h, 0);
  ByteImage out(w, h, 0);
  auto combine = [is_dilate](std::uint8_t acc, std::uint8_t v) {
    return is_dilate ? std::max(acc, v) : std::min(acc, v);
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      std::uint8_t acc = is_dilate ? 0 : 1;
      for (int d = -radius; d <= radius; ++d) {
        const int xx = x + d;
        const std::uint8_t v =
            (xx < 0 || xx >= w) ? outside : (img.at(xx, y) ? 1 : 0);
        acc = combine(acc, v);
      }
      tmp.at(x, y) = acc;
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      std::uint8_t acc = is_dilate ? 0 : 1;
      for (int d = -radius; d <= radius; ++d) {
        const int yy = y + d;
        const std::uint8_t v = (yy < 0 || yy >= h) ? outside : tmp.at(x, yy);
        acc = combine(acc, v);
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

}  // namespace

ByteImage dilate(const ByteImage& img, int radius) {
  return morph(img, radius, /*is_dilate=*/true, /*outside=*/0);
}

ByteImage erode(const ByteImage& img, int radius) {
  return morph(img, radius, /*is_dilate=*/false, /*outside=*/1);
}

}  // namespace lhd::geom
