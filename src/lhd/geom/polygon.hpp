#pragma once
// Manhattan (rectilinear) polygons and their decomposition into rectangles.
//
// Polygons are stored as a closed ring of vertices (last edge implicit,
// back() -> front()); consecutive edges must be axis-aligned and alternate
// horizontal/vertical. All layout processing downstream of GDS parsing works
// on rectangle sets produced by decompose(), which is exact for simple
// rectilinear polygons (even-odd fill).

#include <vector>

#include "lhd/geom/rect.hpp"

namespace lhd::geom {

class Polygon {
 public:
  Polygon() = default;

  /// Builds from a vertex ring. If the ring repeats the first vertex at the
  /// end (GDSII convention) the duplicate is dropped. Throws lhd::Error if
  /// the result is not a valid Manhattan ring (>= 4 vertices, axis-aligned
  /// alternating edges, no zero-length edges).
  explicit Polygon(std::vector<Point> ring);

  /// Axis-aligned rectangle as a 4-vertex polygon.
  static Polygon from_rect(const Rect& r);

  const std::vector<Point>& ring() const { return ring_; }
  std::size_t size() const { return ring_.size(); }

  Rect bbox() const;

  /// Signed area * 2 (positive for counter-clockwise rings).
  std::int64_t signed_area2() const;

  /// |area|.
  std::int64_t area() const;

  /// Even-odd point containment test (points on the boundary follow the
  /// half-open convention of Rect: lower/left edges are inside).
  bool contains(const Point& p) const;

  /// Exact decomposition into non-overlapping rectangles (horizontal slabs
  /// between consecutive distinct y coordinates, even-odd fill).
  std::vector<Rect> decompose() const;

  Polygon translated(Coord dx, Coord dy) const;

 private:
  std::vector<Point> ring_;
};

/// Decompose many polygons and append the rects to `out`.
void decompose_all(const std::vector<Polygon>& polys, std::vector<Rect>& out);

/// Total area of a rect set that may contain overlaps, computed exactly by
/// coordinate-compressed scanline. Used by tests and density features.
std::int64_t union_area(std::vector<Rect> rects);

/// Clip every rect against `window`, drop empties, and translate so the
/// window's lower-left corner becomes the origin.
std::vector<Rect> clip_rects(const std::vector<Rect>& rects,
                             const Rect& window);

}  // namespace lhd::geom
