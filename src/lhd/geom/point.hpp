#pragma once
// Integer layout coordinates. The database unit throughout the library is
// 1 nanometre, stored as 32-bit signed integers (±2.1 m of layout — ample).

#include <cstdint>
#include <functional>

namespace lhd::geom {

using Coord = std::int32_t;

struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

/// Lexicographic order (x, then y) — handy for canonicalization in tests.
inline bool operator<(const Point& a, const Point& b) {
  return a.x != b.x ? a.x < b.x : a.y < b.y;
}

}  // namespace lhd::geom

template <>
struct std::hash<lhd::geom::Point> {
  std::size_t operator()(const lhd::geom::Point& p) const noexcept {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
        static_cast<std::uint32_t>(p.y);
    // splitmix64 finalizer
    std::uint64_t z = k + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
