#include "lhd/lint/lexer.hpp"

#include <cctype>

namespace lhd::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Character cursor with line/column tracking and backslash-newline
/// splicing. peek()/get() never expose a spliced line break, so every
/// higher-level scanner is continuation-transparent for free.
class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) { splice(); }

  bool done() const { return pos_ >= src_.size(); }
  char peek() const { return done() ? '\0' : src_[pos_]; }
  char peek2() const {
    // Second character after the current one, skipping a splice between
    // them (good enough for the two-char lookaheads used below).
    std::size_t p = pos_ + 1;
    while (p + 1 < src_.size() && src_[p] == '\\' &&
           (src_[p + 1] == '\n' || (src_[p + 1] == '\r' && p + 2 < src_.size() &&
                                    src_[p + 2] == '\n'))) {
      p += src_[p + 1] == '\n' ? 2 : 3;
    }
    return p < src_.size() ? src_[p] : '\0';
  }

  char get() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    splice();
    return c;
  }

  int line() const { return line_; }
  int col() const { return col_; }

 private:
  void splice() {
    while (pos_ + 1 < src_.size() && src_[pos_] == '\\') {
      if (src_[pos_ + 1] == '\n') {
        pos_ += 2;
      } else if (src_[pos_ + 1] == '\r' && pos_ + 2 < src_.size() &&
                 src_[pos_ + 2] == '\n') {
        pos_ += 3;
      } else {
        break;
      }
      ++line_;
      col_ = 1;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : cur_(src) {}

  std::vector<Token> run() {
    while (!cur_.done()) {
      const char c = cur_.peek();
      if (c == '\n') {
        cur_.get();
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        cur_.get();
        continue;
      }
      if (c == '/' && cur_.peek2() == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && cur_.peek2() == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (ident_start(c)) {
        identifier_or_prefixed_literal();
      } else if (digit(c) || (c == '.' && digit(cur_.peek2()))) {
        number();
      } else if (c == '"') {
        string_literal(/*raw=*/false);
      } else if (c == '\'') {
        char_literal();
      } else {
        punct();
      }
    }
    return std::move(out_);
  }

 private:
  void emit(TokKind kind, std::string text, int line, int col) {
    out_.push_back(Token{kind, std::move(text), line, col});
  }

  void line_comment() {
    const int line = cur_.line(), col = cur_.col();
    std::string text;
    while (!cur_.done() && cur_.peek() != '\n') text.push_back(cur_.get());
    emit(TokKind::Comment, std::move(text), line, col);
    // Comments are whitespace to the preprocessor: `   // x` + `#if` on
    // the next line still sees the '#' at line start.
  }

  void block_comment() {
    const int line = cur_.line(), col = cur_.col();
    std::string text;
    text.push_back(cur_.get());  // '/'
    text.push_back(cur_.get());  // '*'
    while (!cur_.done()) {
      const char c = cur_.get();
      text.push_back(c);
      if (c == '*' && cur_.peek() == '/') {
        text.push_back(cur_.get());
        break;
      }
    }
    emit(TokKind::Comment, std::move(text), line, col);
  }

  void directive() {
    const int line = cur_.line(), col = cur_.col();
    cur_.get();  // '#'
    at_line_start_ = false;
    while (!cur_.done() &&
           (cur_.peek() == ' ' || cur_.peek() == '\t')) {
      cur_.get();
    }
    std::string name;
    while (!cur_.done() && ident_char(cur_.peek())) name.push_back(cur_.get());
    emit(TokKind::Directive, name, line, col);
    if (name != "include") return;  // rest of the line lexes normally
    while (!cur_.done() && (cur_.peek() == ' ' || cur_.peek() == '\t')) {
      cur_.get();
    }
    const char open = cur_.peek();
    if (open != '"' && open != '<') return;  // computed include — give up
    const char close = open == '<' ? '>' : '"';
    const int hline = cur_.line(), hcol = cur_.col();
    std::string text;
    text.push_back(cur_.get());
    while (!cur_.done() && cur_.peek() != close && cur_.peek() != '\n') {
      text.push_back(cur_.get());
    }
    if (!cur_.done() && cur_.peek() == close) text.push_back(cur_.get());
    emit(TokKind::HeaderName, std::move(text), hline, hcol);
  }

  void identifier_or_prefixed_literal() {
    const int line = cur_.line(), col = cur_.col();
    std::string text;
    while (!cur_.done() && ident_char(cur_.peek())) text.push_back(cur_.get());
    // Encoding/raw prefixes glue onto the literal that follows: R"(..)",
    // u8"x", L'x', ... — the prefix must not leak out as an identifier.
    const bool raw = !text.empty() && text.back() == 'R';
    const bool prefix =
        text == "R" || text == "L" || text == "u" || text == "U" ||
        text == "u8" || text == "LR" || text == "uR" || text == "UR" ||
        text == "u8R";
    if (prefix && cur_.peek() == '"') {
      string_literal(raw, text, line, col);
      return;
    }
    if (prefix && !raw && cur_.peek() == '\'') {
      char_literal(text, line, col);
      return;
    }
    emit(TokKind::Identifier, std::move(text), line, col);
  }

  void number() {
    const int line = cur_.line(), col = cur_.col();
    std::string text;
    text.push_back(cur_.get());
    // pp-number: identifier chars, '.', digit separators, and exponent
    // signs after e/E/p/P. Deliberately greedy — exact numeric grammar
    // does not matter to any rule, not splitting mid-literal does.
    while (!cur_.done()) {
      const char c = cur_.peek();
      if (ident_char(c) || c == '.') {
        text.push_back(cur_.get());
      } else if (c == '\'' && ident_char(cur_.peek2())) {
        text.push_back(cur_.get());
      } else if ((c == '+' || c == '-') && !text.empty() &&
                 (text.back() == 'e' || text.back() == 'E' ||
                  text.back() == 'p' || text.back() == 'P')) {
        text.push_back(cur_.get());
      } else {
        break;
      }
    }
    emit(TokKind::Number, std::move(text), line, col);
  }

  void string_literal(bool raw, std::string text = {}, int line = -1,
                      int col = -1) {
    if (line < 0) {
      line = cur_.line();
      col = cur_.col();
    }
    text.push_back(cur_.get());  // opening '"'
    if (raw) {
      // R"delim( ... )delim" — no escapes inside, find the exact closer.
      std::string delim;
      while (!cur_.done() && cur_.peek() != '(' && cur_.peek() != '\n' &&
             delim.size() < 16) {
        delim.push_back(cur_.get());
      }
      if (!cur_.done() && cur_.peek() == '(') text += delim, text.push_back(cur_.get());
      const std::string closer = ")" + delim + "\"";
      std::string tail;
      while (!cur_.done()) {
        tail.push_back(cur_.get());
        if (tail.size() >= closer.size() &&
            tail.compare(tail.size() - closer.size(), closer.size(),
                         closer) == 0) {
          break;
        }
      }
      text += tail;
    } else {
      while (!cur_.done()) {
        const char c = cur_.get();
        text.push_back(c);
        if (c == '\\' && !cur_.done()) {
          text.push_back(cur_.get());
        } else if (c == '"' && text.size() > 1) {
          break;
        } else if (c == '\n') {
          break;  // unterminated — close at the line end, keep going
        }
      }
    }
    emit(TokKind::String, std::move(text), line, col);
  }

  void char_literal(std::string text = {}, int line = -1, int col = -1) {
    if (line < 0) {
      line = cur_.line();
      col = cur_.col();
    }
    text.push_back(cur_.get());  // opening '\''
    while (!cur_.done()) {
      const char c = cur_.get();
      text.push_back(c);
      if (c == '\\' && !cur_.done()) {
        text.push_back(cur_.get());
      } else if (c == '\'' && text.size() > 1) {
        break;
      } else if (c == '\n') {
        break;
      }
    }
    emit(TokKind::CharLit, std::move(text), line, col);
  }

  void punct() {
    const int line = cur_.line(), col = cur_.col();
    const char c = cur_.get();
    // Only the two punctuators the rules dispatch on are merged: `::`
    // (qualified names) and `->` (member access). Everything else is one
    // char — rules never need to distinguish `<<` from `<` `<`.
    if (c == ':' && cur_.peek() == ':') {
      cur_.get();
      emit(TokKind::Punct, "::", line, col);
      return;
    }
    if (c == '-' && cur_.peek() == '>') {
      cur_.get();
      emit(TokKind::Punct, "->", line, col);
      return;
    }
    emit(TokKind::Punct, std::string(1, c), line, col);
  }

  Cursor cur_;
  std::vector<Token> out_;
  bool at_line_start_ = true;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace lhd::lint
