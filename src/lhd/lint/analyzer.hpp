#pragma once
// The lhd::lint runner: turns sources into FileContexts (lexing + inline
// suppression mining), applies the rule set, filters findings through
// inline `// lhd-lint: allow(<rule>)` markers and the checked-in baseline
// (.lhd-lint-baseline at the repo root), and renders human / JSON /
// baseline output. tools/lhd_lint is a thin flag parser over this header;
// tests/test_lint.cpp drives the same entry points on in-memory fixtures.

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lhd/lint/rules.hpp"

namespace lhd::lint {

/// Debt we have agreed to carry: (rule id, file) -> number of findings of
/// that rule tolerated in that file. The analyzer drops the first N such
/// findings (in line order) and reports the rest — so *new* violations in
/// a baselined file still fail, and fixing one lets the baseline shrink.
struct Baseline {
  std::map<std::pair<std::string, std::string>, int> allowed;
};

/// Parse the baseline format: '#' comments and blank lines ignored,
/// otherwise `rule-id path [count]` (count defaults to 1). Unknown rule
/// ids are kept verbatim — they become stale entries, not errors.
Baseline parse_baseline(std::istream& in);

/// Lex `source` and mine its comments for `lhd-lint: allow(a, b)` markers.
/// A marker suppresses the listed rules on its own line; a *standalone*
/// comment (no code on its line) also covers the first line after the
/// comment ends, so the idiomatic form reads:
///     // lhd-lint: allow(determinism)  -- why this one is fine
///     auto t = time(nullptr);
FileContext make_file_context(std::string path, std::string_view source);

/// Repo-relative '/'-separated paths of every *.hpp / *.cpp under
/// `root`/src and `root`/tools, sorted. (Tests and scripts are linted by
/// other layers of the gate; see docs/STATIC_ANALYSIS.md.)
std::vector<std::string> collect_sources(const std::string& root);

struct Summary {
  std::vector<Finding> findings;  ///< unsuppressed, sorted (file, line, rule)
  std::size_t files = 0;
  std::size_t suppressed_inline = 0;
  std::size_t suppressed_baseline = 0;
};

/// Run `rules` over `repo`, apply inline suppressions and `baseline`.
Summary run_rules(const RepoContext& repo,
                  const std::vector<std::unique_ptr<Rule>>& rules,
                  const Baseline& baseline);

std::string render_human(const Summary& s);
std::string render_json(const Summary& s);
/// Render s.findings back in baseline format (for --write-baseline).
std::string render_baseline(const Summary& s);

}  // namespace lhd::lint
