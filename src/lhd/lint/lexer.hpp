#pragma once
// A small, honest C++ lexer for the in-repo static analyzer (lhd::lint).
//
// It is NOT a compiler front end: it produces a flat token stream with no
// preprocessing, no keyword table and no parse tree. What it does get
// right — and what the grep rules it replaces could not — is the lexical
// grammar that decides whether text is *code* at all:
//
//   * `//` line comments and `/* ... */` block comments become single
//     Comment tokens (so prose mentioning `std::mutex` is inert, but the
//     framework can still mine them for `lhd-lint: allow(...)` markers);
//   * string literals (including raw strings `R"delim(...)delim"` and
//     encoding prefixes), character literals and digit separators are
//     consumed as single tokens, so their *contents* never look like
//     identifiers;
//   * preprocessor lines are recognized: the directive name is emitted as
//     a Directive token and an #include's target as a HeaderName token
//     (quoted or angled, delimiters kept), while the rest of the line is
//     tokenized normally — macro bodies are code and rules see them;
//   * backslash-newline continuations splice everywhere;
//   * every token carries its 1-based line and column for findings.
//
// Lexing never fails: unterminated constructs are closed at end of file
// and stray bytes become single-character Punct tokens. A linter must
// degrade gracefully on code it does not fully understand.

#include <string>
#include <string_view>
#include <vector>

namespace lhd::lint {

enum class TokKind {
  Identifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  Number,      ///< pp-number: digits, hex, exponents, digit separators
  String,      ///< "..." or R"d(...)d", any encoding prefix, one token
  CharLit,     ///< '...' with escapes
  Punct,       ///< one punctuation char, except `::` which is one token
  Comment,     ///< // to end of line, or a whole /* ... */ block
  Directive,   ///< the NAME of a preprocessor directive (`include`, ...)
  HeaderName,  ///< an #include target, delimiters kept: "lhd/x.hpp" or <vector>
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
  int col = 0;   ///< 1-based column of the token's first character
};

/// Tokenize one translation unit (or header). See the header comment for
/// exactly how much C++ this understands.
std::vector<Token> lex(std::string_view source);

}  // namespace lhd::lint
