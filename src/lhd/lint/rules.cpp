#include "lhd/lint/rules.hpp"

#include <algorithm>
#include <array>
#include <sstream>

namespace lhd::lint {

namespace {

// ---------------------------------------------------------------- helpers --

/// Non-comment tokens, in order — what the compiler would see.
std::vector<const Token*> code_tokens(const FileContext& f) {
  std::vector<const Token*> out;
  out.reserve(f.tokens.size());
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::Comment) out.push_back(&t);
  }
  return out;
}

bool is_ident(const Token* t, std::string_view text) {
  return t->kind == TokKind::Identifier && t->text == text;
}

bool is_punct(const Token* t, std::string_view text) {
  return t->kind == TokKind::Punct && t->text == text;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool contains_ident(const FileContext& f, std::string_view name) {
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::Identifier && t.text == name) return true;
  }
  return false;
}

void report(std::vector<Finding>& out, const Rule& rule, const FileContext& f,
            int line, std::string message) {
  out.push_back(Finding{rule.id(), f.path, line, std::move(message)});
}

/// Module ranks mirroring the dependency order declared in
/// src/CMakeLists.txt: util <- obs <- geom <- gds <- litho <- data <-
/// synth <- feature <- {ml, nn} <- exec <- core <- serve <-
/// {testkit, lint} (the last two are tool/test-only peers and must not
/// include each other). An include is legal only when it points at a
/// strictly lower rank or stays inside the module.
const std::map<std::string, int>& module_ranks() {
  static const std::map<std::string, int> ranks = {
      {"util", 0}, {"obs", 1},     {"geom", 2},    {"gds", 3},
      {"litho", 4}, {"data", 5},   {"synth", 6},   {"feature", 7},
      {"ml", 8},   {"nn", 8},      {"exec", 9},    {"core", 10},
      {"serve", 11}, {"testkit", 12}, {"lint", 12},
  };
  return ranks;
}

// -------------------------------------------------- R1: mutex-guards ------

/// Port of check_lint.sh rule 1a, token-accurate: a public core/obs/util
/// header that declares a mutex member must annotate at least one piece
/// of state with LHD_GUARDED_BY. A mutex protecting nothing *declared*
/// protects nothing *checked* by Clang's Thread Safety Analysis.
class MutexGuardsRule final : public Rule {
 public:
  const char* id() const override { return "mutex-guards"; }
  const char* description() const override {
    return "a core/obs/util header declaring a mutex member must have "
           "LHD_GUARDED_BY-annotated state";
  }

  void check(const RepoContext& repo, std::vector<Finding>& out) const override {
    for (const FileContext& f : repo.files) {
      if (!f.is_header) continue;
      if (!starts_with(f.path, "src/lhd/core/") &&
          !starts_with(f.path, "src/lhd/obs/") &&
          !starts_with(f.path, "src/lhd/util/")) {
        continue;
      }
      if (f.path == "src/lhd/util/thread_annotations.hpp") continue;
      const auto toks = code_tokens(f);
      const bool annotated = contains_ident(f, "LHD_GUARDED_BY");
      for (std::size_t i = 0; i < toks.size(); ++i) {
        const int decl_line = toks[i]->line;
        std::size_t j = i;
        if (is_ident(toks[j], "mutable")) ++j;
        if (!match_mutex_type(toks, j)) continue;
        // Member name, then optional LHD_* attribute macro with its
        // argument list (e.g. LHD_ACQUIRED_BEFORE(other_)), then ';'.
        if (j >= toks.size() || toks[j]->kind != TokKind::Identifier) continue;
        ++j;
        if (j < toks.size() && toks[j]->kind == TokKind::Identifier &&
            starts_with(toks[j]->text, "LHD_")) {
          ++j;
          j = skip_paren_group(toks, j);
        }
        if (j >= toks.size() || !is_punct(toks[j], ";")) continue;
        if (!annotated) {
          report(out, *this, f, decl_line,
                 "mutex member declared but the header has no "
                 "LHD_GUARDED_BY state — annotate what this mutex protects");
        }
        i = j;  // past the ';' — `lhd::Mutex m_;` must not re-match at `Mutex`
      }
    }
  }

 private:
  /// Advance j past `lhd::Mutex`, `Mutex`, or `std::*mutex`; false if the
  /// tokens at j are not a mutex type.
  static bool match_mutex_type(const std::vector<const Token*>& t,
                               std::size_t& j) {
    if (j < t.size() && is_ident(t[j], "lhd") && j + 1 < t.size() &&
        is_punct(t[j + 1], "::")) {
      j += 2;
    } else if (j < t.size() && is_ident(t[j], "std") && j + 1 < t.size() &&
               is_punct(t[j + 1], "::")) {
      j += 2;
      static constexpr std::array<std::string_view, 4> kStd = {
          "mutex", "recursive_mutex", "shared_mutex", "timed_mutex"};
      if (j < t.size() && t[j]->kind == TokKind::Identifier &&
          std::find(kStd.begin(), kStd.end(), t[j]->text) != kStd.end()) {
        ++j;
        return true;
      }
      return false;
    }
    if (j < t.size() && is_ident(t[j], "Mutex")) {
      ++j;
      return true;
    }
    return false;
  }

  static std::size_t skip_paren_group(const std::vector<const Token*>& t,
                                      std::size_t j) {
    if (j >= t.size() || !is_punct(t[j], "(")) return j;
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (is_punct(t[j], "(")) ++depth;
      if (is_punct(t[j], ")") && --depth == 0) return j + 1;
    }
    return j;
  }
};

// -------------------------------------------- R2: raw-sync-primitive ------

/// Port of check_lint.sh rule 1b, token-accurate: raw std synchronization
/// primitives are banned in src/lhd/ outside the annotated shim — locking
/// the analysis cannot see silently reopens the hole the shim closed.
class RawSyncPrimitiveRule final : public Rule {
 public:
  const char* id() const override { return "raw-sync-primitive"; }
  const char* description() const override {
    return "raw std sync primitives are banned in src/ — use "
           "lhd::Mutex/MutexLock/CondVar (util/thread_annotations.hpp)";
  }

  void check(const RepoContext& repo, std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 11> kBanned = {
        "mutex",          "recursive_mutex",
        "shared_mutex",   "timed_mutex",
        "recursive_timed_mutex",
        "lock_guard",     "unique_lock",
        "scoped_lock",    "shared_lock",
        "condition_variable", "condition_variable_any"};
    for (const FileContext& f : repo.files) {
      if (!starts_with(f.path, "src/lhd/")) continue;
      if (f.path == "src/lhd/util/thread_annotations.hpp") continue;
      const auto toks = code_tokens(f);
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (is_ident(toks[i], "std") && is_punct(toks[i + 1], "::") &&
            toks[i + 2]->kind == TokKind::Identifier &&
            std::find(kBanned.begin(), kBanned.end(), toks[i + 2]->text) !=
                kBanned.end()) {
          report(out, *this, f, toks[i]->line,
                 "raw std::" + toks[i + 2]->text +
                     " — use the annotated lhd shim from "
                     "util/thread_annotations.hpp");
        }
      }
    }
  }
};

// ------------------------------------------------------ R3: layering ------

/// Includes between src/lhd modules must follow the dependency DAG
/// downward. An upward (or sideways) include is how "util grows a core
/// dependency" starts; the build may even still link, because static
/// libraries hide cycles until they bite.
class LayeringRule final : public Rule {
 public:
  const char* id() const override { return "layering"; }
  const char* description() const override {
    return "module includes must follow the src/CMakeLists.txt dependency "
           "order downward (no upward or cross-peer includes)";
  }

  void check(const RepoContext& repo, std::vector<Finding>& out) const override {
    const auto& ranks = module_ranks();
    for (const FileContext& f : repo.files) {
      if (f.module.empty()) continue;
      const auto src_rank = ranks.find(f.module);
      if (src_rank == ranks.end()) continue;
      for (const Token& t : f.tokens) {
        if (t.kind != TokKind::HeaderName) continue;
        if (!starts_with(t.text, "\"lhd/")) continue;
        const std::string_view rest = std::string_view(t.text).substr(5);
        const std::size_t slash = rest.find('/');
        if (slash == std::string_view::npos) continue;
        const std::string dest(rest.substr(0, slash));
        const auto dest_rank = ranks.find(dest);
        if (dest_rank == ranks.end()) continue;  // unknown module: not ours
        if (dest == f.module) continue;
        if (dest_rank->second > src_rank->second ||
            dest_rank->second == src_rank->second) {
          std::ostringstream msg;
          msg << "'" << f.module << "' must not include '" << dest
              << "' (dependency order is util <- obs <- geom <- gds <- "
                 "litho <- data <- synth <- feature <- {ml,nn} <- exec <- "
                 "core <- serve <- {testkit,lint})";
          report(out, *this, f, t.line, msg.str());
        }
      }
    }
  }
};

// --------------------------------------------------- R4: determinism ------

/// The bit-identical-scan contract (serial == parallel == dedup ==
/// hierarchical, PRs 1/5/6) only holds if nothing on a scan-result path
/// consumes entropy or the wall clock. Seeded lhd::Rng is fine — it is
/// deterministic by construction; time belongs to util/obs instruments
/// (Stopwatch, ScopedTimer), whose readings feed reports, never results.
class DeterminismRule final : public Rule {
 public:
  const char* id() const override { return "determinism"; }
  const char* description() const override {
    return "no entropy or wall-clock sources in result-bearing modules "
           "(core/exec/gds/geom/data/feature/ml/nn) — use seeded lhd::Rng "
           "and the obs timers";
  }

  void check(const RepoContext& repo, std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 8> kModules = {
        "core", "exec", "gds", "geom", "data", "feature", "ml", "nn"};
    // Referencing any of these at all is a finding.
    static constexpr std::array<std::string_view, 13> kBannedIdents = {
        "rand",     "srand",   "rand_r",  "drand48",       "erand48",
        "lrand48",  "mrand48", "random_device", "random_shuffle",
        "system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday"};
    // These are everyday words, so only a *call* is a finding.
    static constexpr std::array<std::string_view, 3> kBannedCalls = {
        "time", "clock", "clock_gettime"};
    for (const FileContext& f : repo.files) {
      if (std::find(kModules.begin(), kModules.end(), f.module) ==
          kModules.end()) {
        continue;
      }
      const auto toks = code_tokens(f);
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i]->kind != TokKind::Identifier) continue;
        // Member access (x.time(), p->clock()) is the object's own API,
        // not libc; qualified ::time / std::time stays banned.
        const bool member =
            i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
        if (member) continue;
        const std::string& name = toks[i]->text;
        const bool banned_ident =
            std::find(kBannedIdents.begin(), kBannedIdents.end(), name) !=
            kBannedIdents.end();
        const bool banned_call =
            std::find(kBannedCalls.begin(), kBannedCalls.end(), name) !=
                kBannedCalls.end() &&
            i + 1 < toks.size() && is_punct(toks[i + 1], "(");
        if (banned_ident || banned_call) {
          report(out, *this, f, toks[i]->line,
                 "'" + name +
                     "' is a nondeterminism source — module '" + f.module +
                     "' is under the bit-identical-scan contract (seeded "
                     "lhd::Rng / obs timers are the sanctioned paths)");
        }
      }
    }
  }
};

// ------------------------------------------------ R5: decoder-bounds ------

/// In the attacker-facing binary decoders every allocation driven by a
/// stream-supplied size must go through lhd::bounded_reserve /
/// lhd::bounded_resize (util/bounded.hpp), which force the caller to name
/// the cap. A raw member reserve()/resize() is exactly how "trust the
/// length field" regressions come back.
class DecoderBoundsRule final : public Rule {
 public:
  const char* id() const override { return "decoder-bounds"; }
  const char* description() const override {
    return "decoder files must reserve/resize through lhd::bounded_reserve/"
           "bounded_resize, never raw member calls";
  }

  void check(const RepoContext& repo, std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 4> kDecoders = {
        "src/lhd/gds/reader.cpp", "src/lhd/nn/serialize.cpp",
        "src/lhd/data/io.cpp", "src/lhd/serve/protocol.cpp"};
    for (const FileContext& f : repo.files) {
      if (std::find(kDecoders.begin(), kDecoders.end(), f.path) ==
          kDecoders.end()) {
        continue;
      }
      const auto toks = code_tokens(f);
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if ((is_punct(toks[i], ".") || is_punct(toks[i], "->")) &&
            (is_ident(toks[i + 1], "reserve") ||
             is_ident(toks[i + 1], "resize")) &&
            is_punct(toks[i + 2], "(")) {
          report(out, *this, f, toks[i + 1]->line,
                 "raw ." + toks[i + 1]->text +
                     "() in a decoder — route it through lhd::bounded_" +
                     toks[i + 1]->text + " (util/bounded.hpp) with an "
                     "explicit cap");
        }
      }
    }
  }
};

// ----------------------------------------------- R6: header-hygiene ------

/// Two hygiene invariants: every header carries `#pragma once` (double
/// inclusion elsewhere shows up as baffling redefinition walls), and
/// std::thread/std::jthread never appear outside util/thread_pool —
/// threads spawned behind the pool's back dodge its shutdown join, its
/// sizing, and the TSan suppression story.
class HeaderHygieneRule final : public Rule {
 public:
  const char* id() const override { return "header-hygiene"; }
  const char* description() const override {
    return "#pragma once in every header; std::thread only inside "
           "util/thread_pool";
  }

  void check(const RepoContext& repo, std::vector<Finding>& out) const override {
    for (const FileContext& f : repo.files) {
      const auto toks = code_tokens(f);
      if (f.is_header && !has_pragma_once(toks)) {
        report(out, *this, f, 1,
               "header lacks #pragma once");
      }
      if (f.path == "src/lhd/util/thread_pool.hpp" ||
          f.path == "src/lhd/util/thread_pool.cpp") {
        continue;
      }
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (is_ident(toks[i], "std") && is_punct(toks[i + 1], "::") &&
            (is_ident(toks[i + 2], "thread") ||
             is_ident(toks[i + 2], "jthread"))) {
          report(out, *this, f, toks[i]->line,
                 "std::" + toks[i + 2]->text +
                     " outside util/thread_pool — run work on "
                     "lhd::ThreadPool (or extend the pool's API) so threads "
                     "are joined, sized and sanitizer-visible in one place");
        }
      }
    }
  }

 private:
  static bool has_pragma_once(const std::vector<const Token*>& toks) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i]->kind == TokKind::Directive && toks[i]->text == "pragma" &&
          is_ident(toks[i + 1], "once")) {
        return true;
      }
    }
    return toks.size() == 1 && toks[0]->kind == TokKind::Directive &&
           toks[0]->text == "pragma";  // degenerate one-token file: not once
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<MutexGuardsRule>());
  rules.push_back(std::make_unique<RawSyncPrimitiveRule>());
  rules.push_back(std::make_unique<LayeringRule>());
  rules.push_back(std::make_unique<DeterminismRule>());
  rules.push_back(std::make_unique<DecoderBoundsRule>());
  rules.push_back(std::make_unique<HeaderHygieneRule>());
  return rules;
}

}  // namespace lhd::lint
