#pragma once
// The lhd::lint rule framework: what a rule is, what it reports, and the
// registry of shipped rules. Rules operate on lexed token streams
// (lexer.hpp) grouped into a RepoContext, so they see code the way the
// compiler does — comments, string literals and macro bodies are already
// classified — and repo-wide rules (the include-graph layering check) get
// every file at once.
//
// The shipped rules machine-enforce the invariants the codebase's
// correctness story rests on; docs/STATIC_ANALYSIS.md carries the
// rule-by-rule triage guide, and scripts/check_docs.sh fails if a rule id
// listed in kAllRuleIds below is missing from that document.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lhd/lint/lexer.hpp"

namespace lhd::lint {

/// One reported violation. `file` is repo-relative with '/' separators;
/// `line` is 1-based.
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

/// A lexed source file plus the path-derived facts rules scope on.
struct FileContext {
  std::string path;    ///< repo-relative, '/' separators (src/lhd/core/scan.cpp)
  std::string module;  ///< "core" for src/lhd/core/..., "" outside src/lhd/
  bool is_header = false;
  std::vector<Token> tokens;  ///< full stream, comments included
  /// line -> rule ids suppressed there by `// lhd-lint: allow(rule)`
  /// comments (same line, or a standalone comment on the line above).
  std::map<int, std::set<std::string>> allow;
};

struct RepoContext {
  std::vector<FileContext> files;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* id() const = 0;
  virtual const char* description() const = 0;
  /// Append findings for the whole repo context. Per-file rules loop over
  /// context.files themselves — one uniform entry point keeps the runner
  /// trivial and lets any rule become repo-wide later.
  virtual void check(const RepoContext& repo,
                     std::vector<Finding>& out) const = 0;
};

/// Every shipped rule id, in severity-of-surprise order. This is the
/// single source of truth: default_rules() is asserted (tests/test_lint)
/// to ship exactly these, and scripts/check_docs.sh greps this block to
/// require each id documented in docs/STATIC_ANALYSIS.md.
inline constexpr const char* kAllRuleIds[] = {
    "mutex-guards",        // R1: a mutex member must guard annotated state
    "raw-sync-primitive",  // R2: std sync primitives only via the lhd shim
    "layering",            // R3: module includes must follow the DAG down
    "determinism",         // R4: no entropy/wall-clock in scan-result code
    "decoder-bounds",      // R5: decoder reserve/resize via bounded_* only
    "header-hygiene",      // R6: #pragma once; std::thread only in the pool
};

/// The shipped rule set, in kAllRuleIds order.
std::vector<std::unique_ptr<Rule>> default_rules();

}  // namespace lhd::lint
