#include "lhd/lint/analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <istream>
#include <set>
#include <sstream>

namespace lhd::lint {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return std::string(s.substr(b, e - b));
}

/// Pull rule ids out of one comment's text: everything between the
/// parentheses of `lhd-lint: allow( ... )`, comma-separated. Returns an
/// empty list when the comment carries no (well-formed) marker.
std::vector<std::string> parse_allow_marker(std::string_view comment) {
  std::vector<std::string> ids;
  const std::size_t tag = comment.find("lhd-lint:");
  if (tag == std::string_view::npos) return ids;
  const std::size_t open = comment.find("allow(", tag);
  if (open == std::string_view::npos) return ids;
  const std::size_t begin = open + 6;
  const std::size_t close = comment.find(')', begin);
  if (close == std::string_view::npos) return ids;
  std::string_view list = comment.substr(begin, close - begin);
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string id = trim(list.substr(0, comma));
    if (!id.empty()) ids.push_back(id);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return ids;
}

void escape_json(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Baseline parse_baseline(std::istream& in) {
  Baseline b;
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream fields(t);
    std::string rule, path;
    int count = 1;
    fields >> rule >> path;
    if (rule.empty() || path.empty()) continue;
    if (!(fields >> count) || count < 1) count = 1;
    b.allowed[{rule, path}] += count;
  }
  return b;
}

FileContext make_file_context(std::string path, std::string_view source) {
  FileContext f;
  f.path = std::move(path);
  f.is_header = f.path.size() >= 4 &&
                f.path.compare(f.path.size() - 4, 4, ".hpp") == 0;
  if (f.path.rfind("src/lhd/", 0) == 0) {
    const std::size_t begin = std::string("src/lhd/").size();
    const std::size_t slash = f.path.find('/', begin);
    if (slash != std::string::npos) {
      f.module = f.path.substr(begin, slash - begin);
    }
  }
  f.tokens = lex(source);

  // Which lines carry code? A comment sharing a line with code is a
  // trailing marker for that line; a comment alone on its line(s) covers
  // the first line after it ends.
  std::set<int> code_lines;
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::Comment) code_lines.insert(t.line);
  }
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::Comment) continue;
    const std::vector<std::string> ids = parse_allow_marker(t.text);
    if (ids.empty()) continue;
    const int end_line =
        t.line + static_cast<int>(std::count(t.text.begin(), t.text.end(), '\n'));
    f.allow[t.line].insert(ids.begin(), ids.end());
    if (code_lines.count(t.line) == 0) {
      f.allow[end_line + 1].insert(ids.begin(), ids.end());
    }
  }
  return f;
}

std::vector<std::string> collect_sources(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const char* top : {"src", "tools"}) {
    std::error_code ec;
    const fs::path base = fs::path(root) / top;
    fs::recursive_directory_iterator it(base, ec), end;
    if (ec) continue;  // a missing tree is fine (partial checkouts)
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      out.push_back(
          fs::relative(it->path(), root, ec).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Summary run_rules(const RepoContext& repo,
                  const std::vector<std::unique_ptr<Rule>>& rules,
                  const Baseline& baseline) {
  std::vector<Finding> raw;
  for (const auto& rule : rules) rule->check(repo, raw);
  std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });

  std::map<std::string, const FileContext*> by_path;
  for (const FileContext& f : repo.files) by_path[f.path] = &f;

  Summary s;
  s.files = repo.files.size();
  auto remaining = baseline.allowed;  // mutable budget per (rule, file)
  for (Finding& f : raw) {
    const FileContext* ctx = by_path.count(f.file) ? by_path[f.file] : nullptr;
    if (ctx) {
      const auto it = ctx->allow.find(f.line);
      if (it != ctx->allow.end() && it->second.count(f.rule)) {
        ++s.suppressed_inline;
        continue;
      }
    }
    const auto budget = remaining.find({f.rule, f.file});
    if (budget != remaining.end() && budget->second > 0) {
      --budget->second;
      ++s.suppressed_baseline;
      continue;
    }
    s.findings.push_back(std::move(f));
  }
  return s;
}

std::string render_human(const Summary& s) {
  std::ostringstream out;
  for (const Finding& f : s.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  out << "lhd_lint: " << s.findings.size() << " finding(s) across " << s.files
      << " file(s)";
  if (s.suppressed_inline || s.suppressed_baseline) {
    out << " (" << s.suppressed_inline << " inline-suppressed, "
        << s.suppressed_baseline << " baselined)";
  }
  out << "\n";
  return out.str();
}

std::string render_json(const Summary& s) {
  std::string out = "{\"schema\":\"lhd.lint/1\",\"files\":";
  out += std::to_string(s.files);
  out += ",\"suppressed_inline\":";
  out += std::to_string(s.suppressed_inline);
  out += ",\"suppressed_baseline\":";
  out += std::to_string(s.suppressed_baseline);
  out += ",\"findings\":[";
  bool first = true;
  for (const Finding& f : s.findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"rule\":\"";
    escape_json(f.rule, out);
    out += "\",\"file\":\"";
    escape_json(f.file, out);
    out += "\",\"line\":";
    out += std::to_string(f.line);
    out += ",\"message\":\"";
    escape_json(f.message, out);
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

std::string render_baseline(const Summary& s) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Finding& f : s.findings) ++counts[{f.rule, f.file}];
  std::ostringstream out;
  out << "# lhd_lint baseline — accepted debt, one `rule-id path count` per\n"
         "# line. New findings beyond these counts still fail; shrink this\n"
         "# file as violations are fixed. Regenerate: lhd_lint "
         "--write-baseline=.lhd-lint-baseline\n";
  for (const auto& [key, count] : counts) {
    out << key.first << " " << key.second << " " << count << "\n";
  }
  return out.str();
}

}  // namespace lhd::lint
