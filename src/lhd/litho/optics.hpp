#pragma once
// Approximate partially-coherent optical imaging + constant-threshold resist.
//
// The aerial image is modelled as a weighted sum of two normalized separable
// Gaussian kernels convolved with the mask transmission image:
//
//   I = w_main * (G[sigma_main] * M) + w_bg * (G[sigma_bg] * M)
//
// The narrow main lobe plays the role of the first (dominant) coherent
// kernel of an SOCS expansion; the broad background lobe models flare /
// long-range proximity. This reproduces the two failure mechanisms the
// ICCAD-2012-style labels encode: narrow lines lose peak intensity and
// *pinch* at low dose / defocus, tight spaces accumulate background and
// *bridge* at high dose. Defocus widens both lobes in quadrature.
//
// The resist prints where dose * I >= threshold. With normalized kernels a
// large pad images to I ≈ w_main + w_bg = 1, and an isolated straight edge
// sits at I = 0.5, so threshold 0.5 reproduces edges at their drawn
// position — deviations are pure proximity effects, as intended.

#include <string>
#include <vector>

#include "lhd/geom/raster.hpp"

namespace lhd::litho {

struct OpticsConfig {
  double pixel_nm = 8.0;       ///< raster resolution the model expects
  double sigma_main_nm = 25.0; ///< main-lobe Gaussian sigma
  double sigma_bg_nm = 80.0;   ///< background/flare Gaussian sigma
  double w_main = 0.90;        ///< main-lobe weight
  double w_bg = 0.10;          ///< background weight
  double threshold = 0.5;      ///< resist threshold at nominal dose
};

/// One lithography process corner.
struct ProcessCorner {
  std::string name = "nominal";
  double dose = 1.0;        ///< exposure dose scale (1.0 = nominal)
  double defocus_nm = 0.0;  ///< focus error; widens the PSF in quadrature
};

/// The corner set used for hotspot labeling: nominal, dose extremes, and
/// defocus combined with moderate dose error.
std::vector<ProcessCorner> standard_corners();

/// Separable Gaussian blur (zero padding outside the clip — the field
/// beyond a clip is dark). sigma is in pixels; kernel radius = ceil(3.5σ).
geom::FloatImage gaussian_blur(const geom::FloatImage& src, double sigma_px);

class LithoSimulator {
 public:
  explicit LithoSimulator(OpticsConfig config = {});

  const OpticsConfig& config() const { return config_; }

  /// Aerial image of a mask raster under the given defocus.
  geom::FloatImage aerial(const geom::FloatImage& mask,
                          double defocus_nm = 0.0) const;

  /// Resist contour at a process corner: prints where dose*I >= threshold.
  geom::ByteImage printed(const geom::FloatImage& mask,
                          const ProcessCorner& corner) const;

  /// Resist contour from a precomputed aerial image (lets callers reuse one
  /// aerial across same-defocus corners).
  geom::ByteImage threshold_aerial(const geom::FloatImage& aerial_img,
                                   double dose) const;

 private:
  OpticsConfig config_;
};

}  // namespace lhd::litho
