#pragma once
// Lithography metrology beyond the binary hotspot label:
//
//  * PV band — the XOR of the printed contours across all process corners
//    (the classic process-variation robustness picture; its area is a
//    scalar printability score);
//  * EPE bounds — the smallest dilation/erosion tolerances within which a
//    printed contour stays of its drawn target (outer = over-print,
//    inner = under-print), i.e. worst-case edge placement error in pixels.

#include "lhd/litho/optics.hpp"

namespace lhd::litho {

struct PvBand {
  geom::ByteImage band;      ///< 1 where some corner prints and another doesn't
  std::int64_t area_px = 0;  ///< band pixel count
  /// band area / drawn pattern area (0 when the clip is empty).
  double area_ratio = 0.0;
};

/// Compute the PV band of a mask raster over the standard corner set.
PvBand pv_band(const LithoSimulator& sim, const geom::FloatImage& mask);

struct EpeResult {
  /// Smallest r such that printed ⊆ dilate(target, r); capped at max_px.
  int outer_px = 0;
  /// Smallest r such that erode(target, r) ⊆ printed; capped at max_px.
  int inner_px = 0;
  /// max(outer, inner) — worst-case edge placement error.
  int worst_px = 0;
  bool capped = false;  ///< true if either bound hit max_px
};

/// Worst-case EPE of a printed contour against the drawn target.
EpeResult edge_placement_error(const geom::ByteImage& target,
                               const geom::ByteImage& printed,
                               int max_px = 8);

}  // namespace lhd::litho
