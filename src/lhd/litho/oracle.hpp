#pragma once
// Hotspot ground-truth oracle: compares printed contours against the drawn
// target across process corners and reports pinch / bridge / CD-blowup
// violations. This plays the role the contest organizers' industrial
// lithography simulator played when the ICCAD 2012 benchmark labels were
// produced.

#include <string>

#include "lhd/litho/optics.hpp"

namespace lhd::litho {

struct OracleConfig {
  OpticsConfig optics;
  /// Fraction of the clip (centred) whose violations count. Clip borders are
  /// excluded because shapes cut by the clip window under-print artificially.
  double core_frac = 0.5;
  /// EPE tolerance in pixels: contour may wander this far from the drawn
  /// edge without penalty (used by the CD blow-up check).
  int epe_tol_px = 2;
  /// A drawn shape counts as vanished (open) only if its drawn area is at
  /// least this many pixels — smaller slivers are clip artifacts.
  int min_shape_px = 20;
  /// Printed ink >= epe_tol outside any target totalling >= this many core
  /// pixels is a CD blow-up violation even without an actual merge.
  int extra_area_px = 40;
};

struct OracleResult {
  bool hotspot = false;
  bool pinch = false;        ///< a drawn shape breaks apart or vanishes (open)
  bool bridge = false;       ///< one printed blob spans >= 2 drawn shapes
  bool cd_blowup = false;    ///< gross over-print without a merge
  int worst_pinch_frags = 0; ///< max printed fragments of one drawn shape
  int worst_extra_px = 0;    ///< total out-of-tolerance extra ink (worst corner)
  std::string worst_corner;  ///< corner that produced the first violation
};

class HotspotOracle {
 public:
  explicit HotspotOracle(OracleConfig config = {});

  const OracleConfig& config() const { return config_; }

  /// Label one clip. `mask` is the rasterized layout (coverage in [0,1]).
  OracleResult evaluate(const geom::FloatImage& mask) const;

  /// Detailed single-corner check (exposed for tests and diagnostics).
  OracleResult evaluate_corner(const geom::FloatImage& mask,
                               const ProcessCorner& corner) const;

  /// Approximate wall-clock cost of one evaluate() call in seconds; used by
  /// the ODST metric to price false alarms. Measured once, lazily.
  static double seconds_per_clip(const OracleConfig& config);

 private:
  OracleResult check_contour(const geom::ByteImage& target,
                             const geom::ByteImage& printed,
                             const std::string& corner_name) const;

  OracleConfig config_;
  LithoSimulator sim_;
};

}  // namespace lhd::litho
