#include "lhd/litho/oracle.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "lhd/util/check.hpp"
#include "lhd/util/stopwatch.hpp"

namespace lhd::litho {

using geom::ByteImage;
using geom::FloatImage;

HotspotOracle::HotspotOracle(OracleConfig config)
    : config_(config), sim_(config.optics) {
  LHD_CHECK(config_.core_frac > 0 && config_.core_frac <= 1,
            "core_frac must be in (0, 1]");
  LHD_CHECK(config_.epe_tol_px >= 0, "epe_tol_px must be >= 0");
  LHD_CHECK(config_.min_shape_px > 0 && config_.extra_area_px > 0,
            "violation thresholds must be positive");
}

OracleResult HotspotOracle::evaluate(const FloatImage& mask) const {
  const ByteImage target = geom::binarize(mask, 0.5f);
  OracleResult combined;
  // Group corners by defocus so each aerial image is computed once.
  std::map<double, std::vector<const ProcessCorner*>> by_defocus;
  static const std::vector<ProcessCorner> corners = standard_corners();
  for (const auto& c : corners) by_defocus[c.defocus_nm].push_back(&c);

  for (const auto& [defocus, group] : by_defocus) {
    const FloatImage air = sim_.aerial(mask, defocus);
    for (const ProcessCorner* corner : group) {
      const ByteImage printed = sim_.threshold_aerial(air, corner->dose);
      const OracleResult r = check_contour(target, printed, corner->name);
      combined.pinch |= r.pinch;
      combined.bridge |= r.bridge;
      combined.cd_blowup |= r.cd_blowup;
      combined.worst_pinch_frags =
          std::max(combined.worst_pinch_frags, r.worst_pinch_frags);
      combined.worst_extra_px =
          std::max(combined.worst_extra_px, r.worst_extra_px);
      if (r.hotspot && combined.worst_corner.empty()) {
        combined.worst_corner = corner->name;
      }
    }
  }
  combined.hotspot = combined.pinch || combined.bridge || combined.cd_blowup;
  return combined;
}

OracleResult HotspotOracle::evaluate_corner(const FloatImage& mask,
                                            const ProcessCorner& corner) const {
  const ByteImage target = geom::binarize(mask, 0.5f);
  return check_contour(target, sim_.printed(mask, corner), corner.name);
}

OracleResult HotspotOracle::check_contour(const ByteImage& target,
                                          const ByteImage& printed,
                                          const std::string& corner_name) const {
  OracleResult r;
  const int w = target.width();
  const int h = target.height();
  const int margin_x = static_cast<int>(w * (1.0 - config_.core_frac) / 2.0);
  const int margin_y = static_cast<int>(h * (1.0 - config_.core_frac) / 2.0);
  auto in_core = [&](int x, int y) {
    return x >= margin_x && x < w - margin_x && y >= margin_y &&
           y < h - margin_y;
  };

  int target_components = 0;
  const auto target_labels =
      geom::connected_components(target, &target_components);
  int printed_components = 0;
  const auto printed_labels =
      geom::connected_components(printed, &printed_components);

  // One pass gathers, per target component: drawn area, core contact, and
  // the set of printed components overlapping it; and per printed
  // component: the set of target components it overlaps plus core contact.
  std::vector<std::int64_t> t_area(static_cast<std::size_t>(target_components) + 1, 0);
  std::vector<bool> t_core(static_cast<std::size_t>(target_components) + 1, false);
  std::vector<std::set<std::int32_t>> t_overlap(
      static_cast<std::size_t>(target_components) + 1);
  std::vector<std::set<std::int32_t>> p_overlap(
      static_cast<std::size_t>(printed_components) + 1);
  std::vector<bool> p_core(static_cast<std::size_t>(printed_components) + 1,
                           false);

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::int32_t tl = target_labels.at(x, y);
      const std::int32_t pl = printed_labels.at(x, y);
      if (tl != 0) {
        ++t_area[static_cast<std::size_t>(tl)];
        if (in_core(x, y)) t_core[static_cast<std::size_t>(tl)] = true;
        if (pl != 0) {
          t_overlap[static_cast<std::size_t>(tl)].insert(pl);
          p_overlap[static_cast<std::size_t>(pl)].insert(tl);
        }
      }
      if (pl != 0 && in_core(x, y)) {
        p_core[static_cast<std::size_t>(pl)] = true;
      }
    }
  }

  // --- pinch/open: a drawn shape prints as >= 2 fragments or vanishes ----
  for (int c = 1; c <= target_components; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    if (!t_core[ci]) continue;  // violations outside the core don't count
    const auto frags = static_cast<int>(t_overlap[ci].size());
    r.worst_pinch_frags = std::max(r.worst_pinch_frags, frags);
    if (frags >= 2) {
      r.pinch = true;
    } else if (frags == 0 && t_area[ci] >= config_.min_shape_px) {
      r.pinch = true;  // the shape vanished entirely
    }
  }

  // --- bridge: one printed blob overlapping >= 2 drawn shapes ------------
  for (int c = 1; c <= printed_components; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    if (p_overlap[ci].size() >= 2 && p_core[ci]) {
      r.bridge = true;
      break;
    }
  }

  // --- CD blow-up: gross out-of-tolerance extra ink in the core ----------
  const ByteImage band = geom::dilate(target, config_.epe_tol_px);
  int extra = 0;
  for (int y = margin_y; y < h - margin_y; ++y) {
    for (int x = margin_x; x < w - margin_x; ++x) {
      if (printed.at(x, y) && !band.at(x, y)) ++extra;
    }
  }
  r.worst_extra_px = extra;
  r.cd_blowup = extra >= config_.extra_area_px;

  r.hotspot = r.pinch || r.bridge || r.cd_blowup;
  if (r.hotspot) r.worst_corner = corner_name;
  return r;
}

double HotspotOracle::seconds_per_clip(const OracleConfig& config) {
  static double cached = -1.0;
  if (cached >= 0) return cached;
  // Measure on a representative 128x128 clip with a few shapes.
  HotspotOracle oracle(config);
  FloatImage mask(128, 128, 0.0f);
  for (int y = 20; y < 110; ++y) {
    for (int x = 0; x < 128; ++x) {
      if ((y / 12) % 2 == 0) mask.at(x, y) = 1.0f;
    }
  }
  constexpr int kReps = 5;
  Stopwatch sw;
  for (int i = 0; i < kReps; ++i) (void)oracle.evaluate(mask);
  cached = sw.seconds() / kReps;
  return cached;
}

}  // namespace lhd::litho
