#include "lhd/litho/optics.hpp"

#include <cmath>

#include "lhd/util/check.hpp"

namespace lhd::litho {

using geom::ByteImage;
using geom::FloatImage;

std::vector<ProcessCorner> standard_corners() {
  return {
      {"nominal", 1.00, 0.0},
      {"dose-", 0.95, 0.0},
      {"dose+", 1.05, 0.0},
      {"defocus/dose-", 0.96, 12.0},
      {"defocus/dose+", 1.04, 12.0},
  };
}

namespace {

/// Reflect an index into [0, n) (mirror boundary, period 2n). The clip is a
/// window into a larger layout; mirroring statistically continues the
/// pattern beyond the window instead of pretending the field goes dark,
/// which would artificially under-print (and even disconnect) shapes near
/// the window boundary.
int reflect(int i, int n) {
  while (i < 0 || i >= n) {
    if (i < 0) i = -i - 1;
    if (i >= n) i = 2 * n - 1 - i;
  }
  return i;
}

}  // namespace

FloatImage gaussian_blur(const FloatImage& src, double sigma_px) {
  LHD_CHECK(sigma_px > 0, "sigma must be positive");
  const int radius = static_cast<int>(std::ceil(3.5 * sigma_px));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * (i / sigma_px) * (i / sigma_px));
    kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(v);
    sum += v;
  }
  for (auto& k : kernel) k = static_cast<float>(k / sum);

  const int w = src.width();
  const int h = src.height();
  FloatImage tmp(w, h, 0.0f);
  // Horizontal pass (mirror padding).
  for (int y = 0; y < h; ++y) {
    const float* in = src.row(y);
    float* out = tmp.row(y);
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      if (x >= radius && x + radius < w) {
        for (int d = -radius; d <= radius; ++d) {
          acc += in[x + d] * kernel[static_cast<std::size_t>(d + radius)];
        }
      } else {
        for (int d = -radius; d <= radius; ++d) {
          acc += in[reflect(x + d, w)] *
                 kernel[static_cast<std::size_t>(d + radius)];
        }
      }
      out[x] = acc;
    }
  }
  // Vertical pass (mirror padding).
  FloatImage dst(w, h, 0.0f);
  for (int y = 0; y < h; ++y) {
    float* out = dst.row(y);
    for (int d = -radius; d <= radius; ++d) {
      const float k = kernel[static_cast<std::size_t>(d + radius)];
      const float* in = tmp.row(reflect(y + d, h));
      for (int x = 0; x < w; ++x) out[x] += in[x] * k;
    }
  }
  return dst;
}

LithoSimulator::LithoSimulator(OpticsConfig config) : config_(config) {
  LHD_CHECK(config_.pixel_nm > 0, "pixel_nm must be positive");
  LHD_CHECK(config_.sigma_main_nm > 0 && config_.sigma_bg_nm > 0,
            "sigmas must be positive");
  LHD_CHECK(config_.threshold > 0, "threshold must be positive");
}

FloatImage LithoSimulator::aerial(const FloatImage& mask,
                                  double defocus_nm) const {
  const double defocus2 = defocus_nm * defocus_nm;
  const double sigma_main_px =
      std::sqrt(config_.sigma_main_nm * config_.sigma_main_nm + defocus2) /
      config_.pixel_nm;
  const double sigma_bg_px =
      std::sqrt(config_.sigma_bg_nm * config_.sigma_bg_nm + defocus2) /
      config_.pixel_nm;
  const FloatImage main = gaussian_blur(mask, sigma_main_px);
  const FloatImage bg = gaussian_blur(mask, sigma_bg_px);
  FloatImage out(mask.width(), mask.height(), 0.0f);
  auto& dst = out.data();
  const auto& m = main.data();
  const auto& b = bg.data();
  const auto wm = static_cast<float>(config_.w_main);
  const auto wb = static_cast<float>(config_.w_bg);
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = wm * m[i] + wb * b[i];
  return out;
}

ByteImage LithoSimulator::printed(const FloatImage& mask,
                                  const ProcessCorner& corner) const {
  return threshold_aerial(aerial(mask, corner.defocus_nm), corner.dose);
}

ByteImage LithoSimulator::threshold_aerial(const FloatImage& aerial_img,
                                           double dose) const {
  LHD_CHECK(dose > 0, "dose must be positive");
  return geom::binarize(aerial_img,
                        static_cast<float>(config_.threshold / dose));
}

}  // namespace lhd::litho
