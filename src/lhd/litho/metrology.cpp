#include "lhd/litho/metrology.hpp"

#include <algorithm>

#include "lhd/util/check.hpp"

namespace lhd::litho {

using geom::ByteImage;
using geom::FloatImage;

PvBand pv_band(const LithoSimulator& sim, const FloatImage& mask) {
  PvBand result;
  const int w = mask.width();
  const int h = mask.height();
  ByteImage all_union(w, h, 0);
  ByteImage all_inter(w, h, 1);

  // Group corners by defocus so aerials are shared.
  const auto corners = standard_corners();
  for (const auto& corner : corners) {
    const ByteImage printed = sim.printed(mask, corner);
    for (std::size_t i = 0; i < printed.data().size(); ++i) {
      all_union.data()[i] |= printed.data()[i];
      all_inter.data()[i] &= printed.data()[i];
    }
  }

  result.band = ByteImage(w, h, 0);
  for (std::size_t i = 0; i < result.band.data().size(); ++i) {
    result.band.data()[i] =
        static_cast<std::uint8_t>(all_union.data()[i] & ~all_inter.data()[i] & 1);
    result.area_px += result.band.data()[i];
  }

  std::int64_t drawn = 0;
  for (const float v : mask.data()) drawn += (v >= 0.5f);
  result.area_ratio =
      drawn > 0 ? static_cast<double>(result.area_px) / static_cast<double>(drawn)
                : 0.0;
  return result;
}

namespace {

/// a ⊆ b ?
bool subset_of(const ByteImage& a, const ByteImage& b) {
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    if (a.data()[i] && !b.data()[i]) return false;
  }
  return true;
}

}  // namespace

EpeResult edge_placement_error(const ByteImage& target,
                               const ByteImage& printed, int max_px) {
  LHD_CHECK(max_px >= 0, "max_px must be >= 0");
  LHD_CHECK(target.width() == printed.width() &&
                target.height() == printed.height(),
            "image size mismatch");
  EpeResult r;

  // Outer EPE: grow the target until it swallows everything printed.
  r.outer_px = max_px;
  r.capped = true;
  for (int t = 0; t <= max_px; ++t) {
    if (subset_of(printed, geom::dilate(target, t))) {
      r.outer_px = t;
      r.capped = false;
      break;
    }
  }

  // Inner EPE: shrink the target until the remainder is fully printed.
  bool inner_capped = true;
  r.inner_px = max_px;
  for (int t = 0; t <= max_px; ++t) {
    if (subset_of(geom::erode(target, t), printed)) {
      r.inner_px = t;
      inner_capped = false;
      break;
    }
  }
  r.capped = r.capped || inner_capped;
  r.worst_px = std::max(r.outer_px, r.inner_px);
  return r;
}

}  // namespace lhd::litho
