// libFuzzer harness for the network weight loader (built with
// -DLHD_FUZZ=ON).
//
// Contract under fuzz: for ANY byte string, nn::load_weights either loads
// into the target network or throws lhd::Error with offset context —
// never crashes, never allocates unboundedly, never leaves the network
// half-loaded (asserted separately by tests/test_nn.cpp; here we only
// require no crash).

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "lhd/nn/network.hpp"
#include "lhd/nn/serialize.hpp"
#include "lhd/util/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // One network per process: topology is fixed, load overwrites weights.
  static lhd::nn::Network net = lhd::nn::make_hotspot_cnn(2, 8);
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    lhd::nn::load_weights(net, in);
  } catch (const lhd::Error&) {
    // Rejected input: the expected outcome for most mutations.
  }
  return 0;
}
