// libFuzzer harness for the serve wire decoder and request handler (built
// with -DLHD_FUZZ=ON).
//
// Contract under fuzz: for ANY byte string, decode_request either decodes
// a frame or throws WireError — never crashes, never allocates past the
// protocol caps. A decoded request is then driven through a real Server
// (small DoS caps, stub detector) and its response re-encoded and
// re-decoded, so handler-side validation and the response coder fuzz for
// free. The stream is drained frame by frame, recovering across
// recoverable payload errors exactly like Server::serve does.
//
// Seed corpus: tests/fixtures/serve_corpus (one hex file per crash class;
// every file also has a regression test in tests/test_serve.cpp).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "lhd/core/detector.hpp"
#include "lhd/serve/protocol.hpp"
#include "lhd/serve/server.hpp"
#include "lhd/util/check.hpp"

namespace {

// Trivial thread-safe detector: score = rect count (cheap, deterministic,
// translation/order invariant — satisfies the dedup precondition).
class CountDetector final : public lhd::core::Detector {
 public:
  std::string name() const override { return "count"; }
  void train(const lhd::data::Dataset&) override {}
  float score(const lhd::data::Clip& clip) const override {
    return static_cast<float>(clip.rects.size());
  }
  bool predict(const lhd::data::Clip& clip) const override {
    return score(clip) > 0.0f;
  }
  void set_threshold(float) override {}
  float threshold() const override { return 0.0f; }
};

lhd::serve::Server& shared_server() {
  // One server per process; tiny caps so hostile decoded requests cannot
  // make a single fuzz iteration expensive.
  static lhd::serve::Server* server = [] {
    lhd::serve::ServerConfig config;
    config.score_workers = 1;
    config.max_queue = 4;
    config.session_workers = 1;
    config.cache_capacity = 64;
    config.cache_shards = 2;
    config.max_scan_windows = 64;
    config.max_scan_extent_nm = 1 << 16;
    auto* s = new lhd::serve::Server(config);
    s->add_model("default", std::make_shared<CountDetector>(),
                 [](const std::vector<std::uint8_t>& w) {
                   LHD_CHECK(w.size() % 2 == 0, "odd blob rejected");
                   return std::make_shared<CountDetector>();
                 });
    return s;
  }();
  return *server;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  auto& server = shared_server();
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  // Drain the stream like a session loop: recoverable payload errors skip
  // one frame, anything else ends the session.
  for (;;) {
    try {
      const auto req = lhd::serve::decode_request(in);
      if (!req) break;  // clean EOF
      const auto resp = server.handle(*req);
      std::ostringstream out;
      lhd::serve::encode_response(resp, out);
      std::istringstream back(out.str());
      (void)lhd::serve::decode_response(back);
    } catch (const lhd::serve::WireError& e) {
      if (!e.recoverable()) break;
    } catch (const lhd::Error&) {
      break;  // encode-side cap (e.g. oversized stats payload): give up
    }
  }
  return 0;
}
