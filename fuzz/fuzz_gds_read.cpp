// libFuzzer harness for the GDSII reader (built with -DLHD_FUZZ=ON).
//
// Contract under fuzz: for ANY byte string, gds::read_bytes either returns
// a Library or throws lhd::Error — never crashes, hangs, or trips a
// sanitizer. Whatever parses must also survive re-serialization and
// hierarchy flattening (the paths a hostile file reaches right after the
// parse in every real pipeline).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lhd/gds/model.hpp"
#include "lhd/gds/reader.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/util/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    const lhd::gds::Library lib = lhd::gds::read_bytes(bytes);
    (void)lhd::gds::write_bytes(lib);
    for (const auto& s : lib.structures()) {
      try {
        (void)lib.flatten_layer(s.name, 1);
      } catch (const lhd::Error&) {
        // Parse-clean inputs may still flatten-fail (depth bombs,
        // dangling refs, overflow) — as an exception, not a crash.
      }
    }
  } catch (const lhd::Error&) {
    // Rejected input: the expected outcome for most mutations.
  }
  return 0;
}
