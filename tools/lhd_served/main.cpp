// lhd_served: the detection daemon over stdio. One process = one session:
// the parent drives the serve wire protocol on stdin/stdout (see
// docs/SERVE.md) and reads human-facing logs on stderr — stdout carries
// frames only.
//
//   ./lhd_served [--detector=nb] [--model=default] [--suite=B2]
//                [--train=120] [--workers=2] [--queue=32]
//                [--cache=4096] [--max-scan-windows=16384]
//
// The model is trained at startup on a deterministic synthetic suite so
// the daemon is immediately useful; a CNN model additionally accepts
// reload-weights frames (other kinds answer a typed error).

#include <iostream>
#include <memory>

#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/factory.hpp"
#include "lhd/serve/server.hpp"
#include "lhd/synth/builder.hpp"
#include "lhd/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace lhd;
  const Cli cli(argc, argv);

  const std::string kind = cli.get_string("detector", "nb");
  const std::string model = cli.get_string("model", "default");

  synth::SuiteSpec spec = synth::suite_by_name(cli.get_string("suite", "B2"));
  spec.n_train = static_cast<int>(cli.get_int("train", 120));
  spec.n_test = 1;  // the daemon never evaluates; keep the build cheap
  std::cerr << "lhd_served: building suite " << spec.name << " ("
            << spec.n_train << " train clips)...\n";
  const synth::BuiltSuite suite = synth::build_suite(spec, {});

  serve::ServerConfig config;
  config.score_workers = static_cast<std::size_t>(cli.get_int("workers", 2));
  config.max_queue = static_cast<std::size_t>(cli.get_int("queue", 32));
  config.cache_capacity = static_cast<std::size_t>(cli.get_int("cache", 4096));
  config.max_scan_windows =
      static_cast<std::size_t>(cli.get_int("max-scan-windows", 16384));
  serve::Server server(config);

  std::cerr << "lhd_served: training '" << kind << "' as model '" << model
            << "'...\n";
  if (kind.rfind("cnn", 0) == 0) {
    // CNN kinds get a reload loader: new weights must fit this config's
    // architecture (nn/serialize checks shapes on load).
    core::CnnDetectorConfig cnn_config;
    auto detector = std::make_shared<core::CnnDetector>(model, cnn_config);
    detector->train(suite.train);
    server.add_model(model, std::move(detector),
                     serve::cnn_weight_loader(model, cnn_config));
  } else {
    std::shared_ptr<core::Detector> detector = core::make_detector(kind);
    detector->train(suite.train);
    server.add_model(model, std::move(detector));
  }

  std::cerr << "lhd_served: serving model '" << model << "' on stdio "
            << "(workers=" << config.score_workers
            << ", queue=" << config.max_queue << ")\n";
  serve::StreamTransport transport(std::cin, std::cout);
  server.serve(transport);
  std::cerr << "lhd_served: session ended\n" << server.stats_json() << "\n";
  return 0;
}
