// lhd_lint — the in-repo static analyzer. See docs/STATIC_ANALYSIS.md for
// the rule-by-rule triage guide.
//
//   lhd_lint --root=/path/to/repo              lint src/ + tools/, human output
//   lhd_lint --root=. --json                   machine-readable findings
//   lhd_lint --root=. --rule=layering          run a subset of rules
//   lhd_lint --root=. --list-rules             print the shipped rule set
//   lhd_lint --root=. --baseline=FILE          override .lhd-lint-baseline
//   lhd_lint --root=. --write-baseline=FILE    accept current findings as debt
//   lhd_lint --root=. src/lhd/core/scan.cpp    lint explicit repo-relative paths
//
// Exit status: 0 clean (or fully suppressed), 1 unsuppressed findings,
// 2 usage or I/O error. Flags are hand-parsed: the tool must stay free of
// lhd library dependencies so it can never be broken by the code it lints.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lhd/lint/analyzer.hpp"

namespace {

bool take_value(const std::string& arg, const char* flag, std::string& out) {
  const std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

int usage(const char* msg) {
  std::cerr << "lhd_lint: " << msg << "\n"
            << "usage: lhd_lint [--root=DIR] [--json] [--rule=ID]...\n"
            << "                [--baseline=FILE | --write-baseline=FILE]\n"
            << "                [--list-rules] [PATH...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;      // empty: default to <root>/.lhd-lint-baseline
  std::string write_baseline_path;
  std::vector<std::string> rule_filter;
  std::vector<std::string> paths;
  bool json = false, list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (take_value(arg, "--root", root)) {
    } else if (take_value(arg, "--baseline", baseline_path)) {
    } else if (take_value(arg, "--write-baseline", write_baseline_path)) {
    } else if (take_value(arg, "--rule", value)) {
      rule_filter.push_back(value);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(("unknown flag '" + arg + "'").c_str());
    } else {
      paths.push_back(arg);
    }
  }

  auto rules = lhd::lint::default_rules();
  if (list_rules) {
    for (const auto& r : rules) {
      std::cout << r->id() << "  " << r->description() << "\n";
    }
    return 0;
  }
  if (!rule_filter.empty()) {
    std::vector<std::unique_ptr<lhd::lint::Rule>> kept;
    for (auto& r : rules) {
      for (const std::string& want : rule_filter) {
        if (want == r->id()) {
          kept.push_back(std::move(r));
          break;
        }
      }
    }
    if (kept.empty()) return usage("--rule matched no shipped rule id");
    rules = std::move(kept);
  }

  if (paths.empty()) paths = lhd::lint::collect_sources(root);
  lhd::lint::RepoContext repo;
  for (const std::string& rel : paths) {
    const std::filesystem::path full = std::filesystem::path(root) / rel;
    std::ifstream in(full, std::ios::binary);
    if (!in) return usage(("cannot read '" + full.string() + "'").c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    repo.files.push_back(lhd::lint::make_file_context(rel, buf.str()));
  }

  lhd::lint::Baseline baseline;
  if (write_baseline_path.empty()) {
    const std::filesystem::path bp =
        baseline_path.empty()
            ? std::filesystem::path(root) / ".lhd-lint-baseline"
            : std::filesystem::path(baseline_path);
    std::ifstream in(bp);
    if (in) {
      baseline = lhd::lint::parse_baseline(in);
    } else if (!baseline_path.empty()) {
      return usage(("cannot read baseline '" + bp.string() + "'").c_str());
    }
  }

  const lhd::lint::Summary summary =
      lhd::lint::run_rules(repo, rules, baseline);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      return usage(("cannot write '" + write_baseline_path + "'").c_str());
    }
    out << lhd::lint::render_baseline(summary);
    std::cerr << "lhd_lint: wrote " << summary.findings.size()
              << " finding(s) to " << write_baseline_path << "\n";
    return 0;
  }

  std::cout << (json ? lhd::lint::render_json(summary)
                     : lhd::lint::render_human(summary));
  return summary.findings.empty() ? 0 : 1;
}
