// Tests for lhd/gds: excess-64 reals, record framing, writer/reader
// round-trips, transforms, flattening.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "lhd/gds/reader.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/geom/polygon.hpp"

namespace lhd::gds {
namespace {

using geom::Point;
using geom::Rect;

// ------------------------------------------------------------ gds real64 --

class Real64RoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(Real64RoundTrip, EncodeDecodeIsExactForRepresentable) {
  const double v = GetParam();
  EXPECT_DOUBLE_EQ(decode_real64(encode_real64(v)), v);
}

INSTANTIATE_TEST_SUITE_P(
    Values, Real64RoundTrip,
    ::testing::Values(0.0, 1.0, -1.0, 0.5, -0.25, 2.0, 16.0, 1e-9, 1e-3,
                      6.25e-2, 1024.0, -4096.0, 0.001953125));

TEST(Real64, ZeroEncodesToZeroBits) { EXPECT_EQ(encode_real64(0.0), 0u); }

TEST(Real64, KnownEncodingOfOne) {
  // 1.0 = 0x4110000000000000 in GDS excess-64 format.
  EXPECT_EQ(encode_real64(1.0), 0x4110000000000000ULL);
}

TEST(Real64, SignBit) {
  EXPECT_EQ(encode_real64(-1.0) >> 63, 1u);
  EXPECT_EQ(encode_real64(1.0) >> 63, 0u);
}

TEST(Real64, ApproximateForIrrational) {
  const double v = 3.14159265358979;
  EXPECT_NEAR(decode_real64(encode_real64(v)), v, 1e-15);
}

// --------------------------------------------------------------- records --

TEST(Records, ScanRejectsTruncatedHeader) {
  EXPECT_THROW(scan_records({0x00}), ParseError);
}

TEST(Records, ScanRejectsOverrunningRecord) {
  // Claims 8 bytes but only 6 present.
  EXPECT_THROW(scan_records({0x00, 0x08, 0x00, 0x02, 0x00, 0x01}),
               ParseError);
}

TEST(Records, ScanRejectsOddLength) {
  EXPECT_THROW(scan_records({0x00, 0x05, 0x00, 0x02, 0x00}), ParseError);
}

TEST(Records, ScanRejectsTinyLength) {
  EXPECT_THROW(scan_records({0x00, 0x02, 0x00, 0x02}), ParseError);
}

TEST(Records, ScanStopsAtEndLib) {
  std::vector<std::uint8_t> bytes = {
      0x00, 0x04, 0x04, 0x00,  // ENDLIB
      0x00, 0x00, 0x00, 0x00,  // tape padding (invalid as a record)
  };
  const auto records = scan_records(bytes);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, RecordType::EndLib);
}

// -------------------------------------------------------- library builds --

Library demo_library() {
  Library lib;
  lib.name = "DEMO";
  Structure& cell = lib.add_structure("CELL");
  Boundary b;
  b.layer = 1;
  b.polygon = geom::Polygon::from_rect(Rect(0, 0, 100, 50));
  cell.add(b);

  Path p;
  p.layer = 2;
  p.width = 20;
  p.points = {{0, 0}, {200, 0}, {200, 150}};
  cell.add(p);

  Structure& top = lib.add_structure("TOP");
  SRef ref;
  ref.structure = "CELL";
  ref.transform.origin = {1000, 2000};
  top.add(ref);

  ARef arr;
  arr.structure = "CELL";
  arr.transform.origin = {0, 0};
  arr.cols = 3;
  arr.rows = 2;
  arr.col_step = {500, 0};
  arr.row_step = {0, 400};
  top.add(arr);
  return lib;
}

TEST(Library, DuplicateStructureNameThrows) {
  Library lib;
  lib.add_structure("A");
  EXPECT_THROW(lib.add_structure("A"), Error);
}

TEST(Library, FindReturnsNullForUnknown) {
  Library lib;
  EXPECT_EQ(lib.find("NOPE"), nullptr);
}

// ------------------------------------------------------------ round trip --

TEST(RoundTrip, LibraryMetadataSurvives) {
  const auto bytes = write_bytes(demo_library());
  const Library back = read_bytes(bytes);
  EXPECT_EQ(back.name, "DEMO");
  EXPECT_DOUBLE_EQ(back.dbu_in_meters, 1e-9);
  EXPECT_DOUBLE_EQ(back.dbu_in_user, 1e-3);
  EXPECT_EQ(back.structures().size(), 2u);
  EXPECT_NE(back.find("CELL"), nullptr);
  EXPECT_NE(back.find("TOP"), nullptr);
}

TEST(RoundTrip, BoundaryGeometrySurvives) {
  const Library back = read_bytes(write_bytes(demo_library()));
  const auto rects = back.flatten_layer("CELL", 1);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], Rect(0, 0, 100, 50));
}

TEST(RoundTrip, PathExpandsToRects) {
  const Library back = read_bytes(write_bytes(demo_library()));
  const auto rects = back.flatten_layer("CELL", 2);
  // Two segments.
  ASSERT_EQ(rects.size(), 2u);
  EXPECT_EQ(geom::union_area(rects),
            200 * 20 + 150 * 20);  // corner overlap counted once
}

TEST(RoundTrip, SRefTranslates) {
  const Library back = read_bytes(write_bytes(demo_library()));
  const auto rects = back.flatten_layer("TOP", 1);
  // 1 SREF + 6 AREF placements.
  ASSERT_EQ(rects.size(), 7u);
  bool found = false;
  for (const auto& r : rects) {
    if (r == Rect(1000, 2000, 1100, 2050)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RoundTrip, ARefGridPlacement) {
  const Library back = read_bytes(write_bytes(demo_library()));
  const auto rects = back.flatten_layer("TOP", 1);
  int grid_hits = 0;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      const Rect want(c * 500, r * 400, c * 500 + 100, r * 400 + 50);
      for (const auto& got : rects) grid_hits += (got == want);
    }
  }
  EXPECT_EQ(grid_hits, 6);
}

TEST(RoundTrip, FileIo) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "lhd_test_roundtrip.gds";
  write_file(demo_library(), path.string());
  const Library back = read_file(path.string());
  EXPECT_EQ(back.name, "DEMO");
  fs::remove(path);
}

TEST(RoundTrip, PathType2Survives) {
  Library lib;
  Structure& s = lib.add_structure("P");
  Path p;
  p.layer = 3;
  p.width = 10;
  p.pathtype = 2;
  p.points = {{0, 0}, {100, 0}};
  s.add(p);
  const Library back = read_bytes(write_bytes(lib));
  const auto rects = back.flatten_layer("P", 3);
  ASSERT_EQ(rects.size(), 1u);
  // pathtype 2 extends both free ends by width/2.
  EXPECT_EQ(rects[0], Rect(-5, -5, 105, 5));
}

// -------------------------------------------------------------- transform --

class TransformAngles : public ::testing::TestWithParam<int> {};

TEST_P(TransformAngles, RoundTripPreservesOrientation) {
  const int angle = GetParam();
  Library lib;
  Structure& cell = lib.add_structure("CELL");
  Boundary b;
  b.layer = 1;
  b.polygon = geom::Polygon::from_rect(Rect(0, 0, 30, 10));
  cell.add(b);
  Structure& top = lib.add_structure("TOP");
  SRef ref;
  ref.structure = "CELL";
  ref.transform.angle_deg = angle;
  ref.transform.origin = {100, 100};
  top.add(ref);

  const auto direct = lib.flatten_layer("TOP", 1);
  const Library back = read_bytes(write_bytes(lib));
  const auto reparsed = back.flatten_layer("TOP", 1);
  ASSERT_EQ(direct.size(), 1u);
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(direct[0], reparsed[0]);
  EXPECT_EQ(direct[0].area(), 300);
}

INSTANTIATE_TEST_SUITE_P(Angles, TransformAngles,
                         ::testing::Values(0, 90, 180, 270));

TEST(Transform, MirrorThenRotateMatchesGdsSemantics) {
  Transform t;
  t.mirror_x = true;
  t.angle_deg = 90;
  t.origin = {0, 0};
  // GDS: reflect about x first (y -> -y), then rotate CCW 90.
  // (1, 0) -> (1, 0) -> (0, 1).
  EXPECT_EQ(t.apply(Point{1, 0}), (Point{0, 1}));
  // (0, 1) -> (0, -1) -> (1, 0).
  EXPECT_EQ(t.apply(Point{0, 1}), (Point{1, 0}));
}

TEST(Transform, ComposeMatchesSequentialApplication) {
  Transform outer;
  outer.mirror_x = true;
  outer.angle_deg = 90;
  outer.origin = {10, 20};
  Transform inner;
  inner.angle_deg = 180;
  inner.origin = {5, -3};
  const Transform composed = outer.compose(inner);
  for (const Point p : {Point{0, 0}, Point{7, 3}, Point{-4, 11}}) {
    EXPECT_EQ(composed.apply(p), outer.apply(inner.apply(p)));
  }
}

TEST(Transform, MirrorRoundTripThroughBytes) {
  Library lib;
  Structure& cell = lib.add_structure("CELL");
  Boundary b;
  b.layer = 1;
  b.polygon = geom::Polygon::from_rect(Rect(0, 0, 30, 10));
  cell.add(b);
  Structure& top = lib.add_structure("TOP");
  SRef ref;
  ref.structure = "CELL";
  ref.transform.mirror_x = true;
  ref.transform.origin = {0, 0};
  top.add(ref);

  const auto direct = lib.flatten_layer("TOP", 1);
  const auto reparsed = read_bytes(write_bytes(lib)).flatten_layer("TOP", 1);
  ASSERT_EQ(direct.size(), 1u);
  EXPECT_EQ(direct[0], Rect(0, -10, 30, 0));
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed[0], direct[0]);
}

// --------------------------------------------------------------- flatten --

TEST(Flatten, UnknownTopThrows) {
  const Library lib = demo_library();
  EXPECT_THROW(lib.flatten_layer("MISSING", 1), Error);
}

TEST(Flatten, UnknownSRefTargetThrows) {
  Library lib;
  Structure& top = lib.add_structure("TOP");
  SRef ref;
  ref.structure = "GHOST";
  top.add(ref);
  EXPECT_THROW(lib.flatten_layer("TOP", 1), Error);
}

TEST(Flatten, CycleDetected) {
  Library lib;
  Structure& a = lib.add_structure("A");
  Structure& b = lib.add_structure("B");
  SRef ab;
  ab.structure = "B";
  a.add(ab);
  SRef ba;
  ba.structure = "A";
  b.add(ba);
  EXPECT_THROW(lib.flatten_layer("A", 1), Error);
}

TEST(Flatten, LayerFiltering) {
  const Library lib = demo_library();
  EXPECT_EQ(lib.flatten_layer("CELL", 1).size(), 1u);
  EXPECT_EQ(lib.flatten_layer("CELL", 2).size(), 2u);
  EXPECT_TRUE(lib.flatten_layer("CELL", 99).empty());
}

TEST(Flatten, LayerBbox) {
  const Library lib = demo_library();
  EXPECT_EQ(lib.layer_bbox("CELL", 1), Rect(0, 0, 100, 50));
  EXPECT_TRUE(lib.layer_bbox("CELL", 99).empty());
}

// ----------------------------------------------------------- parse errors --

TEST(ParseErrors, GarbageBytes) {
  EXPECT_THROW(read_bytes({1, 2, 3, 4, 5, 6}), ParseError);
}

TEST(ParseErrors, MissingHeader) {
  std::vector<std::uint8_t> bytes = {0x00, 0x04, 0x04, 0x00};  // just ENDLIB
  EXPECT_THROW(read_bytes(bytes), ParseError);
}

TEST(ParseErrors, TruncatedAfterStructure) {
  auto bytes = write_bytes(demo_library());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(read_bytes(bytes), Error);
}

TEST(Path, ToRectsRejectsBadWidth) {
  Path p;
  p.width = 0;
  p.points = {{0, 0}, {10, 0}};
  EXPECT_THROW(p.to_rects(), Error);
}

TEST(Path, ToRectsRejectsDiagonal) {
  Path p;
  p.width = 10;
  p.points = {{0, 0}, {10, 10}};
  EXPECT_THROW(p.to_rects(), Error);
}

TEST(Path, VerticalSegment) {
  Path p;
  p.width = 10;
  p.points = {{0, 0}, {0, 100}};
  const auto rects = p.to_rects();
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], Rect(-5, 0, 5, 100));
}

}  // namespace
}  // namespace lhd::gds
