// Tests for lhd/gds: excess-64 reals, record framing, writer/reader
// round-trips, transforms, flattening.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <tuple>

#include "lhd/gds/reader.hpp"
#include "lhd/gds/writer.hpp"
#include "lhd/geom/polygon.hpp"

namespace lhd::gds {
namespace {

using geom::Point;
using geom::Rect;

// ------------------------------------------------------------ gds real64 --

class Real64RoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(Real64RoundTrip, EncodeDecodeIsExactForRepresentable) {
  const double v = GetParam();
  EXPECT_DOUBLE_EQ(decode_real64(encode_real64(v)), v);
}

INSTANTIATE_TEST_SUITE_P(
    Values, Real64RoundTrip,
    ::testing::Values(0.0, 1.0, -1.0, 0.5, -0.25, 2.0, 16.0, 1e-9, 1e-3,
                      6.25e-2, 1024.0, -4096.0, 0.001953125));

TEST(Real64, ZeroEncodesToZeroBits) { EXPECT_EQ(encode_real64(0.0), 0u); }

TEST(Real64, KnownEncodingOfOne) {
  // 1.0 = 0x4110000000000000 in GDS excess-64 format.
  EXPECT_EQ(encode_real64(1.0), 0x4110000000000000ULL);
}

TEST(Real64, SignBit) {
  EXPECT_EQ(encode_real64(-1.0) >> 63, 1u);
  EXPECT_EQ(encode_real64(1.0) >> 63, 0u);
}

TEST(Real64, ApproximateForIrrational) {
  const double v = 3.14159265358979;
  EXPECT_NEAR(decode_real64(encode_real64(v)), v, 1e-15);
}

// --------------------------------------------------------------- records --

TEST(Records, ScanRejectsTruncatedHeader) {
  EXPECT_THROW(scan_records({0x00}), ParseError);
}

TEST(Records, ScanRejectsOverrunningRecord) {
  // Claims 8 bytes but only 6 present.
  EXPECT_THROW(scan_records({0x00, 0x08, 0x00, 0x02, 0x00, 0x01}),
               ParseError);
}

TEST(Records, ScanRejectsOddLength) {
  EXPECT_THROW(scan_records({0x00, 0x05, 0x00, 0x02, 0x00}), ParseError);
}

TEST(Records, ScanRejectsTinyLength) {
  EXPECT_THROW(scan_records({0x00, 0x02, 0x00, 0x02}), ParseError);
}

TEST(Records, ScanStopsAtEndLib) {
  std::vector<std::uint8_t> bytes = {
      0x00, 0x04, 0x04, 0x00,  // ENDLIB
      0x00, 0x00, 0x00, 0x00,  // tape padding (invalid as a record)
  };
  const auto records = scan_records(bytes);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, RecordType::EndLib);
}

// -------------------------------------------------------- library builds --

Library demo_library() {
  Library lib;
  lib.name = "DEMO";
  Structure& cell = lib.add_structure("CELL");
  Boundary b;
  b.layer = 1;
  b.polygon = geom::Polygon::from_rect(Rect(0, 0, 100, 50));
  cell.add(b);

  Path p;
  p.layer = 2;
  p.width = 20;
  p.points = {{0, 0}, {200, 0}, {200, 150}};
  cell.add(p);

  Structure& top = lib.add_structure("TOP");
  SRef ref;
  ref.structure = "CELL";
  ref.transform.origin = {1000, 2000};
  top.add(ref);

  ARef arr;
  arr.structure = "CELL";
  arr.transform.origin = {0, 0};
  arr.cols = 3;
  arr.rows = 2;
  arr.col_step = {500, 0};
  arr.row_step = {0, 400};
  top.add(arr);
  return lib;
}

TEST(Library, DuplicateStructureNameThrows) {
  Library lib;
  lib.add_structure("A");
  EXPECT_THROW(lib.add_structure("A"), Error);
}

TEST(Library, FindReturnsNullForUnknown) {
  Library lib;
  EXPECT_EQ(lib.find("NOPE"), nullptr);
}

// ------------------------------------------------------------ round trip --

TEST(RoundTrip, LibraryMetadataSurvives) {
  const auto bytes = write_bytes(demo_library());
  const Library back = read_bytes(bytes);
  EXPECT_EQ(back.name, "DEMO");
  EXPECT_DOUBLE_EQ(back.dbu_in_meters, 1e-9);
  EXPECT_DOUBLE_EQ(back.dbu_in_user, 1e-3);
  EXPECT_EQ(back.structures().size(), 2u);
  EXPECT_NE(back.find("CELL"), nullptr);
  EXPECT_NE(back.find("TOP"), nullptr);
}

TEST(RoundTrip, BoundaryGeometrySurvives) {
  const Library back = read_bytes(write_bytes(demo_library()));
  const auto rects = back.flatten_layer("CELL", 1);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], Rect(0, 0, 100, 50));
}

TEST(RoundTrip, PathExpandsToRects) {
  const Library back = read_bytes(write_bytes(demo_library()));
  const auto rects = back.flatten_layer("CELL", 2);
  // Two segments.
  ASSERT_EQ(rects.size(), 2u);
  EXPECT_EQ(geom::union_area(rects),
            200 * 20 + 150 * 20);  // corner overlap counted once
}

TEST(RoundTrip, SRefTranslates) {
  const Library back = read_bytes(write_bytes(demo_library()));
  const auto rects = back.flatten_layer("TOP", 1);
  // 1 SREF + 6 AREF placements.
  ASSERT_EQ(rects.size(), 7u);
  bool found = false;
  for (const auto& r : rects) {
    if (r == Rect(1000, 2000, 1100, 2050)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RoundTrip, ARefGridPlacement) {
  const Library back = read_bytes(write_bytes(demo_library()));
  const auto rects = back.flatten_layer("TOP", 1);
  int grid_hits = 0;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      const Rect want(c * 500, r * 400, c * 500 + 100, r * 400 + 50);
      for (const auto& got : rects) grid_hits += (got == want);
    }
  }
  EXPECT_EQ(grid_hits, 6);
}

TEST(RoundTrip, FileIo) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "lhd_test_roundtrip.gds";
  write_file(demo_library(), path.string());
  const Library back = read_file(path.string());
  EXPECT_EQ(back.name, "DEMO");
  fs::remove(path);
}

TEST(RoundTrip, PathType2Survives) {
  Library lib;
  Structure& s = lib.add_structure("P");
  Path p;
  p.layer = 3;
  p.width = 10;
  p.pathtype = 2;
  p.points = {{0, 0}, {100, 0}};
  s.add(p);
  const Library back = read_bytes(write_bytes(lib));
  const auto rects = back.flatten_layer("P", 3);
  ASSERT_EQ(rects.size(), 1u);
  // pathtype 2 extends both free ends by width/2.
  EXPECT_EQ(rects[0], Rect(-5, -5, 105, 5));
}

// -------------------------------------------------------------- transform --

class TransformAngles : public ::testing::TestWithParam<int> {};

TEST_P(TransformAngles, RoundTripPreservesOrientation) {
  const int angle = GetParam();
  Library lib;
  Structure& cell = lib.add_structure("CELL");
  Boundary b;
  b.layer = 1;
  b.polygon = geom::Polygon::from_rect(Rect(0, 0, 30, 10));
  cell.add(b);
  Structure& top = lib.add_structure("TOP");
  SRef ref;
  ref.structure = "CELL";
  ref.transform.angle_deg = angle;
  ref.transform.origin = {100, 100};
  top.add(ref);

  const auto direct = lib.flatten_layer("TOP", 1);
  const Library back = read_bytes(write_bytes(lib));
  const auto reparsed = back.flatten_layer("TOP", 1);
  ASSERT_EQ(direct.size(), 1u);
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(direct[0], reparsed[0]);
  EXPECT_EQ(direct[0].area(), 300);
}

INSTANTIATE_TEST_SUITE_P(Angles, TransformAngles,
                         ::testing::Values(0, 90, 180, 270));

TEST(Transform, MirrorThenRotateMatchesGdsSemantics) {
  Transform t;
  t.mirror_x = true;
  t.angle_deg = 90;
  t.origin = {0, 0};
  // GDS: reflect about x first (y -> -y), then rotate CCW 90.
  // (1, 0) -> (1, 0) -> (0, 1).
  EXPECT_EQ(t.apply(Point{1, 0}), (Point{0, 1}));
  // (0, 1) -> (0, -1) -> (1, 0).
  EXPECT_EQ(t.apply(Point{0, 1}), (Point{1, 0}));
}

TEST(Transform, ComposeMatchesSequentialApplication) {
  Transform outer;
  outer.mirror_x = true;
  outer.angle_deg = 90;
  outer.origin = {10, 20};
  Transform inner;
  inner.angle_deg = 180;
  inner.origin = {5, -3};
  const Transform composed = outer.compose(inner);
  for (const Point p : {Point{0, 0}, Point{7, 3}, Point{-4, 11}}) {
    EXPECT_EQ(composed.apply(p), outer.apply(inner.apply(p)));
  }
}

TEST(Transform, MirrorRoundTripThroughBytes) {
  Library lib;
  Structure& cell = lib.add_structure("CELL");
  Boundary b;
  b.layer = 1;
  b.polygon = geom::Polygon::from_rect(Rect(0, 0, 30, 10));
  cell.add(b);
  Structure& top = lib.add_structure("TOP");
  SRef ref;
  ref.structure = "CELL";
  ref.transform.mirror_x = true;
  ref.transform.origin = {0, 0};
  top.add(ref);

  const auto direct = lib.flatten_layer("TOP", 1);
  const auto reparsed = read_bytes(write_bytes(lib)).flatten_layer("TOP", 1);
  ASSERT_EQ(direct.size(), 1u);
  EXPECT_EQ(direct[0], Rect(0, -10, 30, 0));
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed[0], direct[0]);
}

// --------------------------------------------------------------- flatten --

TEST(Flatten, UnknownTopThrows) {
  const Library lib = demo_library();
  EXPECT_THROW(lib.flatten_layer("MISSING", 1), Error);
}

TEST(Flatten, UnknownSRefTargetThrows) {
  Library lib;
  Structure& top = lib.add_structure("TOP");
  SRef ref;
  ref.structure = "GHOST";
  top.add(ref);
  EXPECT_THROW(lib.flatten_layer("TOP", 1), Error);
}

TEST(Flatten, CycleDetected) {
  Library lib;
  Structure& a = lib.add_structure("A");
  Structure& b = lib.add_structure("B");
  SRef ab;
  ab.structure = "B";
  a.add(ab);
  SRef ba;
  ba.structure = "A";
  b.add(ba);
  EXPECT_THROW(lib.flatten_layer("A", 1), Error);
}

TEST(Flatten, LayerFiltering) {
  const Library lib = demo_library();
  EXPECT_EQ(lib.flatten_layer("CELL", 1).size(), 1u);
  EXPECT_EQ(lib.flatten_layer("CELL", 2).size(), 2u);
  EXPECT_TRUE(lib.flatten_layer("CELL", 99).empty());
}

TEST(Flatten, LayerBbox) {
  const Library lib = demo_library();
  EXPECT_EQ(lib.layer_bbox("CELL", 1), Rect(0, 0, 100, 50));
  EXPECT_TRUE(lib.layer_bbox("CELL", 99).empty());
}

// The slow reference layer_bbox used to be: flatten the whole layer, unite
// every rect. The production path now folds memoized per-structure bboxes
// through the reference tree without materializing the flattened geometry;
// this pins the two to the same answer.
Rect flattened_layer_bbox(const Library& lib, const std::string& top,
                          std::int16_t layer) {
  Rect bbox;
  for (const auto& r : lib.flatten_layer(top, layer)) bbox = bbox.unite(r);
  return bbox;
}

TEST(Flatten, LayerBboxMatchesFlattenedReference) {
  // Hand-built hierarchy: nested SREFs with every D4 orientation and an
  // AREF, so the bbox fold has to handle rotation/mirror of child extents
  // (the 4-corner trick) and not just translated copies.
  Library lib;
  Structure& leaf = lib.add_structure("LEAF");
  Boundary b;
  b.layer = 1;
  b.polygon = geom::Polygon::from_rect(Rect(10, -20, 310, 80));
  leaf.add(b);
  Boundary b2;
  b2.layer = 3;
  b2.polygon = geom::Polygon::from_rect(Rect(-50, 0, 0, 400));
  leaf.add(b2);

  Structure& mid = lib.add_structure("MID");
  int placed = 0;
  for (const bool mirror : {false, true}) {
    for (int angle = 0; angle < 360; angle += 90) {
      SRef ref;
      ref.structure = "LEAF";
      ref.transform.mirror_x = mirror;
      ref.transform.angle_deg = angle;
      ref.transform.origin = {placed * 700, -placed * 300};
      mid.add(ref);
      ++placed;
    }
  }

  Structure& top = lib.add_structure("TOP");
  SRef rotated_mid;
  rotated_mid.structure = "MID";
  rotated_mid.transform.angle_deg = 270;
  rotated_mid.transform.origin = {-1234, 5678};
  top.add(rotated_mid);
  ARef arr;
  arr.structure = "LEAF";
  arr.transform.mirror_x = true;
  arr.transform.angle_deg = 90;
  arr.transform.origin = {4000, 4000};
  arr.cols = 4;
  arr.rows = 3;
  arr.col_step = {600, 0};
  arr.row_step = {0, 800};
  top.add(arr);

  for (const auto& name : {"LEAF", "MID", "TOP"}) {
    for (const std::int16_t layer : {std::int16_t{1}, std::int16_t{3},
                                     std::int16_t{99}}) {
      EXPECT_EQ(lib.layer_bbox(name, layer),
                flattened_layer_bbox(lib, name, layer))
          << name << " layer " << layer;
    }
  }

  const Library demo = demo_library();
  for (const auto& name : {"CELL", "TOP"}) {
    for (const std::int16_t layer : {std::int16_t{1}, std::int16_t{2}}) {
      EXPECT_EQ(demo.layer_bbox(name, layer),
                flattened_layer_bbox(demo, name, layer))
          << name << " layer " << layer;
    }
  }
}

TEST(Flatten, LayerInstancesCoverFlattenedGeometry) {
  // Replaying each instance's local cell geometry through its placement
  // transform must reproduce exactly the flattened layer (as a multiset —
  // traversal order differs from flatten_layer's).
  const Library lib = demo_library();
  const auto instances = lib.layer_instances("TOP", 1);
  ASSERT_EQ(instances.size(), 7u);  // 1 SREF + 3x2 AREF
  std::vector<Rect> replayed;
  for (const auto& inst : instances) {
    for (const auto& r :
         structure_layer_rects(lib.structures()[inst.structure], 1)) {
      replayed.push_back(inst.transform.apply(r));
    }
  }
  auto flattened = lib.flatten_layer("TOP", 1);
  const auto rect_less = [](const Rect& a, const Rect& b) {
    return std::tie(a.xlo, a.ylo, a.xhi, a.yhi) <
           std::tie(b.xlo, b.ylo, b.xhi, b.yhi);
  };
  std::sort(replayed.begin(), replayed.end(), rect_less);
  std::sort(flattened.begin(), flattened.end(), rect_less);
  EXPECT_EQ(replayed, flattened);
}

TEST(Flatten, LayerInstancesSkipLayerlessBranches) {
  Library lib;
  lib.add_structure("EMPTY");
  Structure& top = lib.add_structure("TOP");
  SRef ref;
  ref.structure = "EMPTY";
  top.add(ref);
  EXPECT_TRUE(lib.layer_instances("TOP", 1).empty());
  EXPECT_THROW(lib.layer_instances("MISSING", 1), Error);
}

TEST(Transform, InverseRoundTripsPointsAndRects) {
  for (const bool mirror : {false, true}) {
    for (int angle = 0; angle < 360; angle += 90) {
      Transform t;
      t.mirror_x = mirror;
      t.angle_deg = angle;
      t.origin = {137, -4096};
      const Transform inv = t.inverse();
      for (const Point p : {Point{0, 0}, Point{53, 81}, Point{-900, 17}}) {
        EXPECT_EQ(inv.apply(t.apply(p)), p);
        EXPECT_EQ(t.apply(inv.apply(p)), p);
      }
      const Rect r(-30, 12, 44, 90);
      EXPECT_EQ(inv.apply(t.apply(r)), r);
    }
  }
}

// ----------------------------------------------------------- parse errors --

TEST(ParseErrors, GarbageBytes) {
  EXPECT_THROW(read_bytes({1, 2, 3, 4, 5, 6}), ParseError);
}

TEST(ParseErrors, MissingHeader) {
  std::vector<std::uint8_t> bytes = {0x00, 0x04, 0x04, 0x00};  // just ENDLIB
  EXPECT_THROW(read_bytes(bytes), ParseError);
}

TEST(ParseErrors, TruncatedAfterStructure) {
  auto bytes = write_bytes(demo_library());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(read_bytes(bytes), Error);
}

TEST(Path, ToRectsRejectsBadWidth) {
  Path p;
  p.width = 0;
  p.points = {{0, 0}, {10, 0}};
  EXPECT_THROW(p.to_rects(), Error);
}

TEST(Path, ToRectsRejectsDiagonal) {
  Path p;
  p.width = 10;
  p.points = {{0, 0}, {10, 10}};
  EXPECT_THROW(p.to_rects(), Error);
}

TEST(Path, VerticalSegment) {
  Path p;
  p.width = 10;
  p.points = {{0, 0}, {0, 100}};
  const auto rects = p.to_rects();
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], Rect(-5, 0, 5, 100));
}

}  // namespace
}  // namespace lhd::gds
