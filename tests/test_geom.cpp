// Tests for lhd/geom: points, rects, polygons, decomposition, union area.

#include <gtest/gtest.h>

#include <algorithm>

#include "lhd/geom/boolean.hpp"
#include "lhd/geom/polygon.hpp"
#include "lhd/geom/rect.hpp"
#include "lhd/testkit/testkit.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::geom {
namespace {

// ------------------------------------------------------------------ rect --

TEST(Rect, BasicAccessors) {
  const Rect r(1, 2, 5, 7);
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 5);
  EXPECT_EQ(r.area(), 20);
  EXPECT_FALSE(r.empty());
}

TEST(Rect, EmptyWhenDegenerate) {
  EXPECT_TRUE(Rect(3, 3, 3, 9).empty());
  EXPECT_TRUE(Rect(5, 0, 2, 9).empty());
  EXPECT_EQ(Rect(5, 0, 2, 9).area(), 0);
}

TEST(Rect, ContainsPointHalfOpen) {
  const Rect r(0, 0, 10, 10);
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{9, 9}));
  EXPECT_FALSE(r.contains(Point{10, 5}));
  EXPECT_FALSE(r.contains(Point{5, 10}));
  EXPECT_FALSE(r.contains(Point{-1, 5}));
}

TEST(Rect, ContainsRect) {
  const Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.contains(Rect(2, 2, 8, 8)));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect(5, 5, 11, 8)));
}

TEST(Rect, OverlapExcludesTouching) {
  const Rect a(0, 0, 5, 5);
  EXPECT_TRUE(a.overlaps(Rect(4, 4, 8, 8)));
  EXPECT_FALSE(a.overlaps(Rect(5, 0, 8, 5)));  // share an edge only
  EXPECT_FALSE(a.overlaps(Rect(6, 6, 8, 8)));
}

TEST(Rect, IntersectComputesOverlap) {
  const Rect a(0, 0, 10, 10);
  const Rect b(5, 5, 15, 15);
  EXPECT_EQ(a.intersect(b), Rect(5, 5, 10, 10));
  EXPECT_TRUE(a.intersect(Rect(20, 20, 30, 30)).empty());
}

TEST(Rect, UniteIsSmallestEnclosing) {
  const Rect a(0, 0, 2, 2);
  const Rect b(5, 5, 7, 9);
  EXPECT_EQ(a.unite(b), Rect(0, 0, 7, 9));
}

TEST(Rect, UniteWithEmptyIsIdentity) {
  const Rect a(1, 2, 3, 4);
  EXPECT_EQ(a.unite(Rect{}), a);
  EXPECT_EQ(Rect{}.unite(a), a);
}

TEST(Rect, InflateAndShift) {
  const Rect r(2, 2, 6, 6);
  EXPECT_EQ(r.inflated(1), Rect(1, 1, 7, 7));
  EXPECT_EQ(r.inflated(-1), Rect(3, 3, 5, 5));
  EXPECT_EQ(r.shifted(10, -2), Rect(12, 0, 16, 4));
}

TEST(Rect, CenterOfRect) {
  EXPECT_EQ(Rect(0, 0, 10, 20).center(), (Point{5, 10}));
}

// --------------------------------------------------------------- polygon --

TEST(Polygon, FromRectHasFourVertices) {
  const Polygon p = Polygon::from_rect(Rect(0, 0, 10, 5));
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.area(), 50);
  EXPECT_EQ(p.bbox(), Rect(0, 0, 10, 5));
}

TEST(Polygon, DropsGdsClosingVertex) {
  const Polygon p({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}});
  EXPECT_EQ(p.size(), 4u);
}

TEST(Polygon, RejectsTooFewVertices) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 0}, {1, 1}}), Error);
}

TEST(Polygon, RejectsDiagonalEdges) {
  EXPECT_THROW(Polygon({{0, 0}, {4, 4}, {0, 4}, {0, 2}}), Error);
}

TEST(Polygon, RejectsNonAlternatingEdges) {
  // Two consecutive horizontal edges.
  EXPECT_THROW(Polygon({{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}}),
               Error);
}

TEST(Polygon, RejectsEmptyRectSource) {
  EXPECT_THROW(Polygon::from_rect(Rect(1, 1, 1, 5)), Error);
}

TEST(Polygon, SignedAreaOrientation) {
  // CCW ring has positive signed area.
  const Polygon ccw({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_GT(ccw.signed_area2(), 0);
  const Polygon cw({{0, 0}, {0, 4}, {4, 4}, {4, 0}});
  EXPECT_LT(cw.signed_area2(), 0);
  EXPECT_EQ(ccw.area(), cw.area());
}

TEST(Polygon, ContainsFollowsHalfOpenConvention) {
  const Polygon p = Polygon::from_rect(Rect(0, 0, 10, 10));
  EXPECT_TRUE(p.contains(Point{0, 0}));
  EXPECT_TRUE(p.contains(Point{5, 5}));
  EXPECT_FALSE(p.contains(Point{10, 5}));
  EXPECT_FALSE(p.contains(Point{5, 10}));
}

TEST(Polygon, LShapeDecomposesExactly) {
  // L-shape: 10x10 square minus its top-right 5x5 quadrant.
  const Polygon l({{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  const auto rects = l.decompose();
  std::int64_t total = 0;
  for (const auto& r : rects) total += r.area();
  EXPECT_EQ(total, 75);
  EXPECT_EQ(union_area(rects), 75);  // no overlaps among pieces
}

TEST(Polygon, TShapeDecomposes) {
  const Polygon t({{0, 0}, {30, 0}, {30, 10}, {20, 10}, {20, 20}, {10, 20},
                   {10, 10}, {0, 10}});
  const auto rects = t.decompose();
  EXPECT_EQ(union_area(rects), t.area());
}

TEST(Polygon, UShapeDecomposes) {
  const Polygon u({{0, 0}, {30, 0}, {30, 20}, {20, 20}, {20, 5}, {10, 5},
                   {10, 20}, {0, 20}});
  EXPECT_EQ(union_area(u.decompose()), u.area());
}

TEST(Polygon, StaircaseDecomposes) {
  const Polygon s({{0, 0}, {10, 0}, {10, 10}, {20, 10}, {20, 20}, {30, 20},
                   {30, 30}, {0, 30}});
  EXPECT_EQ(union_area(s.decompose()), s.area());
}

TEST(Polygon, DecomposeMergesVerticalSlabs) {
  // A plain rect must decompose to exactly one rect even though the sweep
  // visits two y-slabs if a vertex splits it — from_rect has no splits.
  const auto rects = Polygon::from_rect(Rect(0, 0, 8, 8)).decompose();
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], Rect(0, 0, 8, 8));
}

TEST(Polygon, TranslatePreservesAreaAndShifts) {
  const Polygon p({{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  const Polygon q = p.translated(100, -50);
  EXPECT_EQ(q.area(), p.area());
  EXPECT_EQ(q.bbox(), p.bbox().shifted(100, -50));
}

// Property: random rectilinear "staircase ring" polygons decompose to
// non-overlapping rects of identical total area.
class PolygonDecomposeProperty : public ::testing::TestWithParam<int> {};

TEST_P(PolygonDecomposeProperty, AreaPreservedNoOverlap) {
  lhd::Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Random monotone staircase ring — always simple and Manhattan.
  const int steps = 3 + static_cast<int>(rng.next_below(5));
  const Polygon p(testkit::random_staircase_ring(rng, steps));
  const auto rects = p.decompose();
  ASSERT_FALSE(rects.empty());
  std::int64_t sum = 0;
  for (const auto& r : rects) {
    EXPECT_FALSE(r.empty());
    sum += r.area();
  }
  EXPECT_EQ(sum, p.area());
  EXPECT_EQ(union_area(rects), p.area());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolygonDecomposeProperty,
                         ::testing::Range(1, 21));

// ------------------------------------------------------------ union area --

TEST(UnionArea, EmptyInput) { EXPECT_EQ(union_area({}), 0); }

TEST(UnionArea, SingleRect) {
  EXPECT_EQ(union_area({Rect(0, 0, 10, 10)}), 100);
}

TEST(UnionArea, DisjointRectsSum) {
  EXPECT_EQ(union_area({Rect(0, 0, 5, 5), Rect(10, 10, 15, 15)}), 50);
}

TEST(UnionArea, FullyOverlappingRectsCountOnce) {
  EXPECT_EQ(union_area({Rect(0, 0, 10, 10), Rect(0, 0, 10, 10)}), 100);
}

TEST(UnionArea, PartialOverlap) {
  // Two 10x10 rects overlapping in a 5x10 strip.
  EXPECT_EQ(union_area({Rect(0, 0, 10, 10), Rect(5, 0, 15, 10)}), 150);
}

TEST(UnionArea, IgnoresEmptyRects) {
  EXPECT_EQ(union_area({Rect(0, 0, 10, 10), Rect(3, 3, 3, 9)}), 100);
}

// ------------------------------------------------------------ clip_rects --

TEST(ClipRects, ClipsAndTranslatesToWindowOrigin) {
  const Rect window(100, 100, 200, 200);
  const auto out = clip_rects({Rect(50, 150, 150, 250)}, window);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Rect(0, 50, 50, 100));
}

TEST(ClipRects, DropsDisjointRects) {
  const Rect window(0, 0, 10, 10);
  EXPECT_TRUE(clip_rects({Rect(20, 20, 30, 30)}, window).empty());
}

TEST(ClipRects, KeepsFullyInsideRects) {
  const Rect window(0, 0, 100, 100);
  const auto out = clip_rects({Rect(10, 10, 20, 20)}, window);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Rect(10, 10, 20, 20));
}

// ---------------------------------------------------------------- point --

TEST(Point, ArithmeticAndOrdering) {
  const Point a{1, 2};
  const Point b{3, 4};
  EXPECT_EQ(a + b, (Point{4, 6}));
  EXPECT_EQ(b - a, (Point{2, 2}));
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(Point, HashDistinguishesNeighbours) {
  const std::hash<Point> h;
  EXPECT_NE(h(Point{0, 1}), h(Point{1, 0}));
}


// ----------------------------------------------------------- boolean ops --

TEST(Boolean, UnionOfDisjointKeepsBoth) {
  const auto u = rect_union({Rect(0, 0, 5, 5), Rect(10, 0, 15, 5)});
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(union_area(u), 50);
}

TEST(Boolean, UnionMergesOverlap) {
  const auto u = rect_union({Rect(0, 0, 10, 10), Rect(5, 0, 15, 10)});
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], Rect(0, 0, 15, 10));
}

TEST(Boolean, UnionOutputIsDisjoint) {
  CHECK_PROPERTY("union-disjoint", 32, [](lhd::Rng& rng, std::size_t size) {
    const auto rects = testkit::random_rects(rng, 2 + size, 260, 5, 60);
    const auto u = rect_union(rects);
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < u.size(); ++i) {
      sum += u[i].area();
      for (std::size_t j = i + 1; j < u.size(); ++j) {
        if (u[i].overlaps(u[j])) {
          throw testkit::PropertyFailure("rect_union emitted overlapping "
                                         "output rects");
        }
      }
    }
    EXPECT_EQ(sum, union_area(rects));
  });
}

TEST(Boolean, IntersectionOfNested) {
  const auto x = rect_intersection({Rect(0, 0, 20, 20)}, {Rect(5, 5, 10, 12)});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(x[0], Rect(5, 5, 10, 12));
}

TEST(Boolean, IntersectionOfDisjointIsEmpty) {
  EXPECT_TRUE(
      rect_intersection({Rect(0, 0, 5, 5)}, {Rect(10, 10, 15, 15)}).empty());
}

TEST(Boolean, DifferencePunchesHole) {
  const auto d = rect_difference({Rect(0, 0, 30, 30)}, {Rect(10, 10, 20, 20)});
  EXPECT_EQ(union_area(d), 30 * 30 - 10 * 10);
  for (const auto& r : d) {
    EXPECT_FALSE(r.overlaps(Rect(10, 10, 20, 20)));
  }
}

TEST(Boolean, DifferenceWithSelfIsEmpty) {
  const std::vector<Rect> a = {Rect(0, 0, 10, 10), Rect(5, 5, 20, 20)};
  EXPECT_TRUE(rect_difference(a, a).empty());
}

TEST(Boolean, DeMorganAreaIdentity) {
  // |A| = |A ∩ B| + |A \ B| for random sets.
  CHECK_PROPERTY("demorgan-area", 32, [](lhd::Rng& rng, std::size_t size) {
    const auto a = testkit::random_rects(rng, 1 + size, 200, 5, 50);
    const auto b = testkit::random_rects(rng, 1 + size, 200, 5, 50);
    const auto inter = rect_intersection(a, b);
    const auto diff = rect_difference(a, b);
    EXPECT_EQ(union_area(inter) + union_area(diff), union_area(a));
  });
}

}  // namespace
}  // namespace lhd::geom
