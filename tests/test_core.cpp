// Tests for lhd/core: metrics, detector adapters, factory, pipeline,
// threshold sweep, chip index + scanning.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>

#include "lhd/core/cnn_detector.hpp"
#include "lhd/core/ensemble.hpp"
#include "lhd/core/factory.hpp"
#include "lhd/core/pipeline.hpp"
#include "lhd/core/scan.hpp"
#include "lhd/core/score_cache.hpp"
#include "lhd/core/shallow_detector.hpp"
#include "lhd/data/clip_hash.hpp"
#include "lhd/exec/backend.hpp"
#include "lhd/exec/registry.hpp"
#include "lhd/gds/model.hpp"
#include "lhd/ml/naive_bayes.hpp"
#include "lhd/synth/chip_gen.hpp"
#include "lhd/testkit/testkit.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::core {
namespace {

using geom::Rect;

// ---------------------------------------------------------------- metrics --

TEST(Metrics, ConfusionDerivedRates) {
  Confusion c;
  c.tp = 8;
  c.fn = 2;
  c.fp = 5;
  c.tn = 85;
  EXPECT_EQ(c.total(), 100u);
  EXPECT_EQ(c.hotspots(), 10u);
  EXPECT_EQ(c.alarms(), 13u);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.8);
  EXPECT_DOUBLE_EQ(c.false_alarm_rate(), 5.0 / 90.0);
  EXPECT_DOUBLE_EQ(c.precision(), 8.0 / 13.0);
  EXPECT_DOUBLE_EQ(c.overall_accuracy(), 0.93);
  EXPECT_GT(c.f1(), 0.6);
  EXPECT_LT(c.f1(), 0.8);
}

TEST(Metrics, DegenerateCasesDoNotDivideByZero) {
  Confusion none;
  EXPECT_DOUBLE_EQ(none.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(none.false_alarm_rate(), 0.0);
  EXPECT_DOUBLE_EQ(none.precision(), 1.0);
  EXPECT_DOUBLE_EQ(none.overall_accuracy(), 0.0);
}

TEST(Metrics, EvaluateCountsAgainstLabels) {
  data::Dataset ds;
  for (int i = 0; i < 4; ++i) {
    data::Clip c;
    c.label = i < 2 ? data::Label::Hotspot : data::Label::NonHotspot;
    ds.add(std::move(c));
  }
  const auto c = evaluate({true, false, true, false}, ds);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
}

TEST(Metrics, EvaluateSizeMismatchThrows) {
  data::Dataset ds;
  data::Clip c;
  ds.add(std::move(c));
  EXPECT_THROW(evaluate({true, false}, ds), Error);
}

TEST(Metrics, OdstPricesAlarms) {
  Confusion c;
  c.tp = 3;
  c.fp = 7;
  EXPECT_DOUBLE_EQ(odst_seconds(c, 2.0, 0.5), 2.0 + 10 * 0.5);
  EXPECT_DOUBLE_EQ(full_simulation_seconds(100, 0.5), 50.0);
}

// --------------------------------------------------------------- factory --

TEST(Factory, AllKindsConstruct) {
  for (const auto& kind : all_detector_kinds()) {
    EXPECT_NO_THROW({ auto det = make_detector(kind); }) << kind;
  }
}

TEST(Factory, UnknownKindThrows) {
  EXPECT_THROW(make_detector("quantum"), Error);
}

TEST(Factory, HeadlineKindsAreSubsetOfAll) {
  const auto& all = all_detector_kinds();
  for (const auto& kind : headline_detector_kinds()) {
    EXPECT_NE(std::find(all.begin(), all.end(), kind), all.end()) << kind;
  }
}

TEST(Factory, NamesAreStable) {
  EXPECT_EQ(make_detector("pm")->name(), "pattern-match");
  EXPECT_EQ(make_detector("svm")->name(), "linear-svm");
  EXPECT_EQ(make_detector("cnn")->name(), "cnn");
}

// ------------------------------------------------- tiny synthetic suites --

synth::BuiltSuite tiny_suite(int n_train = 60, int n_test = 40) {
  synth::SuiteSpec spec = synth::suite_by_name("B2");
  spec.n_train = n_train;
  spec.n_test = n_test;
  return synth::build_suite(spec, {});
}

TEST(ShallowDetector, TrainsAndBeatsChanceOnTinySuite) {
  const auto suite = tiny_suite();
  ShallowDetectorConfig cfg;
  cfg.augment_factor = 2;
  ShallowDetector det("nb", feature::make_density_extractor(),
                      std::make_unique<ml::GaussianNaiveBayes>(), cfg);
  det.train(suite.train);
  const auto c = evaluate(det.predict_all(suite.test), suite.test);
  // Weak learner, tiny data — just demand better-than-random behaviour.
  EXPECT_GT(c.accuracy() + (1.0 - c.false_alarm_rate()), 1.0);
}

TEST(ShallowDetector, PcaPipelineRuns) {
  const auto suite = tiny_suite(40, 20);
  ShallowDetectorConfig cfg;
  cfg.pca_components = 8;
  cfg.augment_factor = 1;
  ShallowDetector det("nb-pca", feature::make_density_extractor(),
                      std::make_unique<ml::GaussianNaiveBayes>(), cfg);
  det.train(suite.train);
  EXPECT_EQ(det.predict_all(suite.test).size(), suite.test.size());
}

TEST(ShallowDetector, EmptyTrainingThrows) {
  ShallowDetector det("nb", feature::make_density_extractor(),
                      std::make_unique<ml::GaussianNaiveBayes>(), {});
  EXPECT_THROW(det.train(data::Dataset{}), Error);
}

TEST(CnnDetector, TinyTrainingRunGoesThroughAllModes) {
  const auto suite = tiny_suite(40, 20);
  for (const auto mode : {CnnTrainMode::Plain, CnnTrainMode::Biased,
                          CnnTrainMode::BatchBiased}) {
    CnnDetectorConfig cfg;
    cfg.mode = mode;
    cfg.train.epochs = 2;
    cfg.bias_epochs = 1;
    cfg.epochs_per_stage = 1;
    cfg.lambda_schedule = {0.2};
    cfg.augment_factor = 1;
    CnnDetector det("cnn-tiny", cfg);
    det.train(suite.train);
    EXPECT_FALSE(det.history().empty());
    const auto preds = det.predict_all(suite.test);
    EXPECT_EQ(preds.size(), suite.test.size());
    // predict_all must agree with per-clip predict.
    for (std::size_t i = 0; i < suite.test.size(); ++i) {
      EXPECT_EQ(preds[i], det.predict(suite.test[i]));
    }
  }
}

TEST(CnnDetector, SaveLoadRoundTrip) {
  namespace fs = std::filesystem;
  const auto suite = tiny_suite(30, 10);
  CnnDetectorConfig cfg;
  cfg.train.epochs = 2;
  cfg.augment_factor = 1;
  CnnDetector det("cnn-io", cfg);
  det.train(suite.train);
  const auto path =
      (fs::temp_directory_path() / "lhd_test_cnn.weights").string();
  det.save(path);
  CnnDetector loaded("cnn-io2", cfg);
  loaded.load(path);
  for (std::size_t i = 0; i < suite.test.size(); ++i) {
    EXPECT_NEAR(det.probability(suite.test[i]),
                loaded.probability(suite.test[i]), 1e-5);
  }
  fs::remove(path);
}

// --------------------------------------------------------------- pipeline --

TEST(Pipeline, RunExperimentFillsAllFields) {
  const auto suite = tiny_suite(50, 30);
  auto det = make_detector("nb");
  const auto r = run_experiment(*det, suite, "tiny", 0.01);
  EXPECT_EQ(r.detector, "naive-bayes");
  EXPECT_EQ(r.suite, "tiny");
  EXPECT_EQ(r.confusion.total(), 30u);
  EXPECT_GT(r.train_seconds, 0.0);
  EXPECT_GT(r.test_seconds, 0.0);
  EXPECT_GE(r.odst, r.test_seconds);
  EXPECT_DOUBLE_EQ(r.full_sim, 0.3);
  EXPECT_GT(r.speedup, 0.0);
}

TEST(Pipeline, ThresholdSweepIsMonotoneInAlarms) {
  const auto suite = tiny_suite(50, 40);
  auto det = make_detector("logreg");
  det->train(suite.train);
  const std::vector<float> thresholds = {-5.0f, -1.0f, 0.0f, 1.0f, 5.0f};
  const auto sweep = threshold_sweep(*det, suite.test, thresholds);
  ASSERT_EQ(sweep.size(), thresholds.size());
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].confusion.alarms(), sweep[i - 1].confusion.alarms());
  }
}

TEST(Pipeline, ThresholdSweepRestoresThreshold) {
  const auto suite = tiny_suite(30, 10);
  auto det = make_detector("nb");
  det->train(suite.train);
  det->set_threshold(0.25f);
  threshold_sweep(*det, suite.test, {-1.0f, 1.0f});
  EXPECT_FLOAT_EQ(det->threshold(), 0.25f);
}

// -------------------------------------------------------------- chip index --

TEST(ChipIndex, QueryMatchesBruteForce) {
  // Property form of the old single-seed test: random layouts now come from
  // testkit and any failure prints its reproducing LHD_PROPERTY_SEED line.
  CHECK_PROPERTY("chip-index-brute-force", 32, [](Rng& rng,
                                                  std::size_t size) {
    const auto rects =
        testkit::random_rects(rng, 20 + size * 6, 8400, 20, 400);
    const ChipIndex index(rects);
    for (int trial = 0; trial < 8; ++trial) {
      // Range deliberately overshoots the extent on both sides, so windows
      // that hang off the chip (or miss it entirely) are exercised against
      // the brute-force ground truth too.
      const auto x = static_cast<geom::Coord>(rng.next_int(-2500, 9500));
      const auto y = static_cast<geom::Coord>(rng.next_int(-2500, 9500));
      const Rect window(x, y, x + 1024, y + 1024);
      auto got = index.query(window);
      auto expected = geom::clip_rects(rects, window);
      auto key = [](const Rect& r) {
        return std::tuple(r.xlo, r.ylo, r.xhi, r.yhi);
      };
      std::sort(got.begin(), got.end(),
                [&](const Rect& a, const Rect& b) { return key(a) < key(b); });
      std::sort(expected.begin(), expected.end(),
                [&](const Rect& a, const Rect& b) { return key(a) < key(b); });
      if (got != expected) {
        std::ostringstream os;
        os << "index.query disagrees with clip_rects on window " << trial
           << " (" << got.size() << " vs " << expected.size() << " rects)";
        throw testkit::PropertyFailure(os.str());
      }
    }
  });
}

TEST(ChipIndex, EmptyIndexQueriesEmpty) {
  const ChipIndex index({});
  EXPECT_TRUE(index.query(Rect(0, 0, 100, 100)).empty());
  EXPECT_EQ(index.rect_count(), 0u);
}

TEST(ChipIndex, FromLibraryFlattens) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 2, 2, 9);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  EXPECT_GT(index.rect_count(), 0u);
  EXPECT_FALSE(index.extent().empty());
}

TEST(ChipIndex, DegenerateRectsAreFilteredOut) {
  // Zero-width, inverted and zero-height rects would mis-index: bucketing
  // runs over [xlo, xhi - 1], which lands left of xlo when xhi <= xlo.
  const std::vector<Rect> rects = {
      Rect(500, 500, 500, 900),  // zero width
      Rect(700, 200, 600, 300),  // inverted x
      Rect(40, 40, 80, 40),      // zero height
      Rect(0, 0, 100, 100),      // the only real rect
  };
  const ChipIndex index(rects);
  EXPECT_EQ(index.rect_count(), 1u);
  EXPECT_EQ(index.extent(), Rect(0, 0, 100, 100));
  const auto got = index.query(Rect(0, 0, 1000, 1000));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Rect(0, 0, 100, 100));
}

TEST(ChipIndex, AllDegenerateBehavesAsEmpty) {
  const ChipIndex index({Rect(10, 10, 10, 10), Rect(5, 9, 1, 20)});
  EXPECT_EQ(index.rect_count(), 0u);
  EXPECT_TRUE(index.extent().empty());
  EXPECT_TRUE(index.query(Rect(0, 0, 100, 100)).empty());
}

TEST(ChipIndex, QueryStampWrapAroundKeepsResults) {
  // Two rects in different buckets, so a query over one never refreshes the
  // other's stamp.
  const std::vector<Rect> rects = {Rect(0, 0, 100, 100),
                                   Rect(5000, 5000, 5100, 5100)};
  const ChipIndex index(rects);
  ChipIndex::QueryScratch scratch;
  const Rect win_a(0, 0, 200, 200);
  const auto before = index.query(win_a, scratch);  // stamps rect 0 with 1
  ASSERT_EQ(before.size(), 1u);
  // Force the counter to wrap. Without the wrap reset it re-enters the
  // previous epoch's value range: the query that lands on value 1 again
  // sees rect 0's stale stamp from the very first query and drops it.
  scratch.fast_forward(std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(index.query(Rect(4900, 4900, 5200, 5200), scratch).size(), 1u);
  const auto after_wrap = index.query(win_a, scratch);
  EXPECT_EQ(after_wrap, before);
}

TEST(ChipIndex, OutOfExtentWindowsReturnNothing) {
  // Regression for the bucket-range truncation bug: integer division
  // truncates toward zero, so a window entirely left of / below the extent
  // produced a negative bucket offset that rounded *up* to 0 and spuriously
  // walked bucket row/column 0. Floor division plus the overlap early-out
  // must keep every fully-outside window an exact no-op.
  const std::vector<Rect> rects = {Rect(5000, 5000, 5400, 5400),
                                   Rect(9000, 9000, 9200, 9300)};
  const ChipIndex index(rects);
  const std::vector<Rect> outside = {
      Rect(0, 0, 1024, 1024),            // below-left of the extent
      Rect(0, 6000, 1024, 7024),         // left, y-overlapping
      Rect(6000, 0, 7024, 1024),         // below, x-overlapping
      Rect(-3000, -3000, -2000, -2000),  // fully negative coordinates
      Rect(9300, 9400, 9800, 9900),      // above-right of the extent
  };
  ChipIndex::QueryScratch scratch;
  for (const auto& w : outside) {
    EXPECT_TRUE(index.query(w, scratch).empty())
        << "window (" << w.xlo << "," << w.ylo << ")";
  }
  // Windows straddling the extent's low edge still see the geometry.
  const auto got = index.query(Rect(4600, 4600, 5624, 5624), scratch);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Rect(400, 400, 800, 800));  // window-local coordinates
}

TEST(ChipIndex, ConcurrentQueriesWithOwnScratchMatchSerial) {
  CHECK_PROPERTY("chip-index-concurrent", 4, [](Rng& rng, std::size_t) {
    const auto rects = testkit::random_rects(rng, 300, 6300, 20, 300);
    const ChipIndex index(rects);
    std::vector<Rect> windows;
    for (int i = 0; i < 64; ++i) {
      const auto x = static_cast<geom::Coord>(rng.next_int(0, 6000));
      const auto y = static_cast<geom::Coord>(rng.next_int(0, 6000));
      windows.emplace_back(x, y, x + 1024, y + 1024);
    }
    std::vector<std::vector<Rect>> serial;
    serial.reserve(windows.size());
    for (const auto& w : windows) serial.push_back(index.query(w));

    // Hammer the same const index from several threads, each with its own
    // scratch. Pre-fix, the shared mutable stamp state makes this race
    // (caught by TSan) and corrupt dedupe results.
    constexpr int kThreads = 4;
    constexpr int kRounds = 12;
    std::vector<int> mismatches(kThreads, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ChipIndex::QueryScratch scratch;
        for (int round = 0; round < kRounds; ++round) {
          for (std::size_t i = 0; i < windows.size(); ++i) {
            if (index.query(windows[i], scratch) != serial[i]) {
              ++mismatches[t];
            }
          }
          // The convenience overload must be just as safe (it owns a
          // per-call scratch); pre-fix it shared mutable stamp state.
          const std::size_t i =
              static_cast<std::size_t>(round) % windows.size();
          if (index.query(windows[i]) != serial[i]) ++mismatches[t];
        }
      });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < kThreads; ++t) {
      if (mismatches[t] != 0) {
        std::ostringstream os;
        os << "thread " << t << " saw " << mismatches[t]
           << " query results diverge from the serial baseline";
        throw testkit::PropertyFailure(os.str());
      }
    }
  });
}

// ------------------------------------------------------------------- scan --

class ThresholdedDensityDetector final : public Detector {
 public:
  explicit ThresholdedDensityDetector(float cut) : cut_(cut) {}
  std::string name() const override { return "density-cut"; }
  void train(const data::Dataset&) override {}
  float score(const data::Clip& clip) const override {
    const double area = static_cast<double>(geom::union_area(clip.rects));
    const double total =
        static_cast<double>(clip.window_nm) * clip.window_nm;
    return static_cast<float>(area / total) - cut_;
  }
  bool predict(const data::Clip& clip) const override {
    return score(clip) > threshold();
  }
  void set_threshold(float t) override { threshold_ = t; }
  float threshold() const override { return threshold_; }

 private:
  float cut_;
  float threshold_ = 0.0f;
};

TEST(Scan, SingleStageVisitsAllWindows) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 3, 3, 21);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector det(0.05f);
  ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 1024;
  const auto result = scan_chip(index, det, cfg);
  EXPECT_GE(result.windows_total, 9u);
  EXPECT_GT(result.windows_classified, 0u);
  EXPECT_EQ(result.hits.size(), result.flagged);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Scan, TwoStageClassifiesNoMoreThanSingleStage) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 3, 3, 22);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector prefilter(0.30f);  // strict stage 1
  const ThresholdedDensityDetector refiner(0.05f);
  ScanConfig cfg;
  const auto single = scan_chip(index, refiner, cfg);
  const auto two = scan_chip_two_stage(index, prefilter, refiner, cfg);
  EXPECT_EQ(single.windows_total, two.windows_total);
  EXPECT_LE(two.windows_classified, single.windows_classified);
  EXPECT_LE(two.flagged, single.flagged);
}

TEST(Scan, StrictPrefilterSuppressesEverything) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 2, 2, 23);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector never(2.0f);  // density can't exceed 1
  const ThresholdedDensityDetector always(-1.0f);
  const auto result = scan_chip_two_stage(index, never, always, {});
  EXPECT_EQ(result.windows_classified, 0u);
  EXPECT_EQ(result.flagged, 0u);
}

TEST(Scan, RejectsBadConfig) {
  const ChipIndex index({Rect(0, 0, 100, 100)});
  const ThresholdedDensityDetector det(0.1f);
  ScanConfig cfg;
  cfg.stride_nm = 0;
  EXPECT_THROW(scan_chip(index, det, cfg), Error);
}

TEST(Scan, ParallelScanMatchesSerialBitExact) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 4, 4, 31);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector det(0.05f);
  ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;

  cfg.threads = 1;
  const auto serial = scan_chip(index, det, cfg);
  ASSERT_GT(serial.flagged, 0u);

  // An explicit 4-worker pool gives genuine concurrency even when the
  // host (and thus the global pool) is single-core.
  ThreadPool pool(4);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    cfg.threads = threads;
    const auto par = scan_chip(index, det, cfg, pool);
    EXPECT_EQ(par.windows_total, serial.windows_total) << threads;
    EXPECT_EQ(par.windows_classified, serial.windows_classified) << threads;
    EXPECT_EQ(par.flagged, serial.flagged) << threads;
    EXPECT_EQ(par.hits, serial.hits) << threads;
  }
}

TEST(Scan, ParallelTwoStageMatchesSerialBitExact) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 4, 4, 32);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector prefilter(0.10f);
  const ThresholdedDensityDetector refiner(0.05f);
  ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;

  cfg.threads = 1;
  const auto serial = scan_chip_two_stage(index, prefilter, refiner, cfg);

  ThreadPool pool(4);
  for (const std::size_t threads : {2u, 5u}) {
    cfg.threads = threads;
    const auto par = scan_chip_two_stage(index, prefilter, refiner, cfg, pool);
    EXPECT_EQ(par.windows_total, serial.windows_total) << threads;
    EXPECT_EQ(par.windows_classified, serial.windows_classified) << threads;
    EXPECT_EQ(par.flagged, serial.flagged) << threads;
    EXPECT_EQ(par.hits, serial.hits) << threads;
  }
}

// ------------------------------------------------------------ score cache --

data::CanonicalClip canon_of(std::vector<Rect> rects,
                             geom::Coord window = 1024) {
  return data::canonical_clip(std::move(rects), window);
}

TEST(ScoreCache, InsertThenLookupHits) {
  ScoreCache cache(64);
  const auto key = canon_of({Rect(0, 0, 100, 100)});
  const auto hash = data::canonical_hash(key);
  EXPECT_FALSE(cache.lookup(key, hash).has_value());
  cache.insert(key, hash, 0.75f);
  const auto got = cache.lookup(key, hash);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0.75f);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats(), (ScoreCache::Stats{1, 1, 0}));
}

TEST(ScoreCache, CapacityZeroNeverStores) {
  ScoreCache cache(0);
  const auto key = canon_of({Rect(0, 0, 50, 50)});
  const auto hash = data::canonical_hash(key);
  cache.insert(key, hash, 0.5f);
  EXPECT_FALSE(cache.lookup(key, hash).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats(), (ScoreCache::Stats{0, 1, 0}));
}

TEST(ScoreCache, CapacityOneEvictsFifo) {
  // The shard count clamps to the capacity, so capacity 1 is one shard
  // holding one entry — the second insert must evict the first.
  ScoreCache cache(1);
  const auto a = canon_of({Rect(0, 0, 100, 100)});
  const auto b = canon_of({Rect(0, 0, 100, 200)});
  cache.insert(a, data::canonical_hash(a), 1.0f);
  cache.insert(b, data::canonical_hash(b), 2.0f);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.lookup(a, data::canonical_hash(a)).has_value());
  const auto got = cache.lookup(b, data::canonical_hash(b));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 2.0f);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ScoreCache, FirstWriterWins) {
  ScoreCache cache(16);
  const auto key = canon_of({Rect(10, 10, 40, 40)});
  const auto hash = data::canonical_hash(key);
  cache.insert(key, hash, 0.25f);
  cache.insert(key, hash, 0.75f);  // duplicate: must be a no-op
  EXPECT_EQ(cache.size(), 1u);
  const auto got = cache.lookup(key, hash);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0.25f);
}

TEST(ScoreCache, FullKeyCollisionReplacesResidentEntry) {
  // Two distinct canonical keys forced onto one 64-bit hash (the hash is
  // caller-supplied, so the test can simulate the 2^-64 event directly).
  // The old early-return kept the incumbent forever, which made the second
  // pattern permanently uncacheable — every occurrence re-scored for the
  // cache's lifetime.
  ScoreCache cache(16);
  const auto a = canon_of({Rect(0, 0, 100, 100)});
  const auto b = canon_of({Rect(0, 0, 100, 200)});
  const std::uint64_t hash = 42;  // shared slot
  cache.insert(a, hash, 1.0f);
  EXPECT_FALSE(cache.lookup(b, hash).has_value());  // full-key compare: miss
  cache.insert(b, hash, 2.0f);                      // must replace, not no-op
  EXPECT_EQ(cache.size(), 1u);
  const auto got = cache.lookup(b, hash);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 2.0f);
  EXPECT_FALSE(cache.lookup(a, hash).has_value());  // incumbent was evicted
  EXPECT_EQ(cache.stats().collisions, 1u);
  // A same-key duplicate stays first-writer-wins and is NOT a collision.
  cache.insert(b, hash, 3.0f);
  EXPECT_EQ(*cache.lookup(b, hash), 2.0f);
  EXPECT_EQ(cache.stats().collisions, 1u);
}

TEST(ScoreCache, NonDividingCapacityHoldsExactTotalBound) {
  // per_shard = capacity / shards used to discard the remainder, so
  // ScoreCache(20, 16) held only 16 entries. The remainder now spreads
  // one-per-shard: the total bound is pinned exactly, from both sides.
  const std::pair<std::size_t, std::size_t> cases[] = {
      {20, 16}, {17, 16}, {31, 16}, {5, 3}, {1, 16}, {16, 16}, {48, 16}};
  for (const auto& [capacity, shards] : cases) {
    ScoreCache cache(capacity, shards);
    // Distinct keys with forced hashes 0..n-1 cover every shard
    // round-robin, enough times to fill each shard to its bound.
    const std::size_t n = 2 * capacity + shards;
    for (std::size_t i = 0; i < n; ++i) {
      const auto key = canon_of({Rect(0, 0, static_cast<geom::Coord>(i + 1),
                                      static_cast<geom::Coord>(i + 1))});
      cache.insert(key, static_cast<std::uint64_t>(i),
                   static_cast<float>(i));
      EXPECT_LE(cache.size(), capacity)
          << "capacity " << capacity << " shards " << shards;
    }
    EXPECT_EQ(cache.size(), capacity)
        << "capacity " << capacity << " shards " << shards;
  }
}

TEST(ScoreCache, ResetStatsClearsTalliesNotEntries) {
  ScoreCache cache(8);
  const auto key = canon_of({Rect(0, 0, 10, 10)});
  const auto hash = data::canonical_hash(key);
  cache.insert(key, hash, 0.1f);
  (void)cache.lookup(key, hash);
  cache.reset_stats();
  EXPECT_EQ(cache.stats(), (ScoreCache::Stats{}));
  EXPECT_TRUE(cache.lookup(key, hash).has_value());
}

// ------------------------------------------------------------- dedup scan --

TEST(Scan, DedupScanMatchesNaive) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 4, 4, 41);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  // Density score: invariant under rect order and whole-pattern
  // translation, i.e. exactly the precondition under which the dedup path
  // promises bit-identical results.
  const ThresholdedDensityDetector det(0.05f);
  ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;
  const auto naive = scan_chip(index, det, cfg);
  cfg.dedup = true;
  const auto dedup = scan_chip(index, det, cfg);
  EXPECT_EQ(dedup.windows_total, naive.windows_total);
  EXPECT_EQ(dedup.flagged, naive.flagged);
  EXPECT_EQ(dedup.hits, naive.hits);
  EXPECT_LE(dedup.windows_classified, naive.windows_classified);
  // Single-stage dedup probes the cache exactly once per non-skipped
  // window, and only misses ever reach the detector.
  EXPECT_EQ(dedup.cache_hits + dedup.cache_misses,
            naive.windows_classified);
  EXPECT_GE(dedup.cache_misses, dedup.windows_classified);
}

TEST(Scan, DedupExploitsChipCellReuse) {
  // A chip built with tile variants is periodic (cell reuse), so the dedup
  // scan must classify at most the unique-pattern count: one period of the
  // window grid plus the clipped boundary windows — far fewer than half of
  // the naive invocations. This is the ISSUE's headline claim, pinned on
  // the generator that the fig8 bench scans.
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 8, 8, 44, /*tile_variants=*/4);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector det(0.05f);
  ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;
  const auto naive = scan_chip(index, det, cfg);
  cfg.dedup = true;
  const auto dedup = scan_chip(index, det, cfg);
  EXPECT_EQ(dedup.windows_total, naive.windows_total);
  EXPECT_EQ(dedup.hits, naive.hits);
  ASSERT_GT(naive.windows_classified, 0u);
  EXPECT_LE(dedup.windows_classified, naive.windows_classified / 2)
      << "periodic chip should dedup to a fraction of the naive invocations";
}

TEST(Scan, DedupTwoStageMatchesNaive) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 4, 4, 42);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector prefilter(0.10f);
  const ThresholdedDensityDetector refiner(0.05f);
  ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;
  const auto naive = scan_chip_two_stage(index, prefilter, refiner, cfg);
  cfg.dedup = true;
  const auto dedup = scan_chip_two_stage(index, prefilter, refiner, cfg);
  EXPECT_EQ(dedup.windows_total, naive.windows_total);
  EXPECT_EQ(dedup.flagged, naive.flagged);
  EXPECT_EQ(dedup.hits, naive.hits);
  // Only stage-2 survivors are deduped, so one cache probe per window the
  // naive refiner classified.
  EXPECT_EQ(dedup.cache_hits + dedup.cache_misses,
            naive.windows_classified);
}

TEST(Scan, DedupCapacityZeroAndBatchOneStillMatch) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 3, 3, 43);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector det(0.05f);
  ScanConfig cfg;
  const auto naive = scan_chip(index, det, cfg);
  cfg.dedup = true;
  cfg.cache_capacity = 0;  // memoization off: every window misses
  cfg.batch = 1;           // degenerate batching: score one at a time
  const auto dedup = scan_chip(index, det, cfg);
  EXPECT_EQ(dedup.hits, naive.hits);
  EXPECT_EQ(dedup.flagged, naive.flagged);
  EXPECT_EQ(dedup.cache_hits, 0u);
  // With the cache disabled and batch 1, intra-batch dedup cannot trigger
  // either — every window reaches the detector, exactly like naive.
  EXPECT_EQ(dedup.windows_classified, naive.windows_classified);
}

TEST(Scan, DedupClassifiesRepeatedPatternOnce) {
  // A 4x4 grid of identical tiles, windows aligned to the tile pitch:
  // every window sees the same pattern up to translation.
  std::vector<Rect> rects;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      rects.emplace_back(i * 1024 + 100, j * 1024 + 100, i * 1024 + 400,
                         j * 1024 + 400);
    }
  }
  const ChipIndex index(rects);
  const ThresholdedDensityDetector det(0.05f);
  ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 1024;
  cfg.dedup = true;
  cfg.batch = 1;  // insert each miss before the next window probes
  const auto result = scan_chip(index, det, cfg);
  EXPECT_EQ(result.windows_total, 16u);
  EXPECT_EQ(result.flagged, 16u);
  EXPECT_EQ(result.windows_classified, 1u);  // one detector invocation
  EXPECT_EQ(result.cache_hits, 15u);
  EXPECT_EQ(result.cache_misses, 1u);

  // With a large batch the 15 duplicates alias the pattern while it is
  // still pending (the memo is never committed before they arrive); the
  // hit/miss split must report the same dedup outcome regardless.
  cfg.batch = 32;
  const auto batched = scan_chip(index, det, cfg);
  EXPECT_EQ(batched.windows_classified, 1u);
  EXPECT_EQ(batched.cache_hits, 15u);
  EXPECT_EQ(batched.cache_misses, 1u);
  EXPECT_EQ(batched.hits, result.hits);
}

TEST(Scan, ShardSplitIsBalancedWhenRowsDoNotDivide) {
  // Regression: the shard loop used ceil-division row ranges, so with R
  // rows over S shards the trailing shards could get zero rows yet still
  // push (empty) accums — shards.size() contradicted the documented
  // "shard count actually used" and the last shards sat idle.
  const ThresholdedDensityDetector det(0.05f);
  ThreadPool pool(4);
  // One rect spanning the whole extent: every row has exactly one window
  // column (width 512 = one stride), so per-shard window counts equal row
  // counts and the split is directly observable.
  for (const auto& [rows, threads] : std::vector<std::pair<int, std::size_t>>{
           {5, 4}, {7, 3}, {5, 8}, {3, 2}, {1, 4}, {6, 4}}) {
    const ChipIndex index({Rect(0, 0, 512, rows * 512)});
    ScanConfig cfg;
    cfg.window_nm = 512;
    cfg.stride_nm = 512;
    cfg.threads = threads;
    const auto result = scan_chip(index, det, cfg, pool);
    const auto expected_shards =
        std::min<std::size_t>(threads, static_cast<std::size_t>(rows));
    EXPECT_EQ(result.shards.size(), expected_shards)
        << rows << " rows / " << threads << " threads";
    std::size_t sum = 0;
    std::size_t smallest = result.windows_total;
    std::size_t largest = 0;
    for (const auto& shard : result.shards) {
      EXPECT_GT(shard.windows, 0u)
          << "idle shard reported for " << rows << " rows / " << threads
          << " threads";
      sum += shard.windows;
      smallest = std::min(smallest, shard.windows);
      largest = std::max(largest, shard.windows);
    }
    EXPECT_EQ(sum, result.windows_total);
    EXPECT_LE(largest - smallest, 1u)
        << "unbalanced split for " << rows << " rows / " << threads
        << " threads";
  }
}

TEST(Scan, SharedCacheReportsPerScanDeltas) {
  // Regression: ScoreCache totals are cumulative, so a cache serving two
  // scans used to double-count the first scan's hits/misses in the second
  // scan's ScanResult. With the snapshot/delta fix, the second scan over
  // identical geometry reports only its own activity: every window a hit,
  // zero misses, zero detector invocations.
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 4, 4, 45);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector det(0.05f);
  ScoreCache cache(1 << 14);
  ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;
  cfg.dedup = true;
  cfg.cache = &cache;
  const auto first = scan_chip(index, det, cfg);
  ASSERT_GT(first.cache_misses, 0u);
  const auto second = scan_chip(index, det, cfg);
  EXPECT_EQ(second.windows_total, first.windows_total);
  EXPECT_EQ(second.hits, first.hits);
  // The warm cache serves every probe; per-scan deltas must say so instead
  // of re-reporting the first scan's misses.
  EXPECT_EQ(second.cache_misses, 0u);
  EXPECT_EQ(second.windows_classified, 0u);
  EXPECT_EQ(second.cache_hits, first.cache_hits + first.cache_misses);
  // The cache's own cumulative view spans both scans.
  const auto totals = cache.stats();
  EXPECT_EQ(totals.hits + totals.misses,
            first.cache_hits + first.cache_misses + second.cache_hits +
                second.cache_misses);
}

// ------------------------------------------------------- hierarchical scan --

TEST(HierScan, MatchesFlattenedScanOnSynthChip) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 4, 4, 51, /*tile_variants=*/1);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector det(0.05f);
  ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;
  const auto naive = scan_chip(index, det, cfg);
  ASSERT_GT(naive.flagged, 0u);
  cfg.hierarchical = true;
  const auto hier =
      core::scan_library(lib, "TOP", synth::kChipLayer, det, cfg);
  EXPECT_EQ(hier.windows_total, naive.windows_total);
  EXPECT_EQ(hier.flagged, naive.flagged);
  EXPECT_EQ(hier.hits, naive.hits);
  // One distinct tile placed 16 times: the interior of 15 placements
  // replays, so detector work collapses far below the flattened count.
  EXPECT_EQ(hier.instances, 16u);
  EXPECT_EQ(hier.distinct_cells, 1u);
  EXPECT_GT(hier.replay_hits, 0u);
  EXPECT_GT(hier.stitch_windows, 0u);  // stride straddles tile seams
  ASSERT_GT(naive.windows_classified, 0u);
  EXPECT_LE(hier.windows_classified, naive.windows_classified / 2)
      << "cell reuse should collapse detector invocations";
}

TEST(HierScan, RotatedAndMirroredRefsMatchFlattened) {
  // Hand-built library covering every D4 orientation plus an AREF grid —
  // each placement's window offsets differ, so replay must key on the
  // full (cell, mirror, angle, offset) tuple to stay exact.
  gds::Library lib;
  gds::Structure& cell = lib.add_structure("CELL");
  gds::Boundary b;
  b.layer = 1;
  b.polygon = geom::Polygon::from_rect(Rect(0, 0, 700, 300));
  cell.add(b);
  gds::Boundary c;
  c.layer = 1;
  c.polygon = geom::Polygon::from_rect(Rect(100, 400, 250, 900));
  cell.add(c);
  gds::Structure& top = lib.add_structure("TOP");
  int placed = 0;
  for (const bool mirror : {false, true}) {
    for (int angle = 0; angle < 360; angle += 90) {
      gds::SRef ref;
      ref.structure = "CELL";
      ref.transform.mirror_x = mirror;
      ref.transform.angle_deg = angle;
      ref.transform.origin = {placed * 1500, (placed % 3) * 1100};
      top.add(ref);
      ++placed;
    }
  }
  gds::ARef arr;
  arr.structure = "CELL";
  arr.transform.origin = {-3000, -2500};
  arr.cols = 3;
  arr.rows = 2;
  arr.col_step = {1200, 0};
  arr.row_step = {0, 1300};
  top.add(arr);

  const auto index = ChipIndex::from_library(lib, "TOP", 1);
  const ThresholdedDensityDetector det(0.02f);
  ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;
  const auto naive = scan_chip(index, det, cfg);
  ASSERT_GT(naive.flagged, 0u);
  ThreadPool pool(4);
  for (const std::size_t threads : {1u, 4u}) {
    for (const bool dedup : {false, true}) {
      cfg.hierarchical = true;
      cfg.threads = threads;
      cfg.dedup = dedup;
      const auto hier = core::scan_library(lib, "TOP", 1, det, cfg, pool);
      EXPECT_EQ(hier.windows_total, naive.windows_total)
          << threads << "/" << dedup;
      EXPECT_EQ(hier.hits, naive.hits) << threads << "/" << dedup;
      EXPECT_EQ(hier.instances, 14u);  // 8 SREFs + 3x2 AREF cells
      EXPECT_EQ(hier.distinct_cells, 1u);
    }
  }
}

TEST(HierScan, FlatConfigDelegatesToFlattenedScan) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 2, 2, 52);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector det(0.05f);
  ScanConfig cfg;  // hierarchical = false
  const auto flat = scan_chip(index, det, cfg);
  const auto via_lib =
      core::scan_library(lib, "TOP", synth::kChipLayer, det, cfg);
  EXPECT_EQ(via_lib.hits, flat.hits);
  EXPECT_EQ(via_lib.windows_total, flat.windows_total);
  EXPECT_EQ(via_lib.instances, 0u);  // hierarchical-only counter
}

TEST(HierScan, ChipScanRejectsHierarchicalFlag) {
  const ChipIndex index({Rect(0, 0, 100, 100)});
  const ThresholdedDensityDetector det(0.1f);
  ScanConfig cfg;
  cfg.hierarchical = true;
  EXPECT_THROW(scan_chip(index, det, cfg), Error);
  EXPECT_THROW(scan_chip_two_stage(index, det, det, cfg), Error);
}

TEST(HierScan, EmptyLayerScansZeroWindows) {
  gds::Library lib;
  lib.add_structure("TOP");
  const ThresholdedDensityDetector det(0.1f);
  ScanConfig cfg;
  cfg.hierarchical = true;
  const auto result = core::scan_library(lib, "TOP", 1, det, cfg);
  EXPECT_EQ(result.windows_total, 0u);
  EXPECT_EQ(result.instances, 0u);
  EXPECT_TRUE(result.hits.empty());
}

// ------------------------------------------------------------ score batch --

TEST(Detector, DefaultScoreBatchMatchesScore) {
  const ThresholdedDensityDetector det(0.1f);
  std::vector<data::Clip> clips;
  for (int i = 1; i <= 5; ++i) {
    data::Clip c;
    c.window_nm = 1024;
    c.rects = {Rect(0, 0, i * 100, i * 100)};
    clips.push_back(std::move(c));
  }
  const auto batch = det.score_batch(clips);
  ASSERT_EQ(batch.size(), clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i) {
    EXPECT_EQ(batch[i], det.score(clips[i]));
  }
}

TEST(CnnDetector, ScoreBatchMatchesScoreBitExact) {
  // The batched forward pass must reproduce the per-clip path bit for bit
  // (untrained weights are fine — the contract is about inference, and the
  // dedup parity guarantee rests on it).
  CnnDetector det("cnn-batch", {});
  const auto suite = tiny_suite(8, 4);
  std::vector<data::Clip> clips;
  for (std::size_t i = 0; i < suite.test.size(); ++i) {
    clips.push_back(suite.test[i]);
  }
  const auto batch = det.score_batch(clips);
  ASSERT_EQ(batch.size(), clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i) {
    EXPECT_EQ(batch[i], det.score(clips[i]));
  }
}

TEST(Detector, EmptyScoreBatchReturnsEmpty) {
  // Regression: an empty span must come back as an empty vector, not
  // trip the exec submission or allocate a garbage element.
  const ThresholdedDensityDetector det(0.1f);
  EXPECT_TRUE(det.score_batch(std::span<const data::Clip>()).empty());
  const std::vector<data::Clip> none;
  EXPECT_TRUE(det.score_batch(none).empty());
}

TEST(Detector, SingleClipScoreBatchMatchesScore) {
  const ThresholdedDensityDetector det(0.1f);
  data::Clip c;
  c.window_nm = 1024;
  c.rects = {Rect(0, 0, 300, 300)};
  const std::vector<data::Clip> clips = {c};
  const auto batch = det.score_batch(clips);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], det.score(clips[0]));
}

TEST(CnnDetector, EmptyAndSingleClipScoreBatch) {
  // The CNN override short-circuits an empty span before touching the
  // feature extractor, and a batch of one must equal score() bit for bit.
  CnnDetector det("cnn-batch-edge", {});
  Rng rng(17);
  det.network().init(rng);
  EXPECT_TRUE(det.score_batch(std::span<const data::Clip>()).empty());
  const auto suite = tiny_suite(2, 2);
  const std::vector<data::Clip> one = {suite.test[0]};
  const auto batch = det.score_batch(one);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], det.score(one[0]));
}

// ---------------------------------------------------------- exec registry --

TEST(ExecRegistry, ListsAllCompiledBackends) {
  const auto names = exec::list_backends();
  ASSERT_EQ(names.size(), std::size(exec::kBackendNames));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], exec::kBackendNames[i]);
    EXPECT_EQ(exec::get_backend(names[i]).name(), names[i]);
  }
}

TEST(ExecRegistry, ResolveHonorsExplicitRequest) {
  EXPECT_STREQ(exec::resolve("serial").name(), "serial");
  EXPECT_STREQ(exec::resolve("threadpool").name(), "threadpool");
}

TEST(ExecRegistry, UnknownRequestFallsBackToDefault) {
  // Mirrors LHD_NN_KERNEL: a typo degrades to the configured default
  // (warn-and-fallback), never aborts.
  EXPECT_EQ(exec::resolve("no-such-backend").name(),
            exec::kDefaultBackendName);
}

TEST(ExecRegistry, UnknownGetThrows) {
  EXPECT_THROW(exec::get_backend("no-such-backend"), Error);
  EXPECT_EQ(exec::find_backend("no-such-backend"), nullptr);
}

TEST(ExecRegistry, OverrideWinsUntilCleared) {
  exec::set_backend_override("serial");
  EXPECT_STREQ(exec::resolve().name(), "serial");
  // An explicit request still beats the override.
  EXPECT_STREQ(exec::resolve("threadpool").name(), "threadpool");
  exec::clear_backend_override();
  EXPECT_EQ(exec::resolve().name(), exec::kDefaultBackendName);
}

TEST(Scan, ThreadsZeroUsesHardwareConcurrency) {
  synth::StyleConfig style;
  const auto lib = synth::build_chip(style, 2, 2, 33);
  const auto index = ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  const ThresholdedDensityDetector det(0.05f);
  ScanConfig cfg;
  cfg.threads = 1;
  const auto serial = scan_chip(index, det, cfg);
  cfg.threads = 0;  // auto: one shard per hardware thread
  const auto auto_sharded = scan_chip(index, det, cfg);
  EXPECT_EQ(auto_sharded.hits, serial.hits);
  EXPECT_EQ(auto_sharded.windows_total, serial.windows_total);
}


// --------------------------------------------------------------- ensemble --

TEST(Ensemble, MajorityVoteOverridesMinority) {
  std::vector<std::unique_ptr<Detector>> members;
  members.push_back(std::make_unique<ThresholdedDensityDetector>(0.05f));
  members.push_back(std::make_unique<ThresholdedDensityDetector>(0.05f));
  members.push_back(std::make_unique<ThresholdedDensityDetector>(0.90f));
  EnsembleDetector ens("demo", std::move(members));
  data::Clip dense;
  dense.window_nm = 1024;
  dense.rects = {Rect(0, 0, 1024, 512)};  // density 0.5
  // Two of three members flag it.
  EXPECT_TRUE(ens.predict(dense));
  EXPECT_NEAR(ens.score(dense), 2.0f / 3.0f - 0.5f, 1e-5);
}

TEST(Ensemble, UnanimousClean) {
  std::vector<std::unique_ptr<Detector>> members;
  for (int i = 0; i < 3; ++i) {
    members.push_back(std::make_unique<ThresholdedDensityDetector>(0.9f));
  }
  EnsembleDetector ens("demo", std::move(members));
  data::Clip sparse;
  sparse.window_nm = 1024;
  sparse.rects = {Rect(0, 0, 100, 100)};
  EXPECT_FALSE(ens.predict(sparse));
  EXPECT_FLOAT_EQ(ens.score(sparse), -0.5f);
}

TEST(Ensemble, RejectsEmptyMembership) {
  std::vector<std::unique_ptr<Detector>> none;
  EXPECT_THROW(EnsembleDetector("x", std::move(none)), Error);
}

TEST(Ensemble, SeedEnsembleBeatsOrMatchesWorstMember) {
  const auto suite = tiny_suite(80, 60);
  auto ens = make_seed_ensemble("dtree", 5, 7);
  EXPECT_EQ(ens->size(), 5u);
  ens->train(suite.train);
  const auto c_ens = evaluate(ens->predict_all(suite.test), suite.test);
  double worst_f1 = 1.0;
  for (std::size_t i = 0; i < ens->size(); ++i) {
    const auto c = evaluate(ens->member(i).predict_all(suite.test),
                            suite.test);
    worst_f1 = std::min(worst_f1, c.f1());
  }
  EXPECT_GE(c_ens.f1() + 1e-9, worst_f1);
}

// -------------------------------------------------------------------- auc --

TEST(RocAuc, PerfectRankingIsOne) {
  data::Dataset ds;
  for (int i = 0; i < 4; ++i) {
    data::Clip c;
    c.label = i < 2 ? data::Label::Hotspot : data::Label::NonHotspot;
    ds.add(std::move(c));
  }
  EXPECT_DOUBLE_EQ(roc_auc({0.9f, 0.8f, 0.2f, 0.1f}, ds), 1.0);
}

TEST(RocAuc, InvertedRankingIsZero) {
  data::Dataset ds;
  for (int i = 0; i < 4; ++i) {
    data::Clip c;
    c.label = i < 2 ? data::Label::Hotspot : data::Label::NonHotspot;
    ds.add(std::move(c));
  }
  EXPECT_DOUBLE_EQ(roc_auc({0.1f, 0.2f, 0.8f, 0.9f}, ds), 0.0);
}

TEST(RocAuc, ConstantScoresGiveHalf) {
  data::Dataset ds;
  for (int i = 0; i < 6; ++i) {
    data::Clip c;
    c.label = i < 3 ? data::Label::Hotspot : data::Label::NonHotspot;
    ds.add(std::move(c));
  }
  EXPECT_DOUBLE_EQ(roc_auc(std::vector<float>(6, 0.5f), ds), 0.5);
}

TEST(RocAuc, SingleClassGivesHalf) {
  data::Dataset ds;
  data::Clip c;
  c.label = data::Label::Hotspot;
  ds.add(std::move(c));
  EXPECT_DOUBLE_EQ(roc_auc({0.3f}, ds), 0.5);
}

TEST(RocAuc, SizeMismatchThrows) {
  data::Dataset ds;
  data::Clip c;
  ds.add(std::move(c));
  EXPECT_THROW(roc_auc({0.1f, 0.2f}, ds), Error);
}

TEST(RocAuc, NonFiniteScoresThrow) {
  // NaN compares false against everything, so pre-check it would slip
  // through the sorted U-statistic and silently corrupt the AUC instead of
  // failing. All three non-finite kinds must be rejected.
  data::Dataset ds;
  for (int i = 0; i < 2; ++i) {
    data::Clip c;
    c.label = i == 0 ? data::Label::Hotspot : data::Label::NonHotspot;
    ds.add(std::move(c));
  }
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_THROW(roc_auc({nan, 0.2f}, ds), Error);
  EXPECT_THROW(roc_auc({0.9f, inf}, ds), Error);
  EXPECT_THROW(roc_auc({-inf, 0.2f}, ds), Error);
  EXPECT_DOUBLE_EQ(roc_auc({0.9f, 0.2f}, ds), 1.0);  // finite still fine
}

}  // namespace
}  // namespace lhd::core
