// Tests for lhd/synth: motifs, clip generation, suites, builder, chip gen.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <tuple>

#include "lhd/geom/polygon.hpp"
#include "lhd/geom/raster.hpp"
#include "lhd/litho/oracle.hpp"
#include "lhd/synth/builder.hpp"
#include "lhd/synth/chip_gen.hpp"
#include "lhd/synth/clip_gen.hpp"
#include "lhd/synth/motifs.hpp"
#include "lhd/synth/suites.hpp"

namespace lhd::synth {
namespace {

using geom::Rect;

// ---------------------------------------------------------------- motifs --

class MotifRender
    : public ::testing::TestWithParam<std::tuple<MotifKind, bool>> {};

TEST_P(MotifRender, ProducesGeometryInsideFrame) {
  const auto [kind, risky] = GetParam();
  StyleConfig style;
  Rng rng(5);
  const auto rects = render_motif(kind, style, risky, style.site_frame_nm, rng);
  ASSERT_FALSE(rects.empty());
  for (const auto& r : rects) {
    EXPECT_FALSE(r.empty());
    // Motifs may protrude slightly after symmetry, but must stay near the
    // frame (within half a frame margin).
    EXPECT_GE(r.xlo, -style.site_frame_nm / 2);
    EXPECT_LE(r.xhi, style.site_frame_nm * 3 / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MotifRender,
    ::testing::Combine(
        ::testing::Values(MotifKind::ParallelRun, MotifKind::TipToTip,
                          MotifKind::TipToLine, MotifKind::NarrowNeck,
                          MotifKind::CornerPair, MotifKind::ViaPair,
                          MotifKind::SmallVia, MotifKind::CombFingers),
        ::testing::Bool()));

TEST(Motifs, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto kind :
       {MotifKind::ParallelRun, MotifKind::TipToTip, MotifKind::TipToLine,
        MotifKind::NarrowNeck, MotifKind::CornerPair, MotifKind::ViaPair,
        MotifKind::SmallVia, MotifKind::CombFingers}) {
    names.insert(motif_name(kind));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(Motifs, EveryFamilyHasMotifs) {
  EXPECT_FALSE(motifs_for(PatternFamily::Tracks).empty());
  EXPECT_FALSE(motifs_for(PatternFamily::Serpentine).empty());
  EXPECT_FALSE(motifs_for(PatternFamily::Vias).empty());
}

// The load-bearing calibration property: risky motif instances violate the
// lithography oracle, safe ones never do. (The generator and all benchmark
// labels rest on this.)
class MotifCalibration : public ::testing::TestWithParam<MotifKind> {};

TEST_P(MotifCalibration, RiskyViolatesSafeDoesNot) {
  const MotifKind kind = GetParam();
  StyleConfig style;
  const litho::HotspotOracle oracle{litho::OracleConfig{}};
  const geom::Coord off = (style.window_nm - style.site_frame_nm) / 2;
  int risky_hot = 0, safe_hot = 0;
  constexpr int kTrials = 12;
  Rng rng(99);
  for (int i = 0; i < kTrials; ++i) {
    for (const bool risky : {true, false}) {
      auto rects = render_motif(kind, style, risky, style.site_frame_nm, rng);
      for (auto& r : rects) r = r.shifted(off, off);
      rects = geom::clip_rects(rects,
                               Rect(0, 0, style.window_nm, style.window_nm));
      const auto mask = geom::rasterize(rects, style.window_nm, 8);
      (risky ? risky_hot : safe_hot) += oracle.evaluate(mask).hotspot;
    }
  }
  EXPECT_GE(risky_hot, kTrials * 3 / 4) << motif_name(kind);
  EXPECT_EQ(safe_hot, 0) << motif_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MotifCalibration,
    ::testing::Values(MotifKind::ParallelRun, MotifKind::TipToTip,
                      MotifKind::TipToLine, MotifKind::NarrowNeck,
                      MotifKind::CornerPair, MotifKind::ViaPair,
                      MotifKind::SmallVia, MotifKind::CombFingers));

// -------------------------------------------------------------- clip gen --

TEST(ClipGen, DeterministicGivenSeed) {
  StyleConfig style;
  Rng a(42), b(42);
  EXPECT_EQ(generate_clip(style, a), generate_clip(style, b));
}

TEST(ClipGen, DifferentSeedsDiffer) {
  StyleConfig style;
  Rng a(1), b(2);
  EXPECT_NE(generate_clip(style, a), generate_clip(style, b));
}

TEST(ClipGen, AllRectsInsideWindow) {
  StyleConfig style;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    for (const auto& r : generate_clip(style, rng)) {
      EXPECT_GE(r.xlo, 0);
      EXPECT_GE(r.ylo, 0);
      EXPECT_LE(r.xhi, style.window_nm);
      EXPECT_LE(r.yhi, style.window_nm);
      EXPECT_FALSE(r.empty());
    }
  }
}

class ClipGenFamilies : public ::testing::TestWithParam<PatternFamily> {};

TEST_P(ClipGenFamilies, ProducesNonTrivialDensity) {
  StyleConfig style;
  style.family = GetParam();
  Rng rng(11);
  double total_area = 0;
  for (int i = 0; i < 10; ++i) {
    const auto rects = generate_clip(style, rng);
    total_area += static_cast<double>(geom::union_area(rects));
  }
  const double window_area =
      static_cast<double>(style.window_nm) * style.window_nm;
  const double mean_density = total_area / (10 * window_area);
  EXPECT_GT(mean_density, 0.015);
  EXPECT_LT(mean_density, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Families, ClipGenFamilies,
                         ::testing::Values(PatternFamily::Tracks,
                                           PatternFamily::Serpentine,
                                           PatternFamily::Vias));

TEST(ClipGen, RejectsBadConfig) {
  StyleConfig style;
  style.grid_nm = 0;
  Rng rng(1);
  EXPECT_THROW(generate_clip(style, rng), Error);
  StyleConfig style2;
  style2.site_frame_nm = style2.window_nm;
  EXPECT_THROW(generate_clip(style2, rng), Error);
}

// ---------------------------------------------------------------- suites --

TEST(Suites, FiveBenchmarksDefined) {
  const auto& suites = benchmark_suites();
  ASSERT_EQ(suites.size(), 5u);
  for (std::size_t i = 0; i < suites.size(); ++i) {
    EXPECT_EQ(suites[i].name, "B" + std::to_string(i + 1));
    EXPECT_GT(suites[i].n_train, 0);
    EXPECT_GT(suites[i].n_test, 0);
    EXPECT_FALSE(suites[i].description.empty());
  }
}

TEST(Suites, LookupByName) {
  EXPECT_EQ(suite_by_name("B3").name, "B3");
  EXPECT_THROW(suite_by_name("B9"), Error);
}

TEST(Suites, B5IsTheImbalancedSuite) {
  const auto& b5 = suite_by_name("B5");
  for (const auto& s : benchmark_suites()) {
    EXPECT_LE(b5.style.p_risky_site, s.style.p_risky_site);
  }
}

// --------------------------------------------------------------- builder --

TEST(Builder, BuildsRequestedCounts) {
  SuiteSpec spec = suite_by_name("B1");
  spec.n_train = 24;
  spec.n_test = 12;
  const auto built = build_suite(spec, {});
  EXPECT_EQ(built.train.size(), 24u);
  EXPECT_EQ(built.test.size(), 12u);
}

TEST(Builder, DeterministicAcrossRuns) {
  SuiteSpec spec = suite_by_name("B2");
  spec.n_train = 20;
  spec.n_test = 0;
  const auto a = build_suite(spec, {});
  const auto b = build_suite(spec, {});
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].rects, b.train[i].rects);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
}

TEST(Builder, GdsRoundTripDoesNotChangeLabels) {
  SuiteSpec spec = suite_by_name("B1");
  spec.n_train = 20;
  spec.n_test = 0;
  BuildOptions with;
  with.gds_roundtrip = true;
  BuildOptions without;
  without.gds_roundtrip = false;
  const auto a = build_suite(spec, with);
  const auto b = build_suite(spec, without);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].label, b.train[i].label) << "clip " << i;
  }
}

TEST(Builder, CacheRoundTrip) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "lhd_test_cache";
  fs::remove_all(dir);
  SuiteSpec spec = suite_by_name("B3");
  spec.n_train = 15;
  spec.n_test = 10;
  BuildOptions opts;
  opts.cache_dir = dir.string();
  const auto first = build_suite(spec, opts);
  EXPECT_TRUE(fs::exists(dir / "B3_train.lhdd"));
  const auto second = build_suite(spec, opts);  // loads from cache
  ASSERT_EQ(first.train.size(), second.train.size());
  for (std::size_t i = 0; i < first.train.size(); ++i) {
    EXPECT_EQ(first.train[i].rects, second.train[i].rects);
    EXPECT_EQ(first.train[i].label, second.train[i].label);
  }
  fs::remove_all(dir);
}

TEST(Builder, CorruptCacheIsRebuiltNotFatal) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "lhd_test_cache_corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  // Garbage where the cache files should be — e.g. a stale cache written by
  // an older serialization format. build_suite must rebuild, not throw.
  for (const char* name : {"B3_train.lhdd", "B3_test.lhdd"}) {
    std::ofstream out(dir / name, std::ios::binary);
    out << "not a dataset";
  }
  SuiteSpec spec = suite_by_name("B3");
  spec.n_train = 15;
  spec.n_test = 10;
  BuildOptions opts;
  opts.cache_dir = dir.string();
  const auto built = build_suite(spec, opts);
  EXPECT_EQ(built.train.size(), 15u);
  EXPECT_EQ(built.test.size(), 10u);
  // The bad files were overwritten with a loadable cache.
  const auto reloaded = build_suite(spec, opts);
  ASSERT_EQ(reloaded.train.size(), built.train.size());
  for (std::size_t i = 0; i < built.train.size(); ++i) {
    EXPECT_EQ(reloaded.train[i].rects, built.train[i].rects);
    EXPECT_EQ(reloaded.train[i].label, built.train[i].label);
  }
  fs::remove_all(dir);
}

TEST(Builder, HotspotRateInPlausibleBand) {
  SuiteSpec spec = suite_by_name("B2");
  spec.n_train = 120;
  spec.n_test = 0;
  const auto built = build_suite(spec, {});
  const auto stats = built.train.stats();
  // p_risky_site = 0.32 and nearly every risky site violates.
  EXPECT_GT(stats.hotspot_ratio, 0.10);
  EXPECT_LT(stats.hotspot_ratio, 0.55);
}

TEST(Builder, LabelsMatchOracleReplay) {
  SuiteSpec spec = suite_by_name("B1");
  spec.n_train = 15;
  spec.n_test = 0;
  const auto built = build_suite(spec, {});
  const litho::HotspotOracle oracle{litho::OracleConfig{}};
  for (std::size_t i = 0; i < built.train.size(); ++i) {
    const auto& clip = built.train[i];
    const bool expected = oracle.evaluate(clip.raster(8)).hotspot;
    EXPECT_EQ(clip.is_hotspot(), expected) << "clip " << i;
  }
}

// -------------------------------------------------------------- chip gen --

TEST(ChipGen, BuildsTopAndTiles) {
  StyleConfig style;
  const auto lib = build_chip(style, 3, 2, 77);
  EXPECT_NE(lib.find("TOP"), nullptr);
  EXPECT_EQ(lib.structures().size(), 1u + 3 * 2);
}

TEST(ChipGen, FlattenedChipCoversExpectedExtent) {
  StyleConfig style;
  const auto lib = build_chip(style, 2, 2, 77);
  const auto rects = lib.flatten_layer("TOP", kChipLayer);
  ASSERT_FALSE(rects.empty());
  geom::Rect bbox = lib.layer_bbox("TOP", kChipLayer);
  EXPECT_GE(bbox.width(), style.window_nm);
  EXPECT_LE(bbox.xhi, 2 * style.window_nm);
  EXPECT_LE(bbox.yhi, 2 * style.window_nm);
}

TEST(ChipGen, DeterministicGivenSeed) {
  StyleConfig style;
  const auto a = build_chip(style, 2, 1, 5);
  const auto b = build_chip(style, 2, 1, 5);
  EXPECT_EQ(a.flatten_layer("TOP", kChipLayer),
            b.flatten_layer("TOP", kChipLayer));
}

TEST(ChipGen, RejectsBadTileCounts) {
  StyleConfig style;
  EXPECT_THROW(build_chip(style, 0, 2, 1), Error);
  EXPECT_THROW(build_chip(style, 2, 2, 1, -1), Error);
}

TEST(ChipGen, TileVariantsAreArrayedPeriodically) {
  StyleConfig style;
  const auto lib = build_chip(style, 4, 4, 7, /*tile_variants=*/4);
  // Only 4 distinct tile structures exist, but all 16 slots are placed.
  EXPECT_EQ(lib.structures().size(), 1u + 4);
  const auto* top = lib.find("TOP");
  ASSERT_NE(top, nullptr);
  std::vector<std::string> grid(16);
  std::size_t refs = 0;
  for (const auto& e : top->elements) {
    if (const auto* ref = std::get_if<gds::SRef>(&e)) {
      const auto tx = ref->transform.origin.x / style.window_nm;
      const auto ty = ref->transform.origin.y / style.window_nm;
      grid[static_cast<std::size_t>(ty * 4 + tx)] = ref->structure;
      ++refs;
    }
  }
  EXPECT_EQ(refs, 16u);
  // 4 variants form a 2x2 macro: placement repeats with period 2 in both
  // axes, so the flattened chip is periodic (what a dedup scan feeds on).
  for (int ty = 0; ty < 4; ++ty) {
    for (int tx = 0; tx < 4; ++tx) {
      EXPECT_EQ(grid[static_cast<std::size_t>(ty * 4 + tx)],
                grid[static_cast<std::size_t>((ty % 2) * 4 + tx % 2)])
          << "tile (" << tx << ", " << ty << ")";
    }
  }
  // The geometry really is shared, not just the names: tile (2, 2) is the
  // same variant as tile (0, 0), translated by two windows.
  const auto rects = lib.flatten_layer("TOP", kChipLayer);
  const geom::Coord w = style.window_nm;
  std::vector<Rect> origin_tile, repeat_tile;
  for (const auto& r : rects) {
    if (r.xhi <= w && r.yhi <= w) {
      origin_tile.push_back(Rect(r.xlo + 2 * w, r.ylo + 2 * w, r.xhi + 2 * w,
                                 r.yhi + 2 * w));
    } else if (r.xlo >= 2 * w && r.xhi <= 3 * w && r.ylo >= 2 * w &&
               r.yhi <= 3 * w) {
      repeat_tile.push_back(r);
    }
  }
  const auto lex = [](const Rect& a, const Rect& b) {
    return std::tie(a.xlo, a.ylo, a.xhi, a.yhi) <
           std::tie(b.xlo, b.ylo, b.xhi, b.yhi);
  };
  std::sort(origin_tile.begin(), origin_tile.end(), lex);
  std::sort(repeat_tile.begin(), repeat_tile.end(), lex);
  ASSERT_FALSE(origin_tile.empty());
  EXPECT_EQ(origin_tile, repeat_tile);
}

}  // namespace
}  // namespace lhd::synth
