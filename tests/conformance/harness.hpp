#pragma once
// Shared harness for the exec-backend conformance suite (Level-Zero
// style: per-feature test groups, one utils library, GEMM as the
// canonical workload). Every group derives from BackendTest and is
// instantiated once per registered backend via LHD_CONFORMANCE_SUITE, so
// "add a backend" is exactly "appear in exec::list_backends() and make
// this suite pass". Tolerance rules live in docs/BACKENDS.md: batch
// scoring is bit-identical across backends; gemm/conv primitives are
// tolerance-checked against reference loops.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "lhd/core/detector.hpp"
#include "lhd/data/clip.hpp"
#include "lhd/exec/backend.hpp"
#include "lhd/exec/registry.hpp"
#include "lhd/nn/tensor.hpp"
#include "lhd/util/rng.hpp"

namespace lhd::conformance {

/// Parameterized-by-backend-name fixture. SetUp pins the process-wide
/// override so code that resolves the backend internally (CnnDetector::
/// score_batch, scans with an empty ScanConfig::backend) runs the backend
/// under test too; TearDown always clears it.
class BackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { exec::set_backend_override(GetParam()); }
  void TearDown() override { exec::clear_backend_override(); }

  const exec::ExecBackend& backend() const {
    return exec::get_backend(GetParam());
  }
};

/// Instantiate `suite` once per registered backend. The test-name suffix
/// is the backend name itself — the per-backend ctest entries in
/// tests/conformance/CMakeLists.txt filter on `*/<name>`, so suite/test
/// identifiers must never contain a backend name.
#define LHD_CONFORMANCE_SUITE(suite)                                      \
  INSTANTIATE_TEST_SUITE_P(                                               \
      Backends, suite, ::testing::ValuesIn(::lhd::exec::list_backends()), \
      [](const ::testing::TestParamInfo<std::string>& info) {             \
        return info.param;                                                \
      })

/// `count` random floats in [-1, 1).
std::vector<float> random_floats(Rng& rng, std::size_t count);

/// Elementwise |got - want| <= tol * (1 + max(|got|, |want|)); reports the
/// first offending element. The relative-to-magnitude form matches the
/// nn-kernel-parity oracle (different accumulation orders, same math).
void expect_allclose(std::span<const float> got, std::span<const float> want,
                     double tol, const std::string& what);

/// Random clips for scoring tests (a handful of random rects per clip).
std::vector<data::Clip> random_clips(Rng& rng, std::size_t count,
                                     geom::Coord window_nm = 1024);

/// Double-precision direct convolution — the conformance oracle every
/// backend's conv2d_forward is compared against. Same layout contract as
/// ExecBackend::conv2d_forward; returns the flattened NCHW output.
std::vector<float> conv_oracle(const nn::Tensor& input,
                               std::span<const float> weight,
                               std::span<const float> bias, int out_channels,
                               int kernel, int pad);

/// Score `clips` through backend.submit_batches + Detector::score_batch —
/// the scan's scoring dispatch, reproduced so conformance can check it
/// without a full scan around it.
std::vector<float> score_via(const exec::ExecBackend& backend,
                             const core::Detector& det,
                             const std::vector<data::Clip>& clips);

}  // namespace lhd::conformance
