// Conformance group: full scans through each backend. The acceptance bar
// for the exec layer is that the scan's hit list is bit-identical no
// matter which backend dispatches the batched scoring — asserted here by
// running the existing dedup and hierarchical parity oracles with the
// backend pinned, plus explicit ScanConfig::backend selection and
// repeated-run determinism.

#include <vector>

#include "harness.hpp"
#include "lhd/core/scan.hpp"
#include "lhd/synth/chip_gen.hpp"
#include "lhd/testkit/oracle.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::conformance {
namespace {

core::ScanConfig base_config() {
  core::ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;
  return cfg;
}

gds::Library test_chip(std::uint64_t seed, int variants) {
  return synth::build_chip(synth::StyleConfig{}, 2, 2, seed, variants);
}

class ScanGroup : public BackendTest {};

TEST_P(ScanGroup, DedupParityAcrossThreadsCapacitiesAndBatches) {
  // The dedup-vs-naive oracle's whole matrix (threads x capacity x batch)
  // with this backend dispatching every batched score. Capacity 0 turns
  // memoization off; batch 1 flushes each miss alone — the submission
  // edge cases.
  ThreadPool pool(4);
  const testkit::DensityCutDetector detector(0.05f);
  const core::ChipIndex chip = core::ChipIndex::from_library(
      test_chip(1234, 4), "TOP", synth::kChipLayer);
  testkit::expect_dedup_scan_parity(chip, detector, base_config(), {1, 3},
                                    {0, 1 << 12}, {1, 7, 32}, pool);
}

TEST_P(ScanGroup, HierarchicalParityAcrossThreads) {
  ThreadPool pool(4);
  const testkit::DensityCutDetector detector(0.05f);
  testkit::expect_hierarchical_scan_parity(test_chip(777, 1), "TOP",
                                           synth::kChipLayer, detector,
                                           base_config(), {1, 3}, pool);
}

TEST_P(ScanGroup, ExplicitConfigBackendMatchesNaiveScan) {
  // ScanConfig::backend selects the backend without the process-wide
  // override: hits from the dedup scan under the named backend must equal
  // the naive (dedup-off, threads-1) scan under the compiled default.
  exec::clear_backend_override();
  const testkit::DensityCutDetector detector(0.05f);
  const core::ChipIndex chip = core::ChipIndex::from_library(
      test_chip(4321, 4), "TOP", synth::kChipLayer);
  core::ScanConfig naive_cfg = base_config();
  const core::ScanResult naive = core::scan_chip(chip, detector, naive_cfg);
  core::ScanConfig cfg = base_config();
  cfg.dedup = true;
  cfg.threads = 3;
  cfg.batch = 7;
  cfg.backend = GetParam();
  ThreadPool pool(4);
  const core::ScanResult got = core::scan_chip(chip, detector, cfg, pool);
  EXPECT_EQ(got.windows_total, naive.windows_total);
  EXPECT_EQ(got.flagged, naive.flagged);
  EXPECT_EQ(got.hits, naive.hits);
}

TEST_P(ScanGroup, RepeatedScansAreBitIdentical) {
  // Same scan twice through the same backend: identical hit lists and
  // window counts (timings and windows_classified may differ).
  ThreadPool pool(4);
  const testkit::DensityCutDetector detector(0.05f);
  const core::ChipIndex chip = core::ChipIndex::from_library(
      test_chip(99, 4), "TOP", synth::kChipLayer);
  core::ScanConfig cfg = base_config();
  cfg.dedup = true;
  cfg.threads = 3;
  const core::ScanResult first = core::scan_chip(chip, detector, cfg, pool);
  const core::ScanResult second = core::scan_chip(chip, detector, cfg, pool);
  EXPECT_EQ(first.windows_total, second.windows_total);
  EXPECT_EQ(first.flagged, second.flagged);
  EXPECT_EQ(first.hits, second.hits);
}

LHD_CONFORMANCE_SUITE(ScanGroup);

}  // namespace
}  // namespace lhd::conformance
