// Conformance group: fault injection during batch submission. The
// ExecBackend contract on a throwing batch function: stop handing out new
// batches, drain whatever is already in flight, rethrow the first error —
// and the backend object stays fully usable afterwards. The same story
// must hold one level up when a Detector throws mid-scan.

#include <atomic>
#include <cstddef>
#include <vector>

#include "harness.hpp"
#include "lhd/core/scan.hpp"
#include "lhd/synth/chip_gen.hpp"
#include "lhd/testkit/oracle.hpp"
#include "lhd/util/check.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd::conformance {
namespace {

/// Density detector whose score_batch throws on its Nth invocation
/// (process-wide across threads); per-clip score() never throws, so the
/// naive baseline path is unaffected.
class FaultyDetector : public testkit::DensityCutDetector {
 public:
  explicit FaultyDetector(int fail_on_call) : fail_on_(fail_on_call) {}

  std::vector<float> score_batch(
      std::span<const data::Clip> clips) const override {
    if (calls_.fetch_add(1) + 1 == fail_on_) {
      throw Error("injected score_batch fault");
    }
    return DensityCutDetector::score_batch(clips);
  }

  int calls() const { return calls_.load(); }

 private:
  int fail_on_;
  mutable std::atomic<int> calls_{0};
};

class FaultGroup : public BackendTest {};

TEST_P(FaultGroup, ThrowingBatchPropagatesAndLeavesBackendUsable) {
  // Fault at the first, a middle, and the last batch of a 32-item
  // submission split into 4-item batches. Each index must be visited at
  // most once even while the fault drains; the next clean submission must
  // cover everything exactly once.
  for (const std::size_t fault_index : {std::size_t{0}, std::size_t{17},
                                        std::size_t{31}}) {
    constexpr std::size_t kCount = 32;
    std::vector<std::atomic<int>> visits(kCount);
    for (auto& v : visits) v.store(0);
    const auto faulty = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
      if (lo <= fault_index && fault_index < hi) {
        throw Error("injected batch fault");
      }
    };
    EXPECT_THROW(backend().submit_batches(
                     kCount, exec::SubmitConfig{0, 4}, faulty),
                 Error)
        << "fault at " << fault_index << " was swallowed";
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_LE(visits[i].load(), 1)
          << "index " << i << " processed twice around a fault at "
          << fault_index;
    }
    // The backend must not be poisoned: a clean follow-up submission
    // covers the full range exactly once.
    std::vector<std::atomic<int>> clean(kCount);
    for (auto& v : clean) v.store(0);
    backend().submit_batches(kCount, exec::SubmitConfig{0, 4},
                             [&](std::size_t lo, std::size_t hi) {
                               for (std::size_t i = lo; i < hi; ++i) {
                                 clean[i].fetch_add(1);
                               }
                             });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(clean[i].load(), 1)
          << "post-fault submission broken at index " << i;
    }
  }
}

TEST_P(FaultGroup, DetectorFaultMidScanPropagatesAndScansRecover) {
  // A detector that throws on its second score_batch call inside a
  // multi-threaded dedup scan: the scan must rethrow (not hang or
  // deadlock), and a subsequent clean scan over the same chip through the
  // same backend must match the naive baseline.
  ThreadPool pool(4);
  const gds::Library lib =
      synth::build_chip(synth::StyleConfig{}, 2, 2, 555, 4);
  const core::ChipIndex chip =
      core::ChipIndex::from_library(lib, "TOP", synth::kChipLayer);
  core::ScanConfig cfg;
  cfg.window_nm = 1024;
  cfg.stride_nm = 512;
  cfg.dedup = true;
  cfg.threads = 2;
  cfg.batch = 8;

  const FaultyDetector faulty(/*fail_on_call=*/2);
  EXPECT_THROW(core::scan_chip(chip, faulty, cfg, pool), Error);

  const testkit::DensityCutDetector clean(0.10f);
  core::ScanConfig naive_cfg;
  naive_cfg.window_nm = cfg.window_nm;
  naive_cfg.stride_nm = cfg.stride_nm;
  const core::ScanResult want = core::scan_chip(chip, clean, naive_cfg);
  const core::ScanResult got = core::scan_chip(chip, clean, cfg, pool);
  EXPECT_EQ(got.windows_total, want.windows_total);
  EXPECT_EQ(got.flagged, want.flagged);
  EXPECT_EQ(got.hits, want.hits);
}

LHD_CONFORMANCE_SUITE(FaultGroup);

}  // namespace
}  // namespace lhd::conformance
