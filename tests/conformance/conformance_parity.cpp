// Satellite: the `backend-parity` testkit property. Random
// conv-relu-pool-linear stacks are pushed through every backend's
// primitives and compared against the serial reference backend, with the
// property runner's shrinking + LHD_PROPERTY_SEED replay on divergence.
// Relu and pooling are computed by shared plain loops so a failure can
// only implicate the backend's gemm/conv — the primitives under test.

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "harness.hpp"
#include "lhd/testkit/property.hpp"

namespace lhd::conformance {
namespace {

// Throwing allclose so the property runner can shrink on divergence.
void require_allclose(std::span<const float> got, std::span<const float> want,
                      double tol, const char* what) {
  if (got.size() != want.size()) {
    throw testkit::PropertyFailure(std::string(what) + ": size mismatch");
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double g = got[i];
    const double w = want[i];
    if (std::abs(g - w) >
        tol * (1.0 + std::max(std::abs(g), std::abs(w)))) {
      std::ostringstream os;
      os << what << ": element " << i << " diverges (got " << g << ", want "
         << w << ")";
      throw testkit::PropertyFailure(os.str());
    }
  }
}

std::vector<float> relu(std::vector<float> v) {
  for (float& x : v) x = std::max(0.0f, x);
  return v;
}

// 2x2 stride-2 max pool over [n][c][h][w] (h, w even).
std::vector<float> maxpool2(const std::vector<float>& v, int n, int c, int h,
                            int w) {
  const int oh = h / 2, ow = w / 2;
  std::vector<float> out(static_cast<std::size_t>(n * c * oh * ow));
  std::size_t idx = 0;
  for (int plane = 0; plane < n * c; ++plane) {
    const float* src = v.data() + static_cast<std::size_t>(plane) *
                                      static_cast<std::size_t>(h * w);
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        const float a = src[(2 * y) * w + 2 * x];
        const float b = src[(2 * y) * w + 2 * x + 1];
        const float cc = src[(2 * y + 1) * w + 2 * x];
        const float d = src[(2 * y + 1) * w + 2 * x + 1];
        out[idx++] = std::max(std::max(a, b), std::max(cc, d));
      }
    }
  }
  return out;
}

// Run the full stack through one backend's primitives.
std::vector<float> run_stack(const exec::ExecBackend& backend,
                             const nn::Tensor& input,
                             std::span<const float> conv_w,
                             std::span<const float> conv_b, int out_c, int k,
                             int pad, std::span<const float> lin_w,
                             std::span<const float> lin_b, int out_f) {
  const nn::Tensor conv = backend.conv2d_forward(
      input, conv_w, conv_b, out_c, k, pad);
  const int n = conv.dim(0), oh = conv.dim(2), ow = conv.dim(3);
  const std::vector<float> pooled =
      maxpool2(relu({conv.data(), conv.data() + conv.size()}), n, out_c, oh,
               ow);
  const int features = out_c * (oh / 2) * (ow / 2);
  // Linear: out[n][out_f] = pooled[n][features] * lin_w[out_f][features]^T
  // + bias, bias seeded into the accumulator (gemm is +=).
  std::vector<float> out(static_cast<std::size_t>(n * out_f));
  for (int s = 0; s < n; ++s) {
    for (int f = 0; f < out_f; ++f) {
      out[static_cast<std::size_t>(s * out_f + f)] = lin_b[
          static_cast<std::size_t>(f)];
    }
  }
  backend.gemm(n, out_f, features, pooled.data(), features, lin_w.data(),
               features, /*trans_b=*/true, out.data(), out_f);
  return out;
}

class ParityGroup : public BackendTest {};

TEST_P(ParityGroup, RandomStacksMatchSerialReference) {
  const exec::ExecBackend& reference = exec::get_backend("serial");
  const exec::ExecBackend& under_test = backend();
  CHECK_PROPERTY("backend-parity", 20, [&](Rng& rng, std::size_t size) {
    const int k = rng.next_bool(0.5) ? 3 : 1;
    // pad <= (k-1)/2 keeps h = oh + k - 1 - 2*pad >= oh for every shape.
    const int pad =
        static_cast<int>(rng.next_below(static_cast<std::uint32_t>((k + 1) / 2)));
    const int oh = 2 * (1 + static_cast<int>(rng.next_below(3)));  // 2/4/6
    const int h = oh + k - 1 - 2 * pad;
    const int n = 1 + static_cast<int>(rng.next_below(3));
    const int in_c = 1 + static_cast<int>(rng.next_below(3 + size % 2));
    const int out_c = 1 + static_cast<int>(rng.next_below(6));
    const int out_f = 1 + static_cast<int>(rng.next_below(5));
    nn::Tensor input({n, in_c, h, h});
    for (std::size_t i = 0; i < input.size(); ++i) {
      input[i] = static_cast<float>(rng.next_double(-1.0, 1.0));
    }
    const auto conv_w = random_floats(
        rng, static_cast<std::size_t>(out_c * in_c * k * k));
    const auto conv_b = random_floats(rng, static_cast<std::size_t>(out_c));
    const int features = out_c * (oh / 2) * (oh / 2);
    const auto lin_w =
        random_floats(rng, static_cast<std::size_t>(out_f * features));
    const auto lin_b = random_floats(rng, static_cast<std::size_t>(out_f));
    const std::vector<float> got =
        run_stack(under_test, input, conv_w, conv_b, out_c, k, pad, lin_w,
                  lin_b, out_f);
    const std::vector<float> want =
        run_stack(reference, input, conv_w, conv_b, out_c, k, pad, lin_w,
                  lin_b, out_f);
    require_allclose(got, want, 1e-3, "conv-relu-pool-linear stack");
  });
}

LHD_CONFORMANCE_SUITE(ParityGroup);

}  // namespace
}  // namespace lhd::conformance
