// Conformance group: batched scoring and batch submission. The Detector
// contract says score_batch element i equals score(clips[i]) bit-for-bit,
// and ExecBackend::submit_batches must cover [0, count) as a disjoint
// partition with bounded in-flight batches — every backend proves both
// here, including through CnnDetector's real batched forward pass.

#include <atomic>
#include <cstddef>
#include <vector>

#include "harness.hpp"
#include "lhd/core/cnn_detector.hpp"
#include "lhd/testkit/oracle.hpp"

namespace lhd::conformance {
namespace {

class ScoreGroup : public BackendTest {};

TEST_P(ScoreGroup, BatchMatchesPerClipScore) {
  // Default Detector::score_batch (the per-clip loop) driven through the
  // backend's submission — every element must equal score() bitwise.
  testkit::DensityCutDetector det;
  Rng rng(31337);
  const auto clips = random_clips(rng, 37);
  const std::vector<float> batched = score_via(backend(), det, clips);
  ASSERT_EQ(batched.size(), clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i) {
    EXPECT_EQ(batched[i], det.score(clips[i])) << "clip " << i;
  }
}

TEST_P(ScoreGroup, CnnBatchMatchesPerClipScoreBitwise) {
  // CnnDetector::score_batch routes through the active backend override
  // (pinned to the param by the fixture) and runs a genuinely batched
  // forward pass; the contract is still bit-identity with score().
  core::CnnDetector det("conformance-cnn");
  Rng rng(2024);
  det.network().init(rng);
  const auto clips = random_clips(rng, 13);
  const std::vector<float> batched =
      det.score_batch(std::span<const data::Clip>(clips));
  ASSERT_EQ(batched.size(), clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i) {
    EXPECT_EQ(batched[i], det.score(clips[i])) << "clip " << i;
  }
}

TEST_P(ScoreGroup, EmptyBatchReturnsEmpty) {
  testkit::DensityCutDetector density;
  const std::vector<data::Clip> none;
  EXPECT_TRUE(score_via(backend(), density, none).empty());
  core::CnnDetector cnn("conformance-cnn");
  EXPECT_TRUE(cnn.score_batch(std::span<const data::Clip>()).empty());
}

TEST_P(ScoreGroup, SingleClipBatch) {
  testkit::DensityCutDetector det;
  Rng rng(5);
  const auto clips = random_clips(rng, 1);
  const std::vector<float> batched = score_via(backend(), det, clips);
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched[0], det.score(clips[0]));
}

TEST_P(ScoreGroup, SubmissionPartitionIsExact) {
  // submit_batches must call the function on a disjoint partition of
  // [0, count): each index covered exactly once, lo < hi, never out of
  // range — for empty, single, odd and large counts.
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{5}, std::size_t{97}}) {
    std::vector<std::atomic<int>> seen(count);
    for (auto& s : seen) s.store(0);
    backend().submit_batches(count, exec::SubmitConfig{},
                             [&](std::size_t lo, std::size_t hi) {
                               ASSERT_LT(lo, hi);
                               ASSERT_LE(hi, count);
                               for (std::size_t i = lo; i < hi; ++i) {
                                 seen[i].fetch_add(1);
                               }
                             });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(seen[i].load(), 1)
          << "index " << i << " of " << count << " covered "
          << seen[i].load() << " times";
    }
  }
}

TEST_P(ScoreGroup, ExplicitBatchSizeIsHonored) {
  // With batch=4 over 10 items every call must span at most 4 indices.
  std::atomic<std::size_t> max_span{0};
  std::atomic<int> covered{0};
  backend().submit_batches(10, exec::SubmitConfig{0, 4},
                           [&](std::size_t lo, std::size_t hi) {
                             std::size_t span = hi - lo;
                             std::size_t prev = max_span.load();
                             while (span > prev &&
                                    !max_span.compare_exchange_weak(prev,
                                                                    span)) {
                             }
                             covered.fetch_add(static_cast<int>(span));
                           });
  EXPECT_LE(max_span.load(), 4u);
  EXPECT_EQ(covered.load(), 10);
}

TEST_P(ScoreGroup, InFlightBatchesStayBounded) {
  // max_in_flight=2 with 16 one-item batches: at no instant may more than
  // two batches be executing concurrently.
  std::atomic<int> current{0};
  std::atomic<int> peak{0};
  backend().submit_batches(
      16, exec::SubmitConfig{/*max_in_flight=*/2, /*batch=*/1},
      [&](std::size_t, std::size_t) {
        const int now = current.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        current.fetch_sub(1);
      });
  EXPECT_LE(peak.load(), 2) << "more than max_in_flight batches ran at once";
}

LHD_CONFORMANCE_SUITE(ScoreGroup);

}  // namespace
}  // namespace lhd::conformance
