// Conformance group: ExecBackend::gemm. Shapes deliberately straddle the
// blocked kernel's register/cache tile edges (mr=6, nr=32, mc=96, kc=256,
// nc=1024) so sliver and full-panel code paths both run on every backend.
// Oracle: nn::gemm_reference with double-checked accumulate-into-C
// semantics. The serial backend IS the reference loop, so it is
// additionally held to bit-exactness.

#include <cstring>
#include <string>
#include <vector>

#include "harness.hpp"
#include "lhd/nn/gemm.hpp"

namespace lhd::conformance {
namespace {

struct GemmShape {
  int m, n, k;
};

// Tile-edge shapes: one-below / exactly-at / one-above each blocking
// constant, plus a degenerate 1x1x1, a k=1 rank-one update, and the
// im2col shape of the CNN's first conv layer (24 filters over 8192-pixel
// planes with 16*3*3 patch rows).
constexpr GemmShape kEdgeShapes[] = {
    {1, 1, 1},       {5, 31, 255},   {6, 32, 256}, {7, 33, 257},
    {11, 64, 300},   {96, 1024, 256}, {97, 1025, 257}, {95, 1023, 255},
    {6, 32, 1},      {24, 1024, 144},
};

class GemmGroup : public BackendTest {
 protected:
  // Run backend gemm and the reference on independently-seeded copies of
  // the same random problem; returns {got, want}. `want` is bit-reusable
  // by the serial exactness test.
  void run_case(const GemmShape& s, bool trans_b, int lda_pad, int ldb_pad,
                int ldc_pad, double tol) {
    Rng rng(0x9e3779b97f4a7c15ULL ^
            (static_cast<std::uint64_t>(s.m) << 32) ^
            (static_cast<std::uint64_t>(s.n) << 16) ^
            static_cast<std::uint64_t>(s.k) ^
            (trans_b ? 0xabcdULL : 0ULL));
    const int lda = s.k + lda_pad;
    const int ldb = (trans_b ? s.k : s.n) + ldb_pad;
    const int ldc = s.n + ldc_pad;
    const auto a = random_floats(rng, static_cast<std::size_t>(s.m) *
                                          static_cast<std::size_t>(lda));
    const auto b = random_floats(
        rng, static_cast<std::size_t>(trans_b ? s.n : s.k) *
                 static_cast<std::size_t>(ldb));
    // Seed C with random values: gemm accumulates, so a backend that
    // zero-initializes instead of adding fails this.
    const auto c0 = random_floats(rng, static_cast<std::size_t>(s.m) *
                                           static_cast<std::size_t>(ldc));
    std::vector<float> got = c0;
    std::vector<float> want = c0;
    backend().gemm(s.m, s.n, s.k, a.data(), lda, b.data(), ldb, trans_b,
                   got.data(), ldc);
    nn::gemm_reference(s.m, s.n, s.k, a.data(), lda, b.data(), ldb, trans_b,
                       want.data(), ldc);
    const std::string what = "gemm m=" + std::to_string(s.m) +
                             " n=" + std::to_string(s.n) +
                             " k=" + std::to_string(s.k) +
                             (trans_b ? " trans_b" : "");
    expect_allclose(got, want, tol, what);
    if (GetParam() == "serial") {
      // The serial backend is documented as the reference loop itself —
      // hold it to bit-exactness, not just tolerance.
      ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                               got.size() * sizeof(float)))
          << what << ": serial backend diverged bitwise from gemm_reference";
    }
  }
};

TEST_P(GemmGroup, TileEdgeShapesMatchReference) {
  for (const GemmShape& s : kEdgeShapes) {
    run_case(s, /*trans_b=*/false, 0, 0, 0, 1e-3);
    if (HasFatalFailure()) return;
  }
}

TEST_P(GemmGroup, TransposedBMatchesReference) {
  for (const GemmShape& s : kEdgeShapes) {
    run_case(s, /*trans_b=*/true, 0, 0, 0, 1e-3);
    if (HasFatalFailure()) return;
  }
}

TEST_P(GemmGroup, StridedLeadingDimensions) {
  // Non-minimal lda/ldb/ldc: rows embedded in wider buffers. A backend
  // that assumes packed rows reads or clobbers the padding.
  run_case({7, 33, 257}, /*trans_b=*/false, 3, 5, 2, 1e-3);
  run_case({7, 33, 257}, /*trans_b=*/true, 3, 5, 2, 1e-3);
  run_case({96, 32, 256}, /*trans_b=*/false, 1, 7, 9, 1e-3);
}

TEST_P(GemmGroup, DegenerateDimensionsAreNoOps) {
  // m, n or k of zero: C must be untouched (k=0 means "add nothing").
  Rng rng(77);
  const auto a = random_floats(rng, 64);
  const auto b = random_floats(rng, 64);
  const auto c0 = random_floats(rng, 64);
  for (const GemmShape& s :
       {GemmShape{0, 8, 8}, GemmShape{8, 0, 8}, GemmShape{8, 8, 0}}) {
    std::vector<float> c = c0;
    backend().gemm(s.m, s.n, s.k, a.data(), 8, b.data(), 8, false, c.data(),
                   8);
    ASSERT_EQ(0, std::memcmp(c.data(), c0.data(), c.size() * sizeof(float)))
        << "gemm with m=" << s.m << " n=" << s.n << " k=" << s.k
        << " modified C";
  }
}

TEST_P(GemmGroup, RepeatedRunsAreBitIdentical) {
  // Same inputs twice through the same backend must agree bitwise —
  // threading or scratch reuse must not introduce run-to-run drift.
  const GemmShape s{97, 129, 300};
  Rng rng(0xfeedULL);
  const auto a = random_floats(rng, static_cast<std::size_t>(s.m) *
                                        static_cast<std::size_t>(s.k));
  const auto b = random_floats(rng, static_cast<std::size_t>(s.k) *
                                        static_cast<std::size_t>(s.n));
  const auto c0 = random_floats(rng, static_cast<std::size_t>(s.m) *
                                         static_cast<std::size_t>(s.n));
  std::vector<float> first = c0;
  std::vector<float> second = c0;
  backend().gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, false,
                 first.data(), s.n);
  backend().gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, false,
                 second.data(), s.n);
  ASSERT_EQ(0,
            std::memcmp(first.data(), second.data(),
                        first.size() * sizeof(float)))
      << "gemm is not deterministic across repeated runs";
}

LHD_CONFORMANCE_SUITE(GemmGroup);

}  // namespace
}  // namespace lhd::conformance
