#include "harness.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "lhd/testkit/gen.hpp"
#include "lhd/util/check.hpp"

namespace lhd::conformance {

std::vector<float> random_floats(Rng& rng, std::size_t count) {
  std::vector<float> out(count);
  for (float& v : out) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  return out;
}

void expect_allclose(std::span<const float> got, std::span<const float> want,
                     double tol, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what << ": size mismatch";
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double g = got[i];
    const double w = want[i];
    const double bound = tol * (1.0 + std::max(std::abs(g), std::abs(w)));
    ASSERT_LE(std::abs(g - w), bound)
        << what << ": element " << i << " diverges (got " << g << ", want "
        << w << ", tol " << bound << ")";
  }
}

std::vector<data::Clip> random_clips(Rng& rng, std::size_t count,
                                     geom::Coord window_nm) {
  std::vector<data::Clip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(
        testkit::random_clip(rng, 8 + rng.next_below(32), window_nm));
  }
  return clips;
}

std::vector<float> conv_oracle(const nn::Tensor& input,
                               std::span<const float> weight,
                               std::span<const float> bias, int out_channels,
                               int kernel, int pad) {
  LHD_CHECK(input.rank() == 4, "conv_oracle wants NCHW");
  const int n = input.dim(0);
  const int in_c = input.dim(1);
  const int h = input.dim(2);
  const int w = input.dim(3);
  const int oh = h + 2 * pad - kernel + 1;
  const int ow = w + 2 * pad - kernel + 1;
  LHD_CHECK(oh > 0 && ow > 0, "conv_oracle kernel exceeds padded input");
  std::vector<float> out(static_cast<std::size_t>(n) *
                         static_cast<std::size_t>(out_channels) *
                         static_cast<std::size_t>(oh) *
                         static_cast<std::size_t>(ow));
  std::size_t idx = 0;
  for (int s = 0; s < n; ++s) {
    const float* src = input.data() + static_cast<std::size_t>(s) *
                                          static_cast<std::size_t>(in_c) *
                                          static_cast<std::size_t>(h) *
                                          static_cast<std::size_t>(w);
    for (int oc = 0; oc < out_channels; ++oc) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          double acc = bias[static_cast<std::size_t>(oc)];
          for (int c = 0; c < in_c; ++c) {
            for (int ky = 0; ky < kernel; ++ky) {
              const int iy = oy + ky - pad;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < kernel; ++kx) {
                const int ix = ox + kx - pad;
                if (ix < 0 || ix >= w) continue;
                acc += static_cast<double>(
                           src[(static_cast<std::size_t>(c) *
                                    static_cast<std::size_t>(h) +
                                static_cast<std::size_t>(iy)) *
                                   static_cast<std::size_t>(w) +
                               static_cast<std::size_t>(ix)]) *
                       static_cast<double>(
                           weight[static_cast<std::size_t>(oc) *
                                      static_cast<std::size_t>(in_c * kernel *
                                                               kernel) +
                                  static_cast<std::size_t>(
                                      (c * kernel + ky) * kernel + kx)]);
              }
            }
          }
          out[idx++] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

std::vector<float> score_via(const exec::ExecBackend& backend,
                             const core::Detector& det,
                             const std::vector<data::Clip>& clips) {
  std::vector<float> out(clips.size());
  backend.submit_batches(
      clips.size(), exec::SubmitConfig{}, [&](std::size_t lo, std::size_t hi) {
        const std::vector<float> scored = det.score_batch(
            std::span<const data::Clip>(clips).subspan(lo, hi - lo));
        LHD_CHECK(scored.size() == hi - lo, "score_batch size mismatch");
        std::copy(scored.begin(), scored.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(lo));
      });
  return out;
}

}  // namespace lhd::conformance
