// Conformance group: ExecBackend::conv2d_forward. Tail shapes exercise
// the im2col panel edges (odd plane sizes, 1x1 kernels, pad ≥ 1, plane
// counts that don't divide the GEMM tiles). Oracle: double-precision
// direct convolution (conv_oracle); a cross-check against nn::Conv2d
// inference ties the exec primitive to the layer it replaces.

#include <cstring>
#include <string>
#include <vector>

#include "harness.hpp"
#include "lhd/nn/layers.hpp"

namespace lhd::conformance {
namespace {

struct ConvShape {
  int n, in_c, out_c, k, pad, h, w;
};

// Tail shapes: 1x1 degenerate, odd planes, k=5 with heavy padding, the
// CNN's 16->24 channel block at full resolution, and a no-pad valid conv.
constexpr ConvShape kConvShapes[] = {
    {1, 1, 1, 1, 0, 1, 1},   {2, 3, 5, 3, 1, 7, 9}, {3, 2, 4, 5, 2, 8, 8},
    {2, 16, 24, 3, 1, 16, 16}, {1, 3, 2, 3, 0, 5, 5},
};

nn::Tensor random_input(Rng& rng, const ConvShape& s) {
  nn::Tensor input({s.n, s.in_c, s.h, s.w});
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
  return input;
}

class ConvGroup : public BackendTest {};

TEST_P(ConvGroup, TailShapesMatchDirectOracle) {
  for (const ConvShape& s : kConvShapes) {
    Rng rng(0xc0ffeeULL + static_cast<std::uint64_t>(s.in_c * 1000 + s.h));
    const nn::Tensor input = random_input(rng, s);
    const auto weight = random_floats(
        rng, static_cast<std::size_t>(s.out_c * s.in_c * s.k * s.k));
    const auto bias = random_floats(rng, static_cast<std::size_t>(s.out_c));
    const nn::Tensor got =
        backend().conv2d_forward(input, weight, bias, s.out_c, s.k, s.pad);
    const std::vector<float> want =
        conv_oracle(input, weight, bias, s.out_c, s.k, s.pad);
    const int oh = s.h + 2 * s.pad - s.k + 1;
    const int ow = s.w + 2 * s.pad - s.k + 1;
    ASSERT_EQ(got.rank(), 4u);
    ASSERT_EQ(got.dim(0), s.n);
    ASSERT_EQ(got.dim(1), s.out_c);
    ASSERT_EQ(got.dim(2), oh);
    ASSERT_EQ(got.dim(3), ow);
    expect_allclose(std::span<const float>(got.data(), got.size()), want,
                    1e-3,
                    "conv n=" + std::to_string(s.n) +
                        " c=" + std::to_string(s.in_c) + "->" +
                        std::to_string(s.out_c) + " k=" + std::to_string(s.k) +
                        " pad=" + std::to_string(s.pad) + " " +
                        std::to_string(s.h) + "x" + std::to_string(s.w));
    if (HasFatalFailure()) return;
  }
}

TEST_P(ConvGroup, MatchesLayerInference) {
  // The exec primitive must agree with the nn::Conv2d layer it stands in
  // for, using the layer's own initialized parameters.
  const int in_c = 3, out_c = 6, k = 3, pad = 1, h = 10, w = 10;
  nn::Conv2d layer(in_c, out_c, k, pad);
  Rng rng(4242);
  layer.init(rng);
  // params() exposes {weight, bias} value vectors; identify them by size
  // (the weight is out_c*in_c*k*k, the bias out_c — unambiguous here).
  std::vector<float>* weight = nullptr;
  std::vector<float>* bias = nullptr;
  for (const nn::Param& p : layer.params()) {
    if (p.value->size() ==
        static_cast<std::size_t>(out_c * in_c * k * k)) {
      weight = p.value;
    } else if (p.value->size() == static_cast<std::size_t>(out_c)) {
      bias = p.value;
    }
  }
  ASSERT_NE(weight, nullptr);
  ASSERT_NE(bias, nullptr);
  nn::Tensor input({2, in_c, h, w});
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
  const nn::Tensor got =
      backend().conv2d_forward(input, *weight, *bias, out_c, k, pad);
  const nn::Tensor want = layer.infer(input);
  ASSERT_EQ(got.shape(), want.shape());
  expect_allclose(std::span<const float>(got.data(), got.size()),
                  std::span<const float>(want.data(), want.size()), 1e-3,
                  "conv vs nn::Conv2d::infer");
}

TEST_P(ConvGroup, RepeatedRunsAreBitIdentical) {
  const ConvShape s{2, 16, 24, 3, 1, 16, 16};
  Rng rng(99);
  const nn::Tensor input = random_input(rng, s);
  const auto weight = random_floats(
      rng, static_cast<std::size_t>(s.out_c * s.in_c * s.k * s.k));
  const auto bias = random_floats(rng, static_cast<std::size_t>(s.out_c));
  const nn::Tensor first =
      backend().conv2d_forward(input, weight, bias, s.out_c, s.k, s.pad);
  const nn::Tensor second =
      backend().conv2d_forward(input, weight, bias, s.out_c, s.k, s.pad);
  ASSERT_EQ(first.shape(), second.shape());
  ASSERT_EQ(0, std::memcmp(first.data(), second.data(),
                           first.size() * sizeof(float)))
      << "conv2d_forward is not deterministic across repeated runs";
}

LHD_CONFORMANCE_SUITE(ConvGroup);

}  // namespace
}  // namespace lhd::conformance
