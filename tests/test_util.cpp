// Tests for lhd/util: rng, check macros, table, cli, stopwatch, thread pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "lhd/util/check.hpp"
#include "lhd/util/cli.hpp"
#include "lhd/util/rng.hpp"
#include "lhd/util/stopwatch.hpp"
#include "lhd/util/table.hpp"
#include "lhd/util/thread_pool.hpp"

namespace lhd {
namespace {

// ----------------------------------------------------------------- check --

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(LHD_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsError) {
  EXPECT_THROW(LHD_CHECK(false, "context"), Error);
}

TEST(Check, ErrorMessageContainsExpressionAndContext) {
  try {
    LHD_CHECK(2 > 3, "two is not greater");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not greater"), std::string::npos);
  }
}

TEST(Check, StreamedMessageFormats) {
  try {
    LHD_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Check, ErrorIsRuntimeError) {
  EXPECT_THROW(LHD_CHECK(false), std::runtime_error);
}

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NextIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.next_int(5, 5), 5);
}

TEST(Rng, NextIntInvertedRangeThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.next_int(3, 2), Error);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NextGaussianMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.1);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(17);
  int heads = 0;
  constexpr int n = 10000;
  for (int i = 0; i < n; ++i) heads += rng.next_bool(0.25);
  EXPECT_NEAR(heads / static_cast<double>(n), 0.25, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork();
  // The child stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResetsSequence) {
  Rng rng(99);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(99);
  EXPECT_EQ(rng.next_u64(), first);
}

// ----------------------------------------------------------------- table --

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, HeaderAfterRowsThrows) {
  Table t("demo");
  t.set_header({"a"});
  t.add_row({"x"});
  EXPECT_THROW(t.set_header({"b"}), Error);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t("csv");
  t.set_header({"a", "b"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(static_cast<long long>(42)), "42");
  EXPECT_EQ(Table::cell(100.0, 0), "100");
}

TEST(Table, RowCount) {
  Table t("n");
  t.set_header({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

// ------------------------------------------------------------------- cli --

TEST(Cli, ParsesStringIntDoubleBool) {
  const char* argv[] = {"prog", "--name=hello", "--count=42",
                        "--ratio=0.5", "--flag"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_string("name"), "hello");
  EXPECT_EQ(cli.get_int("count", 0), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_string("missing", "def"), "def");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, IgnoresPositionalArguments) {
  const char* argv[] = {"prog", "positional", "--x=1"};
  Cli cli(3, argv);
  EXPECT_FALSE(cli.has("positional"));
  EXPECT_EQ(cli.get_int("x", 0), 1);
}

TEST(Cli, ProgramName) {
  const char* argv[] = {"myprog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.program(), "myprog");
}

// -------------------------------------------------------------- stopwatch --

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.millis(), 5.0);
  EXPECT_LT(sw.seconds(), 5.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.reset();
  EXPECT_LT(sw.millis(), 10.0);
}

// ------------------------------------------------------------ thread pool --

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForAwaitsAllChunksWhenOneThrows) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  bool threw = false;
  try {
    pool.parallel_for(0, 8, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("boom");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      completed.fetch_add(1);
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  // Every non-throwing iteration must have finished before parallel_for
  // returned; the pre-fix code unwound on the first failed future while
  // later chunks still referenced the callback in the dead frame.
  EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPool, ParallelForRethrowsFirstOfManyExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 8,
                        [](std::size_t) { throw std::runtime_error("each"); }),
      std::runtime_error);
}

TEST(ThreadPool, SingleWorkerParallelForRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(0, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, SubmitAfterShutdownReturnsPoolStoppedFuture) {
  ThreadPool pool(2);
  pool.shutdown();
  bool ran = false;
  auto future = pool.submit([&] { ran = true; });
  EXPECT_THROW(future.get(), PoolStopped);
  EXPECT_FALSE(ran);  // the rejected task must never run
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // second call (and the destructor after it) must no-op
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&] { ran.fetch_add(1); }));
  }
  pool.shutdown();
  for (auto& f : futures) f.get();  // all were accepted, so all ran
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, SubmitShutdownRaceNeverAborts) {
  // Regression: submit used to LHD_CHECK(!stop_) and abort the process
  // when it lost the race against shutdown. Now every submit either runs
  // the task or surfaces PoolStopped through the future — under TSan this
  // also proves the race itself is clean.
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(2);
    std::atomic<bool> go{false};
    std::atomic<int> accepted{0}, rejected{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        while (!go.load()) {
        }
        for (int i = 0; i < 64; ++i) {
          auto f = pool.submit([] {});
          try {
            f.get();
            accepted.fetch_add(1);
          } catch (const PoolStopped&) {
            rejected.fetch_add(1);
          }
        }
      });
    }
    go = true;
    pool.shutdown();
    for (auto& t : submitters) t.join();
    EXPECT_EQ(accepted.load() + rejected.load(), 4 * 64);
  }
}

}  // namespace
}  // namespace lhd
